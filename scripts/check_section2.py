"""Development harness: run all paper §2 examples and compare with the
published results.  (The formal versions live in tests/.)"""
import sys
sys.path.insert(0, 'src')

from repro.prolog import parse_program, normalize_program
from repro.fixpoint import Engine, AnalysisConfig
from repro.domains import display_subst, value_of
from repro.typegraph import g_equiv, parse_rules

SECTION2 = []


def case(name, src, pred, arity, expected_args):
    SECTION2.append((name, src, (pred, arity), expected_args))


case('nreverse', '''
nreverse([], []).
nreverse([F|T], Res) :- nreverse(T, Trev), append(Trev, [F], Res).
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
''', 'nreverse', 2, ['T ::= [] | cons(Any,T)', 'T ::= [] | cons(Any,T)'])

case('process-acc', '''
process(X,Y) :- process(X,0,Y).
process([],X,X).
process([c(X1)|Y],Acc,X) :- process(Y,c(X1,Acc),X).
process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
''', 'process', 2, ['''
T ::= [] | cons(T1,T)
T1 ::= c(Any) | d(Any)
''', '''
S ::= 0 | c(Any,S) | d(Any,S)
'''])

case('process-mutual', '''
process(X,Y) :- process(X,0,Y).
process([],X,X).
process([c(X1)|Y],Acc,X) :- other_process(Y,c(X1,Acc),X).
other_process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
''', 'process', 2, ['''
T ::= [] | cons(T1,T2)
T1 ::= c(Any)
T2 ::= cons(T3,T)
T3 ::= d(Any)
''', '''
S ::= 0 | d(Any,S1)
S1 ::= c(Any,S)
'''])

case('fig1-nested-lists', '''
llist([]).
llist([F|T]) :- list(F), llist(T).
list([]).
list([F|T]) :- p(F), list(T).
p(a). p(b).
reverse(X,Y) :- reverse(X,[],Y).
reverse([],X,X).
reverse([F|T],Acc,Res) :- reverse(T,[F|Acc],Res).
get(Res) :- llist(X), reverse(X,Res).
''', 'get', 1, ['''
T ::= [] | cons(T1,T)
T1 ::= [] | cons(T2,T1)
T2 ::= a | b
'''])

case('fig2-arith', '''
add(0,[]).
add(X + Y,Res) :- add(X,Res1), mult(Y,Res2), append(Res1,Res2,Res).
mult(1,[]).
mult(X * Y,Res) :- mult(X,Res1), basic(Y,Res2), append(Res1,Res2,Res).
basic(var(X),[X]).
basic(cst(C),[]).
basic(par(X),Res) :- add(X,Res).
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
''', 'add', 2, ['''
T ::= '+'(T,T1) | 0
T1 ::= '*'(T1,T2) | 1
T2 ::= cst(Any) | par(T) | var(Any)
''', '''
S ::= [] | cons(Any,S)
'''])

case('fig3-arith-ar1', '''
add(X,Res) :- mult(X,Res).
add(X + Y,Res) :- add(X,R1), mult(Y,R2), append(R1,R2,Res).
mult(X,Res) :- basic(X,Res).
mult(X * Y,Res) :- mult(X,R1), basic(Y,R2), append(R1,R2,Res).
basic(var(X),[X]).
basic(cst(X),[]).
basic(par(X),Res) :- add(X,Res).
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
''', 'add', 2, ['''
T ::= cst(Any) | var(Any) | par(T) | '*'(T1,T2) | '+'(T,T1)
T1 ::= cst(Any) | var(Any) | par(T) | '*'(T1,T2)
T2 ::= cst(Any) | var(Any) | par(T)
''', '''
S ::= [] | cons(Any,S)
'''])

case('gen-succ', '''
succ([], []).
succ([X|Xs],[s(X)|R]) :- succ(Xs,R).
gen([]).
gen([0|L]) :- gen(X), succ(X,L).
''', 'gen', 1, ['''
<= T ::= [] | cons(T1,T)
T1 ::= 0 | s(T1)
'''])

case('fig4-qsort', '''
qsort(X1, X2) :- qsort(X1, X2, []).
qsort([], L, L).
qsort([F|T], O, A) :-
    partition(T, F, Small, Big),
    qsort(Small, O, [F|Ot]),
    qsort(Big, Ot, A).
partition([], _, [], []).
partition([X|Xs], F, [X|S], B) :- X =< F, partition(Xs, F, S, B).
partition([X|Xs], F, S, [X|B]) :- X > F, partition(Xs, F, S, B).
''', 'qsort', 2, ['''
T ::= [] | cons(Any,T)
''', '''
T ::= [] | cons(Any,Any)
'''])


def flatten_nt(text):
    # parse_rules wants functor form for +/*; the expected strings above
    # already use quoted functor syntax
    return text


def main():
    failures = 0
    for name, src, pred, expected in SECTION2:
        np = normalize_program(parse_program(src))
        engine = Engine(np)
        try:
            res = engine.analyze(pred)
        except Exception as exc:
            print('%-18s ERROR %r' % (name, exc))
            failures += 1
            continue
        out = res.output
        ok_all = True
        report = []
        from repro.domains.pattern import PAT_BOTTOM
        if out is PAT_BOTTOM:
            print('%-18s BOTTOM output' % name)
            failures += 1
            continue
        from repro.typegraph import g_le, g_bottom
        for k, exp_text in enumerate(expected):
            exp_text = exp_text.strip()
            # "<=" prefix: our result may be strictly more precise than
            # the published one (must still be nonempty and included)
            le_only = exp_text.startswith('<=')
            if le_only:
                exp_text = exp_text[2:]
            exp = parse_rules(exp_text)
            got = value_of(out, out.sv[k], engine.domain, {})
            if le_only:
                ok = g_le(got, exp) and not got.is_bottom()
            else:
                ok = g_equiv(got, exp)
            ok_all = ok_all and ok
            if not ok:
                report.append('  arg%d GOT:\n%s\n  arg%d EXPECTED:\n%s' %
                              (k, got, k, exp))
        status = 'OK ' if ok_all else 'DIFF'
        print('%-18s %s  (iters %d, entries %d)' %
              (name, status, res.stats.procedure_iterations,
               res.stats.entries_created))
        for r in report:
            print(r)
        if not ok_all:
            failures += 1
    return failures


if __name__ == '__main__':
    sys.exit(main())
