#!/usr/bin/env python
"""Benchmark report for the Table-3 suite — the repo's perf trajectory.

Runs the paper's benchmark programs (``repro.benchprogs``) through the
full ``GAIA(Pat(Type))`` analysis and records, per program:

* wall time (seconds, one full analysis),
* procedure / clause iterations (Table 3's own counters),
* differential-engine counters: clause iterations *skipped* (cached
  clause outputs joined instead of re-executed) and call-site
  resumptions (dirty clauses resumed from a pre-call snapshot),
* operation-cache traffic and hit rate
  (:mod:`repro.typegraph.opcache`),
* a content fingerprint of the resulting *semantic* table
  (:func:`repro.service.serialize.result_fingerprint` — per entry its
  predicate, β_in, and β_out; scheduling provenance such as dependency
  edges and iteration counts excluded), so runs can be checked
  bit-identical across cache configurations, engine modes, and
  commits.

Typical uses::

    # print the suite report
    PYTHONPATH=src python scripts/bench_report.py

    # compare against the committed trajectory file (non-blocking; CI)
    PYTHONPATH=src python scripts/bench_report.py --baseline BENCH_pr2.json

    # refresh the "current" section of the trajectory file
    PYTHONPATH=src python scripts/bench_report.py \
        --write-bench BENCH_pr2.json --label "PR2"

    # record a run as the baseline section instead
    PYTHONPATH=src python scripts/bench_report.py \
        --write-bench BENCH_pr2.json --as-baseline --label "pre-PR2"

    # measure the uncached path
    REPRO_OPCACHE=0 PYTHONPATH=src python scripts/bench_report.py

Speed is advisory — a slow run only draws a WARNING (CI hardware
varies).  Result integrity is not: a table-fingerprint divergence from
any compared baseline exits non-zero (PR 4; previously that required
``--strict``, which is still accepted as a no-op).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import analyze
from repro.benchprogs import benchmark, benchmark_names
from repro.service.serialize import result_fingerprint

#: v2: the table fingerprint is the *semantic* fingerprint
#: (result_fingerprint — β values only); per-program rows gained the
#: differential-engine counters and scheduler provenance.
#: v3: runs record the execution-tier provenance — the active arena
#: kernel (python/numpy/native) plus interpreter and numpy versions —
#: so a trajectory file says *what* produced its numbers.
SCHEMA = 3

#: A run slower than the reference by more than this factor draws a
#: WARNING line in the comparison (advisory — CI hardware varies).
WALL_REGRESSION_FACTOR = 1.20


def measure_program(name: str) -> dict:
    """One full analysis of one benchmark program."""
    bp = benchmark(name)
    start = time.perf_counter()
    analysis = analyze(bp.source, bp.query, input_types=bp.input_types)
    wall = time.perf_counter() - start
    stats = analysis.stats
    hits = getattr(stats, "opcache_hits", 0)
    misses = getattr(stats, "opcache_misses", 0)
    return {
        "wall_time": round(wall, 4),
        "arena_compiles": getattr(stats, "arena_compiles", 0),
        "procedure_iterations": stats.procedure_iterations,
        "clause_iterations": stats.clause_iterations,
        "clause_iterations_skipped": getattr(
            stats, "clause_iterations_skipped", 0),
        "callsite_resumptions": getattr(stats, "callsite_resumptions", 0),
        "scheduler": getattr(stats, "scheduler", "lifo"),
        "opcache_hits": hits,
        "opcache_misses": misses,
        "opcache_hit_rate": (round(hits / (hits + misses), 4)
                             if hits + misses else None),
        "table_fingerprint": result_fingerprint(analysis.result),
    }


def run_suite(programs) -> dict:
    try:
        from repro.typegraph import opcache
        cache_enabled = opcache.enabled()
    except ImportError:  # pre-PR2 checkouts measured as baselines
        cache_enabled = False
    try:
        from repro.typegraph import arena
        arena_enabled = arena.enabled()
    except ImportError:  # pre-PR4 checkouts measured as baselines
        arena_enabled = False
    try:
        from repro.fixpoint.engine import AnalysisConfig, \
            _env_differential
        env = _env_differential()
        differential = (AnalysisConfig().differential if env is None
                        else env)
    except ImportError:  # pre-PR3 checkouts measured as baselines
        differential = False
    results = {}
    for name in programs:
        results[name] = measure_program(name)
        print("  %-4s %8.3fs  proc=%-6d clause=%-6d skipped=%-6d "
              "resumed=%-5d arena=%-5d hit-rate=%s"
              % (name, results[name]["wall_time"],
                 results[name]["procedure_iterations"],
                 results[name]["clause_iterations"],
                 results[name]["clause_iterations_skipped"],
                 results[name]["callsite_resumptions"],
                 results[name]["arena_compiles"],
                 results[name]["opcache_hit_rate"]),
              file=sys.stderr)
    return {
        "programs": results,
        "total_wall_time": round(sum(r["wall_time"]
                                     for r in results.values()), 4),
        "total_clause_iterations": sum(r["clause_iterations"]
                                       for r in results.values()),
        "total_clause_iterations_skipped": sum(
            r["clause_iterations_skipped"] for r in results.values()),
        "total_arena_compiles": sum(r["arena_compiles"]
                                    for r in results.values()),
        "opcache_enabled": cache_enabled,
        "arena_enabled": arena_enabled,
        "differential_enabled": differential,
        "arena_kernel": _active_kernel(),
        "python": platform.python_version(),
        "python_version": platform.python_version(),
        "numpy_version": _numpy_version(),
    }


def _active_kernel():
    try:
        from repro.typegraph import arena
        return arena.kernel()
    except ImportError:  # pre-PR8 checkouts measured as baselines
        return None


def _numpy_version():
    try:
        import numpy
        return numpy.__version__
    except ImportError:
        return None


def print_comparison(run: dict, reference: dict, ref_name: str) -> bool:
    """Side-by-side table; returns True when fingerprints all match."""
    ref_programs = reference.get("programs", {})
    print("\n%-6s %10s %12s %9s %10s  %s"
          % ("prog", "wall(s)", "%s(s)" % ref_name, "speedup",
             "hit-rate", "table"))
    fingerprints_ok = True
    for name, row in run["programs"].items():
        ref = ref_programs.get(name)
        if ref is None:
            print("%-6s %10.3f %12s" % (name, row["wall_time"], "-"))
            continue
        speedup = (ref["wall_time"] / row["wall_time"]
                   if row["wall_time"] else float("inf"))
        same = (row["table_fingerprint"] == ref.get("table_fingerprint"))
        fingerprints_ok &= same or ref.get("table_fingerprint") is None
        print("%-6s %10.3f %12.3f %8.2fx %10s  %s"
              % (name, row["wall_time"], ref["wall_time"], speedup,
                 row["opcache_hit_rate"],
                 "same" if same else "DIFFERENT"))
    # Aggregates over the programs both sides actually measured, so a
    # --programs subset run compares apples to apples.
    common = [name for name in run["programs"] if name in ref_programs]
    if common:
        run_total = sum(run["programs"][n]["wall_time"] for n in common)
        ref_total = sum(ref_programs[n]["wall_time"] for n in common)
        if run_total and ref_total:
            print("%-6s %10.3f %12.3f %8.2fx   (aggregate over %d "
                  "common programs, vs %s)"
                  % ("TOTAL", run_total, ref_total,
                     ref_total / run_total, len(common), ref_name))
            if run_total > ref_total * WALL_REGRESSION_FACTOR:
                print("WARNING: aggregate wall time regressed more than "
                      "%d%% vs %s (%.3fs > %.3fs) — advisory only"
                      % (round((WALL_REGRESSION_FACTOR - 1) * 100),
                         ref_name, run_total, ref_total),
                      file=sys.stderr)
        run_clauses = sum(run["programs"][n]["clause_iterations"]
                          for n in common)
        ref_clauses = sum(ref_programs[n].get("clause_iterations", 0)
                          for n in common)
        if run_clauses and ref_clauses:
            print("%-6s %10d %12d %8.2fx   (executed clause iterations)"
                  % ("CLAUSE", run_clauses, ref_clauses,
                     ref_clauses / run_clauses))
    return fingerprints_ok


def render_server_bench(path: Path) -> bool:
    """Pretty-print a BENCH_pr5.json server-throughput report; returns
    False (a failure) on fingerprint mismatches recorded in it."""
    bench = json.loads(path.read_text())
    oneshot = bench["oneshot_cli"]
    warm = bench["server_warm"]
    latency = warm["latency"]
    coalescing = bench["coalescing"]
    print("\n== server throughput (%s) ==" % path)
    print("%-14s %10s %10s %10s"
          % ("regime", "req/s", "requests", "wall(s)"))
    print("%-14s %10.2f %10d %10.2f"
          % ("one-shot CLI", oneshot["requests_per_second"],
             oneshot["requests"], oneshot["total_seconds"]))
    print("%-14s %10.2f %10d %10.2f   (%d clients, p50=%ss, "
          "p95=%ss, cache hit rate %s)"
          % ("warm server", warm["requests_per_second"],
             warm["requests"], warm["total_seconds"],
             warm["clients"], latency["p50"], latency["p95"],
             warm["cache_hit_rate"]))
    print("warm speedup vs one-shot: %.2fx"
          % bench["warm_speedup_vs_oneshot"])
    print("coalescing: %d concurrent duplicates -> %d execution(s), "
          "%d riders"
          % (coalescing["clients"], coalescing["analyses_executed"],
             coalescing["coalesced"]))
    ok = (warm["fingerprints_identical"]
          and not bench.get("fingerprint_mismatches")
          and coalescing["analyses_executed"] == 1)
    if not ok:
        print("ERROR: %s records fingerprint/coalescing failures"
              % path, file=sys.stderr)
    return ok


def render_router_bench(path: Path) -> bool:
    """Pretty-print a BENCH_pr6.json router-scaling report; returns
    False (a failure) on fingerprint mismatches or load errors
    recorded in it."""
    bench = json.loads(path.read_text())
    hotset = bench["hotset"]
    sweep = bench["scaling"]["shards"]
    speedups = bench["scaling"]["speedup_vs_1"]
    failover = bench["failover"]
    print("\n== cluster scaling (%s) ==" % path)
    print("hot set: %d programs over %s (zipf s=%s), %d clients, "
          "%d-entry shard caches, %ss/point"
          % (hotset["programs"], hotset["base"], hotset["zipf_s"],
             hotset["clients"], hotset["max_memory_entries_per_shard"],
             hotset["seconds_per_point"]))
    print("%-10s %10s %9s %10s %10s %10s %9s"
          % ("shards", "req/s", "speedup", "hit-rate", "p50(s)",
             "p95(s)", "analyses"))
    for count in sorted(sweep, key=int):
        point = sweep[count]
        print("%-10s %10.1f %8.2fx %10s %10s %10s %9d"
              % (count, point["requests_per_second"],
                 speedups[count], point["cache_hit_rate"],
                 point["latency"]["p50"], point["latency"]["p95"],
                 point["analyses_executed"]))
    print("failover: SIGKILL %s mid-run -> %d requests, %d errors, "
          "%d failovers, status after: %s"
          % (failover["killed_shard"], failover["requests"],
             len(failover["errors"]), failover["failovers"],
             failover["shard_status_after"]))
    load_errors = [err for count in sweep
                   for err in sweep[count]["errors"]]
    ok = (not bench.get("fingerprint_mismatches")
          and not load_errors and not failover["errors"]
          and failover["failovers"] >= 1)
    if not ok:
        print("ERROR: %s records fingerprint/failover/load failures"
              % path, file=sys.stderr)
    return ok


def render_chaos_bench(path: Path) -> bool:
    """Pretty-print a BENCH_pr7.json self-healing/chaos report; returns
    False (a failure) on recorded errors, mismatches, missing
    restarts/membership churn, or a failover p95 that replication did
    not improve."""
    bench = json.loads(path.read_text())
    hotset = bench["hotset"]
    chaos = bench["chaos"]
    ab = bench["failover_ab"]
    print("\n== self-healing chaos (%s) ==" % path)
    print("hot set: %d programs over %s (zipf s=%s), %d clients, "
          "%ss run, seeded shard faults: %s"
          % (hotset["programs"], hotset["base"], hotset["zipf_s"],
             hotset["clients"], hotset["seconds"],
             chaos["shard_faults"]["faults"]))
    print("load     : %d requests, %d errors, %.1f req/s "
          "(p50=%ss p95=%ss)"
          % (chaos["requests"], len(chaos["errors"]),
             chaos["requests_per_second"], chaos["latency"]["p50"],
             chaos["latency"]["p95"]))
    print("healing  : SIGKILL %s -> %d restart(s) (%d failed, "
          "%d breaker trips); %d add(s), %d remove(s); %d failover(s)"
          % (chaos["killed_shard"], chaos["restarts"],
             chaos["restart_failures"], chaos["breaker_trips"],
             chaos["shards_added"], chaos["shards_removed"],
             chaos["failovers"]))
    print("faults   : injected by shards: %s"
          % (chaos["faults_injected_by_shards"] or "none"))
    for event in chaos["membership_log"]:
        print("  membership: %s" % event)
    for replicate in (1, 2):
        point = ab["replicate_%d" % replicate]
        print("failover first-touch (replicate=%d): p50=%ss p95=%ss "
              "over %d keys of dead shard %s"
              % (replicate, point["first_touch_p50"],
                 point["first_touch_p95"], point["victim_keys"],
                 point["victim"]))
    print("replication improves failover p95 by x%s"
          % ab["p95_improvement"])
    ok = (not bench.get("fingerprint_mismatches")
          and not chaos["errors"]
          and chaos["restarts"] >= 1
          and chaos["shards_added"] >= 1
          and chaos["shards_removed"] >= 1
          and ab["replicate_2"]["first_touch_p95"]
          < ab["replicate_1"]["first_touch_p95"])
    # PR 9 phases (absent from BENCH_pr7-era reports)
    router_kill = bench.get("router_kill")
    if router_kill is not None:
        print("router kill: %d requests, %d errors, standby "
              "promoted=%s (%d sync pull(s)), shards after: %s"
              % (router_kill["requests"], len(router_kill["errors"]),
                 router_kill["standby_promoted"],
                 router_kill["standby_sync_pulls"],
                 router_kill["standby_shards"]))
        ok = (ok and not router_kill["errors"]
              and router_kill["standby_promoted"])
    anti_entropy = bench.get("anti_entropy_ab")
    if anti_entropy is not None:
        for variant in ("off", "on"):
            point = anti_entropy["anti_entropy_%s" % variant]
            print("anti-entropy %-3s: first-touch p50=%ss p95=%ss "
                  "over %d restarted keys (%d repair(s), repair "
                  "pass %ss after kill)"
                  % (variant, point["first_touch_p50"],
                     point["first_touch_p95"], point["victim_keys"],
                     point["anti_entropy_repairs"],
                     point["repair_seconds"]))
        print("anti-entropy improves restart first-touch p95 by x%s"
              % anti_entropy["p95_improvement"])
        ok = (ok
              and anti_entropy["anti_entropy_on"]
              ["anti_entropy_repairs"] >= 1
              and anti_entropy["anti_entropy_on"]["first_touch_p95"]
              < anti_entropy["anti_entropy_off"]["first_touch_p95"])
    if not ok:
        print("ERROR: %s records chaos-phase failures" % path,
              file=sys.stderr)
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the Table-3 benchmark suite and report "
                    "timings, iteration counts, and cache hit rates.")
    parser.add_argument("--programs", nargs="*", metavar="NAME",
                        help="subset of benchmark programs (default all)")
    parser.add_argument("--label", default=None,
                        help="label recorded with the run")
    parser.add_argument("--out", metavar="FILE",
                        help="write this run's raw measurements as JSON")
    parser.add_argument("--baseline", metavar="FILE", nargs="+",
                        help="compare against the baseline (and current) "
                             "sections of one or more trajectory files "
                             "(the suite runs once); non-blocking")
    parser.add_argument("--write-bench", metavar="FILE",
                        help="update a trajectory file's 'current' section "
                             "with this run (keeps its baseline)")
    parser.add_argument("--as-baseline", action="store_true",
                        help="with --write-bench: record this run as the "
                             "'baseline' section instead")
    parser.add_argument("--strict", action="store_true",
                        help="accepted for compatibility; fingerprint "
                             "divergence always exits non-zero now")
    parser.add_argument("--expect-kernel", metavar="TIER",
                        choices=("python", "numpy", "native"),
                        help="fail unless the active arena kernel tier "
                             "is TIER (CI guards that a matrix job "
                             "measured what it claims)")
    parser.add_argument("--server", metavar="FILE",
                        help="render a BENCH_pr5.json server "
                             "throughput/latency report (produced by "
                             "benchmarks/bench_server.py); given "
                             "alone, skips running the suite")
    parser.add_argument("--router", metavar="FILE",
                        help="render a BENCH_pr6.json cluster scaling "
                             "/ failover report (produced by "
                             "benchmarks/bench_server.py --mode "
                             "router); given alone, skips running "
                             "the suite")
    parser.add_argument("--chaos", metavar="FILE",
                        help="render a BENCH_pr7.json self-healing / "
                             "chaos report (produced by "
                             "benchmarks/bench_server.py --mode "
                             "chaos); given alone, skips running "
                             "the suite")
    args = parser.parse_args(argv)

    if args.expect_kernel:
        active = _active_kernel()
        if active != args.expect_kernel:
            print("ERROR: expected arena kernel %r but the active tier "
                  "is %r" % (args.expect_kernel, active),
                  file=sys.stderr)
            return 1

    if (args.server or args.router or args.chaos) and not (
            args.baseline or args.write_bench or args.out
            or args.programs):
        ok = True
        if args.server:
            ok &= render_server_bench(Path(args.server))
        if args.router:
            ok &= render_router_bench(Path(args.router))
        if args.chaos:
            ok &= render_chaos_bench(Path(args.chaos))
        return 0 if ok else 1

    programs = args.programs or benchmark_names(include_variants=False)
    print("running %d benchmark programs..." % len(programs),
          file=sys.stderr)
    run = run_suite(programs)
    if args.label:
        run["label"] = args.label

    print("\naggregate wall time: %.3fs" % run["total_wall_time"])

    if args.out:
        Path(args.out).write_text(json.dumps(run, indent=2, sort_keys=True)
                                  + "\n")
        print("wrote %s" % args.out, file=sys.stderr)

    fingerprints_ok = True
    for baseline_file in args.baseline or ():
        bench = json.loads(Path(baseline_file).read_text())
        print("\n== vs %s ==" % baseline_file)
        ref_schema = bench.get("schema")
        if not isinstance(ref_schema, int) or ref_schema < 2:
            # Schema 1 fingerprints with a different definition (it
            # hashed the full encode_result payload), so every row
            # would read DIFFERENT on bit-identical tables.  Schemas
            # >= 2 share the semantic fingerprint and stay comparable
            # (v3 only added tier/version provenance fields).
            print("NOTE: %s has schema %r, this script compares "
                  "schemas >= 2 — fingerprints are not comparable; "
                  "skipping" % (baseline_file, ref_schema),
                  file=sys.stderr)
            continue
        if "baseline" in bench:
            fingerprints_ok &= print_comparison(run, bench["baseline"],
                                                "baseline")
        if "current" in bench:
            fingerprints_ok &= print_comparison(run, bench["current"],
                                                "committed")

    if args.write_bench:
        path = Path(args.write_bench)
        bench = (json.loads(path.read_text()) if path.exists()
                 else {"schema": SCHEMA})
        bench["schema"] = SCHEMA
        bench["baseline" if args.as_baseline else "current"] = run
        baseline = bench.get("baseline")
        current = bench.get("current")
        if baseline and current and current.get("total_wall_time"):
            bench["aggregate_speedup"] = round(
                baseline["total_wall_time"] / current["total_wall_time"], 2)
        path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
        print("wrote %s" % path, file=sys.stderr)

    if args.server:
        fingerprints_ok &= render_server_bench(Path(args.server))
    if args.router:
        fingerprints_ok &= render_router_bench(Path(args.router))
    if args.chaos:
        fingerprints_ok &= render_chaos_bench(Path(args.chaos))

    if not fingerprints_ok:
        print("ERROR: analysis tables diverge from the baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
