"""Using inferred types to specialize clause indexing.

The paper's motivating example (Section 1): for

    insert(E, void, tree(void,E,void)).
    insert(E, tree(L,V,R), ...) :- ...

knowing that the second argument has type ``T ::= void | tree(T,Any,T)``
lets the compiler select clauses with at most two tests.  This example
runs the analysis on the insert program, extracts the grammar and the
tags, and prints the clause-selection table a compiler would build.

Run:  python examples/compiler_specialization.py
"""

from repro import analyze
from repro.analysis.tags import tag_of_grammar
from repro.typegraph import FuncAlt, g_any, member

SOURCE = """
insert(E, void, tree(void, E, void)).
insert(E, tree(L, V, R), tree(Ln, V, R)) :- E < V, insert(E, L, Ln).
insert(E, tree(L, V, R), tree(L, V, Rn)) :- E > V, insert(E, R, Rn).

build([], T, T).
build([E|Es], T0, T) :- insert(E, T0, T1), build(Es, T1, T).

make_tree(Es, T) :- build(Es, void, T).
"""


def main() -> None:
    analysis = analyze(SOURCE, ("make_tree", 2))

    # The tree type is inferred for insert's second argument exactly as
    # the introduction promises: T ::= void | tree(T,Any,T).
    collapsed = analysis.result.collapsed_for(("insert", 3))
    beta_in, beta_out = collapsed
    from repro.domains.pattern import value_of
    tree_in = value_of(beta_in, beta_in.sv[1], analysis.domain, {})
    print("insert/3 second argument (call time):")
    print(tree_in)
    print()

    # Clause selection: with the type known, which clauses can match?
    alternatives = sorted(
        alt.name for alt in tree_in.root_alts
        if isinstance(alt, FuncAlt))
    print("possible principal functors at call time:", alternatives)
    print("=> a switch on the functor needs %d cases, no full "
          "unification required" % len(alternatives))
    print()

    # Tag view (Section 9): what the code generator gets per argument.
    for pred in analysis.analyzed_predicates():
        tags = analysis.output_tags().get(pred)
        print("%-14s output tags: %s" % ("%s/%d" % pred, tags))

    # The same analysis under the principal-functor baseline loses the
    # recursive structure — the reason the paper needs type graphs.
    baseline = analyze(SOURCE, ("make_tree", 2), baseline=True)
    print()
    print("baseline (principal functors only) output tags:",
          baseline.output_tags().get(("make_tree", 2)))
    print("type-graph analysis output tags:               ",
          analysis.output_tags().get(("make_tree", 2)))


if __name__ == "__main__":
    main()
