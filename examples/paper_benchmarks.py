"""Run the paper's benchmark suite end to end.

Analyzes every §9 workload (KA QU PR PE CS DS PG RE BR PL AR AR1 and
the L-variants), printing a Table-3-style summary plus the inferred
type of each query's first argument.  Pass benchmark names as
command-line arguments to restrict the run; RE is slow without an
or-width cap, so this driver analyses it with the "(5)" restriction by
default (as the paper's Table 3 also reports).

Run:  python examples/paper_benchmarks.py QU PG AR AR1
      python examples/paper_benchmarks.py          # whole suite
"""

import sys

from repro import AnalysisConfig, analyze
from repro.analysis import format_table
from repro.benchprogs import benchmark, benchmark_names
from repro.domains.pattern import PAT_BOTTOM, value_of

SLOW = {"RE"}


def run_one(name):
    bp = benchmark(name)
    cap = 5 if name in SLOW else None
    analysis = analyze(bp.source, bp.query, input_types=bp.input_types,
                       config=AnalysisConfig(max_or_width=cap))
    out = analysis.output
    if out is PAT_BOTTOM:
        first_arg = "<no success>"
    else:
        grammar = value_of(out, out.sv[0], analysis.domain, {})
        first_arg = str(grammar).replace("\n", " ; ")
        if len(first_arg) > 60:
            first_arg = first_arg[:57] + "..."
    return [name,
            "%s/%d" % bp.query,
            round(analysis.wall_time, 2),
            analysis.stats.procedure_iterations,
            analysis.stats.clause_iterations,
            first_arg]


def main() -> None:
    names = [n.upper() for n in sys.argv[1:]] or benchmark_names()
    rows = [run_one(name) for name in names]
    print(format_table(
        ["program", "query", "time(s)", "proc-it", "clause-it",
         "first argument type"],
        rows, title="Paper benchmark suite"))


if __name__ == "__main__":
    main()
