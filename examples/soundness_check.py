"""Cross-checking the analysis against concrete execution.

The package ships its own SLD interpreter (the concrete semantics of
§4).  This example demonstrates the soundness property the paper
proves: every concrete success substitution is described by the
inferred output pattern.  It also shows the §6.8 correspondence by
recognizing answers with the *monadic logic program* generated from
the inferred type.

Run:  python examples/soundness_check.py
"""

from repro import analyze, parse_program, parse_term
from repro.domains.pattern import value_of
from repro.prolog.interpreter import SolveLimits, Solver, resolve
from repro.prolog.terms import Struct, format_term
from repro.typegraph import member
from repro.typegraph.views import to_monadic_program

SOURCE = """
process(X,Y) :- process(X,0,Y).
process([],X,X).
process([c(X1)|Y],Acc,X) :- process(Y,c(X1,Acc),X).
process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
"""

QUERIES = [
    "process([], R)",
    "process([c(1)], R)",
    "process([c(1),d(2)], R)",
    "process([d(9),d(8),c(7),c(6)], R)",
]


def main() -> None:
    program = parse_program(SOURCE)
    analysis = analyze(program, ("process", 2))
    out = analysis.output
    result_type = value_of(out, out.sv[1], analysis.domain, {})
    print("inferred type of the result argument:")
    print(result_type)
    print()

    # Recognize concrete answers three ways: membership on the grammar,
    # the tree automaton, and the generated monadic Prolog program.
    monadic = to_monadic_program(result_type)
    monadic_solver = Solver(monadic, SolveLimits(max_solutions=1))
    solver = Solver(program)

    for query_text in QUERIES:
        goal = parse_term(query_text)
        for bindings in solver.solve(goal):
            answer = resolve(goal.args[1], bindings)
            in_grammar = member(answer, result_type)
            in_monadic = bool(list(monadic_solver.solve(
                Struct("accept", (answer,)))))
            print("%-36s R = %-24s grammar:%s monadic:%s"
                  % (query_text, format_term(answer),
                     in_grammar, in_monadic))
            assert in_grammar and in_monadic, "soundness violated!"
    print()
    print("every concrete answer is in the inferred type — "
          "the soundness property holds on these runs.")


if __name__ == "__main__":
    main()
