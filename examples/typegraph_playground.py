"""Working with the type-graph domain directly.

Shows the §6 operations (union, intersection, inclusion, widening) and
the §6.7–6.8 views (tree automata, monadic logic programs) without
running a whole program analysis.

Run:  python examples/typegraph_playground.py
"""

from repro import parse_term
from repro.typegraph import (g_any, g_atom, g_functor, g_int, g_intersect,
                             g_le, g_list_of, g_union, g_widen, member,
                             monadic_text, parse_rules, to_automaton)


def main() -> None:
    # Types are regular tree grammars; write them as the paper does.
    binary_tree = parse_rules("""
    T ::= void | tree(T,Any,T)
    """)
    print("a binary tree type:")
    print(binary_tree)
    print()

    # Membership: which terms belong to the denotation (Section 6.2)?
    for text in ("void", "tree(void,42,void)",
                 "tree(tree(void,a,void),b,void)", "leaf(x)"):
        term = parse_term(text)
        print("  %-32s in T? %s" % (text, member(term, binary_tree)))
    print()

    # Lattice operations (Section 6.9).
    int_list = g_list_of(g_int())
    atom_list = g_list_of(g_union(g_atom("a"), g_atom("b")))
    print("union of int-lists and ab-lists:")
    print(g_union(int_list, atom_list))
    print("intersection (only [] survives element-wise):")
    print(g_intersect(int_list, atom_list))
    print("int-list <= any-list?", g_le(int_list, g_list_of(g_any())))
    print()

    # The widening (Section 7): growing lists converge to the cycle.
    print("widening a growing chain of list approximations:")
    current = g_atom("[]")
    for step in range(5):
        grown = g_union(g_atom("[]"),
                        g_functor(".", [g_int(), current]))
        widened = g_widen(current, grown)
        print("  step %d: %s" % (step, str(widened).replace("\n", "  ")))
        if widened == current:
            print("  (stationary)")
            break
        current = widened
    print()

    # Views: deterministic top-down tree automaton (Section 6.7)...
    automaton = to_automaton(binary_tree)
    print("automaton: %d states, deterministic=%s"
          % (automaton.num_states, automaton.is_deterministic()))
    print("accepts tree(void,1,void):",
          automaton.accepts(parse_term("tree(void,1,void)")))
    print()

    # ...and the monadic logic program (Section 6.8) — runnable Prolog.
    print("the same type as a monadic logic program:")
    print(monadic_text(binary_tree))


if __name__ == "__main__":
    main()
