"""Quickstart: infer types for a small Prolog program.

Run:  python examples/quickstart.py
"""

from repro import analyze

SOURCE = """
% naive reverse, the paper's opening example (Section 2)
nreverse([], []).
nreverse([F|T], Res) :- nreverse(T, Trev), append(Trev, [F], Res).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""


def main() -> None:
    # Analyze the program for the input pattern nreverse(Any, Any).
    analysis = analyze(SOURCE, ("nreverse", 2))

    # The output pattern, printed in the paper's grammar notation:
    #   nreverse/2:
    #     arg1 = T ::= [] | cons(Any,T)
    #     arg2 = T ::= [] | cons(Any,T)
    print(analysis.grammar_text())
    print()

    # Per-argument grammars are first-class objects.
    first = analysis.output_grammar(0)
    print("argument 1 denotes lists?", end=" ")
    from repro.typegraph import g_is_list
    print(g_is_list(first))

    # The analysis also tabulates every (input, predicate, output)
    # tuple it needed — including the derived fact that append/3 is
    # always called with a list as its first argument.
    print()
    print("append/3, as used by nreverse:")
    print(analysis.grammar_text(pred=("append", 3)))

    # Compiler-facing tags (Section 9): LI = "surely a proper list".
    print()
    print("output tags:", analysis.output_tags())
    print("analysis took %.1f ms, %d procedure iterations"
          % (analysis.wall_time * 1000,
             analysis.stats.procedure_iterations))


if __name__ == "__main__":
    main()
