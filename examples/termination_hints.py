"""Termination hints from inferred types.

The paper motivates type graphs beyond compilation: "type graphs are
used for a variety of other analyses such as termination and
compile-time garbage collection" (§10, citing Verschaetse & De
Schreye).  This example shows the classic list-norm argument built on
the analysis: a self-recursive procedure terminates on a call class if
some argument

  1. is a *proper list* at call time (from the inferred input type —
     this is where the type analysis is load-bearing: without the list
     type the norm is not well-founded), and
  2. structurally decreases in every recursive call (the head takes
     ``[X|Xs]`` apart and the recursion receives ``Xs``).

Run:  python examples/termination_hints.py
"""

from repro import analyze, parse_program
from repro.analysis import build_callgraph, classify_procedures
from repro.domains.pattern import PAT_BOTTOM, value_of
from repro.prolog.normalize import NBuild, NCall, normalize_program
from repro.typegraph import g_is_list

SOURCE = """
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).

nreverse([], []).
nreverse([F|T], R) :- nreverse(T, TR), append(TR, [F], R).

% walk/1 recurses on an argument that is NOT a shrinking list, so no
% list-norm argument applies even though the analysis runs fine:
walk(stop).
walk(X) :- step(X, Y), walk(Y).
step(a, b).
step(b, stop).

main(L, R) :- nreverse(L, R), walk(a).
"""


def decreasing_arguments(norm_clause):
    """Argument positions i where the head deconstructs X_i = [_|T]
    and the recursive call receives T at position i."""
    pred = norm_clause.pred
    cons_tail = {}  # head var index -> tail var index
    for goal in norm_clause.body:
        if isinstance(goal, NBuild) and goal.name == "." \
                and goal.v < pred[1]:
            cons_tail[goal.v] = goal.args[1]
    decreasing = set()
    for goal in norm_clause.body:
        if isinstance(goal, NCall) and goal.pred == pred:
            for i, arg in enumerate(goal.args):
                if cons_tail.get(i) == arg:
                    decreasing.add(i)
    return decreasing


def main() -> None:
    program = parse_program(SOURCE)
    analysis = analyze(program, ("main", 2), input_types=["list", "any"])
    norm = normalize_program(program)
    classes = classify_procedures(build_callgraph(program))

    for pred, kind in sorted(classes.items()):
        if kind not in ("tail", "local"):
            continue
        collapsed = analysis.result.collapsed_for(pred)
        if collapsed is None or collapsed[0] is PAT_BOTTOM:
            print("%s/%d: not analyzed (unreachable from main)" % pred)
            continue
        beta_in, _ = collapsed
        # arguments that shrink in every recursive clause
        shrinking = None
        for clause in norm.procedures[pred].clauses:
            if any(isinstance(g, NCall) and g.pred == pred
                   for g in clause.body):
                dec = decreasing_arguments(clause)
                shrinking = dec if shrinking is None \
                    else shrinking & dec
        if not shrinking:
            print("%s/%d: no structurally decreasing argument" % pred)
            continue
        # of those, which are proper lists at call time?
        proved = []
        for i in sorted(shrinking):
            grammar = value_of(beta_in, beta_in.sv[i],
                               analysis.domain, {})
            if g_is_list(grammar):
                proved.append(i)
        if proved:
            print("%s/%d: TERMINATES on this call class "
                  "(list-norm decreases on argument %s)"
                  % (pred[0], pred[1],
                     ", ".join(str(i + 1) for i in proved)))
        else:
            print("%s/%d: decreasing argument exists but its type is "
                  "not a list — no norm argument" % pred)


if __name__ == "__main__":
    main()
