"""Table 2 — Syntactic Form of the Programs.

Tail recursive / locally recursive / mutually recursive /
non-recursive procedure counts per benchmark, next to the paper's
values.
"""

from repro.analysis import build_callgraph, format_table, \
    recursion_summary
from repro.benchprogs import benchmark_names

from .conftest import cached_program, report

PAPER_TABLE2 = {
    # name: (tail, local, mutual, non-recursive)
    "KA": (12, 0, 7, 25),
    "QU": (4, 0, 0, 1),
    "PR": (12, 5, 8, 27),
    "PE": (6, 0, 4, 9),
    "CS": (9, 1, 2, 29),
    "DS": (14, 0, 0, 14),
    "PG": (6, 0, 0, 4),
    "RE": (6, 0, 16, 20),
    "BR": (11, 1, 0, 8),
    "PL": (4, 0, 0, 9),
}


def compute_table2():
    rows = []
    for name in benchmark_names(include_variants=False):
        graph = build_callgraph(cached_program(name))
        summary = recursion_summary(graph)
        paper = PAPER_TABLE2[name]
        rows.append([name,
                     summary.tail_recursive, paper[0],
                     summary.locally_recursive, paper[1],
                     summary.mutually_recursive, paper[2],
                     summary.non_recursive, paper[3]])
    return rows


def test_table2_recursion(benchmark):
    rows = benchmark(compute_table2)
    print()
    report(format_table(
        ["program", "tail", "(paper)", "local", "(paper)",
         "mutual", "(paper)", "non-rec", "(paper)"],
        rows,
        title="Table 2: Syntactic Form of the Programs (ours vs paper)"))
