"""Union-find micro-benchmark (PR 4 satellite).

``SubstBuilder.find`` moved from two-pass full path compression to
single-pass path halving, and the leaf-leaf case of ``unify`` unions
by size.  This harness measures the effect on the access pattern that
hurts an unbalanced forest most: build long chains by merging
variables pairwise, then hammer ``find`` from the deep ends.

The asserted bound is deliberately loose (the win is a constant
factor on CPython); the printed table is the informative part.
"""

import time

from repro.domains.leaf import TrivialLeafDomain
from repro.domains.pattern import SubstBuilder, _UNode

from .conftest import report

CHAIN = 2000
ROUNDS = 60


def _legacy_find(node):
    """The pre-PR4 implementation: walk to the root, then a second
    pass pointing every node at it."""
    root = node
    while root.parent is not None:
        root = root.parent
    while node.parent is not None:
        node.parent, node = root, node.parent
    return root


def _build_chain(n):
    """A worst-case parent chain (as produced by adversarial unify
    orders before union-by-size)."""
    nodes = [_UNode(value="v%d" % i) for i in range(n)]
    for i in range(n - 1):
        nodes[i + 1].parent = nodes[i]
        nodes[i + 1].args = None
        nodes[i + 1].value = None
    return nodes


def _hammer(find, nodes):
    start = time.perf_counter()
    for _ in range(ROUNDS):
        # touch the deep third of the chain, deepest first
        for node in nodes[-CHAIN // 3:][::-1]:
            find(node)
    return time.perf_counter() - start


def test_path_halving_find(benchmark_report=None):
    halving = _hammer(SubstBuilder.find, _build_chain(CHAIN))
    legacy = _hammer(_legacy_find, _build_chain(CHAIN))

    # Union-by-size effect: merge leaves pairwise in the adversarial
    # order (always union the 1-element class *into* the growing one
    # via unify) and measure the resulting depth distribution.
    domain = TrivialLeafDomain()
    builder = SubstBuilder(domain)
    leaves = [builder.fresh_leaf() for _ in range(CHAIN)]
    acc = leaves[0]
    for leaf in leaves[1:]:
        assert builder.unify(acc, leaf)
    max_depth = 0
    for leaf in leaves:
        depth = 0
        node = leaf
        while node.parent is not None:
            node = node.parent
            depth += 1
        max_depth = max(max_depth, depth)

    report("Union-find (chain=%d, rounds=%d):\n"
           "  find with path halving   %.4fs\n"
           "  find with full two-pass  %.4fs  (%.2fx)\n"
           "  max forest depth after %d size-weighted leaf unions: %d"
           % (CHAIN, ROUNDS, halving, legacy,
              legacy / halving if halving else float("inf"),
              CHAIN, max_depth))

    # Halving must not be slower than the legacy two-pass by more than
    # noise, and union-by-size must keep the forest shallow.
    assert halving <= legacy * 1.5
    assert max_depth <= 2
