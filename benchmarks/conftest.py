"""Shared infrastructure for the experiment harnesses.

Analyses are cached per session so the table harnesses (3, 4, 5) do
not re-run the same fixpoints; the ``benchmark`` fixture then times
the operation each table is about.
"""

import pytest

from repro import AnalysisConfig, analyze, parse_program
from repro.benchprogs import benchmark as get_benchmark

_CACHE = {}


def cached_analysis(name, baseline=False, max_or_width=None):
    """Session-cached TypeAnalysis for one workload."""
    key = (name, baseline, max_or_width)
    if key not in _CACHE:
        bp = get_benchmark(name)
        config = AnalysisConfig(max_or_width=max_or_width)
        _CACHE[key] = analyze(bp.source, bp.query,
                              input_types=bp.input_types,
                              config=config, baseline=baseline)
    return _CACHE[key]


def cached_program(name):
    key = ("program", name)
    if key not in _CACHE:
        _CACHE[key] = parse_program(get_benchmark(name).source)
    return _CACHE[key]


@pytest.fixture(scope="session")
def analysis_cache():
    return cached_analysis


@pytest.fixture(scope="session")
def program_cache():
    return cached_program


# -- reporting ---------------------------------------------------------------
# pytest captures stdout of passing tests, so tables printed by the
# harnesses are replayed in the terminal summary (and thus appear in
# tee'd logs of `pytest benchmarks/ --benchmark-only`).

REPORTS = []


def report(text):
    """Print a result block now and replay it in the summary."""
    print(text)
    REPORTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for block in REPORTS:
        terminalreporter.write_line("")
        for line in str(block).splitlines():
            terminalreporter.write_line(line)
