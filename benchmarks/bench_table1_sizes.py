"""Table 1 — Sizes of the Programs.

Reproduces the paper's columns: number of procedures, number of
clauses, number of program points, number of goals, static call tree
size — for the ten benchmark programs.  Absolute values differ from
the paper because the original benchmark files are lost and ours are
reconstructions (see DESIGN.md); the relative shape (QU/PG smallest,
PE/PR/RE largest) is asserted in tests/test_benchprogs.py.
"""

from repro.analysis import format_table, program_metrics
from repro.benchprogs import benchmark, benchmark_names

from .conftest import cached_program, report

PAPER_TABLE1 = {
    # name: (procedures, clauses, program points, goals, static call tree)
    "KA": (44, 82, 475, 84, 73),
    "QU": (5, 9, 38, 8, 5),
    "PR": (52, 158, 742, 130, 75),
    "PE": (19, 168, 808, 90, 80),
    "CS": (32, 55, 336, 57, 46),
    "DS": (28, 52, 296, 60, 47),
    "PG": (10, 18, 93, 17, 11),
    "RE": (42, 163, 820, 168, 144),
    "BR": (20, 45, 207, 37, 21),
    "PL": (13, 26, 94, 29, 25),
}


def compute_table1():
    rows = []
    for name in benchmark_names(include_variants=False):
        program = cached_program(name)
        entry = benchmark(name).query
        metrics = program_metrics(program, entry_points=[entry])
        paper = PAPER_TABLE1[name]
        rows.append([name, metrics.procedures, paper[0],
                     metrics.clauses, paper[1],
                     metrics.program_points, paper[2],
                     metrics.goals, paper[3],
                     metrics.static_call_tree, paper[4]])
    return rows


def test_table1_sizes(benchmark):
    rows = benchmark(compute_table1)
    print()
    report(format_table(
        ["program", "procs", "(paper)", "clauses", "(paper)",
         "points", "(paper)", "goals", "(paper)", "sct", "(paper)"],
        rows,
        title="Table 1: Sizes of the Programs (ours vs paper)"))
