"""Service-layer cache benchmark.

The acceptance bar for the analysis service: running ``repro batch``
over the built-in benchmark corpus with a *warm* content-addressed
cache must be at least 10x faster than the cold run that populated it
— the warm pass is pure key computation plus store reads, no fixpoint
iteration.  Also measures the third regime, a warm *in-memory* LRU on
top of the same store, and the incremental path (seeded re-analysis
after an edit) for reference.
"""

import time

from repro.analysis import format_table
from repro.benchprogs import benchmark
from repro.service import (ResultCache, jobs_from_benchmarks, reanalyze,
                           run_batch)

from .conftest import report

# A corpus slice that keeps the cold pass to a few seconds while still
# covering recursion classes and input-pattern variants; `--all` on the
# CLI runs the full fifteen.
CORPUS = ["QU", "CS", "DS", "PG", "BR", "PL", "AR", "AR1", "LDS"]


def _timed(fn):
    start = time.perf_counter()
    outcome = fn()
    return outcome, time.perf_counter() - start


def test_warm_cache_is_10x_faster_than_cold(tmp_path):
    jobs = jobs_from_benchmarks(CORPUS)
    cache = ResultCache(tmp_path)

    cold_report, cold = _timed(lambda: run_batch(jobs, cache))
    assert cold_report.misses == len(jobs)

    disk_cache = ResultCache(tmp_path)  # fresh process's view: disk only
    disk_report, disk = _timed(lambda: run_batch(jobs, disk_cache))
    assert disk_report.hits == len(jobs)

    memory_report, memory = _timed(lambda: run_batch(jobs, disk_cache))
    assert memory_report.hits == len(jobs)
    assert disk_cache.stats.memory_hits == len(jobs)

    report(format_table(
        ["regime", "seconds", "speedup"],
        [["cold (analyze + populate)", "%.3f" % cold, "1x"],
         ["warm (disk store)", "%.4f" % disk,
          "%.0fx" % (cold / disk)],
         ["warm (memory LRU)", "%.4f" % memory,
          "%.0fx" % (cold / memory)]],
        title="Service cache: batch over %d workloads" % len(jobs)))

    assert cold / disk >= 10, \
        "warm disk cache only %.1fx faster than cold" % (cold / disk)
    assert cold / memory >= 10


def test_incremental_reanalysis_beats_cold(tmp_path):
    """Editing one predicate and re-analyzing with SCC-seeded entries
    does measurably less fixpoint work than a cold run."""
    qu = benchmark("QU")
    edited = qu.source.replace("N1 is N + 1", "N1 is N + 2")
    cache = ResultCache(tmp_path)
    cold_result, _ = reanalyze(qu.source, qu.query, cache)
    warm_result, info = reanalyze(edited, qu.query, cache,
                                  old_source=qu.source)
    assert info.seeded > 0
    assert warm_result.stats.procedure_iterations < \
        cold_result.stats.procedure_iterations
    report("Incremental QU edit: %d seeded entries, %d -> %d procedure "
           "iterations" % (info.seeded,
                           cold_result.stats.procedure_iterations,
                           warm_result.stats.procedure_iterations))
