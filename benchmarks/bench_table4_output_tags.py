"""Table 4 — Accuracy Results: Output Tags.

For each workload: per-tag counts of the type analysis with the
principal-functor baseline counts in parentheses, and the comparison
columns A (arguments), AI (arguments improved), AR (ratio), C / CI /
CR at the clause level.  The paper's qualitative claim — the type
analysis improves a large fraction of output tags, most improvements
being lists — is asserted.
"""

import pytest

from repro.analysis import compare_tags, format_table, format_tag_row
from repro.benchprogs import benchmark_names

from .conftest import cached_analysis, report

PAPER_MEAN_OUTPUT_AR = 0.50  # §9: "about 50% of the output tags"

WORKLOADS = ["AR", "AR1", "CS", "DS", "BR", "KA", "LDS", "LPE", "LPL",
             "PE", "PG", "PL", "PR", "QU"]


def build_comparison(name):
    type_analysis = cached_analysis(name)
    base_analysis = cached_analysis(name, baseline=True)
    return compare_tags(type_analysis.output_tags(),
                        base_analysis.output_tags()), type_analysis


def test_table4_output_tags(benchmark):
    def gather():
        rows = []
        ratios = []
        for name in WORKLOADS:
            cmp, analysis = build_comparison(name)
            counts = cmp.tag_counts()
            clause_total, clause_improved, _ = cmp.clause_counts(
                analysis.clauses_per_pred())
            rows.append([name] + format_tag_row(
                counts, cmp.total_arguments, cmp.improved_arguments,
                clause_total, clause_improved))
            if cmp.total_arguments:
                ratios.append(cmp.argument_ratio)
        return rows, ratios

    rows, ratios = benchmark.pedantic(gather, rounds=1, iterations=1)
    print()
    report(format_table(
        ["program", "NI", "CO", "LI", "ST", "DI", "HY",
         "A", "AI", "AR", "C", "CI", "CR"],
        rows,
        title="Table 4: Accuracy Results, Output Tags "
              "(type analysis; baseline in parentheses)"))
    mean_ratio = sum(ratios) / len(ratios)
    print("mean AR = %.2f   (paper: %.2f)"
          % (mean_ratio, PAPER_MEAN_OUTPUT_AR))
    # qualitative claim: the type analysis improves a substantial
    # fraction of the output tags on average
    assert mean_ratio > 0.15
    # and it never loses to the baseline
    for name in WORKLOADS:
        cmp, _ = build_comparison(name)
        for type_tags, base_tags in cmp.pred_tags.values():
            for t, b in zip(type_tags, base_tags):
                assert not (t is None and b is not None)
