"""Table 3 — Computation Results.

CPU time, procedure iterations and clause iterations per benchmark,
plus the or-degree-restricted runs "(5)" and "(2)".  The paper's
headline shapes are asserted:

* RE is the pathological program, an order of magnitude slower than
  the rest;
* the or-degree restriction dramatically reduces RE's time while
  barely affecting the others.

Absolute times are CPython-vs-1994-C and are not comparable; the
paper's values are printed alongside for reference.
"""

import pytest

from repro.analysis import format_table
from repro.benchprogs import benchmark_names

from .conftest import cached_analysis, report

PAPER_TABLE3 = {
    # name: (cpu, proc iters, clause iters, cpu(5), cpu(2))
    "KA": (1.52, 149, 290, 1.27, 1.23),
    "QU": (0.01, 18, 35, 0.01, 0.01),
    "PR": (2.51, 253, 791, 2.35, 2.25),
    "PE": (2.73, 109, 569, 2.06, 1.69),
    "CS": (1.01, 99, 190, 0.97, 1.02),
    "DS": (0.72, 78, 142, 0.61, 0.71),
    "PG": (0.39, 59, 123, 0.37, 0.35),
    "RE": (117.15, 1052, 3300, 23.00, 9.19),
    "BR": (0.38, 72, 165, 0.38, 0.43),
    "PL": (0.31, 50, 98, 0.28, 0.31),
}


@pytest.mark.parametrize("name", benchmark_names(include_variants=False))
def test_table3_per_program(benchmark, name):
    """Times one full analysis per program (the Table 3 row)."""
    from repro import AnalysisConfig, analyze
    from repro.benchprogs import benchmark as get_benchmark
    bp = get_benchmark(name)

    def run():
        return analyze(bp.source, bp.query, input_types=bp.input_types)

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = analysis.stats
    paper = PAPER_TABLE3[name]
    benchmark.extra_info.update({
        "procedure_iterations": stats.procedure_iterations,
        "clause_iterations": stats.clause_iterations,
        "paper_cpu": paper[0],
        "paper_procedure_iterations": paper[1],
        "paper_clause_iterations": paper[2],
    })


def test_table3_summary(benchmark):
    """Prints the whole table (all three or-width settings) and checks
    the paper's qualitative claims."""
    def gather():
        rows = []
        for name in benchmark_names(include_variants=False):
            full = cached_analysis(name)
            cap5 = cached_analysis(name, max_or_width=5)
            cap2 = cached_analysis(name, max_or_width=2)
            paper = PAPER_TABLE3[name]
            rows.append([
                name,
                round(full.wall_time, 2), paper[0],
                full.stats.procedure_iterations, paper[1],
                full.stats.clause_iterations, paper[2],
                round(cap5.wall_time, 2), paper[3],
                round(cap2.wall_time, 2), paper[4],
            ])
        return rows

    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    print()
    report(format_table(
        ["program", "cpu", "(paper)", "proc-it", "(paper)",
         "clause-it", "(paper)", "cpu(5)", "(paper)", "cpu(2)",
         "(paper)"],
        rows,
        title="Table 3: Computation Results (ours vs paper)"))

    times = {row[0]: row[1] for row in rows}
    others = [t for n, t in times.items() if n != "RE"]
    # RE is the pathological case, as in the paper
    assert times["RE"] > 3 * max(others)
    # the or-degree restriction rescues RE, as in the paper
    cap2 = {row[0]: row[9] for row in rows}
    assert cap2["RE"] < times["RE"] / 2
