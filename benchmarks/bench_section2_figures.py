"""§2 examples and Figures 1–4 — functionality and timing.

Each paper example is timed (the paper quotes per-example analysis
times: nreverse 0.01s, process 0.34s, mutual 0.08s, Figure 1 0.09s,
Figure 2 0.11s, Figure 3 0.56s, gen 0.07s) and its inferred grammar
printed next to the published one.  Exactness is asserted in
tests/test_section2_examples.py; here the assertions are that no
result collapses and the relative cost ordering is sane.
"""

import pytest

from repro import analyze
from repro.domains.pattern import PAT_BOTTOM, value_of

from tests.test_section2_examples import (FIGURE1, FIGURE2, FIGURE3,
                                          GEN_SUCC, NREVERSE, PROCESS,
                                          PROCESS_MUTUAL, QSORT)

from .conftest import report

EXAMPLES = [
    ("nreverse", NREVERSE, ("nreverse", 2), 0.01),
    ("process", PROCESS, ("process", 2), 0.34),
    ("process-mutual", PROCESS_MUTUAL, ("process", 2), 0.08),
    ("figure1-nested", FIGURE1, ("get", 1), 0.09),
    ("figure2-arith", FIGURE2, ("add", 2), 0.11),
    ("figure3-ar1", FIGURE3, ("add", 2), 0.56),
    ("gen-succ", GEN_SUCC, ("gen", 1), 0.07),
    ("figure4-qsort", QSORT, ("qsort", 2), None),
]


@pytest.mark.parametrize("name,source,query,paper_time",
                         EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_section2_example(benchmark, name, source, query, paper_time):
    analysis = benchmark(lambda: analyze(source, query))
    out = analysis.output
    assert out is not PAT_BOTTOM
    report("== %s (paper time: %s)\n%s" % (
        name, "%.2fs" % paper_time if paper_time else "n/a",
        analysis.grammar_text()))
    for k in range(query[1]):
        grammar = value_of(out, out.sv[k], analysis.domain, {})
        assert not grammar.is_bottom()


def test_section2_relative_costs(benchmark):
    """nreverse is among the cheapest, figure3 among the dearest —
    the ordering the paper's per-example times imply."""
    def run_all():
        times = {}
        for name, source, query, _ in EXAMPLES:
            analysis = analyze(source, query)
            times[name] = analysis.stats.procedure_iterations
        return times

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert times["nreverse"] <= times["process-mutual"]
    assert times["nreverse"] <= times["figure1-nested"]
