#!/usr/bin/env python
"""Load generator for the ``repro serve`` daemon — PR 5's acceptance
harness.

Measures, on the Table-3 suite:

* **one-shot CLI baseline** — one ``python -m repro --benchmark NAME
  --json`` subprocess per request, the process-per-request regime the
  server exists to replace; records per-program wall time and the
  result fingerprint of each payload;
* **cold server** — the first pass over the suite against a freshly
  spawned daemon (pays each analysis once, through the same
  ``_execute_spec`` path as batch);
* **warm server** — N concurrent clients (default 32) hammering the
  suite round-robin; every response's fingerprint must equal the
  one-shot CLI's, and throughput must clear ``--min-speedup`` (default
  5x) over the one-shot regime;
* **coalescing** — N clients firing the *same cold key*
  simultaneously must produce exactly one underlying analysis.

Typical uses::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py \
        --clients 32 --rounds 4 --write-bench BENCH_pr5.json --label PR5

Exit status is non-zero on any fingerprint mismatch, a coalescing
failure, or a missed throughput bar — this is the same
result-integrity stance as ``scripts/bench_report.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchprogs import benchmark_names  # noqa: E402
from repro.service.client import ServeClient, spawn_server  # noqa: E402
from repro.service.serialize import payload_fingerprint  # noqa: E402

SCHEMA = 1


def run_oneshot_cli(programs) -> dict:
    """Process-per-request baseline through the real CLI."""
    per_program = {}
    total = 0.0
    for name in programs:
        start = time.perf_counter()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--benchmark", name,
             "--json"],
            capture_output=True, text=True, check=True,
            cwd=str(REPO_ROOT), env=env)
        seconds = time.perf_counter() - start
        payload = json.loads(completed.stdout)["result"]
        per_program[name] = {
            "seconds": round(seconds, 4),
            "fingerprint": payload_fingerprint(payload),
        }
        total += seconds
        print("  one-shot %-4s %6.3fs" % (name, seconds),
              file=sys.stderr)
    return {
        "per_program": per_program,
        "requests": len(programs),
        "total_seconds": round(total, 4),
        "requests_per_second": round(len(programs) / total, 4),
    }


def run_server_phases(programs, clients, rounds, oneshot) -> dict:
    process, host, port = spawn_server("--timeout", "300",
                                       "--max-pending", "128")
    try:
        return _server_phases(programs, clients, rounds, oneshot,
                              host, port)
    finally:
        try:
            with ServeClient(host, port, timeout=30) as client:
                client.shutdown()
            process.wait(timeout=60)
        except Exception:
            process.terminate()
            process.wait(timeout=30)


def _server_phases(programs, clients, rounds, oneshot, host,
                   port) -> dict:
    report: dict = {}

    # -- cold pass: each analysis once, via the server ------------------
    cold = {}
    mismatches = []
    with ServeClient(host, port, timeout=600) as client:
        for name in programs:
            result = client.analyze(benchmark=name, payload=False)
            cold[name] = round(result["seconds"], 4)
            if result["fingerprint"] != \
                    oneshot["per_program"][name]["fingerprint"]:
                mismatches.append(name)
            print("  cold-server %-4s %6.3fs" % (name, cold[name]),
                  file=sys.stderr)
    report["server_cold"] = {"per_program_seconds": cold,
                             "total_seconds": round(sum(cold.values()),
                                                    4)}

    # -- warm load: `clients` concurrent clients, round-robin -----------
    with ServeClient(host, port) as client:
        stats_before = client.stats()
    lock = threading.Lock()
    failures: list = []
    observed: dict = {name: set() for name in programs}

    def drive(worker: int) -> None:
        try:
            with ServeClient(host, port, timeout=300) as session:
                for i in range(rounds * len(programs)):
                    name = programs[(worker + i) % len(programs)]
                    result = session.analyze(benchmark=name,
                                             payload=False)
                    with lock:
                        observed[name].add(result["fingerprint"])
        except BaseException as error:
            with lock:
                failures.append("client %d: %r" % (worker, error))

    threads = [threading.Thread(target=drive, args=(w,))
               for w in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    with ServeClient(host, port) as client:
        stats_after = client.stats()

    for name in programs:
        expected = {oneshot["per_program"][name]["fingerprint"]}
        if observed[name] != expected:
            mismatches.append(name)
    requests = clients * rounds * len(programs)
    report["server_warm"] = {
        "clients": clients,
        "rounds": rounds,
        "requests": requests,
        "total_seconds": round(wall, 4),
        "requests_per_second": round(requests / wall, 2),
        "latency": stats_after["latency"],
        "analyses_executed_during_load":
            stats_after["analyses_executed"]
            - stats_before["analyses_executed"],
        "cache_hit_rate": stats_after["cache"]["hit_rate"],
        "failures": failures,
        "fingerprints_identical": not mismatches,
    }
    report["fingerprint_mismatches"] = sorted(set(mismatches))

    # -- coalescing: same cold key from every client at once ------------
    source = "coalesce_probe([]).\ncoalesce_probe([X|Xs]) :- " \
             "coalesce_probe(Xs).\n"
    with ServeClient(host, port) as client:
        before = client.stats()
    barrier = threading.Barrier(clients)
    coalesce_failures: list = []

    def dup(worker: int) -> None:
        try:
            with ServeClient(host, port, timeout=300) as session:
                barrier.wait(timeout=60)
                session.analyze(source=source,
                                query=("coalesce_probe", 1),
                                payload=False)
        except BaseException as error:
            coalesce_failures.append("client %d: %r" % (worker, error))

    threads = [threading.Thread(target=dup, args=(w,))
               for w in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    with ServeClient(host, port) as client:
        after = client.stats()
    report["coalescing"] = {
        "clients": clients,
        "analyses_executed": after["analyses_executed"]
        - before["analyses_executed"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "failures": coalesce_failures,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark repro serve against the one-shot CLI.")
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent clients in the warm/coalescing "
                             "phases (default 32)")
    parser.add_argument("--rounds", type=int, default=4,
                        help="suite passes per client in the warm "
                             "phase (default 4)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required warm-server throughput multiple "
                             "over the one-shot CLI (default 5)")
    parser.add_argument("--label", default=None)
    parser.add_argument("--write-bench", metavar="FILE",
                        help="write the report as JSON (BENCH_pr5.json)")
    args = parser.parse_args(argv)

    programs = benchmark_names(include_variants=False)
    print("one-shot CLI baseline (%d programs)..." % len(programs),
          file=sys.stderr)
    oneshot = run_oneshot_cli(programs)
    print("server phases (%d clients x %d rounds)..."
          % (args.clients, args.rounds), file=sys.stderr)
    server_report = run_server_phases(programs, args.clients,
                                      args.rounds, oneshot)

    warm = server_report["server_warm"]
    speedup = round(warm["requests_per_second"]
                    / oneshot["requests_per_second"], 2)
    report = {
        "schema": SCHEMA,
        "label": args.label,
        "python": platform.python_version(),
        "suite": list(programs),
        "oneshot_cli": oneshot,
        "warm_speedup_vs_oneshot": speedup,
        **server_report,
    }

    print("\none-shot CLI : %7.2f req/s (%d requests, %.2fs)"
          % (oneshot["requests_per_second"], oneshot["requests"],
             oneshot["total_seconds"]))
    print("warm server  : %7.2f req/s (%d clients, %d requests, "
          "%.2fs, p50=%ss p95=%ss)"
          % (warm["requests_per_second"], warm["clients"],
             warm["requests"], warm["total_seconds"],
             warm["latency"]["p50"], warm["latency"]["p95"]))
    print("speedup      : %7.2fx (bar: %.1fx)"
          % (speedup, args.min_speedup))
    coal = report["coalescing"]
    print("coalescing   : %d clients -> %d execution(s), %d riders"
          % (coal["clients"], coal["analyses_executed"],
             coal["coalesced"]))

    if args.write_bench:
        path = Path(args.write_bench)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
        print("wrote %s" % path, file=sys.stderr)

    problems = []
    if report["fingerprint_mismatches"]:
        problems.append("fingerprint mismatches: %s"
                        % report["fingerprint_mismatches"])
    if warm["failures"]:
        problems.append("client failures: %s" % warm["failures"][:3])
    if coal["failures"]:
        problems.append("coalescing client failures: %s"
                        % coal["failures"][:3])
    if coal["analyses_executed"] != 1:
        problems.append("coalescing ran %d analyses (expected 1)"
                        % coal["analyses_executed"])
    if speedup < args.min_speedup:
        problems.append("warm speedup %.2fx under the %.1fx bar"
                        % (speedup, args.min_speedup))
    for problem in problems:
        print("ERROR: %s" % problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
