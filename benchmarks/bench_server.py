#!/usr/bin/env python
"""Load generator for the ``repro serve`` daemon and the ``repro
router`` cluster — the PR 5 and PR 6 acceptance harnesses.

``--mode server`` (default, PR 5) measures, on the Table-3 suite:

* **one-shot CLI baseline** — one ``python -m repro --benchmark NAME
  --json`` subprocess per request, the process-per-request regime the
  server exists to replace; records per-program wall time and the
  result fingerprint of each payload;
* **cold server** — the first pass over the suite against a freshly
  spawned daemon (pays each analysis once, through the same
  ``_execute_spec`` path as batch);
* **warm server** — N concurrent clients (default 32) hammering the
  suite round-robin; every response's fingerprint must equal the
  one-shot CLI's, and throughput must clear ``--min-speedup`` (default
  5x) over the one-shot regime;
* **coalescing** — N clients firing the *same cold key*
  simultaneously must produce exactly one underlying analysis.

``--mode router`` (PR 6) drives a ``repro router`` front door:

* **Table-3 through the router** — every fingerprint must equal the
  one-shot CLI's;
* **scaling sweep** — 1/2/4 spawned shards under 32 clients (several
  *load worker subprocesses* so the generator is not GIL-bound)
  replaying a Zipf-distributed hot set of distinct programs that is
  deliberately larger than one shard's ``--max-memory-entries``:
  consistent hashing partitions the working set, so each added shard
  raises the fleet-wide warm-cache hit rate — that is where the req/s
  scaling comes from on this single-CPU container, and it is the same
  mechanism that scales a multi-core fleet;
* **failover** — SIGKILL one of two shards mid-run (shared
  ``--cache-dir`` as the L2): every accepted request must still
  succeed, with fingerprints intact, via replica failover + disk
  promotion.

Typical uses::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py \
        --clients 32 --rounds 4 --write-bench BENCH_pr5.json --label PR5
    PYTHONPATH=src python benchmarks/bench_server.py --mode router \
        --write-bench BENCH_pr6.json --label PR6

Exit status is non-zero on any fingerprint mismatch, a coalescing or
failover failure, or a missed throughput bar — the same
result-integrity stance as ``scripts/bench_report.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchprogs import benchmark, benchmark_names  # noqa: E402
from repro.service.client import (ServeClient, spawn_router,  # noqa: E402
                                  spawn_server)
from repro.service.serialize import payload_fingerprint  # noqa: E402

SCHEMA = 1


def run_oneshot_cli(programs) -> dict:
    """Process-per-request baseline through the real CLI."""
    per_program = {}
    total = 0.0
    for name in programs:
        start = time.perf_counter()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--benchmark", name,
             "--json"],
            capture_output=True, text=True, check=True,
            cwd=str(REPO_ROOT), env=env)
        seconds = time.perf_counter() - start
        payload = json.loads(completed.stdout)["result"]
        per_program[name] = {
            "seconds": round(seconds, 4),
            "fingerprint": payload_fingerprint(payload),
        }
        total += seconds
        print("  one-shot %-4s %6.3fs" % (name, seconds),
              file=sys.stderr)
    return {
        "per_program": per_program,
        "requests": len(programs),
        "total_seconds": round(total, 4),
        "requests_per_second": round(len(programs) / total, 4),
    }


def run_server_phases(programs, clients, rounds, oneshot) -> dict:
    process, host, port = spawn_server("--timeout", "300",
                                       "--max-pending", "128")
    try:
        return _server_phases(programs, clients, rounds, oneshot,
                              host, port)
    finally:
        try:
            with ServeClient(host, port, timeout=30) as client:
                client.shutdown()
            process.wait(timeout=60)
        except Exception:
            process.terminate()
            process.wait(timeout=30)


def _server_phases(programs, clients, rounds, oneshot, host,
                   port) -> dict:
    report: dict = {}

    # -- cold pass: each analysis once, via the server ------------------
    cold = {}
    mismatches = []
    with ServeClient(host, port, timeout=600) as client:
        for name in programs:
            result = client.analyze(benchmark=name, payload=False)
            cold[name] = round(result["seconds"], 4)
            if result["fingerprint"] != \
                    oneshot["per_program"][name]["fingerprint"]:
                mismatches.append(name)
            print("  cold-server %-4s %6.3fs" % (name, cold[name]),
                  file=sys.stderr)
    report["server_cold"] = {"per_program_seconds": cold,
                             "total_seconds": round(sum(cold.values()),
                                                    4)}

    # -- warm load: `clients` concurrent clients, round-robin -----------
    with ServeClient(host, port) as client:
        stats_before = client.stats()
    lock = threading.Lock()
    failures: list = []
    observed: dict = {name: set() for name in programs}

    def drive(worker: int) -> None:
        try:
            with ServeClient(host, port, timeout=300) as session:
                for i in range(rounds * len(programs)):
                    name = programs[(worker + i) % len(programs)]
                    result = session.analyze(benchmark=name,
                                             payload=False)
                    with lock:
                        observed[name].add(result["fingerprint"])
        except BaseException as error:
            with lock:
                failures.append("client %d: %r" % (worker, error))

    threads = [threading.Thread(target=drive, args=(w,))
               for w in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    with ServeClient(host, port) as client:
        stats_after = client.stats()

    for name in programs:
        expected = {oneshot["per_program"][name]["fingerprint"]}
        if observed[name] != expected:
            mismatches.append(name)
    requests = clients * rounds * len(programs)
    report["server_warm"] = {
        "clients": clients,
        "rounds": rounds,
        "requests": requests,
        "total_seconds": round(wall, 4),
        "requests_per_second": round(requests / wall, 2),
        "latency": stats_after["latency"],
        "analyses_executed_during_load":
            stats_after["analyses_executed"]
            - stats_before["analyses_executed"],
        "cache_hit_rate": stats_after["cache"]["hit_rate"],
        "failures": failures,
        "fingerprints_identical": not mismatches,
    }
    report["fingerprint_mismatches"] = sorted(set(mismatches))

    # -- coalescing: same cold key from every client at once ------------
    source = "coalesce_probe([]).\ncoalesce_probe([X|Xs]) :- " \
             "coalesce_probe(Xs).\n"
    with ServeClient(host, port) as client:
        before = client.stats()
    barrier = threading.Barrier(clients)
    coalesce_failures: list = []

    def dup(worker: int) -> None:
        try:
            with ServeClient(host, port, timeout=300) as session:
                barrier.wait(timeout=60)
                session.analyze(source=source,
                                query=("coalesce_probe", 1),
                                payload=False)
        except BaseException as error:
            coalesce_failures.append("client %d: %r" % (worker, error))

    threads = [threading.Thread(target=dup, args=(w,))
               for w in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    with ServeClient(host, port) as client:
        after = client.stats()
    report["coalescing"] = {
        "clients": clients,
        "analyses_executed": after["analyses_executed"]
        - before["analyses_executed"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "failures": coalesce_failures,
    }
    return report


# -- router mode (PR 6) ------------------------------------------------------

def make_hotset(width, base="QU"):
    """``width`` distinct programs of identical analysis cost: the
    base benchmark plus one inert pad fact per variant.  Every variant
    has its own ``program_hash`` (its own cache key and ring position)
    but the pad predicate is outside the query cone, so every variant's
    result fingerprint equals the base benchmark's — which ties the
    whole synthetic hot set back to the one-shot CLI's fingerprint."""
    bp = benchmark(base)
    return [{
        "name": "%s~%02d" % (base, index),
        "base": base,
        "source": bp.source + "\nhotset_pad_%02d(x).\n" % index,
        "query": list(bp.query),
        "input_types": bp.input_types,
    } for index in range(width)]


def zipf_weights(count, s):
    return [1.0 / (rank ** s) for rank in range(1, count + 1)]


def load_worker_main() -> int:
    """Hidden subprocess mode: replay a Zipf-weighted workload spec
    (JSON on stdin) with N threads against one endpoint, report JSON
    on stdout.  Run as a separate *process* so 32 blocking clients are
    not serialized behind one generator GIL."""
    spec = json.load(sys.stdin)
    jobs = spec["jobs"]
    weights = spec["weights"]
    indices = list(range(len(jobs)))
    lock = threading.Lock()
    counts = [0] * len(jobs)
    fingerprints = [set() for _ in jobs]
    latencies: list = []
    errors: list = []

    endpoints = spec.get("endpoints")
    if endpoints is not None:
        endpoints = [(host, int(port)) for host, port in endpoints]

    def drive(thread_index: int) -> None:
        rng = random.Random(spec["seed"] * 1000 + thread_index)
        local_counts = [0] * len(jobs)
        local_fp = [set() for _ in jobs]
        local_lat = []
        try:
            with (ServeClient(endpoints=endpoints, timeout=120)
                  if endpoints is not None
                  else ServeClient(spec["host"], spec["port"],
                                   timeout=120)) as session:
                now = time.time()
                if spec["start_at"] > now:
                    time.sleep(spec["start_at"] - now)
                deadline = spec["start_at"] + spec["seconds"]
                while time.time() < deadline:
                    index = rng.choices(indices, weights=weights)[0]
                    job = jobs[index]
                    begin = time.perf_counter()
                    result = session.analyze(
                        source=job["source"],
                        query=tuple(job["query"]),
                        input_types=job.get("input_types"),
                        payload=False)
                    local_lat.append(time.perf_counter() - begin)
                    local_counts[index] += 1
                    local_fp[index].add(result["fingerprint"])
        except BaseException as error:
            with lock:
                errors.append(repr(error))
        with lock:
            for index in indices:
                counts[index] += local_counts[index]
                fingerprints[index] |= local_fp[index]
            latencies.extend(local_lat)

    threads = [threading.Thread(target=drive, args=(t,))
               for t in range(spec["threads"])]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    json.dump({
        "requests": sum(counts),
        "errors": errors[:5],
        "counts": counts,
        "fingerprints": [sorted(fp) for fp in fingerprints],
        "latencies": [round(value, 5) for value in latencies],
    }, sys.stdout)
    return 0


def run_load_workers(host, port, jobs, weights, processes, threads,
                     seconds, mid_run=None, endpoints=None):
    """Drive ``processes x threads`` clients for ``seconds`` with a
    synchronized start; optionally call ``mid_run()`` halfway through
    (the failover phase kills a shard there).  ``endpoints`` hands
    every worker a router endpoint *list* instead of one address —
    the router-kill phase needs clients that can ride out the front
    door dying.  Returns the merged worker reports."""
    start_at = time.time() + 1.5
    spec = {"host": host, "port": port, "jobs": jobs,
            "weights": weights, "threads": threads,
            "seconds": seconds, "start_at": start_at}
    if endpoints is not None:
        spec["endpoints"] = [list(endpoint) for endpoint in endpoints]
    workers = []
    for index in range(processes):
        process = subprocess.Popen(
            [sys.executable, __file__, "--load-worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
            cwd=str(REPO_ROOT))
        process.stdin.write(json.dumps(dict(spec, seed=index)))
        process.stdin.close()
        workers.append(process)
    if mid_run is not None:
        time.sleep(max(0.0, start_at - time.time()) + seconds / 2.0)
        mid_run()
    reports = []
    for process in workers:
        output = process.stdout.read()
        process.wait(timeout=600)
        reports.append(json.loads(output))
    merged = {
        "requests": sum(r["requests"] for r in reports),
        "errors": [e for r in reports for e in r["errors"]],
        "counts": [sum(r["counts"][i] for r in reports)
                   for i in range(len(jobs))],
        "fingerprints": [sorted(set().union(*(set(r["fingerprints"][i])
                                              for r in reports)))
                         for i in range(len(jobs))],
    }
    latencies = sorted(value for r in reports for value in r["latencies"])
    if latencies:
        merged["latency"] = {
            "count": len(latencies),
            "p50": round(latencies[len(latencies) // 2], 5),
            "p95": round(latencies[min(len(latencies) - 1,
                                       int(0.95 * len(latencies)))], 5),
        }
    else:
        merged["latency"] = {"count": 0, "p50": None, "p95": None}
    return merged


def _check_hotset_fingerprints(jobs, merged, expected, mismatches):
    for index, job in enumerate(jobs):
        observed = set(merged["fingerprints"][index])
        if observed and observed != {expected[job["base"]]}:
            mismatches.append(job["name"])


def run_router_scaling(shard_counts, hotset, expected, clients,
                       processes, seconds, max_memory) -> dict:
    """The scaling sweep: same workload, same total client count, only
    the shard count changes."""
    threads = max(1, clients // processes)
    weights = zipf_weights(len(hotset), 1.1)
    sweep: dict = {}
    mismatches: list = []
    for count in shard_counts:
        print("scaling: %d shard(s), %d clients, %.0fs..."
              % (count, processes * threads, seconds), file=sys.stderr)
        process, host, port = spawn_router(
            "--spawn", str(count),
            "--max-memory-entries", str(max_memory),
            "--pool-size", "4", "--health-interval", "0.5")
        try:
            with ServeClient(host, port, timeout=600) as client:
                for job in hotset:  # warm pass: each program once
                    result = client.analyze(
                        source=job["source"], query=tuple(job["query"]),
                        input_types=job.get("input_types"),
                        payload=False)
                    if result["fingerprint"] != expected[job["base"]]:
                        mismatches.append(job["name"] + ":warm")
            merged = run_load_workers(host, port, hotset, weights,
                                      processes, threads, seconds)
            _check_hotset_fingerprints(hotset, merged, expected,
                                       mismatches)
            with ServeClient(host, port, timeout=60) as client:
                stats = client.stats()
                client.shutdown()
            process.wait(timeout=60)
        except BaseException:
            process.terminate()
            raise
        sweep[str(count)] = {
            "shards": count,
            "requests": merged["requests"],
            "seconds": seconds,
            "requests_per_second": round(merged["requests"] / seconds,
                                         2),
            "errors": merged["errors"],
            "latency": merged["latency"],
            "cache_hit_rate": stats["merged"]["cache"]["hit_rate"],
            "analyses_executed": stats["merged"]["analyses_executed"],
            "failovers": stats["router"]["failovers"],
        }
        print("  %d shard(s): %7.1f req/s, hit rate %s, p50=%ss"
              % (count, sweep[str(count)]["requests_per_second"],
                 sweep[str(count)]["cache_hit_rate"],
                 merged["latency"]["p50"]), file=sys.stderr)
    return {"sweep": sweep, "mismatches": mismatches}


def run_router_failover(hotset, expected, processes, threads,
                        seconds) -> dict:
    """Two shards over a shared disk L2; SIGKILL one mid-run.  Every
    accepted request must succeed (replica failover + cross-shard
    promotion), every fingerprint must stay identical."""
    mismatches: list = []
    with tempfile.TemporaryDirectory(prefix="repro-l2-") as cache_dir:
        process, host, port = spawn_router(
            "--spawn", "2", "--cache-dir", cache_dir,
            "--max-memory-entries", "64", "--pool-size", "4",
            "--health-interval", "0.3", "--backoff", "0.02",
            "--down-after", "2")
        try:
            with ServeClient(host, port, timeout=600) as client:
                for job in hotset:
                    result = client.analyze(
                        source=job["source"], query=tuple(job["query"]),
                        input_types=job.get("input_types"),
                        payload=False)
                    if result["fingerprint"] != expected[job["base"]]:
                        mismatches.append(job["name"] + ":warm")
                stats = client.stats()
            shard_pids = {shard_id: shard["pid"]
                          for shard_id, shard in stats["shards"].items()}
            victim = sorted(shard_pids)[0]

            def kill_victim():
                print("  SIGKILL shard %s (pid %d) mid-run"
                      % (victim, shard_pids[victim]), file=sys.stderr)
                os.kill(shard_pids[victim], signal.SIGKILL)

            weights = zipf_weights(len(hotset), 1.1)
            merged = run_load_workers(host, port, hotset, weights,
                                      processes, threads, seconds,
                                      mid_run=kill_victim)
            _check_hotset_fingerprints(hotset, merged, expected,
                                       mismatches)
            with ServeClient(host, port, timeout=60) as client:
                info = client.router_info()
                client.shutdown()
            process.wait(timeout=60)
        except BaseException:
            process.terminate()
            raise
    return {
        "killed_shard": victim,
        "requests": merged["requests"],
        "requests_per_second": round(merged["requests"] / seconds, 2),
        "errors": merged["errors"],
        "failovers": info["failovers"],
        "shard_status_after": {shard_id: shard["status"]
                               for shard_id, shard
                               in info["shards"].items()},
        "mismatches": mismatches,
    }


def run_table3_through_router(programs, oneshot) -> dict:
    """The whole Table-3 suite through the front door; fingerprints
    must equal the one-shot CLI's."""
    process, host, port = spawn_router("--spawn", "2", "--pool-size",
                                       "4")
    mismatches = []
    per_program = {}
    try:
        with ServeClient(host, port, timeout=600) as client:
            for name in programs:
                result = client.analyze(benchmark=name, payload=False)
                per_program[name] = {
                    "seconds": round(result["seconds"], 4),
                    "fingerprint": result["fingerprint"],
                }
                if result["fingerprint"] != \
                        oneshot["per_program"][name]["fingerprint"]:
                    mismatches.append(name)
                print("  router %-4s %6.3fs" % (name,
                                                result["seconds"]),
                      file=sys.stderr)
            report = client.batch(benchmarks=list(programs))
            for job in report["jobs"]:
                if (not job.get("ok")
                        or job["fingerprint"] !=
                        oneshot["per_program"][job["name"]]
                        ["fingerprint"]):
                    mismatches.append(job["name"] + ":batch")
            client.shutdown()
        process.wait(timeout=60)
    except BaseException:
        process.terminate()
        raise
    return {"per_program": per_program,
            "batch_jobs": len(report["jobs"]),
            "mismatches": mismatches}


# -- chaos mode (PR 7 + PR 9) ------------------------------------------------

#: Seeded fault plan for the chaos run's shards: small, frequent
#: transport failures the router must absorb invisibly.  Crashes are
#: injected from outside (SIGKILL) so the run controls *when*.
CHAOS_FAULTS = json.dumps({"seed": 7, "faults": [
    {"kind": "delay-read", "p": 0.03, "delay": 0.005},
    {"kind": "drop-connection", "p": 0.01},
]})


def run_chaos_churn(hotset, expected, processes, threads,
                    seconds) -> dict:
    """Zipf load over a supervised 2-shard cluster with seeded faults,
    while the run SIGKILLs a shard (auto-restart must bring it back)
    and churns membership (add-shard, then remove-shard).  Zero
    client-visible errors allowed."""
    mismatches: list = []
    events: list = []
    # ignore_cleanup_errors: a shard terminated a moment ago may still
    # be flushing a cache write while rmtree walks the directory.
    with tempfile.TemporaryDirectory(prefix="repro-chaos-",
                                     ignore_cleanup_errors=True) \
            as cache_dir:
        process, host, port = spawn_router(
            "--spawn", "2", "--cache-dir", cache_dir,
            "--max-memory-entries", "64", "--pool-size", "4",
            "--health-interval", "0.25", "--backoff", "0.02",
            "--down-after", "2", "--replicate", "2",
            "--restart-backoff", "0.2", "--breaker-deaths", "8",
            "--shard-faults", CHAOS_FAULTS)
        extra_process = None
        try:
            with ServeClient(host, port, timeout=600) as client:
                for job in hotset:
                    result = client.analyze(
                        source=job["source"], query=tuple(job["query"]),
                        input_types=job.get("input_types"),
                        payload=False)
                    if result["fingerprint"] != expected[job["base"]]:
                        mismatches.append(job["name"] + ":warm")
                stats = client.stats()
            shard_pids = {shard_id: shard["pid"]
                          for shard_id, shard in stats["shards"].items()
                          if isinstance(shard, dict) and "pid" in shard}
            victim = sorted(shard_pids)[0]
            # A third, standalone shard for the membership churn.
            extra_process, extra_host, extra_port = spawn_server(
                "--cache-dir", cache_dir, "--max-memory-entries", "64")
            extra_id = "%s:%d" % (extra_host, extra_port)

            def churn() -> None:
                print("  SIGKILL shard %s (pid %d) mid-run"
                      % (victim, shard_pids[victim]), file=sys.stderr)
                os.kill(shard_pids[victim], signal.SIGKILL)
                events.append({"event": "sigkill", "shard": victim})
                with ServeClient(host, port, timeout=60) as client:
                    deadline = time.time() + max(10.0, seconds / 2)
                    while time.time() < deadline:
                        info = client.router_info()
                        if (info["restarts"] >= 1 and
                                info["shards"][victim]["status"] == "up"):
                            break
                        time.sleep(0.2)
                    events.append({"event": "restart-observed",
                                   "restarts": info["restarts"]})
                    print("  shard %s auto-restarted (restarts=%d)"
                          % (victim, info["restarts"]), file=sys.stderr)
                    client.add_shard(extra_host, extra_port)
                    events.append({"event": "add-shard",
                                   "shard": extra_id})
                    print("  add-shard %s joined mid-run" % extra_id,
                          file=sys.stderr)
                    time.sleep(1.0)
                    client.remove_shard(extra_id)
                    events.append({"event": "remove-shard",
                                   "shard": extra_id})
                    print("  remove-shard %s drained out mid-run"
                          % extra_id, file=sys.stderr)

            weights = zipf_weights(len(hotset), 1.1)
            merged = run_load_workers(host, port, hotset, weights,
                                      processes, threads, seconds,
                                      mid_run=churn)
            _check_hotset_fingerprints(hotset, merged, expected,
                                       mismatches)
            with ServeClient(host, port, timeout=60) as client:
                info = client.router_info()
                stats = client.stats()
                client.shutdown()
            process.wait(timeout=60)
        except BaseException:
            process.terminate()
            raise
        finally:
            if extra_process is not None and extra_process.poll() is None:
                extra_process.terminate()
                try:
                    extra_process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    extra_process.kill()
    faults_injected: dict = {}
    for shard_stats in stats["shards"].values():
        for kind, count in ((shard_stats.get("faults") or {})
                            .get("injected", {})).items():
            faults_injected[kind] = faults_injected.get(kind, 0) + count
    return {
        "shard_faults": json.loads(CHAOS_FAULTS),
        "requests": merged["requests"],
        "requests_per_second": round(merged["requests"] / seconds, 2),
        "errors": merged["errors"],
        "latency": merged["latency"],
        "killed_shard": victim,
        "restarts": info["restarts"],
        "restart_failures": info["restart_failures"],
        "breaker_trips": info["breaker_trips"],
        "shards_added": info["shards_added"],
        "shards_removed": info["shards_removed"],
        "failovers": info["failovers"],
        "replications": info["replications"],
        "faults_injected_by_shards": faults_injected,
        "membership_log": info["membership_log"],
        "events": events,
        "mismatches": mismatches,
    }


def run_failover_ab(hotset, expected) -> dict:
    """Failover p95 with and without replication: warm a 2-shard
    cluster, SIGKILL the busier shard (restarts pushed out of the
    measurement window), wait for the router to mark it down, then
    time the *first touch* of every victim-owned key on the surviving
    replica.  --replicate 2 must beat --replicate 1: seeded memory
    beats disk-L2 promotion."""
    out: dict = {"mismatches": []}
    for replicate in (1, 2):
        with tempfile.TemporaryDirectory(prefix="repro-ab-",
                                         ignore_cleanup_errors=True) \
                as cache_dir:
            process, host, port = spawn_router(
                "--spawn", "2", "--cache-dir", cache_dir,
                "--max-memory-entries", "128", "--pool-size", "4",
                "--health-interval", "0.2", "--backoff", "0.02",
                "--down-after", "2", "--replicate", str(replicate),
                "--restart-backoff", "120")  # victim stays dead
            try:
                with ServeClient(host, port, timeout=600) as client:
                    homes: dict = {}
                    for job in hotset:
                        result = client.analyze(
                            source=job["source"],
                            query=tuple(job["query"]),
                            input_types=job.get("input_types"),
                            payload=False)
                        if result["fingerprint"] != \
                                expected[job["base"]]:
                            out["mismatches"].append(
                                job["name"] + ":ab-warm")
                        homes[job["name"]] = client.request(
                            "route", source=job["source"])["target"]
                    if replicate > 1:
                        deadline = time.time() + 20.0
                        while time.time() < deadline:
                            info = client.router_info()
                            if info["replications"] >= len(hotset):
                                break
                            time.sleep(0.1)
                    stats = client.stats()
                    shard_pids = {
                        shard_id: shard["pid"]
                        for shard_id, shard in stats["shards"].items()}
                    by_owner: dict = {}
                    for name, owner in homes.items():
                        by_owner[owner] = by_owner.get(owner, 0) + 1
                    victim = max(by_owner, key=by_owner.get)
                    victim_jobs = [job for job in hotset
                                   if homes[job["name"]] == victim]
                    os.kill(shard_pids[victim], signal.SIGKILL)
                    deadline = time.time() + 15.0
                    while time.time() < deadline:
                        info = client.router_info()
                        if info["shards"][victim]["status"] == "down":
                            break
                        time.sleep(0.05)
                    latencies = []
                    for job in victim_jobs:
                        begin = time.perf_counter()
                        result = client.analyze(
                            source=job["source"],
                            query=tuple(job["query"]),
                            input_types=job.get("input_types"),
                            payload=False)
                        latencies.append(time.perf_counter() - begin)
                        if result["fingerprint"] != \
                                expected[job["base"]]:
                            out["mismatches"].append(
                                job["name"] + ":ab-failover")
                        if not result["cached"]:
                            out["mismatches"].append(
                                job["name"] + ":ab-recomputed")
                    client.shutdown()
                process.wait(timeout=60)
            except BaseException:
                process.terminate()
                raise
        latencies.sort()
        p95 = latencies[min(len(latencies) - 1,
                            int(0.95 * len(latencies)))]
        out["replicate_%d" % replicate] = {
            "victim": victim,
            "victim_keys": len(victim_jobs),
            "first_touch_p50": round(
                latencies[len(latencies) // 2], 5),
            "first_touch_p95": round(p95, 5),
            "first_touch_mean": round(
                sum(latencies) / len(latencies), 5),
        }
        print("  replicate=%d: failover first-touch p95 %.2fms over "
              "%d keys" % (replicate, p95 * 1000.0, len(victim_jobs)),
              file=sys.stderr)
    with_r = out["replicate_2"]["first_touch_p95"]
    without_r = out["replicate_1"]["first_touch_p95"]
    out["p95_improvement"] = round(without_r / with_r, 2) if with_r \
        else None
    return out


def run_router_kill(hotset, expected, processes, threads,
                    seconds) -> dict:
    """PR 9: the front door itself dies.  A primary router (2 spawned
    shards, replicate 2) plus a standby syncing membership from it;
    load workers hold *both* endpoints.  Mid-run the primary is
    SIGKILLed: its shards survive as orphans, the standby promotes
    itself, and every worker fails over per request.  Zero
    client-visible errors allowed, every fingerprint intact."""
    mismatches: list = []
    shard_pids: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-rkill-",
                                     ignore_cleanup_errors=True) \
            as cache_dir:
        primary, host, port = spawn_router(
            "--spawn", "2", "--cache-dir", cache_dir,
            "--max-memory-entries", "64", "--pool-size", "4",
            "--health-interval", "0.25", "--backoff", "0.02",
            "--down-after", "2", "--replicate", "2",
            "--anti-entropy-interval", "1.0")
        standby = None
        try:
            standby, standby_host, standby_port = spawn_router(
                "--cache-dir", cache_dir,
                "--sync-from", "%s:%d" % (host, port),
                "--health-interval", "0.25", "--backoff", "0.02",
                "--down-after", "2", "--replicate", "2",
                "--anti-entropy-interval", "1.0")
            with ServeClient(host, port, timeout=600) as client:
                for job in hotset:
                    result = client.analyze(
                        source=job["source"], query=tuple(job["query"]),
                        input_types=job.get("input_types"),
                        payload=False)
                    if result["fingerprint"] != expected[job["base"]]:
                        mismatches.append(job["name"] + ":warm")
                stats = client.stats()
            shard_pids = {shard_id: shard["pid"]
                          for shard_id, shard in stats["shards"].items()
                          if isinstance(shard, dict) and "pid" in shard}
            # The standby must mirror the full ring before the primary
            # is allowed to die.
            with ServeClient(standby_host, standby_port,
                             timeout=60) as client:
                deadline = time.time() + 20.0
                while time.time() < deadline:
                    info = client.router_info()
                    if (info["sync_pulls"] >= 1
                            and len(info["shards"]) >= len(shard_pids)):
                        break
                    time.sleep(0.1)
                else:
                    raise RuntimeError(
                        "standby never mirrored the primary's ring: %r"
                        % info["shards"])
            print("  standby %s:%d mirrors %d shard(s)"
                  % (standby_host, standby_port, len(info["shards"])),
                  file=sys.stderr)

            def kill_primary() -> None:
                print("  SIGKILL primary router (pid %d) mid-run"
                      % primary.pid, file=sys.stderr)
                os.kill(primary.pid, signal.SIGKILL)

            weights = zipf_weights(len(hotset), 1.1)
            merged = run_load_workers(
                host, port, hotset, weights, processes, threads,
                seconds, mid_run=kill_primary,
                endpoints=[(host, port), (standby_host, standby_port)])
            _check_hotset_fingerprints(hotset, merged, expected,
                                       mismatches)
            primary.wait(timeout=30)
            with ServeClient(standby_host, standby_port,
                             timeout=60) as client:
                deadline = time.time() + 15.0
                while time.time() < deadline:
                    info = client.router_info()
                    if info["role"] == "primary":
                        break
                    time.sleep(0.1)
                client.shutdown()
            standby.wait(timeout=60)
        except BaseException:
            for process in (primary, standby):
                if process is not None and process.poll() is None:
                    process.terminate()
            raise
        finally:
            # The primary's spawned shards were orphaned by SIGKILL;
            # the standby never owned their processes.
            for pid in shard_pids.values():
                try:
                    os.kill(pid, signal.SIGTERM)
                except OSError:
                    pass
    return {
        "requests": merged["requests"],
        "requests_per_second": round(merged["requests"] / seconds, 2),
        "errors": merged["errors"],
        "latency": merged["latency"],
        "standby_promoted": info["role"] == "primary",
        "standby_sync_pulls": info["sync_pulls"],
        "standby_shards": {shard_id: shard["status"]
                           for shard_id, shard
                           in info["shards"].items()},
        "standby_failovers": info["failovers"],
        "read_repairs": info["read_repairs"],
        "anti_entropy_passes": info["anti_entropy_passes"],
        "anti_entropy_repairs": info["anti_entropy_repairs"],
        "mismatches": mismatches,
    }


def run_anti_entropy_ab(hotset, expected) -> dict:
    """Repair-latency A/B: SIGKILL a shard, let supervision restart it
    (empty memory tier), then time the *first touch* of every key it
    homes.  With ``--anti-entropy-interval`` on, the repair pass
    re-seeds the restarted shard from its replicas before clients
    arrive — first touches are memory hits.  With it off, every first
    touch pays the disk-L2 promotion."""
    out: dict = {"mismatches": []}
    for variant, interval in (("off", 0.0), ("on", 0.4)):
        with tempfile.TemporaryDirectory(prefix="repro-ae-",
                                         ignore_cleanup_errors=True) \
                as cache_dir:
            process, host, port = spawn_router(
                "--spawn", "2", "--cache-dir", cache_dir,
                "--max-memory-entries", "128", "--pool-size", "4",
                "--health-interval", "0.2", "--backoff", "0.02",
                "--down-after", "2", "--replicate", "2",
                "--restart-backoff", "0.2",
                "--anti-entropy-interval", str(interval))
            try:
                with ServeClient(host, port, timeout=600) as client:
                    homes: dict = {}
                    for job in hotset:
                        result = client.analyze(
                            source=job["source"],
                            query=tuple(job["query"]),
                            input_types=job.get("input_types"),
                            payload=False)
                        if result["fingerprint"] != \
                                expected[job["base"]]:
                            out["mismatches"].append(
                                job["name"] + ":ae-warm")
                        homes[job["name"]] = client.request(
                            "route", source=job["source"])["target"]
                    deadline = time.time() + 20.0
                    while time.time() < deadline:
                        info = client.router_info()
                        if info["replications"] >= len(hotset):
                            break
                        time.sleep(0.1)
                    stats = client.stats()
                    shard_pids = {
                        shard_id: shard["pid"]
                        for shard_id, shard in stats["shards"].items()}
                    by_owner: dict = {}
                    for name, owner in homes.items():
                        by_owner[owner] = by_owner.get(owner, 0) + 1
                    victim = max(by_owner, key=by_owner.get)
                    victim_jobs = [job for job in hotset
                                   if homes[job["name"]] == victim]
                    killed_at = time.perf_counter()
                    os.kill(shard_pids[victim], signal.SIGKILL)
                    deadline = time.time() + 20.0
                    while time.time() < deadline:
                        info = client.router_info()
                        if (info["restarts"] >= 1 and
                                info["shards"][victim]["status"]
                                == "up"):
                            break
                        time.sleep(0.05)
                    restart_seconds = time.perf_counter() - killed_at
                    repair_seconds = None
                    if interval:
                        # wait until the repair pass has re-seeded the
                        # restarted shard's keys
                        deadline = time.time() + 25.0
                        while time.time() < deadline:
                            info = client.router_info()
                            if (info["anti_entropy_repairs"]
                                    >= len(victim_jobs)):
                                break
                            time.sleep(0.05)
                        repair_seconds = round(
                            time.perf_counter() - killed_at, 3)
                    latencies = []
                    for job in victim_jobs:
                        begin = time.perf_counter()
                        result = client.analyze(
                            source=job["source"],
                            query=tuple(job["query"]),
                            input_types=job.get("input_types"),
                            payload=False)
                        latencies.append(time.perf_counter() - begin)
                        if result["fingerprint"] != \
                                expected[job["base"]]:
                            out["mismatches"].append(
                                job["name"] + ":ae-first-touch")
                        if not result["cached"]:
                            out["mismatches"].append(
                                job["name"] + ":ae-recomputed")
                    info = client.router_info()
                    client.shutdown()
                process.wait(timeout=60)
            except BaseException:
                process.terminate()
                raise
        latencies.sort()
        p95 = latencies[min(len(latencies) - 1,
                            int(0.95 * len(latencies)))]
        out["anti_entropy_%s" % variant] = {
            "interval": interval,
            "victim": victim,
            "victim_keys": len(victim_jobs),
            "restart_seconds": round(restart_seconds, 3),
            "repair_seconds": repair_seconds,
            "anti_entropy_passes": info["anti_entropy_passes"],
            "anti_entropy_repairs": info["anti_entropy_repairs"],
            "first_touch_p50": round(
                latencies[len(latencies) // 2], 5),
            "first_touch_p95": round(p95, 5),
            "first_touch_mean": round(
                sum(latencies) / len(latencies), 5),
        }
        print("  anti-entropy %s: first-touch p95 %.2fms over %d "
              "restarted keys (%d repair(s))"
              % (variant, p95 * 1000.0, len(victim_jobs),
                 info["anti_entropy_repairs"]), file=sys.stderr)
    with_ae = out["anti_entropy_on"]["first_touch_p95"]
    without_ae = out["anti_entropy_off"]["first_touch_p95"]
    out["p95_improvement"] = round(without_ae / with_ae, 2) \
        if with_ae else None
    return out


def chaos_bench_main(args) -> int:
    base = args.hotset_base
    print("one-shot CLI baseline (%s)..." % base, file=sys.stderr)
    oneshot = run_oneshot_cli([base])
    expected = {base: oneshot["per_program"][base]["fingerprint"]}
    hotset = make_hotset(min(args.hotset_width, 32), base=base)
    seconds = max(14.0, args.seconds)
    processes = min(args.processes, 2)
    threads = max(1, args.clients // processes)

    print("chaos churn: %d clients, %.0fs, seeded shard faults, "
          "SIGKILL + membership churn mid-run..."
          % (processes * threads, seconds), file=sys.stderr)
    chaos = run_chaos_churn(hotset, expected, processes, threads,
                            seconds)

    print("failover A/B: --replicate 1 vs --replicate 2...",
          file=sys.stderr)
    ab = run_failover_ab(hotset, expected)

    print("router kill: primary + standby, SIGKILL the primary "
          "mid-run...", file=sys.stderr)
    router_kill = run_router_kill(hotset, expected, processes, threads,
                                  seconds)

    print("anti-entropy A/B: repair latency with the pass on vs off...",
          file=sys.stderr)
    anti_entropy = run_anti_entropy_ab(hotset[:24], expected)

    report = {
        "schema": SCHEMA,
        "mode": "chaos",
        "label": args.label,
        "python": platform.python_version(),
        "oneshot_cli": oneshot,
        "hotset": {"base": base, "programs": len(hotset),
                   "zipf_s": 1.1,
                   "clients": processes * threads,
                   "seconds": seconds},
        "chaos": chaos,
        "failover_ab": ab,
        "router_kill": router_kill,
        "anti_entropy_ab": anti_entropy,
        "fingerprint_mismatches": sorted(set(
            chaos["mismatches"] + ab["mismatches"]
            + router_kill["mismatches"]
            + anti_entropy["mismatches"])),
    }

    print("\nchaos run    : %d requests, %d errors, %7.1f req/s "
          "(p50=%ss p95=%ss)"
          % (chaos["requests"], len(chaos["errors"]),
             chaos["requests_per_second"],
             chaos["latency"]["p50"], chaos["latency"]["p95"]))
    print("self-healing : %d restart(s), %d add(s), %d remove(s), "
          "%d failover(s), %d replication(s)"
          % (chaos["restarts"], chaos["shards_added"],
             chaos["shards_removed"], chaos["failovers"],
             chaos["replications"]))
    print("shard faults : %s" % (chaos["faults_injected_by_shards"]
                                 or "none recorded"))
    print("failover p95 : %.2fms without replication, %.2fms with "
          "(x%.2f better)"
          % (ab["replicate_1"]["first_touch_p95"] * 1000.0,
             ab["replicate_2"]["first_touch_p95"] * 1000.0,
             ab["p95_improvement"]))
    print("router kill  : %d requests, %d errors, standby promoted=%s, "
          "%d sync pull(s), %d anti-entropy repair(s)"
          % (router_kill["requests"], len(router_kill["errors"]),
             router_kill["standby_promoted"],
             router_kill["standby_sync_pulls"],
             router_kill["anti_entropy_repairs"]))
    print("anti-entropy : first-touch p95 %.2fms off, %.2fms on "
          "(x%.2f better; repair pass %ss after the kill)"
          % (anti_entropy["anti_entropy_off"]["first_touch_p95"]
             * 1000.0,
             anti_entropy["anti_entropy_on"]["first_touch_p95"]
             * 1000.0,
             anti_entropy["p95_improvement"],
             anti_entropy["anti_entropy_on"]["repair_seconds"]))

    if args.write_bench:
        path = Path(args.write_bench)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
        print("wrote %s" % path, file=sys.stderr)

    problems = []
    if report["fingerprint_mismatches"]:
        problems.append("fingerprint mismatches: %s"
                        % report["fingerprint_mismatches"][:6])
    if chaos["errors"]:
        problems.append("chaos run had client-visible errors: %s"
                        % chaos["errors"][:3])
    if chaos["restarts"] < 1:
        problems.append("no successful auto-restart")
    if chaos["shards_added"] < 1 or chaos["shards_removed"] < 1:
        problems.append("membership churn did not complete")
    if ab["replicate_2"]["first_touch_p95"] >= \
            ab["replicate_1"]["first_touch_p95"]:
        problems.append(
            "replication did not improve failover p95 (%.2fms with "
            "vs %.2fms without)"
            % (ab["replicate_2"]["first_touch_p95"] * 1000.0,
               ab["replicate_1"]["first_touch_p95"] * 1000.0))
    if router_kill["errors"]:
        problems.append("router kill leaked client-visible errors: %s"
                        % router_kill["errors"][:3])
    if not router_kill["standby_promoted"]:
        problems.append("standby never promoted itself after the "
                        "primary died")
    if anti_entropy["anti_entropy_on"]["anti_entropy_repairs"] < 1:
        problems.append("anti-entropy pass repaired nothing after the "
                        "shard restart")
    if anti_entropy["anti_entropy_on"]["first_touch_p95"] >= \
            anti_entropy["anti_entropy_off"]["first_touch_p95"]:
        problems.append(
            "anti-entropy did not improve restart first-touch p95 "
            "(%.2fms on vs %.2fms off)"
            % (anti_entropy["anti_entropy_on"]["first_touch_p95"]
               * 1000.0,
               anti_entropy["anti_entropy_off"]["first_touch_p95"]
               * 1000.0))
    for problem in problems:
        print("ERROR: %s" % problem, file=sys.stderr)
    return 1 if problems else 0


def router_bench_main(args) -> int:
    programs = benchmark_names(include_variants=False)
    print("one-shot CLI baseline (%d programs)..." % len(programs),
          file=sys.stderr)
    oneshot = run_oneshot_cli(programs)

    print("Table-3 through the router...", file=sys.stderr)
    table3 = run_table3_through_router(programs, oneshot)

    hotset = make_hotset(args.hotset_width, base=args.hotset_base)
    expected = {args.hotset_base:
                oneshot["per_program"][args.hotset_base]["fingerprint"]}
    shard_counts = [int(c) for c in args.shard_counts.split(",")]
    scaling = run_router_scaling(shard_counts, hotset, expected,
                                 args.clients, args.processes,
                                 args.seconds, args.max_memory_entries)

    print("failover: 2 shards, shared L2, SIGKILL mid-run...",
          file=sys.stderr)
    failover = run_router_failover(hotset[:16], expected,
                                   processes=2, threads=4,
                                   seconds=max(6.0, args.seconds))

    sweep = scaling["sweep"]
    base_rate = sweep[str(shard_counts[0])]["requests_per_second"]
    speedups = {str(count): round(sweep[str(count)]
                                  ["requests_per_second"] / base_rate,
                                  2)
                for count in shard_counts}
    report = {
        "schema": SCHEMA,
        "mode": "router",
        "label": args.label,
        "python": platform.python_version(),
        "suite": list(programs),
        "oneshot_cli": oneshot,
        "router_table3": table3,
        "hotset": {
            "base": args.hotset_base,
            "programs": len(hotset),
            "zipf_s": 1.1,
            "max_memory_entries_per_shard": args.max_memory_entries,
            "clients": args.clients,
            "load_processes": args.processes,
            "seconds_per_point": args.seconds,
        },
        "scaling": {"shards": sweep, "speedup_vs_1": speedups},
        "failover": failover,
        "fingerprint_mismatches": sorted(set(
            table3["mismatches"] + scaling["mismatches"]
            + failover["mismatches"])),
    }

    print("\nscaling (hot set of %d programs, %d-entry shard caches):"
          % (len(hotset), args.max_memory_entries))
    for count in shard_counts:
        point = sweep[str(count)]
        print("  %d shard(s): %8.1f req/s  (x%.2f, hit rate %s, "
              "p50=%ss p95=%ss)"
              % (count, point["requests_per_second"],
                 speedups[str(count)], point["cache_hit_rate"],
                 point["latency"]["p50"], point["latency"]["p95"]))
    print("failover    : %d requests, %d errors, %d failovers, "
          "killed %s" % (failover["requests"], len(failover["errors"]),
                         failover["failovers"],
                         failover["killed_shard"]))

    if args.write_bench:
        path = Path(args.write_bench)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
        print("wrote %s" % path, file=sys.stderr)

    problems = []
    if report["fingerprint_mismatches"]:
        problems.append("fingerprint mismatches: %s"
                        % report["fingerprint_mismatches"][:6])
    for count, errors in ((c, sweep[str(c)]["errors"])
                          for c in shard_counts):
        if errors:
            problems.append("scaling@%d client failures: %s"
                            % (count, errors[:3]))
    if failover["errors"]:
        problems.append("failover lost requests: %s"
                        % failover["errors"][:3])
    if failover["failovers"] < 1:
        problems.append("failover phase never failed over")
    bars = {2: args.min_speedup_2, 4: args.min_speedup_4}
    for count, bar in bars.items():
        if str(count) in speedups and speedups[str(count)] < bar:
            problems.append("%d-shard speedup %.2fx under the %.1fx "
                            "bar" % (count, speedups[str(count)], bar))
    for problem in problems:
        print("ERROR: %s" % problem, file=sys.stderr)
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark repro serve (and the repro router "
                    "cluster) against the one-shot CLI.")
    parser.add_argument("--mode", choices=("server", "router", "chaos"),
                        default="server",
                        help="'server': the PR 5 single-daemon phases; "
                             "'router': the PR 6 cluster phases; "
                             "'chaos': the PR 7/9 self-healing phases "
                             "(seeded faults, kill/restart, membership "
                             "churn, replication failover A/B, "
                             "primary-router kill with a standby, "
                             "anti-entropy repair-latency A/B)")
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent clients in the warm/coalescing "
                             "and scaling phases (default 32)")
    parser.add_argument("--rounds", type=int, default=4,
                        help="suite passes per client in the warm "
                             "phase (default 4)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required warm-server throughput multiple "
                             "over the one-shot CLI (default 5)")
    parser.add_argument("--label", default=None)
    parser.add_argument("--write-bench", metavar="FILE",
                        help="write the report as JSON "
                             "(BENCH_pr5.json / BENCH_pr6.json)")
    # router-mode knobs
    parser.add_argument("--shard-counts", default="1,2,4",
                        help="comma-separated shard counts for the "
                             "scaling sweep (default 1,2,4)")
    parser.add_argument("--processes", type=int, default=4,
                        help="load-generator worker processes "
                             "(default 4; threads = clients/processes)")
    parser.add_argument("--seconds", type=float, default=8.0,
                        help="measured seconds per scaling point "
                             "(default 8)")
    parser.add_argument("--hotset-width", type=int, default=48,
                        help="distinct programs in the hot set "
                             "(default 48)")
    parser.add_argument("--hotset-base", default="QU",
                        help="benchmark the hot set derives from "
                             "(default QU)")
    parser.add_argument("--max-memory-entries", type=int, default=16,
                        help="per-shard in-memory cache entries in the "
                             "scaling sweep (default 16; the working "
                             "set must not fit in one shard)")
    parser.add_argument("--min-speedup-2", type=float, default=1.7,
                        help="required 2-shard speedup (default 1.7)")
    parser.add_argument("--min-speedup-4", type=float, default=3.0,
                        help="required 4-shard speedup (default 3.0)")
    parser.add_argument("--load-worker", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.load_worker:
        return load_worker_main()
    if args.mode == "router":
        return router_bench_main(args)
    if args.mode == "chaos":
        return chaos_bench_main(args)

    programs = benchmark_names(include_variants=False)
    print("one-shot CLI baseline (%d programs)..." % len(programs),
          file=sys.stderr)
    oneshot = run_oneshot_cli(programs)
    print("server phases (%d clients x %d rounds)..."
          % (args.clients, args.rounds), file=sys.stderr)
    server_report = run_server_phases(programs, args.clients,
                                      args.rounds, oneshot)

    warm = server_report["server_warm"]
    speedup = round(warm["requests_per_second"]
                    / oneshot["requests_per_second"], 2)
    report = {
        "schema": SCHEMA,
        "label": args.label,
        "python": platform.python_version(),
        "suite": list(programs),
        "oneshot_cli": oneshot,
        "warm_speedup_vs_oneshot": speedup,
        **server_report,
    }

    print("\none-shot CLI : %7.2f req/s (%d requests, %.2fs)"
          % (oneshot["requests_per_second"], oneshot["requests"],
             oneshot["total_seconds"]))
    print("warm server  : %7.2f req/s (%d clients, %d requests, "
          "%.2fs, p50=%ss p95=%ss)"
          % (warm["requests_per_second"], warm["clients"],
             warm["requests"], warm["total_seconds"],
             warm["latency"]["p50"], warm["latency"]["p95"]))
    print("speedup      : %7.2fx (bar: %.1fx)"
          % (speedup, args.min_speedup))
    coal = report["coalescing"]
    print("coalescing   : %d clients -> %d execution(s), %d riders"
          % (coal["clients"], coal["analyses_executed"],
             coal["coalesced"]))

    if args.write_bench:
        path = Path(args.write_bench)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
        print("wrote %s" % path, file=sys.stderr)

    problems = []
    if report["fingerprint_mismatches"]:
        problems.append("fingerprint mismatches: %s"
                        % report["fingerprint_mismatches"])
    if warm["failures"]:
        problems.append("client failures: %s" % warm["failures"][:3])
    if coal["failures"]:
        problems.append("coalescing client failures: %s"
                        % coal["failures"][:3])
    if coal["analyses_executed"] != 1:
        problems.append("coalescing ran %d analyses (expected 1)"
                        % coal["analyses_executed"])
    if speedup < args.min_speedup:
        problems.append("warm speedup %.2fx under the %.1fx bar"
                        % (speedup, args.min_speedup))
    for problem in problems:
        print("ERROR: %s" % problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
