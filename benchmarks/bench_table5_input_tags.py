"""Table 5 — Accuracy Results: Input Tags.

Same columns as Table 4 but over the *input* patterns of the analyzed
predicates (what is known about arguments at call time).  The paper
reports a smaller mean improvement than for output tags (21% vs 50%),
which is asserted qualitatively: input improvement <= output
improvement on average.
"""

import pytest

from repro.analysis import compare_tags, format_table, format_tag_row
from repro.benchprogs import benchmark_names

from .conftest import cached_analysis, report

PAPER_MEAN_INPUT_AR = 0.21

WORKLOADS = ["AR", "AR1", "CS", "DS", "BR", "KA", "LDS", "LPE", "LPL",
             "PE", "PG", "PL", "PR", "QU"]


def build_comparison(name, which):
    type_analysis = cached_analysis(name)
    base_analysis = cached_analysis(name, baseline=True)
    if which == "in":
        cmp = compare_tags(type_analysis.input_tags(),
                           base_analysis.input_tags())
    else:
        cmp = compare_tags(type_analysis.output_tags(),
                           base_analysis.output_tags())
    return cmp, type_analysis


def test_table5_input_tags(benchmark):
    def gather():
        rows = []
        in_ratios, out_ratios = [], []
        for name in WORKLOADS:
            cmp, analysis = build_comparison(name, "in")
            counts = cmp.tag_counts()
            clause_total, clause_improved, _ = cmp.clause_counts(
                analysis.clauses_per_pred())
            rows.append([name] + format_tag_row(
                counts, cmp.total_arguments, cmp.improved_arguments,
                clause_total, clause_improved))
            if cmp.total_arguments:
                in_ratios.append(cmp.argument_ratio)
            out_cmp, _ = build_comparison(name, "out")
            if out_cmp.total_arguments:
                out_ratios.append(out_cmp.argument_ratio)
        return rows, in_ratios, out_ratios

    rows, in_ratios, out_ratios = benchmark.pedantic(gather, rounds=1,
                                                     iterations=1)
    print()
    report(format_table(
        ["program", "NI", "CO", "LI", "ST", "DI", "HY",
         "A", "AI", "AR", "C", "CI", "CR"],
        rows,
        title="Table 5: Accuracy Results, Input Tags "
              "(type analysis; baseline in parentheses)"))
    mean_in = sum(in_ratios) / len(in_ratios)
    mean_out = sum(out_ratios) / len(out_ratios)
    print("mean input AR = %.2f (paper %.2f); mean output AR = %.2f"
          % (mean_in, PAPER_MEAN_INPUT_AR, mean_out))
    # paper shape: output tags improve more than input tags
    assert mean_in <= mean_out
