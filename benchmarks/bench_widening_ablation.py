"""Ablation — the design choices DESIGN.md calls out.

1. **Widening style**: the paper's widening vs the or-width-1 finite
   subdomain (roughly Bruynooghe/Janssens' restriction flavour) vs
   or-width-2/5 — accuracy is measured by how many §2 examples stay
   exact and how many argument tags survive.
2. **Polyvariance cap**: the max_input_patterns sweep, showing the
   call-pattern widening trade-off discussed in §8/§9.
3. **Widening delay**: widening immediately vs postponing until the
   structure appears (the AR1 requirement from §2).
"""

import pytest

from repro import AnalysisConfig, analyze
from repro.analysis.tags import tags_of_subst
from repro.domains.pattern import PAT_BOTTOM
from repro.typegraph import g_equiv, parse_rules

from tests.test_section2_examples import (FIGURE2, FIGURE3, NREVERSE,
                                          PROCESS)
from repro.analysis import format_table
from .conftest import report

CASES = [
    ("nreverse", NREVERSE, ("nreverse", 2), 0,
     "T ::= [] | cons(Any,T)"),
    ("process", PROCESS, ("process", 2), 1,
     "S ::= 0 | c(Any,S) | d(Any,S)"),
    ("figure2", FIGURE2, ("add", 2), 0, """
     T ::= '+'(T,T1) | 0
     T1 ::= '*'(T1,T2) | 1
     T2 ::= cst(Any) | par(T) | var(Any)
     """),
    ("figure3", FIGURE3, ("add", 2), 0, """
     T ::= cst(Any) | var(Any) | par(T) | '*'(T1,T2) | '+'(T,T1)
     T1 ::= cst(Any) | var(Any) | par(T) | '*'(T1,T2)
     T2 ::= cst(Any) | var(Any) | par(T)
     """),
]


def exactness_under(config):
    exact = 0
    for name, source, query, arg, expected_text in CASES:
        analysis = analyze(source, query, config=config)
        out = analysis.output
        if out is PAT_BOTTOM:
            continue
        from repro.domains.pattern import value_of
        got = value_of(out, out.sv[arg], analysis.domain, {})
        if g_equiv(got, parse_rules(expected_text)):
            exact += 1
    return exact


def test_or_width_ablation(benchmark):
    """Accuracy under the or-degree restriction: the paper's full
    domain is the most precise."""
    def sweep():
        results = []
        for cap in (None, 5, 2, 1):
            config = AnalysisConfig(max_or_width=cap)
            results.append(("full" if cap is None else "or<=%d" % cap,
                            exactness_under(config)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    report(format_table(["widening", "exact §2 results (of %d)"
                        % len(CASES)], results,
                       title="Ablation: or-degree restriction"))
    by_name = dict(results)
    assert by_name["full"] == len(CASES)
    assert by_name["or<=1"] < by_name["full"]


def test_polyvariance_cap_ablation(benchmark):
    """max_input_patterns sweep on the accumulator example."""
    def sweep():
        results = []
        for cap in (1, 2, 4, 8, 16):
            config = AnalysisConfig(max_input_patterns=cap)
            analysis = analyze(PROCESS, ("process", 2), config=config)
            out = analysis.output
            from repro.domains.pattern import value_of
            got = value_of(out, out.sv[1], analysis.domain, {})
            exact = g_equiv(got, parse_rules(
                "S ::= 0 | c(Any,S) | d(Any,S)"))
            results.append((cap, analysis.stats.entries_created,
                            analysis.stats.procedure_iterations,
                            "exact" if exact else "approx"))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    report(format_table(
        ["cap", "entries", "proc iterations", "accumulator type"],
        results, title="Ablation: polyvariance cap (process/3)"))
    # the analysis stays sound and terminates at every cap
    assert len(results) == 5


def test_widening_vs_finite_subdomain(benchmark):
    """§7's design choice, measured: the paper's widening against the
    Bruynooghe/Janssens finite subdomain (functor-depth restriction,
    implemented in repro.typegraph.depthbound) and against the
    Gallagher/de Waal-style same-functor merging it degenerates to at
    k=1 (§10's comparison)."""
    from repro.domains.leaf import DepthBoundLeafDomain
    from repro.domains.pattern import value_of

    def sweep():
        results = []
        for label, domain in [("paper widening", None),
                              ("depth bound k=1", DepthBoundLeafDomain(1)),
                              ("depth bound k=2", DepthBoundLeafDomain(2))]:
            exact = 0
            for name, source, query, arg, expected_text in CASES:
                analysis = analyze(source, query, domain=domain)
                out = analysis.output
                if out is PAT_BOTTOM:
                    continue
                got = value_of(out, out.sv[arg], analysis.domain, {})
                if g_equiv(got, parse_rules(expected_text)):
                    exact += 1
            results.append((label, exact))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    report(format_table(
        ["domain", "exact §2 results (of %d)" % len(CASES)], results,
        title="Ablation: widening vs finite subdomain"))
    by_label = dict(results)
    assert by_label["paper widening"] == len(CASES)
    # the finite subdomain at k=1 loses at least one example
    assert by_label["depth bound k=1"] < len(CASES)


def test_widening_delay_ablation(benchmark):
    """Figure 3 needs the postponed widening; with delay 0 and
    immediate strictness the layered type may degrade."""
    def sweep():
        results = []
        for delay, strict_after in ((0, 0), (0, 2), (2, 12), (4, 20)):
            config = AnalysisConfig(widening_delay=delay,
                                    strict_widening_after=strict_after)
            analysis = analyze(FIGURE3, ("add", 2), config=config)
            out = analysis.output
            from repro.domains.pattern import value_of
            got = value_of(out, out.sv[0], analysis.domain, {})
            exact = g_equiv(got, parse_rules(CASES[3][4]))
            results.append((delay, strict_after,
                            analysis.stats.procedure_iterations,
                            "exact" if exact else "approx"))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    report(format_table(
        ["join delay", "strict after", "proc iterations", "figure3"],
        results, title="Ablation: widening delay (AR1)"))
    # the default configuration is exact
    assert results[2][3] == "exact"
