"""Tests for the batch analysis driver."""

from repro import analyze
from repro.benchprogs import benchmark
from repro.domains.pattern import subst_eq
from repro.service.batch import (Job, jobs_from_benchmarks, run_batch)
from repro.service.cache import ResultCache


def small_jobs():
    return jobs_from_benchmarks(["QU", "AR"])


def stable(payload):
    """Payload with the wall-clock field masked (all that may differ
    between two runs of the same workload)."""
    masked = dict(payload)
    masked["stats"] = {k: v for k, v in payload["stats"].items()
                       if k != "cpu_time"}
    return masked


def test_serial_batch_matches_direct_analysis():
    report = run_batch(small_jobs())
    assert report.hits == 0 and report.misses == 2
    for job_result in report.results:
        bp = benchmark(job_result.name)
        direct = analyze(bp.source, bp.query, input_types=bp.input_types)
        decoded = job_result.result()
        assert subst_eq(decoded.output, direct.result.output,
                        direct.domain)
        assert decoded.stats.procedure_iterations == \
            direct.stats.procedure_iterations


def test_batch_results_preserve_job_order():
    report = run_batch(small_jobs())
    assert [r.name for r in report.results] == ["QU", "AR"]


def test_cache_hits_skip_analysis(tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_batch(small_jobs(), cache)
    assert cold.misses == 2
    warm = run_batch(small_jobs(), cache)
    assert warm.hits == 2 and warm.misses == 0
    assert all(r.cached for r in warm.results)
    cold_by_name = cold.by_name()
    for job_result in warm.results:
        assert job_result.payload == cold_by_name[job_result.name].payload


def test_warm_cache_survives_process_restart(tmp_path):
    run_batch(small_jobs(), ResultCache(tmp_path))
    fresh = ResultCache(tmp_path)
    warm = run_batch(small_jobs(), fresh)
    assert warm.hits == 2
    assert fresh.stats.disk_hits == 2


def test_parallel_batch_matches_serial(tmp_path):
    serial = run_batch(small_jobs())
    parallel = run_batch(small_jobs(), ResultCache(tmp_path), workers=2)
    assert parallel.misses == 2
    serial_by_name = serial.by_name()
    for job_result in parallel.results:
        assert stable(job_result.payload) == \
            stable(serial_by_name[job_result.name].payload)
    # and the pool populated the cache
    warm = run_batch(small_jobs(), ResultCache(tmp_path))
    assert warm.hits == 2


def test_mixed_hit_miss_batch(tmp_path):
    cache = ResultCache(tmp_path)
    run_batch(jobs_from_benchmarks(["QU"]), cache)
    report = run_batch(small_jobs(), cache)
    assert report.hits == 1 and report.misses == 1
    by_name = report.by_name()
    assert by_name["QU"].cached and not by_name["AR"].cached


def test_custom_job_and_baseline():
    source = "p([]).\np([X|T]) :- p(T).\n"
    jobs = [Job("lists", source, ("p", 1)),
            Job("lists-baseline", source, ("p", 1), baseline=True)]
    report = run_batch(jobs)
    baseline_payload = report.by_name()["lists-baseline"].payload
    assert baseline_payload["domain"]["name"] == "trivial"
    assert report.by_name()["lists"].payload["domain"]["name"] == "type"
    # distinct cache keys for the two domains
    assert jobs[0].key() != jobs[1].key()


def test_jobs_from_benchmarks_defaults_to_corpus():
    jobs = jobs_from_benchmarks()
    assert len(jobs) == 15
    assert jobs[0].name == "KA"
