"""Tests for the §10 extension: a type database for the widening.

The paper's conclusion proposes "providing a database of types that
the widening can use whenever an ancestor must be selected and/or
replaced".  Our widening consults the database in the replacement
rule: instead of collapsing an overgrown region to Any, the smallest
covering database type is grafted.
"""

import pytest

from repro import AnalysisConfig, analyze
from repro.domains.pattern import PAT_BOTTOM, value_of
from repro.typegraph import (g_any, g_atom, g_functor, g_int, g_le,
                             g_list_of, g_union, g_widen, parse_rules)


class TestGWidenWithDatabase:
    def test_database_type_grafted_instead_of_any(self):
        # element and spine grow together with *different* element pf
        # sets at each level — the pathological case where strict mode
        # would use Any; the database supplies "list of Any".
        old = parse_rules("""
        T ::= [] | cons(T1,T2)
        T1 ::= []
        T2 ::= []
        """)
        new = parse_rules("""
        T ::= [] | cons(T1,T2)
        T1 ::= [] | cons(T3,T4)
        T3 ::= a | f(Any)
        T4 ::= []
        T2 ::= [] | cons(T4,T4)
        """)
        lists = g_list_of(g_any())
        with_db = g_widen(old, new, strict=True,
                          type_database=[lists])
        without_db = g_widen(old, new, strict=True)
        # both are sound upper bounds
        assert g_le(old, with_db) and g_le(new, with_db)
        assert g_le(old, without_db) and g_le(new, without_db)
        # the database keeps at least as much precision
        assert g_le(with_db, without_db)

    def test_database_never_breaks_upper_bound(self):
        db = [g_list_of(g_any()), g_int(),
              parse_rules("T ::= 0 | s(T)")]
        pairs = [
            (g_atom("[]"), g_functor(".", [g_any(), g_atom("[]")])),
            (parse_rules("T ::= 0"), parse_rules("T ::= 0 | s(T1)\nT1 ::= 0")),
        ]
        for old, new in pairs:
            w = g_widen(old, new, type_database=db)
            assert g_le(old, w) and g_le(new, w)

    def test_irrelevant_database_is_harmless(self):
        old = parse_rules("T ::= [] | cons(Any,T1)\nT1 ::= []")
        new = parse_rules("""
        T ::= [] | cons(Any,T1)
        T1 ::= [] | cons(Any,T2)
        T2 ::= []
        """)
        w = g_widen(old, new, type_database=[g_int()])
        assert g_le(w, g_list_of(g_any())) and g_le(g_list_of(g_any()), w)


class TestEngineIntegration:
    def test_config_carries_database(self, nreverse_source):
        config = AnalysisConfig(type_database=[g_list_of(g_any())])
        analysis = analyze(nreverse_source, ("nreverse", 2),
                           config=config)
        assert analysis.domain.type_database is not None
        out = analysis.output
        assert out is not PAT_BOTTOM
        g = value_of(out, out.sv[0], analysis.domain, {})
        assert g_le(g, g_list_of(g_any()))

    def test_database_results_remain_sound(self):
        src = """
        process(X,Y) :- process(X,0,Y).
        process([],X,X).
        process([c(X1)|Y],Acc,X) :- process(Y,c(X1,Acc),X).
        process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
        """
        config = AnalysisConfig(type_database=[
            g_list_of(g_any()),
            parse_rules("S ::= 0 | c(Any,S) | d(Any,S)"),
        ])
        analysis = analyze(src, ("process", 2), config=config)
        out = analysis.output
        g = value_of(out, out.sv[1], analysis.domain, {})
        assert g_le(g, parse_rules("S ::= 0 | c(Any,S) | d(Any,S)"))
        assert not g.is_bottom()
