"""Unit tests for tag extraction (Tables 4–5)."""

import pytest

from repro import analyze
from repro.analysis.tags import (TagComparison, compare_tags,
                                 tag_of_grammar, tags_of_subst)
from repro.domains.leaf import TrivialLeafDomain, TypeLeafDomain
from repro.typegraph import (g_any, g_atom, g_bottom, g_functor, g_int,
                             g_int_literal, g_list_of, g_union, parse_rules)

D = TypeLeafDomain()


class TestTagOfGrammar:
    def test_nil(self):
        assert tag_of_grammar(g_atom("[]")) == "NI"

    def test_cons(self):
        assert tag_of_grammar(
            g_functor(".", [g_any(), g_any()])) == "CO"

    def test_cons_of_list_still_co(self):
        # a sure cons that is also a list: CO is the more specific tag
        g = g_functor(".", [g_any(), g_list_of(g_any())])
        assert tag_of_grammar(g) == "CO"

    def test_list(self):
        assert tag_of_grammar(g_list_of(g_any())) == "LI"

    def test_structure(self):
        assert tag_of_grammar(g_functor("f", [g_any()])) == "ST"
        assert tag_of_grammar(
            g_union(g_functor("f", [g_any()]),
                    g_functor("g", [g_any()]))) == "ST"

    def test_atom_constants(self):
        assert tag_of_grammar(g_atom("a")) == "DI"
        assert tag_of_grammar(g_union(g_atom("a"), g_atom("b"))) == "DI"

    def test_integers_are_constants(self):
        assert tag_of_grammar(g_int()) == "DI"
        assert tag_of_grammar(g_int_literal(3)) == "DI"

    def test_hybrid(self):
        g = g_union(g_atom("a"), g_functor("f", [g_any()]))
        assert tag_of_grammar(g) == "HY"

    def test_any_has_no_tag(self):
        assert tag_of_grammar(g_any()) is None

    def test_bottom_has_no_tag(self):
        assert tag_of_grammar(g_bottom()) is None

    def test_mixed_list_and_atom_is_hy(self):
        g = g_union(g_list_of(g_any()), g_atom("a"))
        # [] | cons | a: constants [] and a plus structure cons -> HY
        assert tag_of_grammar(g) == "HY"

    def test_recursive_structure(self):
        g = parse_rules("T ::= leaf(Any) | node(T,T)")
        assert tag_of_grammar(g) == "ST"


class TestTagsOfSubst:
    def test_type_domain_tags(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        tags = tags_of_subst(analysis.output, analysis.domain)
        assert tags == ["LI", "LI"]

    def test_baseline_leaf_has_no_tag(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2),
                           baseline=True)
        tags = tags_of_subst(analysis.output, analysis.domain)
        assert tags == [None, None]

    def test_baseline_sure_pattern_has_tag(self):
        src = "p(f(X), [], [a|T]) :- q(T). q(_)."
        analysis = analyze(src, ("p", 3), baseline=True)
        tags = tags_of_subst(analysis.output, analysis.domain)
        assert tags == ["ST", "NI", "CO"]


class TestComparison:
    def test_improvement_counting(self):
        type_tags = {("p", 2): ["LI", None], ("q", 1): ["DI"]}
        base_tags = {("p", 2): [None, None], ("q", 1): ["DI"]}
        cmp = compare_tags(type_tags, base_tags)
        assert cmp.total_arguments == 3
        assert cmp.improved_arguments == 1
        assert cmp.argument_ratio == pytest.approx(1 / 3)

    def test_clause_counting(self):
        type_tags = {("p", 2): ["LI", None], ("q", 1): [None]}
        base_tags = {("p", 2): [None, None], ("q", 1): [None]}
        cmp = compare_tags(type_tags, base_tags)
        total, improved, ratio = cmp.clause_counts(
            {("p", 2): 3, ("q", 1): 2})
        assert (total, improved) == (5, 3)
        assert ratio == pytest.approx(3 / 5)

    def test_tag_counts(self):
        type_tags = {("p", 2): ["LI", "NI"]}
        base_tags = {("p", 2): [None, "NI"]}
        cmp = compare_tags(type_tags, base_tags)
        counts = cmp.tag_counts()
        assert counts["LI"] == (1, 0)
        assert counts["NI"] == (1, 1)


class TestEndToEndImprovement:
    """The type analysis must beat the baseline on list programs —
    the qualitative claim of Tables 4/5."""

    def test_nreverse_improves_over_baseline(self, nreverse_source):
        type_analysis = analyze(nreverse_source, ("nreverse", 2))
        base_analysis = analyze(nreverse_source, ("nreverse", 2),
                                baseline=True)
        cmp = compare_tags(type_analysis.output_tags(),
                           base_analysis.output_tags())
        assert cmp.improved_arguments > 0

    def test_queens_improves(self):
        from repro.benchprogs import benchmark
        bp = benchmark("QU")
        type_analysis = analyze(bp.source, bp.query)
        base_analysis = analyze(bp.source, bp.query, baseline=True)
        cmp = compare_tags(type_analysis.output_tags(),
                           base_analysis.output_tags())
        assert cmp.improved_arguments > 0
        # and the baseline never beats the type analysis
        for pred, (t_tags, b_tags) in cmp.pred_tags.items():
            for t, b in zip(t_tags, b_tags):
                assert not (t is None and b is not None), \
                    "baseline inferred %s where type analysis did not" % b
