"""Tests for the program representation layer."""

import pytest

from repro.prolog.program import (Clause, Program, clause_from_term,
                                  parse_program)
from repro.prolog.parser import parse_term
from repro.prolog.terms import Atom, Struct, Var


class TestClause:
    def test_fact(self):
        clause = clause_from_term(parse_term("p(a)"))
        assert clause.pred == ("p", 1)
        assert clause.body == []

    def test_rule_body_flattened(self):
        clause = clause_from_term(parse_term("p :- a, b, c"))
        assert [g.name for g in clause.body] == ["a", "b", "c"]

    def test_true_body_removed(self):
        clause = clause_from_term(parse_term("p :- true"))
        assert clause.body == []

    def test_atom_head(self):
        clause = clause_from_term(parse_term("main :- run"))
        assert clause.pred == ("main", 0)

    def test_repr_roundtrips_through_parser(self):
        clause = clause_from_term(
            parse_term("app([F|T], S, [F|R]) :- app(T, S, R)"))
        reparsed = clause_from_term(parse_term(repr(clause).rstrip(".")))
        assert reparsed.pred == clause.pred
        assert len(reparsed.body) == len(clause.body)


class TestProgram:
    def test_procedures_grouped(self):
        program = parse_program("p(a). q(b). p(c).")
        assert program.num_procedures == 2
        assert len(program.procedure(("p", 1)).clauses) == 2

    def test_clause_order_preserved(self):
        program = parse_program("p(1). p(2). p(3).")
        values = [c.head.args[0].value
                  for c in program.procedure(("p", 1)).clauses]
        assert values == [1, 2, 3]

    def test_directives_separated(self):
        program = parse_program(":- dynamic(foo). p(a).")
        assert len(program.directives) == 1
        assert program.num_clauses == 1

    def test_defined(self):
        program = parse_program("p(a).")
        assert program.defined(("p", 1))
        assert not program.defined(("p", 2))
        assert not program.defined(("q", 1))

    def test_all_clauses_in_order(self):
        program = parse_program("a. b. a2 :- a.")
        preds = [c.pred for c in program.all_clauses()]
        assert preds == [("a", 0), ("b", 0), ("a2", 0)]

    def test_same_name_different_arity(self):
        program = parse_program("p(a). p(a, b).")
        assert program.num_procedures == 2

    def test_repr(self):
        program = parse_program("p(a).")
        assert "1 procedures" in repr(program)
