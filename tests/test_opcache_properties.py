"""Cache-correctness properties: every memoized type-graph operation
returns exactly what the uncached computation returns, and a whole
fixpoint run produces the identical polyvariant table with the
operation caches on and off.

The comparison is intentionally *bit-level*: results are canonically
serialized (:mod:`repro.service.serialize`) and the JSON texts
compared, so even a "semantically equal but structurally different"
divergence would fail.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import analyze
from repro.benchprogs import benchmark
from repro.service.serialize import canonical_json, encode_result
from repro.typegraph import (g_any, g_atom, g_functor, g_int,
                             g_int_literal, g_intersect, g_le, g_list_of,
                             g_union, g_widen)
from repro.typegraph import opcache

# -- strategies (compact version of test_typegraph_properties') --------------

_ATOMS = ("a", "b", "[]", "foo")
_FUNCTORS = (("f", 1), ("g", 2), (".", 2))


def _grammars(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([g_any(), g_int()]),
            st.sampled_from(list(_ATOMS)).map(g_atom),
            st.integers(0, 3).map(g_int_literal),
        )
    sub = _grammars(depth - 1)
    return st.one_of(
        _grammars(0),
        st.builds(lambda name_arity, args:
                  g_functor(name_arity[0], args[:name_arity[1]]),
                  st.sampled_from(list(_FUNCTORS)),
                  st.lists(sub, min_size=2, max_size=2)),
        st.builds(g_union, sub, sub),
        st.builds(g_list_of, sub),
    )


grammars = _grammars(2)
widths = st.sampled_from([None, 1, 2, 5])


@pytest.fixture(autouse=True)
def _cache_enabled_and_restored():
    was_enabled = opcache.enabled()
    opcache.configure(enabled=True)
    yield
    opcache.configure(enabled=was_enabled)


def _uncached(op, *args):
    """Run ``op`` with the caches switched off."""
    opcache.configure(enabled=False)
    try:
        return op(*args)
    finally:
        opcache.configure(enabled=True)


# -- per-operation equivalence ------------------------------------------------

@given(grammars, grammars)
@settings(max_examples=120, deadline=None)
def test_g_le_cached_equals_uncached(g1, g2):
    assert g_le(g1, g2) == _uncached(g_le, g1, g2)


@given(grammars, grammars, widths)
@settings(max_examples=120, deadline=None)
def test_g_union_cached_equals_uncached(g1, g2, width):
    cached = g_union(g1, g2, width)
    uncached = _uncached(g_union, g1, g2, width)
    # interning makes "equal" mean "identical object"
    assert cached is uncached


@given(grammars, grammars, widths)
@settings(max_examples=120, deadline=None)
def test_g_intersect_cached_equals_uncached(g1, g2, width):
    assert g_intersect(g1, g2, width) is _uncached(g_intersect,
                                                   g1, g2, width)


@given(grammars, grammars, widths)
@settings(max_examples=60, deadline=None)
def test_g_widen_cached_equals_uncached(g1, g2, width):
    assert g_widen(g1, g2, width) is _uncached(g_widen, g1, g2, width)


@given(grammars, grammars)
@settings(max_examples=60, deadline=None)
def test_g_widen_gentle_cached_equals_uncached(g1, g2):
    assert g_widen(g1, g2, strict=False) is _uncached(
        lambda a, b: g_widen(a, b, strict=False), g1, g2)


# -- whole-analysis equivalence ----------------------------------------------

def _table_json(analysis):
    obj = encode_result(analysis.result)
    # timing and cache-traffic stats legitimately differ run to run
    obj.pop("stats")
    return canonical_json(obj)


@pytest.mark.parametrize("name", ["QU", "PE", "PG", "PL", "DS"])
def test_analyze_identical_with_and_without_opcache(name):
    bp = benchmark(name)
    with_cache = analyze(bp.source, bp.query, input_types=bp.input_types)
    assert with_cache.stats.opcache_hits > 0
    opcache.configure(enabled=False)
    try:
        without = analyze(bp.source, bp.query, input_types=bp.input_types)
        assert without.stats.opcache_hits == 0
        assert without.stats.opcache_misses == 0
    finally:
        opcache.configure(enabled=True)
    assert _table_json(with_cache) == _table_json(without)
    assert (with_cache.stats.procedure_iterations
            == without.stats.procedure_iterations)
    assert (with_cache.stats.clause_iterations
            == without.stats.clause_iterations)
