"""Tests for the ``repro serve`` daemon and its client.

Two layers:

* **subprocess smoke** — a real ``repro serve`` child driven through
  :class:`repro.service.client.ServeClient`: fingerprints identical to
  one-shot in-process analysis, duplicate in-flight requests coalesced
  to a single execution, graceful shutdown.
* **embedded** — an :class:`AnalysisServer` inside the test's event
  loop with a slowed-down execution hook, which makes backpressure,
  timeout, and drain behaviour deterministic.
"""

import asyncio
import json
import threading
import time

import pytest

from repro import analyze
from repro.benchprogs import benchmark
from repro.service.cache import ResultCache
from repro.service.client import ServeClient, ServeError, spawn_server
from repro.service.serialize import result_fingerprint
from repro.service import server as server_module
from repro.service.server import AnalysisServer, RequestError


def direct_fingerprint(name):
    bp = benchmark(name)
    analysis = analyze(bp.source, bp.query, input_types=bp.input_types)
    return result_fingerprint(analysis.result)


# -- subprocess smoke --------------------------------------------------------

@pytest.fixture(scope="module")
def served():
    process, host, port = spawn_server("--timeout", "120")
    yield host, port
    try:
        with ServeClient(host, port, timeout=10) as client:
            client.shutdown()
        process.wait(timeout=30)
    except Exception:
        process.terminate()
        process.wait(timeout=30)


def test_benchmark_fingerprint_matches_oneshot(served):
    host, port = served
    with ServeClient(host, port) as client:
        result = client.analyze(benchmark="QU")
    assert result["fingerprint"] == direct_fingerprint("QU")
    assert result["payload"]["entries"]


def test_repeat_is_cache_hit(served):
    host, port = served
    with ServeClient(host, port) as client:
        first = client.analyze(benchmark="PL", payload=False)
        second = client.analyze(benchmark="PL", payload=False)
    assert second["cached"]
    assert second["fingerprint"] == first["fingerprint"]


def test_source_query_and_input_types(served, nreverse_source):
    host, port = served
    with ServeClient(host, port) as client:
        result = client.analyze(source=nreverse_source,
                                query=("nreverse", 2),
                                input_types=["list", "any"])
    direct = analyze(nreverse_source, ("nreverse", 2),
                     input_types=["list", "any"])
    assert result["fingerprint"] == result_fingerprint(direct.result)


def test_parallel_duplicates_coalesce_to_one_execution(served):
    """The acceptance-criteria scenario: N concurrent identical
    requests on a cold key -> one underlying analysis, N responders,
    all fingerprints identical to the one-shot CLI's."""
    host, port = served
    # a fresh source no other test analyzes -> cold CacheKey
    source = """
    coal([], []).
    coal([X|Xs], [f(X)|R]) :- coal(Xs, R).
    """
    with ServeClient(host, port) as client:
        before = client.stats()
    results = []
    errors = []

    def fire():
        try:
            with ServeClient(host, port) as client:
                results.append(client.analyze(source=source,
                                              query=("coal", 2),
                                              payload=False))
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=fire) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(results) == 8
    fingerprints = {r["fingerprint"] for r in results}
    assert fingerprints == \
        {result_fingerprint(analyze(source, ("coal", 2)).result)}
    with ServeClient(host, port) as client:
        after = client.stats()
    assert after["analyses_executed"] - before["analyses_executed"] == 1
    coalesced = sum(1 for r in results if r["coalesced"])
    cached = sum(1 for r in results if r["cached"])
    assert coalesced + cached == 7
    assert after["coalesced"] - before["coalesced"] == coalesced


def test_batch_op(served):
    host, port = served
    with ServeClient(host, port) as client:
        report = client.batch(benchmarks=["QU", "PL"])
    names = [job["name"] for job in report["jobs"]]
    assert names == ["QU", "PL"]
    for job in report["jobs"]:
        assert job["ok"]
        assert job["fingerprint"] == direct_fingerprint(job["name"])


def test_invalidate_and_cache_info(served, append_source):
    host, port = served
    with ServeClient(host, port) as client:
        client.analyze(source=append_source, query=("append", 3),
                       payload=False)
        info = client.cache_info()
        assert info["entries"] >= 1
        report = client.invalidate(source=append_source)
        assert report["invalidated"] >= 1
        again = client.analyze(source=append_source,
                               query=("append", 3), payload=False)
        assert not again["cached"]


def test_errors_keep_connection_usable(served):
    host, port = served
    with ServeClient(host, port) as client:
        with pytest.raises(ServeError) as exc_info:
            client.request("no-such-op")
        assert exc_info.value.code == "bad-request"
        with pytest.raises(ServeError):
            client.analyze(source="p(a).", query=("p", "x"))
        with pytest.raises(ServeError):
            client.analyze(source="p(a).", query=("missing", 1))
        with pytest.raises(ServeError):
            client.analyze(source="p(a).", query=("p", 1),
                           input_types=["list", "any"])
        # and the connection still works
        assert client.ping()["pong"]


def test_malformed_json_line(served):
    import socket
    host, port = served
    with socket.create_connection((host, port), timeout=30) as sock:
        handle = sock.makefile("rwb")
        handle.write(b"this is not json\n")
        handle.flush()
        response = json.loads(handle.readline())
        assert not response["ok"]
        assert response["code"] == "bad-request"
        handle.write(b'{"op": "ping"}\n')
        handle.flush()
        assert json.loads(handle.readline())["ok"]


# -- embedded deterministic tests -------------------------------------------

def run_scenario(scenario, **server_kwargs):
    """Start an embedded server on an ephemeral port, run the async
    scenario against it, and always drain afterwards."""

    async def main():
        server = AnalysisServer(port=0, **server_kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.drain_and_close()

    return asyncio.run(main())


async def send(server, request):
    reader, writer = await asyncio.open_connection("127.0.0.1",
                                                   server.port)
    try:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


def slow_execute(delay):
    real = server_module._execute_spec

    def execute(spec):
        time.sleep(delay)
        return real(spec)

    return execute


SOURCES = ["slow%d(a%d). slow%d(b%d)." % (i, i, i, i)
           for i in range(4)]


def test_backpressure_rejects_when_queue_full(monkeypatch):
    monkeypatch.setattr(server_module, "_execute_spec",
                        slow_execute(0.4))

    async def scenario(server):
        tasks = [asyncio.create_task(send(server, {
            "op": "analyze", "source": SOURCES[i],
            "query": ["slow%d" % i, 1], "payload": False,
        })) for i in range(3)]
        # let the first two occupy the queue before the third lands
        responses = await asyncio.gather(*tasks)
        return responses

    responses = run_scenario(scenario, max_pending=2)
    codes = sorted((r.get("code") or "ok") for r in responses)
    assert codes.count("overloaded") >= 1
    assert codes.count("ok") == 2


def test_timeout_then_warm_retry(monkeypatch):
    monkeypatch.setattr(server_module, "_execute_spec",
                        slow_execute(0.5))

    async def scenario(server):
        request = {"op": "analyze", "source": SOURCES[3],
                   "query": ["slow3", 1], "payload": False}
        first = await send(server, dict(request, timeout=0.05))
        assert not first["ok"]
        assert first["code"] == "timeout"
        # the abandoned computation finishes and lands in the cache
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            retry = await send(server, request)
            if retry["ok"]:
                return retry
            await asyncio.sleep(0.05)
        raise AssertionError("retry never succeeded")

    # the retry either rode the still-running computation (coalesced)
    # or arrived after it landed in the cache — both are warm paths
    retry = run_scenario(scenario, request_timeout=30.0)
    assert retry["result"]["cached"] or retry["result"]["coalesced"]


def test_shutdown_drains_inflight(tmp_path, monkeypatch):
    monkeypatch.setattr(server_module, "_execute_spec",
                        slow_execute(0.3))
    cache = ResultCache(tmp_path)

    async def scenario(server):
        task = asyncio.create_task(send(server, {
            "op": "analyze", "source": "drainme(a).",
            "query": ["drainme", 1], "payload": False}))
        await asyncio.sleep(0.1)  # the analysis is now in flight
        shutdown = await send(server, {"op": "shutdown"})
        assert shutdown["ok"]
        assert shutdown["result"]["draining"] == 1
        response = await task
        assert response["ok"], response
        await server.serve_until_shutdown()
        # new computations are refused while draining
        return response

    run_scenario(scenario, cache=cache)
    # the drained result was flushed/persisted for the next process
    fresh = ResultCache(tmp_path)
    assert len(fresh) == 1


def test_draining_rejects_new_computations():
    async def scenario(server):
        server._draining = True
        response = await send(server, {
            "op": "analyze", "source": "latecomer(a).",
            "query": ["latecomer", 1], "payload": False})
        assert not response["ok"]
        assert response["code"] == "shutting-down"
        # but pings still answer
        assert (await send(server, {"op": "ping"}))["ok"]

    run_scenario(scenario)


def test_request_error_codes():
    error = RequestError("nope")
    assert error.code == "bad-request"
    assert str(RequestError("busy", "overloaded")) == "busy"


def test_stats_shape(served):
    host, port = served
    with ServeClient(host, port) as client:
        stats = client.stats()
    for field in ("uptime", "requests", "analyses_executed",
                  "coalesced", "rejected", "timeouts", "queue_depth",
                  "max_pending", "cache", "opcache", "arena",
                  "latency"):
        assert field in stats, field
    assert stats["latency"]["count"] >= 1
    assert stats["latency"]["p95"] >= stats["latency"]["p50"]
    assert stats["cache"]["hit_rate"] is None or \
        0.0 <= stats["cache"]["hit_rate"] <= 1.0


def test_worker_pool_mode_matches_oneshot():
    """workers>=1 dispatches to a persistent process pool; results
    must be identical to the in-process path."""
    process, host, port = spawn_server("--workers", "2",
                                       "--timeout", "120")
    try:
        with ServeClient(host, port) as client:
            first = client.analyze(benchmark="AR", payload=False)
            second = client.analyze(benchmark="AR", payload=False)
            assert first["fingerprint"] == direct_fingerprint("AR")
            assert second["cached"]
            client.shutdown()
        process.wait(timeout=60)
        assert process.returncode == 0
    finally:
        if process.poll() is None:
            process.terminate()
            process.wait(timeout=30)
