"""Tests for the service-facing CLI: the batch and cache subcommands
and the --json output flag."""

import json

import pytest

from repro.__main__ import main
from repro.service.serialize import FORMAT_VERSION, decode_result

APP = """
app([], X, X).
app([F|T], S, [F|R]) :- app(T, S, R).
"""


def test_json_flag_dumps_decodable_result(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text(APP)
    assert main([str(source), "app/3", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["query"] == ["app", 3]
    assert data["result"]["version"] == FORMAT_VERSION
    result = decode_result(data["result"])
    assert result.root_entry.pred == ("app", 3)


def test_batch_cold_then_warm(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["batch", "QU", "AR", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "2 analyzed" in out and "0 cache hits" in out
    assert main(["batch", "QU", "AR", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "2 cache hits" in out and "0 analyzed" in out


def test_batch_json_report(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["batch", "QU", "--cache-dir", cache_dir,
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["misses"] == 1
    assert data["jobs"][0]["name"] == "QU"
    assert decode_result(data["jobs"][0]["result"]).output is not None


def test_batch_file_jobs(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text(APP)
    assert main(["batch", "--file", "%s:app/3" % source]) == 0
    out = capsys.readouterr().out
    assert "1 analyzed" in out


def test_batch_rejects_unknown_benchmark(capsys):
    with pytest.raises(SystemExit):
        main(["batch", "NOPE"])


def test_batch_requires_some_work(capsys):
    with pytest.raises(SystemExit):
        main(["batch"])


def test_cache_info_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    main(["batch", "QU", "--cache-dir", cache_dir])
    capsys.readouterr()
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    assert "1 entries" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    assert "0 entries" in capsys.readouterr().out


def test_cache_promote_cli(tmp_path, capsys):
    from repro.benchprogs import benchmark
    cache_dir = str(tmp_path / "cache")
    old = tmp_path / "old.pl"
    new = tmp_path / "new.pl"
    qu = benchmark("QU")
    old.write_text(qu.source)
    new.write_text(qu.source.replace("N1 is N + 1", "N1 is N + 2"))
    main(["batch", "--file", "%s:perm/2" % old,
          "--file", "%s:queens/2" % old, "--cache-dir", cache_dir])
    capsys.readouterr()
    assert main(["cache", "promote", str(old), str(new),
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "1 promoted, 1 invalidated" in out
    assert "noattack/3" in out
    # the promoted perm entry is a hit for the edited program
    main(["batch", "--file", "%s:perm/2" % new,
          "--cache-dir", cache_dir])
    assert "1 cache hits" in capsys.readouterr().out


def test_legacy_interface_still_works(capsys):
    assert main(["--benchmark", "QU"]) == 0
    assert "queens/2:" in capsys.readouterr().out
