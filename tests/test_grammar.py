"""Unit tests for type grammars: construction, normalization,
membership, display."""

import pytest

from repro.prolog.parser import parse_term
from repro.typegraph import (ANY, INT, FuncAlt, Grammar, GrammarBuilder,
                             g_any, g_atom, g_bottom, g_functor, g_int,
                             g_int_literal, g_list_of, member, normalize,
                             parse_rules)
from repro.typegraph.display import grammar_rules, grammar_to_text


class TestConstructors:
    def test_any_is_any(self):
        assert g_any().is_any()
        assert not g_any().is_bottom()

    def test_bottom_is_bottom(self):
        assert g_bottom().is_bottom()
        assert not g_bottom().is_any()

    def test_atom_grammar(self):
        g = g_atom("foo")
        assert member(parse_term("foo"), g)
        assert not member(parse_term("bar"), g)

    def test_int_literal(self):
        g = g_int_literal(3)
        assert member(parse_term("3"), g)
        assert not member(parse_term("4"), g)
        assert not member(parse_term("'3'"), g)  # the quoted atom differs

    def test_int_supertype(self):
        g = g_int()
        assert member(parse_term("3"), g)
        assert member(parse_term("-17"), g)
        assert not member(parse_term("a"), g)

    def test_functor_grammar(self):
        g = g_functor("f", [g_atom("a"), g_any()])
        assert member(parse_term("f(a, whatever(1))"), g)
        assert not member(parse_term("f(b, c)"), g)
        assert not member(parse_term("g(a, b)"), g)


class TestMembership:
    def test_list_of_any(self):
        lst = g_list_of(g_any())
        assert member(parse_term("[]"), lst)
        assert member(parse_term("[a,b,c]"), lst)
        assert member(parse_term("[[a],[b]]"), lst)
        assert not member(parse_term("a"), lst)

    def test_open_list_not_member(self):
        # a list with a variable tail is only described by Any (§2 qsort)
        lst = g_list_of(g_any())
        assert not member(parse_term("[a|T]"), lst)

    def test_variable_only_in_any(self):
        from repro.prolog.terms import Var
        assert member(Var("X"), g_any())
        assert not member(Var("X"), g_atom("a"))

    def test_recursive_grammar(self):
        g = parse_rules("T ::= 0 | s(T)")
        assert member(parse_term("s(s(0))"), g)
        assert not member(parse_term("s(s(1))"), g)


class TestNormalization:
    def test_any_absorption(self):
        builder = GrammarBuilder()
        root = builder.fresh()
        builder.add(root, ANY)
        builder.add(root, FuncAlt("a"))
        g = builder.finish(root)
        assert g.is_any()

    def test_int_absorbs_literals(self):
        builder = GrammarBuilder()
        root = builder.fresh()
        builder.add(root, INT)
        builder.add(root, FuncAlt("3", (), True))
        g = builder.finish(root)
        assert g.root_alts == frozenset([INT])

    def test_empty_pruning(self):
        # T ::= f(U); U has no productions -> T is empty
        builder = GrammarBuilder()
        root = builder.fresh()
        empty = builder.fresh()
        builder.add(root, FuncAlt("f", (empty,)))
        g = builder.finish(root)
        assert g.is_bottom()

    def test_infinite_only_type_is_empty(self):
        # T ::= f(T) with no base case denotes no finite tree
        builder = GrammarBuilder()
        root = builder.fresh()
        builder.add(root, FuncAlt("f", (root,)))
        g = builder.finish(root)
        assert g.is_bottom()

    def test_bisimilar_merge(self):
        # two copies of the same list type collapse to one nonterminal
        builder = GrammarBuilder()
        a, b, e = builder.fresh(), builder.fresh(), builder.fresh()
        builder.add(e, ANY)
        builder.add(a, FuncAlt("[]"))
        builder.add(a, FuncAlt(".", (e, b)))
        builder.add(b, FuncAlt("[]"))
        builder.add(b, FuncAlt(".", (e, a)))
        g = builder.finish(a)
        assert g.num_nonterminals() == 2  # list + Any leaf

    def test_canonical_equality(self):
        g1 = g_list_of(g_any())
        g2 = g_list_of(g_any())
        assert g1 == g2
        assert hash(g1) == hash(g2)

    def test_or_width_cap(self):
        g = parse_rules("T ::= a | b | c | d")
        capped = normalize(g, 2)
        assert capped.is_any()
        uncapped = normalize(g, 4)
        assert not uncapped.is_any()


class TestSize:
    def test_size_counts_vertices_and_edges(self):
        assert g_atom("a").size() < g_list_of(g_any()).size()

    def test_pf_sets(self):
        g = parse_rules("T ::= [] | cons(Any,T)")
        assert g.pf() == frozenset([("f", "[]", 0), ("f", ".", 2)])
        assert g_any().pf() == frozenset()
        assert g_int().pf() == frozenset([("I", "$integer", 0)])


class TestDisplay:
    def test_list_display(self):
        assert grammar_to_text(g_list_of(g_any())) == \
            "T ::= [] | cons(Any,T)"

    def test_bottom_display(self):
        assert grammar_rules(g_bottom()) == ["T ::= <empty>"]

    def test_parse_rules_roundtrip(self):
        text = """
        T ::= [] | cons(T1,T)
        T1 ::= a | b | Integer
        """
        g = parse_rules(text)
        reparsed = parse_rules(grammar_to_text(g))
        assert g == reparsed

    def test_parse_rules_quoted_functor(self):
        g = parse_rules("T ::= 0 | '+'(T,T)")
        assert member(parse_term("0 + 0"), g)
