"""Tests for the canonical serialization and content-hashing layer."""

import json

import pytest

from repro import AnalysisConfig, analyze
from repro.domains.leaf import (TrivialLeafDomain, TypeLeafDomain,
                                domain_from_descriptor)
from repro.domains.pattern import PAT_BOTTOM, subst_eq, subst_top
from repro.service.serialize import (FORMAT_VERSION, canonical_json,
                                     config_hash, content_hash,
                                     decode_config, decode_grammar,
                                     decode_input_types, decode_result,
                                     decode_subst, encode_config,
                                     encode_grammar, encode_input_types,
                                     encode_result, encode_subst,
                                     predicate_hashes, program_hash)
from repro.typegraph.grammar import (g_any, g_atom, g_bottom, g_int,
                                     g_int_literal)
from repro.typegraph.ops import g_list_of, g_union


def json_rt(obj):
    """Force a real trip through JSON text."""
    return json.loads(json.dumps(obj))


# -- grammars ----------------------------------------------------------------

@pytest.mark.parametrize("grammar", [
    g_any(), g_bottom(), g_int(), g_atom("a"), g_atom("[]"),
    g_int_literal(42), g_list_of(g_int()),
    g_union(g_atom("a"), g_int()),
    g_list_of(g_list_of(g_any())),
])
def test_grammar_roundtrip(grammar):
    assert decode_grammar(json_rt(encode_grammar(grammar))) == grammar


def test_grammar_encoding_is_canonical():
    g1 = g_union(g_atom("a"), g_int())
    g2 = g_union(g_int(), g_atom("a"))
    assert canonical_json(encode_grammar(g1)) == \
        canonical_json(encode_grammar(g2))


# -- substitutions -----------------------------------------------------------

def test_subst_bottom_roundtrip(type_domain):
    assert decode_subst(json_rt(encode_subst(PAT_BOTTOM, type_domain)),
                        type_domain) is PAT_BOTTOM


def test_subst_top_roundtrip(type_domain):
    top = subst_top(3, type_domain)
    assert decode_subst(json_rt(encode_subst(top, type_domain)),
                        type_domain) == top


def test_subst_with_patterns_roundtrip(nreverse_source, type_domain):
    analysis = analyze(nreverse_source, ("nreverse", 2))
    for entry in analysis.result.entries:
        for subst in (entry.beta_in, entry.beta_out):
            data = json_rt(encode_subst(subst, analysis.domain))
            assert decode_subst(data, analysis.domain) == subst


def test_subst_trivial_domain_roundtrip(trivial_domain):
    top = subst_top(2, trivial_domain)
    assert decode_subst(json_rt(encode_subst(top, trivial_domain)),
                        trivial_domain) == top


# -- whole results -----------------------------------------------------------

def test_result_roundtrip(nreverse_source):
    analysis = analyze(nreverse_source, ("nreverse", 2))
    result = analysis.result
    decoded = decode_result(json_rt(encode_result(result)))
    assert len(decoded.entries) == len(result.entries)
    for original, restored in zip(result.entries, decoded.entries):
        assert restored.id == original.id
        assert restored.pred == original.pred
        assert restored.beta_in == original.beta_in
        assert restored.beta_out == original.beta_out
        assert restored.dependents == original.dependents
    assert decoded.root_entry.id == result.root_entry.id
    assert decoded.output == result.output
    assert decoded.unknown_predicates == result.unknown_predicates
    assert decoded.stats.procedure_iterations == \
        result.stats.procedure_iterations


def test_result_roundtrip_baseline(nreverse_source):
    analysis = analyze(nreverse_source, ("nreverse", 2), baseline=True)
    decoded = decode_result(json_rt(encode_result(analysis.result)))
    assert isinstance(decoded.domain, TrivialLeafDomain)
    assert subst_eq(decoded.output, analysis.result.output,
                    decoded.domain)


def test_result_rejects_unknown_version(nreverse_source):
    analysis = analyze(nreverse_source, ("nreverse", 2))
    payload = encode_result(analysis.result)
    payload["version"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError):
        decode_result(payload)


# -- domain descriptors ------------------------------------------------------

def test_domain_descriptor_roundtrip():
    domain = TypeLeafDomain(max_or_width=5)
    rebuilt = domain_from_descriptor(json_rt(domain.descriptor()))
    assert isinstance(rebuilt, TypeLeafDomain)
    assert rebuilt.max_or_width == 5
    trivial = domain_from_descriptor(
        json_rt(TrivialLeafDomain().descriptor()))
    assert isinstance(trivial, TrivialLeafDomain)


def test_domain_descriptor_type_database():
    domain = TypeLeafDomain(type_database=[g_list_of(g_int())])
    rebuilt = domain_from_descriptor(json_rt(domain.descriptor()))
    assert rebuilt.type_database == [g_list_of(g_int())]


# -- configs and input types -------------------------------------------------

def test_config_roundtrip():
    config = AnalysisConfig(max_or_width=2, max_input_patterns=4,
                            widening_delay=1,
                            type_database=[g_list_of(g_any())])
    decoded = decode_config(json_rt(encode_config(config)))
    assert decoded == config


def test_config_hash_distinguishes():
    assert config_hash(AnalysisConfig()) == config_hash(None)
    assert config_hash(AnalysisConfig(max_or_width=5)) != \
        config_hash(AnalysisConfig())


def test_config_roundtrip_engine_knobs():
    config = AnalysisConfig(differential=False, scheduler="scc")
    decoded = decode_config(json_rt(encode_config(config)))
    assert decoded.differential is False
    assert decoded.scheduler == "scc"


def test_config_hash_engine_knob_semantics():
    # differential on/off computes bit-identical tables, so it must
    # not split the result cache; the scheduler may reach a different
    # (equally sound) table, so it must.
    assert config_hash(AnalysisConfig(differential=False)) == \
        config_hash(AnalysisConfig())
    assert config_hash(AnalysisConfig(scheduler="scc")) != \
        config_hash(AnalysisConfig())


def test_input_types_roundtrip():
    assert decode_input_types(encode_input_types(None)) is None
    specs = ["list", "any", g_list_of(g_int())]
    decoded = decode_input_types(json_rt(encode_input_types(specs)))
    assert decoded[:2] == ["list", "any"]
    assert decoded[2] == g_list_of(g_int())


# -- program hashing ---------------------------------------------------------

def test_program_hash_ignores_whitespace_and_comments(append_source):
    noisy = "% a comment\n" + append_source.replace("\n", "\n\n") + "   \n"
    assert program_hash(append_source) == program_hash(noisy)


def test_program_hash_sees_clause_changes(append_source):
    edited = append_source + "\nappend(x, y, z).\n"
    assert program_hash(append_source) != program_hash(edited)


def test_predicate_hashes_are_per_predicate(nreverse_source):
    hashes = predicate_hashes(nreverse_source)
    assert set(hashes) == {("append", 3), ("nreverse", 2)}
    edited = nreverse_source + "\nnreverse(x, x).\n"
    new_hashes = predicate_hashes(edited)
    assert new_hashes[("append", 3)] == hashes[("append", 3)]
    assert new_hashes[("nreverse", 2)] != hashes[("nreverse", 2)]


def test_content_hash_stable_across_key_order():
    assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


def test_payload_fingerprint_matches_result_fingerprint(nreverse_source):
    from repro.service.serialize import (payload_fingerprint,
                                         result_fingerprint)
    for baseline in (False, True):
        result = analyze(nreverse_source, ("nreverse", 2),
                         baseline=baseline).result
        payload = json_rt(encode_result(result))
        assert payload_fingerprint(payload) == result_fingerprint(result)


def test_stats_roundtrip_disjunction_fallbacks():
    disj = " , ".join("(X%d = a ; X%d = b)" % (i, i) for i in range(8))
    head = ", ".join("X%d" % i for i in range(8))
    result = analyze("p(%s) :- %s.\n" % (head, disj), ("p", 8)).result
    assert result.stats.disjunction_fallbacks > 0
    decoded = decode_result(json_rt(encode_result(result)))
    assert (decoded.stats.disjunction_fallbacks
            == result.stats.disjunction_fallbacks)
