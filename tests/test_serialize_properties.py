"""Property-based round-trip tests for the serialization layer:
``deserialize(serialize(x)) == x`` for random grammars and abstract
substitutions, and content-hash stability under re-encoding."""

import json

from hypothesis import given, settings, strategies as st

from repro.domains.leaf import TypeLeafDomain
from repro.domains.pattern import PAT_BOTTOM, SubstBuilder
from repro.service.serialize import (canonical_json, content_hash,
                                     decode_grammar, decode_subst,
                                     encode_grammar, encode_subst)
from repro.typegraph.grammar import (g_any, g_atom, g_int, g_int_literal,
                                     g_functor)
from repro.typegraph.ops import g_list_of, g_union

_ATOMS = ("a", "b", "[]", "foo")
_FUNCTORS = (("f", 1), ("g", 2), (".", 2), ("s", 1))


def _grammars(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([g_any(), g_int()]),
            st.sampled_from(list(_ATOMS)).map(g_atom),
            st.integers(0, 3).map(g_int_literal),
        )
    sub = _grammars(depth - 1)
    return st.one_of(
        _grammars(0),
        st.builds(lambda name_arity, args:
                  g_functor(name_arity[0], args[:name_arity[1]]),
                  st.sampled_from(list(_FUNCTORS)),
                  st.lists(sub, min_size=2, max_size=2)),
        st.builds(g_union, sub, sub),
        st.builds(g_list_of, sub),
    )


grammars = _grammars(2)

_DOMAIN = TypeLeafDomain()


@st.composite
def substs(draw):
    """Random frozen substitutions: a pool of typed leaves, some shared
    across variables, some wrapped in sure-structure patterns."""
    builder = SubstBuilder(_DOMAIN)
    leaves = [builder.fresh_leaf(draw(grammars))
              for _ in range(draw(st.integers(1, 3)))]

    def node(depth):
        choice = draw(st.integers(0, 2 if depth else 0))
        if choice == 0:
            return draw(st.sampled_from(leaves))
        if choice == 1:
            return builder.make_pattern(
                draw(st.sampled_from(["f", "cons"])), False,
                [node(depth - 1), node(depth - 1)])
        return builder.make_pattern(draw(st.sampled_from(list(_ATOMS))),
                                    False, [])

    roots = [node(2) for _ in range(draw(st.integers(1, 3)))]
    return builder.freeze(roots)


@settings(max_examples=150, deadline=None)
@given(grammars)
def test_grammar_roundtrip_identity(g):
    assert decode_grammar(json.loads(json.dumps(encode_grammar(g)))) == g


@settings(max_examples=150, deadline=None)
@given(grammars)
def test_grammar_hash_stable_under_reencoding(g):
    first = encode_grammar(g)
    second = encode_grammar(decode_grammar(first))
    assert content_hash(first) == content_hash(second)


@settings(max_examples=100, deadline=None)
@given(grammars, grammars)
def test_grammar_hash_respects_equality(g1, g2):
    same_hash = content_hash(encode_grammar(g1)) == \
        content_hash(encode_grammar(g2))
    assert same_hash == (g1 == g2)


@settings(max_examples=150, deadline=None)
@given(substs())
def test_subst_roundtrip_identity(subst):
    data = json.loads(json.dumps(encode_subst(subst, _DOMAIN)))
    restored = decode_subst(data, _DOMAIN)
    if subst is PAT_BOTTOM:
        assert restored is PAT_BOTTOM
    else:
        assert restored == subst


@settings(max_examples=100, deadline=None)
@given(substs())
def test_subst_encoding_is_canonical(subst):
    first = encode_subst(subst, _DOMAIN)
    second = encode_subst(decode_subst(first, _DOMAIN), _DOMAIN)
    assert canonical_json(first) == canonical_json(second)
