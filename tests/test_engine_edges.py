"""Engine edge paths: budget exhaustion, unknown-predicate identity
transfer, and table seeding."""

import pytest

from repro import AnalysisConfig, analyze
from repro.domains.leaf import TypeLeafDomain
from repro.domains.pattern import PAT_BOTTOM, subst_top
from repro.fixpoint.engine import AnalysisBudgetExceeded, Engine
from repro.prolog.normalize import normalize_program
from repro.prolog.program import parse_program
from repro.typegraph.grammar import g_any, g_atom


# -- AnalysisBudgetExceeded --------------------------------------------------

def test_budget_exceeded_raises(nreverse_source):
    config = AnalysisConfig(max_procedure_iterations=1)
    with pytest.raises(AnalysisBudgetExceeded):
        analyze(nreverse_source, ("nreverse", 2), config=config)


def test_budget_message_names_the_limit(nreverse_source):
    config = AnalysisConfig(max_procedure_iterations=2)
    with pytest.raises(AnalysisBudgetExceeded, match="2"):
        analyze(nreverse_source, ("nreverse", 2), config=config)


def test_default_budget_is_not_hit(nreverse_source):
    analysis = analyze(nreverse_source, ("nreverse", 2))
    assert analysis.stats.procedure_iterations < \
        AnalysisConfig().max_procedure_iterations


# -- unknown predicates: identity transfer -----------------------------------

def test_unknown_predicate_is_recorded():
    analysis = analyze("p(X) :- mystery(X).", ("p", 1))
    assert analysis.result.unknown_predicates == [("mystery", 1)]


def test_unknown_call_preserves_established_types():
    """Identity transfer keeps what held before the call: X was surely
    the atom ``a`` going in, and still is coming out."""
    analysis = analyze("q(a).\np(X) :- q(X), mystery(X).", ("p", 1))
    assert analysis.result.unknown_predicates == [("mystery", 1)]
    assert analysis.output_grammar(0) == g_atom("a")


def test_unknown_call_does_not_invent_types():
    """An unknown call alone must claim nothing: the argument stays at
    Any, exactly as with a defined identity predicate."""
    unknown = analyze("p(X) :- mystery(X).", ("p", 1))
    identity = analyze("id(X).\np(X) :- id(X).", ("p", 1))
    assert unknown.output_grammar(0) == g_any()
    assert identity.output_grammar(0) == g_any()


def test_failing_builtin_yields_bottom():
    analysis = analyze("p(X) :- fail.", ("p", 1))
    assert analysis.output is PAT_BOTTOM


# -- table seeding -----------------------------------------------------------

def _norm(source):
    return normalize_program(parse_program(source))


def test_seeded_fixpoint_needs_no_iteration(nreverse_source):
    first = analyze(nreverse_source, ("nreverse", 2))
    domain = TypeLeafDomain()
    engine = Engine(_norm(nreverse_source), domain)
    for entry in first.result.entries:
        engine.seed_entry(entry.pred, entry.beta_in, entry.beta_out)
    result = engine.analyze(("nreverse", 2))
    assert result.stats.procedure_iterations == 0
    assert result.stats.entries_seeded == len(first.result.entries)
    assert result.output == first.result.output


def test_seed_entry_rejects_undefined_predicate(append_source):
    engine = Engine(_norm(append_source), TypeLeafDomain())
    beta = subst_top(1, engine.domain)
    with pytest.raises(KeyError):
        engine.seed_entry(("nope", 1), beta, beta)


def test_seeds_do_not_block_new_input_patterns(append_source):
    """A query whose input is not covered by any seed is analyzed
    normally alongside the seeded entries."""
    first = analyze(append_source, ("append", 3),
                    input_types=["list", "any", "any"])
    engine = Engine(_norm(append_source), TypeLeafDomain())
    for entry in first.result.entries:
        engine.seed_entry(entry.pred, entry.beta_in, entry.beta_out)
    result = engine.analyze(("append", 3))  # all-Any input: not seeded
    assert result.stats.procedure_iterations > 0
    cold = analyze(append_source, ("append", 3))
    assert result.output == cold.result.output
