"""Contract tests for the leaf domains (the R parameter of Pat(R))."""

import pytest

from repro.domains.leaf import (DepthBoundLeafDomain, TOP,
                                TrivialLeafDomain, TypeLeafDomain)
from repro.typegraph import (g_any, g_atom, g_equiv, g_functor, g_int,
                             g_le, g_list_of, g_union)

DOMAINS = [TypeLeafDomain(), TypeLeafDomain(max_or_width=2),
           DepthBoundLeafDomain(1), TrivialLeafDomain()]


@pytest.mark.parametrize("domain", DOMAINS,
                         ids=lambda d: d.name + str(getattr(d, "k", "")))
class TestContracts:
    def test_top_is_top(self, domain):
        assert domain.is_top(domain.top())

    def test_meet_with_top_is_identity_le(self, domain):
        value = domain.top()
        met = domain.meet(value, domain.top())
        assert met is not None
        assert domain.le(met, value)

    def test_join_upper_bound(self, domain):
        a, b = domain.top(), domain.top()
        j = domain.join(a, b)
        assert domain.le(a, j) and domain.le(b, j)

    def test_widen_upper_bound(self, domain):
        a, b = domain.top(), domain.top()
        w = domain.widen(a, b)
        assert domain.le(a, w)

    def test_split_top_never_fails(self, domain):
        pieces = domain.split(domain.top(), "f", 3, False)
        assert pieces is not None
        assert len(pieces) == 3

    def test_from_functor_constructs(self, domain):
        value = domain.from_functor("f", False,
                                    [domain.top(), domain.top()])
        assert value is not None

    def test_display_is_text(self, domain):
        assert isinstance(domain.display(domain.top()), str)


class TestTypeDomainSpecifics:
    D = TypeLeafDomain()

    def test_meet_is_intersection(self):
        met = self.D.meet(g_union(g_atom("a"), g_atom("b")),
                          g_union(g_atom("b"), g_atom("c")))
        assert g_equiv(met, g_atom("b"))

    def test_meet_bottom_is_none(self):
        assert self.D.meet(g_atom("a"), g_atom("b")) is None

    def test_split_matches_functor(self):
        pieces = self.D.split(g_functor("f", [g_int()]), "f", 1, False)
        assert g_equiv(pieces[0], g_int())

    def test_split_mismatch_is_none(self):
        assert self.D.split(g_atom("a"), "f", 1, False) is None

    def test_le_tree(self):
        lst = g_list_of(g_any())
        assert self.D.le_tree(
            g_functor(".", [g_atom("x"), g_atom("[]")]),
            ".", False, [g_any(), lst])

    def test_or_width_flows_through_join(self):
        capped = TypeLeafDomain(max_or_width=2)
        wide = capped.join(g_union(g_atom("a"), g_atom("b")),
                           g_union(g_atom("c"), g_atom("d")))
        assert wide.is_any()

    def test_int_type_helper(self):
        assert g_equiv(self.D.int_type(), g_int())


class TestTrivialDomainSpecifics:
    D = TrivialLeafDomain()

    def test_single_value(self):
        assert self.D.top() is TOP
        assert self.D.meet(TOP, TOP) is TOP
        assert self.D.join(TOP, TOP) is TOP
        assert self.D.widen(TOP, TOP) is TOP

    def test_le_always_true(self):
        assert self.D.le(TOP, TOP)

    def test_le_tree_always_false(self):
        assert not self.D.le_tree(TOP, "f", False, [TOP])

    def test_from_functor_discards(self):
        assert self.D.from_functor("f", False, [TOP]) is TOP


class TestDepthBoundSpecifics:
    def test_join_stays_in_subdomain(self):
        from repro.typegraph.depthbound import path_functor_depth
        domain = DepthBoundLeafDomain(1)
        nested = domain.join(
            g_list_of(g_list_of(g_atom("a"))),
            g_atom("[]"))
        assert path_functor_depth(nested) <= 1

    def test_widen_equals_join(self):
        domain = DepthBoundLeafDomain(1)
        a = g_atom("[]")
        b = g_functor(".", [g_any(), g_atom("[]")])
        assert g_equiv(domain.widen(a, b), domain.join(a, b))
