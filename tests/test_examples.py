"""Smoke tests: every shipped example runs to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))

FAST = [p for p in EXAMPLES if p.name != "paper_benchmarks.py"]


def _env():
    """Example subprocesses need `repro` importable even when pytest
    itself found it through the `pythonpath` ini option (which only
    patches this process's sys.path, not the children's)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return env


@pytest.mark.parametrize("script", FAST, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=_env())
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_paper_benchmarks_subset():
    script = _ROOT / "examples" / "paper_benchmarks.py"
    result = subprocess.run(
        [sys.executable, str(script), "QU", "AR"],
        capture_output=True, text=True, timeout=300, env=_env())
    assert result.returncode == 0, result.stderr
    assert "QU" in result.stdout
    assert "cons" in result.stdout
