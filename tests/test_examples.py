"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))

FAST = [p for p in EXAMPLES if p.name != "paper_benchmarks.py"]


@pytest.mark.parametrize("script", FAST, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_paper_benchmarks_subset():
    script = pathlib.Path(__file__).parent.parent / "examples" / \
        "paper_benchmarks.py"
    result = subprocess.run(
        [sys.executable, str(script), "QU", "AR"],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "QU" in result.stdout
    assert "cons" in result.stdout
