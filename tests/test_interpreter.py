"""Unit tests for the SLD interpreter (the concrete-semantics oracle)."""

import pytest

from repro.prolog.interpreter import SolveLimits, Solver, resolve, solve
from repro.prolog.parser import parse_term
from repro.prolog.program import parse_program
from repro.prolog.terms import Atom, Int, Var, format_term, make_list


def answers(source, goal_text, var="X", limits=None):
    program = parse_program(source)
    goal = parse_term(goal_text)
    out = []
    for bindings in Solver(program, limits).solve(goal):
        out.append(format_term(resolve(Var(var), bindings)))
    return out


class TestBasicResolution:
    def test_fact(self):
        assert answers("p(a). p(b).", "p(X)") == ["a", "b"]

    def test_conjunction(self):
        src = "p(a). p(b). q(b). r(X) :- p(X), q(X)."
        assert answers(src, "r(X)") == ["b"]

    def test_recursion(self):
        src = """
        nat(0).
        nat(s(X)) :- nat(X).
        """
        result = answers(src, "nat(X)",
                         limits=SolveLimits(max_solutions=4))
        assert result == ["0", "s(0)", "s(s(0))", "s(s(s(0)))"]

    def test_append(self, append_source):
        assert answers(append_source, "append([a,b],[c],X)") == ["[a,b,c]"]

    def test_append_backwards(self, append_source):
        program = parse_program(append_source)
        goal = parse_term("append(X, Y, [a,b])")
        results = list(Solver(program).solve(goal))
        assert len(results) == 3

    def test_nreverse(self, nreverse_source):
        assert answers(nreverse_source, "nreverse([a,b,c],X)") == \
            ["[c,b,a]"]

    def test_failure(self):
        assert answers("p(a).", "p(b)", "Y") == []

    def test_unknown_predicate_fails(self):
        assert answers("p(a).", "q(X)") == []


class TestUnification:
    def test_occur_check(self):
        assert answers("p(X) :- X = f(X).", "p(X)") == []

    def test_shared_variables(self):
        src = "eq(X, X)."
        assert answers(src, "eq(f(Y), f(a)), X = Y") == ["a"]

    def test_nonunifiable_functors(self):
        assert answers("p.", "f(a) = g(a)", "X") == []


class TestBuiltins:
    def test_is_evaluates(self):
        assert answers("p.", "X is 2 + 3 * 4") == ["14"]

    def test_is_with_subtraction_and_div(self):
        assert answers("p.", "X is (10 - 4) // 2") == ["3"]

    def test_comparison_success(self):
        assert answers("p.", "1 < 2, X = yes") == ["yes"]

    def test_comparison_failure(self):
        assert answers("p.", "2 < 1, X = yes") == []

    def test_comparison_unbound_fails(self):
        assert answers("p.", "Y < 1, X = yes") == []

    def test_equality_tests(self):
        assert answers("p.", "a == a, X = yes") == ["yes"]
        assert answers("p.", "a == b, X = yes") == []
        assert answers("p.", "a \\== b, X = yes") == ["yes"]

    def test_negation_as_failure(self):
        src = "p(a)."
        assert answers(src, "\\+ p(b), X = yes") == ["yes"]
        assert answers(src, "\\+ p(a), X = yes") == []

    def test_var_nonvar(self):
        assert answers("p.", "var(Y), X = yes") == ["yes"]
        assert answers("p.", "nonvar(f(a)), X = yes") == ["yes"]

    def test_type_tests(self):
        assert answers("p.", "atom(a), integer(3), X = yes") == ["yes"]
        assert answers("p.", "atom(3), X = yes") == []

    def test_length(self):
        assert answers("p.", "length([a,b,c], X)") == ["3"]

    def test_call(self):
        assert answers("q(a).", "call(q(X))") == ["a"]


class TestLimits:
    def test_depth_limit_terminates(self):
        src = "loop :- loop."
        assert answers(src, "loop", limits=SolveLimits(max_depth=50)) == []

    def test_solution_limit(self):
        src = "p(a). p(b). p(c)."
        result = answers(src, "p(X)", limits=SolveLimits(max_solutions=2))
        assert len(result) == 2

    def test_step_budget(self):
        src = "count(0). count(s(X)) :- count(X)."
        limits = SolveLimits(max_steps=50, max_solutions=1000)
        program = parse_program(src)
        results = list(Solver(program, limits).solve(
            parse_term("count(X)")))
        assert len(results) < 1000


class TestBenchmarkPrograms:
    def test_queens_solves(self):
        from repro.benchprogs import benchmark
        program = parse_program(benchmark("QU").source)
        goal = parse_term("queens([1,2,3,4], X)")
        results = list(Solver(program).solve(goal))
        assert len(results) > 0

    def test_pe_rewrites(self):
        from repro.benchprogs import benchmark
        program = parse_program(benchmark("PE").source)
        goal = parse_term(
            "peephole_opt([movreg(r(1),r(1)), proceed], X)")
        solver = Solver(program, SolveLimits(max_solutions=1))
        results = list(solver.solve(goal))
        assert results
        out = resolve(Var("X"), results[0])
        assert format_term(out) == "[proceed]"
