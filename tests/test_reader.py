"""Unit tests for the tokenizer."""

import pytest

from repro.prolog.reader import Token, TokenizeError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [(t.kind, t.text) for t in tokenize(text) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_input(self):
        assert kinds("") == ["eof"]

    def test_atom(self):
        assert texts("foo") == [("atom", "foo")]

    def test_variable(self):
        assert texts("Foo _bar") == [("var", "Foo"), ("var", "_bar")]

    def test_integer(self):
        assert texts("42") == [("int", "42")]
        assert tokenize("42")[0].value == 42

    def test_char_code(self):
        token = tokenize("0'a")[0]
        assert token.kind == "int"
        assert token.value == ord("a")

    def test_char_code_escape(self):
        assert tokenize(r"0'\n")[0].value == ord("\n")

    def test_char_code_space(self):
        assert tokenize("0' ")[0].value == ord(" ")

    def test_punctuation(self):
        assert texts("()[]{}") == [("punct", c) for c in "()[]{}"]

    def test_solo_chars(self):
        assert texts("!,;|") == [("atom", c) for c in "!,;|"]

    def test_symbol_atom_maximal_munch(self):
        assert texts("=..") == [("atom", "=..")]
        assert texts(":- ?-") == [("atom", ":-"), ("atom", "?-")]

    def test_end_dot(self):
        assert kinds("foo.") == ["atom", "end", "eof"]

    def test_dot_in_symbol(self):
        # a dot followed by a non-layout char is part of a symbol atom
        assert texts(".(") == [("atom", "."), ("punct", "(")]


class TestQuoted:
    def test_quoted_atom(self):
        assert texts("'hello world'") == [("atom", "hello world")]

    def test_doubled_quote(self):
        assert texts("'it''s'") == [("atom", "it's")]

    def test_escape_sequences(self):
        assert texts(r"'a\nb'") == [("atom", "a\nb")]

    def test_string(self):
        assert texts('"abc"') == [("string", "abc")]

    def test_unterminated_quote(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")


class TestLayout:
    def test_line_comment(self):
        assert texts("a % comment\nb") == [("atom", "a"), ("atom", "b")]

    def test_block_comment(self):
        assert texts("a /* x */ b") == [("atom", "a"), ("atom", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(TokenizeError):
            tokenize("/* oops")

    def test_layout_before_flag(self):
        tokens = tokenize("f (")
        assert tokens[1].layout_before is True
        tokens = tokenize("f(")
        assert tokens[1].layout_before is False

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestClauseStream:
    def test_simple_clause(self):
        assert kinds("p(X) :- q(X).") == \
            ["atom", "punct", "var", "punct", "atom", "atom", "punct",
             "var", "punct", "end", "eof"]

    def test_error_reports_position(self):
        with pytest.raises(TokenizeError) as info:
            tokenize("abc \x01")
        assert "line 1" in str(info.value)
