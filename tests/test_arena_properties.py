"""Property suite for the arena kernel (PR 4).

Three contracts:

* **Bit-identity** — every arena kernel returns exactly what the
  retained reference path returns: the *same interned object* for
  grammar-valued operations (union, intersection, functor, subgrammar,
  normalize, widening), the same boolean for inclusion.  Checked with
  hypothesis over random grammars, with the operation caches disabled
  so both paths really execute.
* **Round-trips** — compile → decompile reproduces the grammar's rules
  verbatim, and the arena masks/rows agree with the rules they were
  compiled from.
* **Pickling** — symbol ids are per-process, so grammars that cross a
  pickle boundary (``run_batch`` workers) re-intern their symbols on
  arrival and arena results stay identical.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.typegraph import (ANY, INT, FuncAlt, Grammar, arena, g_any,
                             g_atom, g_bottom, g_functor, g_int,
                             g_int_literal, g_list_of, g_union,
                             g_intersect, g_widen, intern_grammar,
                             normalize, normalize_reference, opcache,
                             subgrammar)
from repro.typegraph.ops import (_g_intersect_reference, _g_le_reference,
                                 _g_union_reference)

# -- strategies (same shape as test_typegraph_properties's) ------------------

_ATOMS = ("a", "b", "[]", "foo")
_FUNCTORS = (("f", 1), ("g", 2), (".", 2), ("s", 1))


def _grammars(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([g_any(), g_int(), g_bottom()]),
            st.sampled_from(list(_ATOMS)).map(g_atom),
            st.integers(0, 3).map(g_int_literal),
        )
    sub = _grammars(depth - 1)
    return st.one_of(
        _grammars(0),
        st.builds(lambda name_arity, args:
                  g_functor(name_arity[0], args[:name_arity[1]]),
                  st.sampled_from(list(_FUNCTORS)),
                  st.lists(sub, min_size=2, max_size=2)),
        st.builds(g_union, sub, sub),
        st.builds(g_list_of, sub),
        st.builds(g_intersect, sub, sub),
    )


grammars = _grammars(2)
widths = st.sampled_from([None, 1, 2, 5])


@pytest.fixture(autouse=True, params=arena.available_kernels())
def _uncached_and_arena_restored(request):
    """Disable the op caches (so both paths really compute), sweep
    every available kernel tier (PR 8: each tier must match the pure
    reference bit-for-bit), and restore the knobs afterwards."""
    was_cache = opcache.enabled()
    was_arena = arena.enabled()
    was_kernel = arena.kernel_status()["requested"]
    opcache.configure(enabled=False)
    arena.configure(enabled=True, kernel=request.param)
    yield
    opcache.configure(enabled=was_cache)
    arena.configure(enabled=was_arena, kernel=was_kernel)


def _with_arena(enabled, fn):
    arena.configure(enabled=enabled)
    try:
        return fn()
    finally:
        arena.configure(enabled=True)


# -- bit-identity ------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(grammars, grammars)
def test_le_bit_identical(g1, g2):
    expected = _g_le_reference(g1, g2)
    got = (True if g1.is_bottom()
           else False if g2.is_bottom()
           else arena.arena_le(g1, g2))
    assert got == expected


@settings(max_examples=200, deadline=None)
@given(grammars, grammars, widths)
def test_union_bit_identical(g1, g2, w):
    assert arena.arena_union(g1, g2, w) is _g_union_reference(g1, g2, w)


@settings(max_examples=200, deadline=None)
@given(grammars, grammars, widths)
def test_intersect_bit_identical(g1, g2, w):
    assert arena.arena_intersect(g1, g2, w) is \
        _g_intersect_reference(g1, g2, w)


@settings(max_examples=150, deadline=None)
@given(grammars, st.sampled_from(list(_FUNCTORS)), grammars, widths)
def test_functor_bit_identical(g1, name_arity, g2, w):
    name, arity = name_arity
    children = (g1, g2)[:arity]
    assert _with_arena(True, lambda: g_functor(name, children, w)) is \
        _with_arena(False, lambda: g_functor(name, children, w))


@settings(max_examples=200, deadline=None)
@given(grammars)
def test_subgrammar_bit_identical(g):
    for nt in g.rules:
        assert arena.arena_subgrammar(g, nt) is \
            normalize_reference(Grammar(g.rules, nt))


@settings(max_examples=150, deadline=None)
@given(grammars, grammars, widths)
def test_normalize_bit_identical_on_raw_merge(g1, g2, w):
    # a raw, messy grammar: two grammars glued side by side
    offset = len(g1.rules)
    rules = dict(g1.rules)
    for nt, alts in g2.rules.items():
        rules[nt + offset] = frozenset(
            FuncAlt(a.name, tuple(x + offset for x in a.args), a.is_int)
            if isinstance(a, FuncAlt) else a
            for a in alts)
    rules[len(rules)] = frozenset(
        [FuncAlt("glue", (g1.root, g2.root + offset))])
    raw = Grammar(rules, len(rules) - 1)
    assert arena.arena_normalize(Grammar(dict(rules), raw.root), w) is \
        normalize_reference(Grammar(dict(rules), raw.root), w)


@settings(max_examples=100, deadline=None)
@given(grammars, grammars, widths, st.booleans())
def test_widen_bit_identical(g_old, g_new, w, strict):
    assert _with_arena(True, lambda: g_widen(g_old, g_new, w, strict)) \
        is _with_arena(False, lambda: g_widen(g_old, g_new, w, strict))


# -- round-trips -------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(grammars)
def test_compile_decompile_round_trip(g):
    compiled = arena.arena_of(g)
    assert arena.decompile(compiled).rules == g.rules
    # masks and rows agree with the rules they encode
    for nt, alts in g.rules.items():
        i = compiled.index_of(nt)
        assert ((compiled.any_mask >> i) & 1) == (ANY in alts)
        assert ((compiled.int_mask >> i) & 1) == (INT in alts)
        assert len(compiled.syms[i]) == \
            sum(1 for a in alts if isinstance(a, FuncAlt))


@settings(max_examples=100, deadline=None)
@given(grammars)
def test_reachability_bitsets(g):
    compiled = arena.arena_of(g)
    reach = compiled.reach()
    # reach agrees with a straightforward BFS over the rules
    for nt in g.rules:
        seen = {nt}
        queue = [nt]
        while queue:
            current = queue.pop()
            for alt in g.rules[current]:
                if isinstance(alt, FuncAlt):
                    for child in alt.args:
                        if child not in seen:
                            seen.add(child)
                            queue.append(child)
        mask = reach[compiled.index_of(nt)]
        decoded = {nt2 for nt2 in g.rules
                   if (mask >> compiled.index_of(nt2)) & 1}
        assert decoded == seen


# -- pickling / symbol-table stability ---------------------------------------

@settings(max_examples=100, deadline=None)
@given(grammars, grammars, widths)
def test_pickled_grammars_reintern_and_agree(g1, g2, w):
    """Grammars that cross a pickle boundary (as in ``run_batch``
    workers) resolve to the same canonical instances and the arena
    ops on them return the very same objects."""
    r1 = pickle.loads(pickle.dumps(g1))
    r2 = pickle.loads(pickle.dumps(g2))
    assert r1 is g1 and r2 is g2  # same process: straight re-intern
    assert arena.arena_union(r1, r2, w) is arena.arena_union(g1, g2, w)


def test_symbol_table_is_per_process_only():
    """Arenas and symbol ids never travel through pickle — a worker
    rebuilds them from the rules, so nothing in the pickled payload
    depends on this process's symbol numbering."""
    g = g_functor("zzz_unpickled_only", [g_list_of(g_int())])
    payload = pickle.dumps(g)
    assert b"GrammarArena" not in payload
    assert b"SymbolTable" not in payload
    restored = pickle.loads(payload)
    assert restored is g
    # compiling after a round-trip yields consistent rows
    assert arena.decompile(arena.arena_of(restored)).rules == g.rules


def test_subgrammar_matches_reference_via_cache_too():
    opcache.configure(enabled=True)
    g = g_list_of(g_functor("f", [g_int()]))
    for nt in g.rules:
        assert subgrammar(g, nt) is \
            normalize_reference(Grammar(g.rules, nt))


def test_arena_stats_counters_move():
    before = arena.stats()["compiles"]
    g = g_functor("stats_probe", [g_atom("a"), g_list_of(g_any())])
    g._arena = None  # force a fresh compile
    arena.arena_of(g)
    assert arena.stats()["compiles"] > before
    assert arena.stats()["symbols"] >= 2


def test_arena_knob_env(monkeypatch):
    assert arena._env_enabled() in (True, False)
    monkeypatch.setenv("REPRO_ARENA", "off")
    assert arena._env_enabled() is False
    monkeypatch.setenv("REPRO_ARENA", "1")
    assert arena._env_enabled() is True


@settings(max_examples=100, deadline=None)
@given(grammars, grammars)
def test_full_normalize_dispatch_identical(g1, g2):
    """public normalize (arena on) == normalize_reference on the union
    of raw copies — the dispatcher itself is equivalence-checked."""
    rules = {0: frozenset([FuncAlt("pair", (g1.root + 1,
                                            g2.root + 1 + len(g1.rules)))])}
    for nt, alts in g1.rules.items():
        rules[nt + 1] = frozenset(
            FuncAlt(a.name, tuple(x + 1 for x in a.args), a.is_int)
            if isinstance(a, FuncAlt) else a for a in alts)
    off = 1 + len(g1.rules)
    for nt, alts in g2.rules.items():
        rules[nt + off] = frozenset(
            FuncAlt(a.name, tuple(x + off for x in a.args), a.is_int)
            if isinstance(a, FuncAlt) else a for a in alts)
    raw1 = Grammar(dict(rules), 0)
    raw2 = Grammar(dict(rules), 0)
    assert _with_arena(True, lambda: normalize(raw1)) is \
        normalize_reference(raw2)
