"""Spot checks of the *types* inferred on the benchmark programs —
each workload must produce a meaningful (non-Any, non-bottom) grammar
for the positions its domain semantics dictate."""

import pytest

from repro import AnalysisConfig, analyze
from repro.benchprogs import benchmark
from repro.domains.pattern import PAT_BOTTOM, value_of
from repro.typegraph import (g_any, g_equiv, g_is_list, g_le, g_list_of,
                             g_split, parse_rules)


def analysis_for(name, **config):
    bp = benchmark(name)
    return analyze(bp.source, bp.query, input_types=bp.input_types,
                   config=AnalysisConfig(**config))


def out_grammar(analysis, arg, pred=None):
    if pred is None:
        subst = analysis.output
    else:
        subst = analysis.result.collapsed_for(pred)[1]
    assert subst is not PAT_BOTTOM
    return value_of(subst, subst.sv[arg], analysis.domain, {})


class TestQueens:
    def test_safe_argument_is_list(self):
        analysis = analysis_for("QU")
        g = out_grammar(analysis, 0, pred=("safe", 1))
        assert g_is_list(g)

    def test_second_argument_is_list(self):
        analysis = analysis_for("QU")
        assert g_is_list(out_grammar(analysis, 1))


class TestArithmetic:
    def test_ar_result_lists(self):
        analysis = analysis_for("AR")
        assert g_is_list(out_grammar(analysis, 1))

    def test_ar1_expression_layers(self):
        analysis = analysis_for("AR1")
        g = out_grammar(analysis, 0)
        # the mult layer under '+' must not contain '+' itself
        pieces = g_split(g, "+", 2)
        assert pieces is not None
        right = pieces[1]
        assert g_split(right, "+", 2) is None


class TestKalah:
    def test_board_structure_inferred(self):
        analysis = analysis_for("KA")
        collapsed = analysis.result.collapsed_for(("swap_sides", 2))
        if collapsed is None:
            pytest.skip("swap_sides unreachable in this configuration")
        beta_in, _ = collapsed
        g = value_of(beta_in, beta_in.sv[0], analysis.domain, {})
        pieces = g_split(g, "board", 4)
        assert pieces is not None

    def test_value_output_integerish(self):
        analysis = analysis_for("KA")
        collapsed = analysis.result.collapsed_for(("value", 2))
        if collapsed is None:
            pytest.skip("value unreachable")
        _, beta_out = collapsed
        assert beta_out is not PAT_BOTTOM
        g = value_of(beta_out, beta_out.sv[1], analysis.domain, {})
        from repro.typegraph import g_int
        assert g_le(g, g_int())


class TestScheduling:
    def test_schedule_entries_typed(self):
        analysis = analysis_for("DS")
        g = out_grammar(analysis, 1)
        # the schedule is a list of start(Name, Start, Dur) records
        assert g_le(g, g_list_of(g_any()))
        pieces = g_split(g, ".", 2)
        assert pieces is not None
        entry = pieces[0]
        assert g_split(entry, "start", 3) is not None


class TestCutstock:
    def test_configs_are_config_lists(self):
        analysis = analysis_for("CS")
        g = out_grammar(analysis, 1)
        assert g_le(g, g_list_of(g_any()))
        pieces = g_split(g, ".", 2)
        if pieces is not None:
            assert g_split(pieces[0], "config", 2) is not None


class TestPress:
    def test_solution_is_equation(self):
        analysis = analysis_for("PR")
        g = out_grammar(analysis, 2)
        assert not g.is_bottom()
        assert g_split(g, "=", 2) is not None


class TestPeephole:
    def test_output_instruction_list(self):
        analysis = analysis_for("LPE")
        g = out_grammar(analysis, 1)
        assert g_is_list(g)


class TestBrowse:
    def test_counter_is_integer(self):
        analysis = analysis_for("BR")
        from repro.typegraph import g_int
        g = out_grammar(analysis, 0)
        assert g_le(g, g_int())


class TestPlanner:
    def test_plan_is_action_list(self):
        analysis = analysis_for("PL")
        g = out_grammar(analysis, 2)
        assert g_is_list(g)
        pieces = g_split(g, ".", 2)
        if pieces is not None:
            action = pieces[0]
            keys = {alt.name for alt in action.root_alts
                    if hasattr(alt, "name")}
            assert keys <= {"to_place", "to_block"}


class TestReaderCapped:
    def test_tokens_are_lists_with_cap(self):
        analysis = analysis_for("RE", max_or_width=2)
        collapsed = analysis.result.collapsed_for(("read_tokens", 2))
        assert collapsed is not None
        _, beta_out = collapsed
        assert beta_out is not PAT_BOTTOM
