"""Tests for the high-level analysis API (repro.analyze)."""

import pytest

from repro import AnalysisConfig, TypeAnalysis, analyze, parse_program
from repro.analysis.analyzer import make_input_pattern
from repro.domains.leaf import TrivialLeafDomain, TypeLeafDomain
from repro.domains.pattern import PAT_BOTTOM
from repro.typegraph import g_equiv, g_le, g_list_of, g_any, parse_rules


class TestAnalyzeEntry:
    def test_accepts_source_text(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        assert isinstance(analysis, TypeAnalysis)

    def test_accepts_program_object(self, nreverse_source):
        program = parse_program(nreverse_source)
        analysis = analyze(program, ("nreverse", 2))
        assert analysis.output is not PAT_BOTTOM

    def test_wall_time_recorded(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        assert analysis.wall_time > 0

    def test_input_types_arity_checked(self, nreverse_source):
        with pytest.raises(ValueError):
            analyze(nreverse_source, ("nreverse", 2),
                    input_types=["list"])

    def test_list_input_pattern(self, append_source):
        analysis = analyze(append_source, ("append", 3),
                           input_types=["list", "list", "any"])
        g = analysis.output_grammar(2)
        assert g_equiv(g, g_list_of(g_any()))

    def test_custom_grammar_input(self, append_source):
        elem_list = g_list_of(parse_rules("T ::= a | b"))
        analysis = analyze(append_source, ("append", 3),
                           input_types=[elem_list, elem_list, "any"])
        g = analysis.output_grammar(2)
        assert g_equiv(g, elem_list)


class TestOutputs:
    def test_output_grammar_per_argument(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        expected = parse_rules("T ::= [] | cons(Any,T)")
        assert g_equiv(analysis.output_grammar(0), expected)
        assert g_equiv(analysis.output_grammar(1), expected)

    def test_output_grammar_other_pred(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        g = analysis.output_grammar(0, pred=("append", 3))
        assert g_le(g, g_list_of(g_any()))

    def test_grammar_text_rendering(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        text = analysis.grammar_text()
        assert text.startswith("nreverse/2:")
        assert "cons(Any,T)" in text

    def test_analyzed_predicates(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        preds = analysis.analyzed_predicates()
        assert ("nreverse", 2) in preds
        assert ("append", 3) in preds

    def test_tags_consistency(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2))
        out_tags = analysis.output_tags()
        assert out_tags[("nreverse", 2)] == ["LI", "LI"]
        in_tags = analysis.input_tags()
        assert in_tags[("nreverse", 2)] == [None, None]


class TestDomainsAndConfig:
    def test_baseline_domain(self, nreverse_source):
        analysis = analyze(nreverse_source, ("nreverse", 2),
                           baseline=True)
        assert isinstance(analysis.domain, TrivialLeafDomain)
        with pytest.raises(TypeError):
            analysis.output_grammar(0)

    def test_or_width_flows_to_domain(self, nreverse_source):
        config = AnalysisConfig(max_or_width=5)
        analysis = analyze(nreverse_source, ("nreverse", 2),
                           config=config)
        assert isinstance(analysis.domain, TypeLeafDomain)
        assert analysis.domain.max_or_width == 5

    def test_make_input_pattern_shapes(self):
        domain = TypeLeafDomain()
        subst = make_input_pattern(domain, ["any", "list", "int",
                                            "codes"])
        assert subst.nvars == 4
        values = [subst.nodes[subst.sv[k]].value for k in range(4)]
        assert values[0].is_any()
        assert g_equiv(values[1], g_list_of(g_any()))

    def test_make_input_pattern_baseline_ignores_types(self):
        domain = TrivialLeafDomain()
        subst = make_input_pattern(domain, ["list", "int"])
        from repro.domains.leaf import TOP
        assert all(subst.nodes[subst.sv[k]].value is TOP
                   for k in range(2))
