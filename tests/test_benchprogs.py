"""Integration tests over the §9 benchmark suite: every program
parses, normalizes, analyzes to a non-trivial result, and its metrics
have the paper's shape."""

import pytest

from repro import AnalysisConfig, analyze, parse_program
from repro.analysis import build_callgraph, program_metrics, \
    recursion_summary
from repro.benchprogs import BENCHMARKS, benchmark, benchmark_names
from repro.domains.pattern import PAT_BOTTOM
from repro.prolog import normalize_program

FAST = ["QU", "PG", "PE", "AR", "AR1", "PL", "PR"]


class TestRegistry:
    def test_all_fifteen_workloads(self):
        assert len(benchmark_names()) == 15
        # the registry carries the paper corpus plus CHK, the annotated
        # verification workload (kept out of the Table 3 name list so
        # its fingerprints stay frozen)
        assert set(BENCHMARKS) == set(benchmark_names()) | {"CHK"}

    def test_lookup_case_insensitive(self):
        assert benchmark("ka") is benchmark("KA")

    def test_variants_share_source(self):
        assert benchmark("LDS").source == benchmark("DS").source
        assert benchmark("LDS").input_types is not None


@pytest.mark.parametrize("name", benchmark_names())
class TestParsing:
    def test_parses(self, name):
        program = parse_program(benchmark(name).source)
        assert program.num_clauses > 0

    def test_normalizes(self, name):
        program = parse_program(benchmark(name).source)
        norm = normalize_program(program)
        assert norm.num_clauses >= program.num_clauses

    def test_query_predicate_defined(self, name):
        bp = benchmark(name)
        program = parse_program(bp.source)
        assert program.defined(bp.query)


@pytest.mark.parametrize("name", FAST)
class TestAnalysis:
    def test_analyzes_without_unknowns(self, name):
        bp = benchmark(name)
        analysis = analyze(bp.source, bp.query,
                           input_types=bp.input_types)
        assert analysis.result.unknown_predicates == []

    def test_output_not_bottom(self, name):
        bp = benchmark(name)
        analysis = analyze(bp.source, bp.query,
                           input_types=bp.input_types)
        assert analysis.output is not PAT_BOTTOM

    def test_baseline_also_runs(self, name):
        bp = benchmark(name)
        analysis = analyze(bp.source, bp.query,
                           input_types=bp.input_types, baseline=True)
        assert analysis.output is not PAT_BOTTOM


class TestPaperShape:
    """Qualitative Table 1/2/3 claims."""

    def test_queens_exact_size(self):
        m = program_metrics(parse_program(benchmark("QU").source))
        assert (m.procedures, m.clauses) == (5, 9)

    def test_pe_is_clause_heavy(self):
        m = program_metrics(parse_program(benchmark("PE").source))
        assert m.clauses > 5 * m.procedures

    def test_re_and_pr_are_mutually_recursive(self):
        for name in ("RE", "PR"):
            graph = build_callgraph(parse_program(benchmark(name).source))
            summary = recursion_summary(graph)
            assert summary.mutually_recursive > 0, name

    def test_qu_has_no_mutual_recursion(self):
        graph = build_callgraph(parse_program(benchmark("QU").source))
        assert recursion_summary(graph).mutually_recursive == 0

    def test_majority_nonrecursive_in_kalah(self):
        graph = build_callgraph(parse_program(benchmark("KA").source))
        summary = recursion_summary(graph)
        total = sum(summary.as_row())
        assert summary.non_recursive >= total / 3

    def test_or_cap_speeds_up_or_equals_iterations(self):
        bp = benchmark("PG")
        full = analyze(bp.source, bp.query)
        capped = analyze(bp.source, bp.query,
                         config=AnalysisConfig(max_or_width=2))
        assert capped.stats.procedure_iterations <= \
            full.stats.procedure_iterations * 1.5


@pytest.mark.slow
class TestSlowBenchmarks:
    """The remaining suite members (seconds each)."""

    @pytest.mark.parametrize("name", ["KA", "CS", "DS", "BR", "LDS",
                                      "LPE", "LPL"])
    def test_analyzes(self, name):
        bp = benchmark(name)
        analysis = analyze(bp.source, bp.query,
                           input_types=bp.input_types)
        assert analysis.output is not PAT_BOTTOM
        assert analysis.result.unknown_predicates == []

    def test_re_analyzes_with_or_cap(self):
        bp = benchmark("RE")
        analysis = analyze(bp.source, bp.query,
                           input_types=bp.input_types,
                           config=AnalysisConfig(max_or_width=2))
        assert analysis.output is not PAT_BOTTOM
