"""Tests for SCC-scoped incremental invalidation and re-analysis.

The acceptance scenario: editing one predicate of a benchmark program
invalidates only the cache entries whose query reaches the edited
predicate's SCC, promotes the rest, and re-analysis of a dirty query
reuses the surviving table entries as seeds.
"""

from repro import analyze
from repro.benchprogs import benchmark
from repro.domains.pattern import subst_eq
from repro.service.cache import ResultCache, make_key
from repro.service.incremental import (dirty_predicates, promote,
                                       reanalyze)
# QU's call structure: queens -> perm -> delete, queens -> safe ->
# noattack.  Editing noattack dirties the queens/safe cone and leaves
# the perm/delete cone clean.
QU = benchmark("QU")
QU_EDITED = QU.source.replace("N1 is N + 1", "N1 is N + 2")
assert QU_EDITED != QU.source


# -- dirty set computation ---------------------------------------------------

def test_edit_leaf_dirties_only_its_callers():
    dirty = dirty_predicates(QU.source, QU_EDITED)
    assert dirty == {("noattack", 3), ("safe", 1), ("queens", 2)}


def test_identical_programs_have_no_dirty_predicates():
    assert dirty_predicates(QU.source, QU.source + "\n% comment\n") \
        == set()


def test_edit_root_dirties_only_root():
    edited = QU.source.replace("queens(X, Y) :- perm(X, Y), safe(Y).",
                               "queens(X, Y) :- perm(X, Y), safe(Y), "
                               "safe(X).")
    assert dirty_predicates(QU.source, edited) == {("queens", 2)}


def test_new_predicate_is_dirty():
    edited = QU.source + "\nextra(a).\n"
    assert dirty_predicates(QU.source, edited) == {("extra", 1)}


def test_removed_callee_dirties_callers():
    # drop safe/1: queens still calls it, so queens must be dirty
    lines = [line for line in QU.source.splitlines()
             if not line.startswith("safe(")]
    edited = "\n".join(lines)
    dirty = dirty_predicates(QU.source, edited)
    assert ("queens", 2) in dirty
    assert ("perm", 2) not in dirty


def test_mutual_recursion_dirties_whole_scc():
    source = """
    even(z).
    even(s(X)) :- odd(X).
    odd(s(X)) :- even(X).
    top(X) :- even(X).
    aside(a).
    """
    edited = source.replace("odd(s(X)) :- even(X).",
                            "odd(s(s(X))) :- odd(s(X)).\n"
                            "odd(s(X)) :- even(X).")
    dirty = dirty_predicates(source, edited)
    assert dirty == {("even", 1), ("odd", 1), ("top", 1)}
    assert ("aside", 1) not in dirty


# -- cache promotion ---------------------------------------------------------

def test_promote_invalidates_only_scc_affected_entries(tmp_path):
    cache = ResultCache(tmp_path)
    # cache one entry per predicate cone: clean (perm) and dirty (queens)
    reanalyze(QU.source, ("perm", 2), cache)
    reanalyze(QU.source, ("queens", 2), cache)
    report = promote(cache, QU.source, QU_EDITED)
    assert {k.query for k in report.promoted} == {("perm", 2)}
    assert {k.query for k in report.invalidated} == {("queens", 2)}
    # the promoted entry is an instant hit for the edited program
    _, info = reanalyze(QU_EDITED, ("perm", 2), cache)
    assert info.cached
    # the dirty entry is gone even under the old program hash
    assert cache.get(make_key(QU.source, ("queens", 2))) is None


def test_promote_keeps_unrelated_program_versions(tmp_path):
    cache = ResultCache(tmp_path)
    other = benchmark("AR")
    reanalyze(other.source, other.query, cache)
    reanalyze(QU.source, ("queens", 2), cache)
    promote(cache, QU.source, QU_EDITED)
    assert cache.get(make_key(other.source, other.query)) is not None


def test_promote_is_a_noop_for_identical_programs(tmp_path):
    cache = ResultCache(tmp_path)
    reanalyze(QU.source, ("queens", 2), cache)
    report = promote(cache, QU.source, QU.source + "\n% noise\n")
    assert not report.promoted and not report.invalidated


# -- incremental re-analysis -------------------------------------------------

def test_reanalyze_cold_then_cached(tmp_path):
    cache = ResultCache(tmp_path)
    result, info = reanalyze(QU.source, QU.query, cache)
    assert not info.cached and info.seeded == 0
    again, info2 = reanalyze(QU.source, QU.query, cache)
    assert info2.cached
    assert subst_eq(again.output, result.output, result.domain)


def test_reanalyze_seeds_clean_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cold, _ = reanalyze(QU.source, QU.query, cache)
    warm, info = reanalyze(QU_EDITED, QU.query, cache,
                           old_source=QU.source)
    assert not info.cached
    assert info.seeded > 0
    assert info.dirty == {("noattack", 3), ("safe", 1), ("queens", 2)}
    # seeded entries are reported and the dirty cone did less work
    assert warm.stats.entries_seeded == info.seeded
    assert warm.stats.procedure_iterations < \
        cold.stats.procedure_iterations
    # seeds only come from clean predicates
    seeded_preds = {e.pred for e in warm.entries
                    if e.iterations == 0 and e.pred != QU.query}
    assert seeded_preds.isdisjoint(info.dirty)


def test_seeded_reanalysis_matches_cold_analysis(tmp_path):
    cache = ResultCache(tmp_path)
    reanalyze(QU.source, QU.query, cache)
    warm, info = reanalyze(QU_EDITED, QU.query, cache,
                           old_source=QU.source)
    assert info.seeded > 0
    cold = analyze(QU_EDITED, QU.query)
    assert subst_eq(warm.output, cold.result.output, cold.domain)
    for pred in cold.analyzed_predicates():
        collapsed_warm = warm.collapsed_for(pred)
        collapsed_cold = cold.result.collapsed_for(pred)
        assert (collapsed_warm is None) == (collapsed_cold is None)
        if collapsed_warm is not None:
            assert subst_eq(collapsed_warm[1], collapsed_cold[1],
                            cold.domain)


def test_seeds_never_degrade_precision_for_smaller_inputs(tmp_path):
    """A dirty caller may call a clean predicate with a *smaller*
    input than any old entry's; the seed must not be reused for it
    (sound but coarser), or the degraded result would be cached under
    the same key a cold run populates."""
    old = "id(X, X).\nmain(X, Y) :- id(X, Y).\n"
    new = "id(X, X).\nmain(X, Y) :- X = [a|_], id(X, Y).\n"
    cache = ResultCache(tmp_path)
    reanalyze(old, ("main", 2), cache)
    warm, info = reanalyze(new, ("main", 2), cache, old_source=old)
    assert info.seeded == 1  # id/2 is clean and was seeded
    cold = analyze(new, ("main", 2))
    assert subst_eq(warm.output, cold.result.output, cold.domain)


def test_promote_moves_instead_of_copying(tmp_path):
    """Promotion re-keys clean entries; the superseded version's
    copies are dropped so the store does not grow per edit."""
    cache = ResultCache(tmp_path)
    reanalyze(QU.source, ("perm", 2), cache)
    reanalyze(QU.source, ("queens", 2), cache)
    promote(cache, QU.source, QU_EDITED)
    assert cache.get(make_key(QU.source, ("perm", 2))) is None
    assert cache.get(make_key(QU_EDITED, ("perm", 2))) is not None
    assert len(cache) == 1


def test_corrupt_record_without_payload_is_a_miss(tmp_path):
    import json
    cache = ResultCache(tmp_path)
    result, info = reanalyze(QU.source, ("perm", 2), cache)
    with open(cache._entry_path(info.key), "w") as handle:
        json.dump({"key": info.key.to_obj()}, handle)  # no payload
    fresh = ResultCache(tmp_path)
    assert fresh.get(info.key) is None


def test_reanalyze_without_old_result_runs_cold(tmp_path):
    cache = ResultCache(tmp_path)
    result, info = reanalyze(QU_EDITED, QU.query, cache,
                             old_source=QU.source)
    assert not info.cached and info.seeded == 0
    cold = analyze(QU_EDITED, QU.query)
    assert subst_eq(result.output, cold.result.output, cold.domain)


def test_reanalyze_stores_result_for_next_time(tmp_path):
    cache = ResultCache(tmp_path)
    reanalyze(QU.source, QU.query, cache)
    reanalyze(QU_EDITED, QU.query, cache, old_source=QU.source)
    _, info = reanalyze(QU_EDITED, QU.query, cache)
    assert info.cached
