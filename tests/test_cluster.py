"""Tests for the sharded analysis cluster (``repro router``).

Two layers, mirroring ``test_server.py``:

* **ring algebra** — :class:`HashRing` properties that make the
  cluster operable: deterministic preference lists, and minimal key
  movement under membership change (the property that keeps warm
  shards warm when the fleet grows or shrinks).
* **embedded cluster** — real :class:`AnalysisServer` shards and a
  :class:`ClusterRouter` inside one event loop: routing determinism,
  fingerprints identical to direct analysis, shard-down failover,
  cross-shard L2 promotion through a shared cache dir, graceful
  drain, stats aggregation, and batch splitting.
"""

import asyncio
import json
import time

import pytest

from repro import analyze
from repro.benchprogs import benchmark
from repro.service import server as server_module
from repro.service.cluster import (ClusterRouter, HashRing,
                                   MembershipJournal, load_fleet)
from repro.service.serialize import result_fingerprint
from repro.service.server import AnalysisServer


# -- hash ring ---------------------------------------------------------------

KEYS = ["key-%04d" % i for i in range(400)]


def test_ring_preference_is_deterministic_and_complete():
    ring_a = HashRing(["s1", "s2", "s3"], vnodes=32)
    ring_b = HashRing(["s3", "s1", "s2"], vnodes=32)  # order-independent
    for key in KEYS[:50]:
        preference = ring_a.preference(key)
        assert sorted(preference) == ["s1", "s2", "s3"]
        assert preference == ring_b.preference(key)
        assert ring_a.node_for(key) == preference[0]


def test_ring_spreads_keys_over_all_nodes():
    ring = HashRing(["s1", "s2", "s3", "s4"], vnodes=64)
    counts = {}
    for key in KEYS:
        counts[ring.node_for(key)] = counts.get(ring.node_for(key), 0) + 1
    assert set(counts) == {"s1", "s2", "s3", "s4"}
    # vnodes keep the split coarse-grained fair (no shard starved)
    assert min(counts.values()) >= len(KEYS) * 0.10


def test_ring_add_node_moves_only_keys_to_the_new_node():
    ring = HashRing(["s1", "s2", "s3", "s4"], vnodes=64)
    before = {key: ring.node_for(key) for key in KEYS}
    ring.add("s5")
    moved = 0
    for key in KEYS:
        owner = ring.node_for(key)
        if owner != before[key]:
            moved += 1
            assert owner == "s5"  # every moved key moved TO the joiner
    # ~1/5 of the space moves; anything near full reshuffle is a bug
    assert 0 < moved <= len(KEYS) * 0.45


def test_ring_remove_node_strands_only_its_keys():
    ring = HashRing(["s1", "s2", "s3", "s4"], vnodes=64)
    before = {key: ring.node_for(key) for key in KEYS}
    ring.remove("s2")
    for key in KEYS:
        if before[key] != "s2":
            assert ring.node_for(key) == before[key]
        else:
            assert ring.node_for(key) != "s2"


def test_ring_preference_order_is_the_failover_order():
    """Marking the owner down and rehashing must equal 'skip to the
    next entry of the preference list' — the router relies on it."""
    ring = HashRing(["s1", "s2", "s3"], vnodes=64)
    for key in KEYS[:100]:
        preference = ring.preference(key)
        survivor_ring = HashRing([node for node in ("s1", "s2", "s3")
                                  if node != preference[0]], vnodes=64)
        assert survivor_ring.node_for(key) == preference[1]


# -- embedded cluster --------------------------------------------------------

def run_cluster(scenario, shards=2, server_kwargs=None,
                router_kwargs=None):
    """N embedded shards + a router in one event loop; always drains
    router first, then the shards."""

    async def main():
        servers = [AnalysisServer(port=0,
                                  **(server_kwargs(index)
                                     if callable(server_kwargs)
                                     else dict(server_kwargs or {})))
                   for index in range(shards)]
        for server in servers:
            await server.start()
        kwargs = dict(health_interval=0.2, backoff=0.01,
                      down_after=2, request_timeout=60.0)
        kwargs.update(router_kwargs or {})
        router = ClusterRouter([("127.0.0.1", server.port)
                                for server in servers], port=0,
                               **kwargs)
        await router.start()
        try:
            return await scenario(router, servers)
        finally:
            await router.drain_and_close(shutdown_spawned=False)
            for server in servers:
                await server.drain_and_close()

    return asyncio.run(main())


async def send(port, request):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


def direct_fingerprint(name):
    bp = benchmark(name)
    analysis = analyze(bp.source, bp.query, input_types=bp.input_types)
    return result_fingerprint(analysis.result)


def shard_owning(router, benchmark_name):
    """(shard_id, index into router's shard order) the ring assigns."""
    key = router._routing_hash({"benchmark": benchmark_name})
    node = router.ring.preference(key)[0]
    return node, list(router.shards).index(node)


def test_router_analyze_matches_direct_and_sticks_to_one_shard():
    async def scenario(router, servers):
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "QU",
            "payload": False})
        route = await send(router.port, {"id": 3, "op": "route",
                                         "benchmark": "QU"})
        return first, second, route

    first, second, route = run_cluster(scenario)
    assert first["ok"] and second["ok"]
    assert first["id"] == 1 and second["id"] == 2  # ids pass through
    assert first["result"]["fingerprint"] == direct_fingerprint("QU")
    assert second["result"]["fingerprint"] == \
        first["result"]["fingerprint"]
    # the repeat was a warm hit on the owning shard, not a re-analysis
    assert second["result"]["cached"]
    assert route["result"]["target"] == route["result"]["preference"][0]


def test_router_distributes_distinct_programs():
    """With enough distinct programs both shards end up owning some."""
    sources = ["p%d(a). p%d(b)." % (i, i) for i in range(12)]

    async def scenario(router, servers):
        for index, source in enumerate(sources):
            response = await send(router.port, {
                "id": index, "op": "analyze", "source": source,
                "query": ["p%d" % index, 1], "payload": False})
            assert response["ok"]
        return [shard.forwarded for shard in router.shards.values()]

    forwarded = run_cluster(scenario)
    assert sum(forwarded) == len(sources)
    assert all(count > 0 for count in forwarded)


def test_shard_down_failover_keeps_fingerprints_identical():
    async def scenario(router, servers):
        fingerprint = direct_fingerprint("QU")
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})
        assert first["result"]["fingerprint"] == fingerprint
        # kill the owning shard abruptly (no drain): next request must
        # fail over to the replica and still match the direct result
        owner, owner_index = shard_owning(router, "QU")
        victim = servers[owner_index]
        victim._server.close()
        victim._server.hang_up()
        await victim._server.wait_closed()
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "QU",
            "payload": False})
        return fingerprint, second, router.stats.failovers, owner

    fingerprint, second, failovers, owner = run_cluster(scenario)
    assert second["ok"], second
    assert second["result"]["fingerprint"] == fingerprint
    assert failovers >= 1


def test_l2_promotion_hits_on_second_shard(tmp_path):
    """A result computed on one shard is a disk hit on another: the
    shared --cache-dir is the cross-shard L2."""
    cache_dir = str(tmp_path / "l2")

    async def scenario(router, servers):
        owner, owner_index = shard_owning(router, "RE")
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "RE",
            "payload": False})
        assert first["ok"] and not first["result"]["cached"]
        # take the owner out; the replica must serve from shared disk
        router.shards[owner].mark_down()
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "RE",
            "payload": False})
        replica_index = 1 - owner_index
        disk_hits = servers[replica_index].cache.stats.disk_hits
        return first, second, disk_hits

    # each shard gets its own ResultCache over the SAME directory —
    # separate memory LRUs, one shared disk store (the deployment shape)
    from repro.service.cache import ResultCache
    first, second, disk_hits = run_cluster(
        scenario, server_kwargs=lambda i: {"cache": ResultCache(cache_dir)})
    assert second["ok"], second
    assert second["result"]["cached"]  # no recomputation
    assert second["result"]["fingerprint"] == \
        first["result"]["fingerprint"]
    assert disk_hits >= 1


def test_drain_completes_inflight_and_reroutes(monkeypatch):
    real = server_module._execute_spec

    def slow_execute(spec):
        time.sleep(0.4)
        return real(spec)

    monkeypatch.setattr(server_module, "_execute_spec", slow_execute)
    source = "drainme(a). drainme(b)."

    async def scenario(router, servers):
        owner = router.ring.preference(
            router._routing_hash({"source": source}))[0]
        inflight = asyncio.ensure_future(send(router.port, {
            "id": 1, "op": "analyze", "source": source,
            "query": ["drainme", 1], "payload": False}))
        await asyncio.sleep(0.1)  # the slow analysis is now on-shard
        drain = await send(router.port, {"id": 2, "op": "drain-shard",
                                         "shard": owner})
        assert drain["ok"]
        assert drain["result"]["status"] == "draining"
        completed = await inflight  # in-flight request still finishes
        route = await send(router.port, {"id": 3, "op": "route",
                                         "source": source})
        undrain = await send(router.port, {
            "id": 4, "op": "undrain-shard", "shard": owner})
        route_back = await send(router.port, {"id": 5, "op": "route",
                                              "source": source})
        return owner, completed, route, undrain, route_back

    owner, completed, route, undrain, route_back = run_cluster(scenario)
    assert completed["ok"], completed
    # while draining, new work for its keys flows to the replica...
    assert route["result"]["target"] != owner
    # ...and undrain deterministically brings the keys home
    assert undrain["result"]["status"] == "up"
    assert route_back["result"]["target"] == owner


def test_stats_aggregation_merges_the_fleet():
    async def scenario(router, servers):
        for name in ("QU", "RE"):
            response = await send(router.port, {
                "id": 1, "op": "analyze", "benchmark": name,
                "payload": False})
            assert response["ok"]
        return await send(router.port, {"id": 2, "op": "stats"})

    stats = run_cluster(scenario)["result"]
    assert set(stats) == {"router", "merged", "shards"}
    assert stats["router"]["routed"] == 2
    assert stats["merged"]["shards_up"] == 2
    assert stats["merged"]["requests"] == 2
    assert stats["merged"]["analyses_executed"] == 2
    assert len(stats["shards"]) == 2
    assert stats["merged"]["latency"]["count"] == 2
    assert stats["router"]["latency"]["count"] >= 2


def test_batch_splits_by_shard_and_preserves_order():
    names = ["QU", "RE", "PG", "CS", "DS"]

    async def scenario(router, servers):
        return await send(router.port, {
            "id": 1, "op": "batch", "benchmarks": names})

    response = run_cluster(scenario)
    assert response["ok"], response
    jobs = response["result"]["jobs"]
    assert [job["name"] for job in jobs] == names
    for job in jobs:
        assert job["ok"]
        assert job["fingerprint"] == direct_fingerprint(job["name"])
    assert 1 <= response["result"]["shards"] <= 2


def test_invalidate_broadcasts_to_every_shard():
    source = "inval(a). inval(b)."

    async def scenario(router, servers):
        first = await send(router.port, {
            "id": 1, "op": "analyze", "source": source,
            "query": ["inval", 1], "payload": False})
        assert first["ok"]
        report = await send(router.port, {
            "id": 2, "op": "invalidate", "source": source})
        again = await send(router.port, {
            "id": 3, "op": "analyze", "source": source,
            "query": ["inval", 1], "payload": False})
        return report, again

    report, again = run_cluster(scenario)
    assert report["ok"]
    assert report["result"]["invalidated"] >= 1
    assert len(report["result"]["shards"]) == 2
    assert again["ok"] and not again["result"]["cached"]


def test_all_shards_down_is_a_clear_error():
    async def scenario(router, servers):
        for shard in router.shards.values():
            shard.mark_down()
        return await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})

    response = run_cluster(scenario)
    assert not response["ok"]
    assert response["code"] == "no-shards"
    assert "down" in response["error"]


def test_router_rejects_unknown_ops_and_benchmarks():
    async def scenario(router, servers):
        unknown_op = await send(router.port, {"id": 1, "op": "nope"})
        unknown_benchmark = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "NO-SUCH"})
        unroutable = await send(router.port, {"id": 3, "op": "analyze"})
        ping = await send(router.port, {"id": 4, "op": "ping"})
        info = await send(router.port, {"id": 5, "op": "router-info"})
        return unknown_op, unknown_benchmark, unroutable, ping, info

    unknown_op, unknown_benchmark, unroutable, ping, info = \
        run_cluster(scenario)
    assert not unknown_op["ok"] and unknown_op["code"] == "bad-request"
    assert "router ops" in unknown_op["error"]
    assert not unknown_benchmark["ok"]
    assert "NO-SUCH" in unknown_benchmark["error"]
    assert not unroutable["ok"]
    assert ping["ok"] and ping["result"]["router"]
    assert info["ok"]
    assert len(info["result"]["shards"]) == 2
    assert set(info["result"]["ring"]) == set(info["result"]["shards"])


# -- supervision -------------------------------------------------------------

class FakeProcess:
    """Just enough Popen for ShardState supervision."""

    def __init__(self, returncode=None, pid=4242):
        self.returncode = returncode
        self.pid = pid

    def poll(self):
        return self.returncode

    def wait(self, timeout=None):
        return self.returncode

    def terminate(self):
        if self.returncode is None:
            self.returncode = -15


async def wait_until(predicate, timeout=8.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def test_supervisor_restarts_dead_shard_with_identical_results(tmp_path):
    """A supervised shard that dies is respawned on the same port and
    serves fingerprint-identical results; the death and restart are
    journaled and the crash log tail is printed."""
    log_path = tmp_path / "shard.log"
    log_path.write_bytes(b"boom: synthetic crash evidence\n")

    async def scenario(router, servers):
        fingerprint_before = (await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False}))["result"]["fingerprint"]
        owner, owner_index = shard_owning(router, "QU")
        victim_server = servers[owner_index]
        shard = router.shards[owner]
        # Make the owner a supervised spawned shard, then kill it.
        shard.process = FakeProcess(returncode=137)
        shard.spawn_argv = ["serve", "--port", str(shard.port)]
        shard.log_path = str(log_path)
        await victim_server.drain_and_close()
        loop = asyncio.get_running_loop()
        respawned = []

        def fake_spawn(dead_shard):
            # Runs on the executor thread, like the real respawn; the
            # loop is free, so schedule the new server onto it.
            async def boot():
                replacement = AnalysisServer(port=dead_shard.port)
                await replacement.start()
                return replacement

            replacement = asyncio.run_coroutine_threadsafe(
                boot(), loop).result(10)
            respawned.append(replacement)
            return FakeProcess(pid=4343)

        router._spawn_shard_process = fake_spawn
        restarted = await wait_until(
            lambda: shard.restarts == 1 and shard.status == "up")
        after = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "QU",
            "payload": False})
        info = await send(router.port, {"id": 3, "op": "router-info"})
        try:
            return (fingerprint_before, restarted, after, info,
                    router.stats.restarts, list(router.membership_log))
        finally:
            for replacement in respawned:
                await replacement.drain_and_close()

    fingerprint, restarted, after, info, restarts, journal = \
        run_cluster(scenario,
                    router_kwargs={"health_interval": 0.05,
                                   "restart_backoff": 0.02})
    assert restarted, journal
    assert restarts == 1
    assert after["ok"], after
    assert after["result"]["fingerprint"] == fingerprint
    events = [entry["event"] for entry in journal]
    assert "shard-death" in events and "shard-restarted" in events
    shard_infos = info["result"]["shards"]
    restarted_info = next(i for i in shard_infos.values()
                          if i["restarts"] == 1)
    assert restarted_info["supervised"]
    assert restarted_info["last_probe_at"] is not None


def test_crash_loop_breaker_stops_restarting():
    """K rapid deaths trip the breaker: no more restart attempts, and
    the shard's keys keep flowing to the surviving replica."""

    async def scenario(router, servers):
        owner, owner_index = shard_owning(router, "QU")
        shard = router.shards[owner]
        await servers[owner_index].drain_and_close()
        shard.process = FakeProcess(returncode=1)
        shard.spawn_argv = ["serve", "--port", str(shard.port)]

        def failing_spawn(dead_shard):
            raise RuntimeError("spawn always fails")

        router._spawn_shard_process = failing_spawn
        tripped = await wait_until(lambda: shard.breaker_tripped)
        failures_at_trip = shard.restart_failures
        # Give the health loop a few more cycles: the breaker must
        # actually stop the restart attempts, not just set a flag.
        await asyncio.sleep(0.3)
        fail_over = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})
        return (tripped, failures_at_trip, shard.restart_failures,
                router.stats.breaker_trips, fail_over,
                list(router.membership_log))

    tripped, at_trip, after_wait, trips, fail_over, journal = \
        run_cluster(scenario,
                    router_kwargs={"health_interval": 0.03,
                                   "restart_backoff": 0.01,
                                   "breaker_deaths": 3,
                                   "breaker_window": 30.0})
    assert tripped, journal
    assert trips == 1
    assert after_wait == at_trip  # breaker froze the restart loop
    assert any(entry["event"] == "breaker-tripped" for entry in journal)
    assert fail_over["ok"], fail_over
    assert fail_over["result"]["fingerprint"] == direct_fingerprint("QU")


# -- live membership ---------------------------------------------------------

def test_add_shard_probes_health_and_moves_only_its_slice():
    sources = ["mem%d(a). mem%d(b)." % (i, i) for i in range(24)]

    async def scenario(router, servers):
        before = {}
        for index, source in enumerate(sources):
            route = await send(router.port, {
                "id": index, "op": "route", "source": source})
            before[source] = route["result"]["target"]
        # a probe failure must keep the ring unchanged
        refused = await send(router.port, {
            "id": 100, "op": "add-shard", "host": "127.0.0.1",
            "port": 1})
        ring_after_refusal = list(router.ring.nodes)
        joiner = AnalysisServer(port=0)
        await joiner.start()
        try:
            added = await send(router.port, {
                "id": 101, "op": "add-shard", "host": "127.0.0.1",
                "port": joiner.port})
            joiner_id = "127.0.0.1:%d" % joiner.port
            moved_to = []
            stayed = 0
            for source in sources:
                route = await send(router.port, {
                    "id": 102, "op": "route", "source": source})
                target = route["result"]["target"]
                if target != before[source]:
                    moved_to.append(target)
                else:
                    stayed += 1
            # the joiner actually serves its slice, bit-identically
            moved_source = next(s for s in sources
                                if before[s] != joiner_id
                                and router.ring.node_for(
                                    router._routing_hash(
                                        {"source": s})) == joiner_id)
            response = await send(router.port, {
                "id": 103, "op": "analyze", "source": moved_source,
                "query": [moved_source.split("(")[0], 1],
                "payload": False})
            return (refused, ring_after_refusal, added, joiner_id,
                    moved_to, stayed, response,
                    router.stats.shards_added)
        finally:
            await joiner.drain_and_close()

    (refused, ring_after_refusal, added, joiner_id, moved_to, stayed,
     response, adds) = run_cluster(scenario)
    assert not refused["ok"]
    assert refused["code"] == "shard-unavailable"
    assert len(ring_after_refusal) == 2  # bogus shard never joined
    assert added["ok"], added
    assert added["result"]["shards"] == 3
    assert moved_to and all(target == joiner_id for target in moved_to)
    assert stayed > 0  # only the joining slice moved
    assert response["ok"] and adds == 1


def test_remove_shard_drains_inflight_then_departs(monkeypatch):
    real = server_module._execute_spec

    def slow_execute(spec):
        time.sleep(0.4)
        return real(spec)

    monkeypatch.setattr(server_module, "_execute_spec", slow_execute)
    source = "leaving(a). leaving(b)."

    async def scenario(router, servers):
        owner = router.ring.preference(
            router._routing_hash({"source": source}))[0]
        inflight = asyncio.ensure_future(send(router.port, {
            "id": 1, "op": "analyze", "source": source,
            "query": ["leaving", 1], "payload": False}))
        await asyncio.sleep(0.1)  # the slow analysis is now on-shard
        removed = await send(router.port, {
            "id": 2, "op": "remove-shard", "shard": owner,
            "shutdown": False})
        completed = await inflight
        after = await send(router.port, {
            "id": 3, "op": "analyze", "source": source,
            "query": ["leaving", 1], "payload": False})
        last = list(router.shards)[0]
        refused = await send(router.port, {
            "id": 4, "op": "remove-shard", "shard": last})
        return (owner, removed, completed, after, refused,
                list(router.ring.nodes), router.stats.shards_removed)

    owner, removed, completed, after, refused, ring, removes = \
        run_cluster(scenario)
    assert removed["ok"], removed
    assert removed["result"]["drained"]  # in-flight finished first
    assert owner not in ring and len(ring) == 1
    assert completed["ok"], completed
    assert after["ok"] and after["result"]["fingerprint"] == \
        completed["result"]["fingerprint"]
    assert not refused["ok"] and "last shard" in refused["error"]
    assert removes == 1


# -- replicated writes -------------------------------------------------------

def test_replication_seeds_replica_memory_for_failover():
    """With --replicate 2 a fresh result lands in the replica's memory
    tier; killing the home shard then serves it as a memory hit — no
    recomputation, no disk."""

    async def scenario(router, servers):
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})
        assert first["ok"] and not first["result"]["cached"]
        owner, owner_index = shard_owning(router, "QU")
        replica = servers[1 - owner_index]
        seeded = await wait_until(
            lambda: replica.cache.stats.seeds >= 1, timeout=5.0)
        router.shards[owner].mark_down()
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "QU",
            "payload": False})
        return (first, seeded, second, replica.cache.stats,
                replica.stats.analyses_executed,
                router.stats.replications)

    first, seeded, second, cache_stats, replica_analyses, replications = \
        run_cluster(scenario, router_kwargs={"replicate": 2})
    assert seeded, "replication never reached the replica"
    assert replications >= 1
    assert second["ok"], second
    assert second["result"]["cached"]          # served, not recomputed
    assert second["result"]["fingerprint"] == \
        first["result"]["fingerprint"]
    assert replica_analyses == 0               # memory tier, no work
    assert cache_stats.memory_hits >= 1


def test_replication_skips_cached_results():
    """Only fresh computations replicate — a stream of warm hits must
    not generate seed traffic."""

    async def scenario(router, servers):
        for request_id in range(3):
            response = await send(router.port, {
                "id": request_id, "op": "analyze", "benchmark": "RE",
                "payload": False})
            assert response["ok"]
        await wait_until(
            lambda: router.stats.replications >= 1, timeout=2.0)
        return router.stats.replications, router.stats.replication_failures

    replications, failures = run_cluster(
        scenario, router_kwargs={"replicate": 2})
    assert replications == 1  # the first, fresh result — nothing else
    assert failures == 0


# -- anti-entropy replica repair ---------------------------------------------

def test_digest_fetch_seed_round_trip_between_shards():
    """The three server ops anti-entropy is built from: ``digest``
    inventories the memory tier, ``fetch`` returns key + payload, and
    ``seed`` with a raw key object installs it on another shard."""

    async def scenario(router, servers):
        a, b = servers
        first = await send(a.port, {"id": 1, "op": "analyze",
                                    "benchmark": "QU", "payload": False})
        assert first["ok"]
        digest = first["result"]["key"]
        inventory = await send(a.port, {"id": 2, "op": "digest"})
        fetched = await send(a.port, {"id": 3, "op": "fetch",
                                      "digest": digest})
        seeded = await send(b.port, {"id": 4, "op": "seed",
                                     "key": fetched["result"]["key"],
                                     "payload": fetched["result"]["payload"]})
        hit = await send(b.port, {"id": 5, "op": "analyze",
                                  "benchmark": "QU", "payload": False})
        missing = await send(a.port, {"id": 6, "op": "fetch",
                                      "digest": "no-such-digest"})
        malformed = await send(b.port, {"id": 7, "op": "seed",
                                        "key": {"bogus": True},
                                        "payload": {}})
        return digest, inventory, fetched, seeded, hit, missing, malformed

    digest, inventory, fetched, seeded, hit, missing, malformed = \
        run_cluster(scenario)
    entry = next(e for e in inventory["result"]["entries"]
                 if e["digest"] == digest)
    assert fetched["result"]["key"]["program_hash"] == entry["program"]
    assert seeded["ok"] and seeded["result"]["seeded"]
    assert seeded["result"]["key"] == digest  # same content address
    assert hit["ok"] and hit["result"]["cached"]
    assert hit["result"]["fingerprint"] == direct_fingerprint("QU")
    assert not missing["ok"] and missing["code"] == "not-found"
    assert not malformed["ok"]


def test_seed_vs_invalidate_race_leaves_replica_divergent():
    """The documented gap anti-entropy exists to close: ``invalidate``
    drops the seeded replica copy, re-analysis on the home reproduces
    the *same* content-addressed digest, and the router's ``_seeded``
    dedupe LRU refuses to push it again — the replica stays cold, so
    a later failover must recompute (correct result, wasted work)."""

    async def scenario(router, servers):
        first = await send(router.port, {"id": 1, "op": "analyze",
                                         "benchmark": "QU",
                                         "payload": False})
        assert first["ok"] and not first["result"]["cached"]
        digest = first["result"]["key"]
        owner, owner_index = shard_owning(router, "QU")
        replica = servers[1 - owner_index]
        assert await wait_until(lambda: replica.cache.stats.seeds >= 1)
        report = await send(router.port, {
            "id": 2, "op": "invalidate",
            "source": benchmark("QU").source})
        assert report["ok"] and report["result"]["invalidated"] >= 1
        assert replica.cache.get_by_digest(digest) is None
        again = await send(router.port, {"id": 3, "op": "analyze",
                                         "benchmark": "QU",
                                         "payload": False})
        assert again["ok"] and not again["result"]["cached"]
        assert again["result"]["key"] == digest  # same digest, by design
        await wait_until(lambda: not router._replication_tasks,
                         timeout=2.0)
        divergent = replica.cache.get_by_digest(digest) is None
        # ...and the stale-miss that divergence costs on failover:
        router.shards[owner].mark_down()
        failover = await send(router.port, {"id": 4, "op": "analyze",
                                            "benchmark": "QU",
                                            "payload": False})
        return first, divergent, failover

    first, divergent, failover = run_cluster(
        scenario, router_kwargs={"replicate": 2})
    assert divergent, "dedupe LRU should have blocked the re-seed"
    assert failover["ok"]
    assert not failover["result"]["cached"]  # recomputed, not served warm
    assert failover["result"]["fingerprint"] == \
        first["result"]["fingerprint"]


def test_anti_entropy_repairs_the_invalidate_race():
    """Same setup as above, but an ``anti-entropy`` pass between the
    re-analysis and the failover: the pass sees the home holding a
    digest its replica window lacks, re-seeds it, and the failover is
    a warm memory hit again."""

    async def scenario(router, servers):
        first = await send(router.port, {"id": 1, "op": "analyze",
                                         "benchmark": "QU",
                                         "payload": False})
        digest = first["result"]["key"]
        owner, owner_index = shard_owning(router, "QU")
        replica = servers[1 - owner_index]
        assert await wait_until(lambda: replica.cache.stats.seeds >= 1)
        await send(router.port, {"id": 2, "op": "invalidate",
                                 "source": benchmark("QU").source})
        again = await send(router.port, {"id": 3, "op": "analyze",
                                         "benchmark": "QU",
                                         "payload": False})
        assert again["ok"]
        await wait_until(lambda: not router._replication_tasks,
                         timeout=2.0)
        assert replica.cache.get_by_digest(digest) is None  # diverged
        repair = await send(router.port, {"id": 4, "op": "anti-entropy"})
        assert repair["ok"], repair
        repaired = replica.cache.get_by_digest(digest) is not None
        router.shards[owner].mark_down()
        failover = await send(router.port, {"id": 5, "op": "analyze",
                                            "benchmark": "QU",
                                            "payload": False})
        return (first, repair, repaired, failover,
                replica.stats.analyses_executed,
                router.stats.anti_entropy_repairs)

    first, repair, repaired, failover, replica_analyses, counted = \
        run_cluster(scenario, router_kwargs={"replicate": 2})
    assert repair["result"]["repairs"] >= 1
    assert counted >= 1
    assert repaired, "anti-entropy pass did not re-seed the replica"
    assert failover["ok"]
    assert failover["result"]["cached"]        # warm memory again
    assert replica_analyses == 0               # no recomputation
    assert failover["result"]["fingerprint"] == \
        first["result"]["fingerprint"]


def test_anti_entropy_reseeds_restarted_home_but_never_resurrects(tmp_path):
    """The other two anti-entropy cases: a home shard whose memory
    tier was wiped (restart) is re-seeded from its replica because the
    shared disk store confirms the entry is legitimate; an entry that
    was invalidated everywhere but lingers in one straggler's memory
    is *not* re-spread — invalidate wins over repair."""
    cache_dir = str(tmp_path / "l2")
    from repro.service.cache import ResultCache

    async def scenario(router, servers):
        # -- restart loss: wipe the home's memory, repair from replica
        first = await send(router.port, {"id": 1, "op": "analyze",
                                         "benchmark": "QU",
                                         "payload": False})
        digest = first["result"]["key"]
        owner, owner_index = shard_owning(router, "QU")
        home, replica = servers[owner_index], servers[1 - owner_index]
        assert await wait_until(lambda: replica.cache.stats.seeds >= 1)
        with home.cache._lock:  # simulate a restart's empty memory
            home.cache._memory.clear()
        assert home.cache.get_by_digest(digest) is None
        repair = await send(router.port, {"id": 2, "op": "anti-entropy"})
        assert repair["ok"], repair
        home_restored = home.cache.get_by_digest(digest) is not None

        # -- straggler resurrection: drop everywhere, re-seed only the
        # replica's memory, and verify the pass refuses to spread it
        stale = replica.cache.get_by_digest(digest)
        await send(router.port, {"id": 3, "op": "invalidate",
                                 "source": benchmark("QU").source})
        assert home.cache.get_by_digest(digest) is None
        replica.cache.seed(*stale)  # the straggler's surviving copy
        second_repair = await send(router.port,
                                   {"id": 4, "op": "anti-entropy"})
        home_still_empty = home.cache.get_by_digest(digest) is None
        return repair, home_restored, second_repair, home_still_empty

    repair, home_restored, second_repair, home_still_empty = run_cluster(
        scenario,
        server_kwargs=lambda i: {"cache": ResultCache(cache_dir)},
        router_kwargs={"replicate": 2, "cache_dir": cache_dir})
    assert repair["result"]["repairs"] >= 1
    assert home_restored, "restart loss was not repaired"
    assert second_repair["result"]["skipped_invalidated"] >= 1
    assert home_still_empty, "anti-entropy resurrected an invalidated entry"


def test_anti_entropy_requires_replication():
    async def scenario(router, servers):
        return await send(router.port, {"id": 1, "op": "anti-entropy"})

    refused = run_cluster(scenario)  # default replicate=1
    assert not refused["ok"]
    assert "--replicate" in refused["error"]


def test_failover_recompute_triggers_read_repair():
    """A failover that *recomputes* a digest the dedupe LRU thought
    was already replicated proves the copies are gone: the router
    drops the dedupe entry, counts a read-repair, and re-pushes to
    the surviving replicas."""

    async def scenario(router, servers):
        first = await send(router.port, {"id": 1, "op": "analyze",
                                         "benchmark": "QU",
                                         "payload": False})
        assert first["ok"]
        preference = router.ring.preference(
            router._routing_hash({"benchmark": "QU"}))
        await wait_until(lambda: router.stats.replications >= 2)
        await send(router.port, {"id": 2, "op": "invalidate",
                                 "source": benchmark("QU").source})
        router.shards[preference[0]].mark_down()
        second = await send(router.port, {"id": 3, "op": "analyze",
                                          "benchmark": "QU",
                                          "payload": False})
        assert second["ok"] and not second["result"]["cached"]
        # the re-push from the serving replica lands on the next live
        # node of the preference list
        third = next(s for s in servers
                     if "127.0.0.1:%d" % s.port == preference[2])
        reseeded = await wait_until(
            lambda: third.cache.get_by_digest(
                second["result"]["key"]) is not None)
        return router.stats.read_repairs, reseeded

    read_repairs, reseeded = run_cluster(
        scenario, shards=3, router_kwargs={"replicate": 3})
    assert read_repairs >= 1
    assert reseeded, "read-repair never re-pushed the recomputed entry"


# -- durable membership journal ----------------------------------------------

def test_membership_journal_tolerates_garbage_and_torn_tail(tmp_path):
    path = str(tmp_path / "membership.journal")
    journal = MembershipJournal(path)
    journal.append({"event": "add-shard", "shard": "10.0.0.9:7871",
                    "host": "10.0.0.9", "port": 7871})
    journal.close()
    with open(path, "ab") as handle:
        handle.write(b"not json at all\n")
        handle.write(b'{"event": "remove-shard", "sh')  # torn append
    reopened = MembershipJournal(path)
    assert [e["event"] for e in reopened.replayed] == ["add-shard"]
    assert reopened.seq == 1
    reopened.append({"event": "remove-shard", "shard": "10.0.0.9:7871"})
    reopened.close()
    # the post-torn append starts a clean line and survives re-reading
    final = MembershipJournal(path)
    assert [e["event"] for e in final.replayed] == \
        ["add-shard", "remove-shard"]
    assert final.seq == 2


def test_journal_replays_membership_across_router_restart(tmp_path):
    """add-shard/remove-shard ops are durable: a restarted router
    replays them and comes back with the same ring — the supervision
    events in between are deliberately not replayed."""
    journal_path = str(tmp_path / "membership.journal")

    async def main():
        servers = [AnalysisServer(port=0) for _ in range(2)]
        for server in servers:
            await server.start()
        base = [("127.0.0.1", servers[0].port)]
        joiner_id = "127.0.0.1:%d" % servers[1].port

        router = ClusterRouter(base, port=0, health_interval=0.2,
                               journal_path=journal_path)
        await router.start()
        added = await send(router.port, {
            "id": 1, "op": "add-shard", "host": "127.0.0.1",
            "port": servers[1].port})
        await router.drain_and_close(shutdown_spawned=False)

        # restart #1: only the base shard on the command line, the
        # joiner comes back from the journal
        restarted = ClusterRouter(base, port=0, health_interval=0.2,
                                  journal_path=journal_path)
        await restarted.start()
        ring_after_restart = list(restarted.ring.nodes)
        replayed = restarted.journal_replayed
        info = await send(restarted.port, {"id": 2, "op": "router-info"})
        removed = await send(restarted.port, {
            "id": 3, "op": "remove-shard", "shard": joiner_id,
            "shutdown": False})
        await restarted.drain_and_close(shutdown_spawned=False)

        # restart #2: the remove is durable too
        final = ClusterRouter(base, port=0, health_interval=0.2,
                              journal_path=journal_path)
        ring_final = list(final.ring.nodes)
        await final.start()
        await final.drain_and_close(shutdown_spawned=False)
        for server in servers:
            await server.drain_and_close()
        return (added, joiner_id, ring_after_restart, replayed, info,
                removed, ring_final)

    (added, joiner_id, ring_after_restart, replayed, info, removed,
     ring_final) = asyncio.run(main())
    assert added["ok"], added
    assert joiner_id in ring_after_restart
    assert replayed == 1
    assert info["result"]["journal"]["replayed"] == 1
    assert info["result"]["journal"]["seq"] >= 1
    assert removed["ok"], removed
    assert joiner_id not in ring_final


def _churn_journal(path, shards=6, removed=2, noise=40):
    """A journal full of membership churn plus supervision noise:
    ``shards`` adds, the first ``removed`` of them removed again, and
    ``noise`` non-membership events interleaved."""
    journal = MembershipJournal(path)
    ids = []
    for index in range(shards):
        shard_id = "10.0.0.%d:7871" % (index + 1)
        ids.append(shard_id)
        journal.append({"event": "add-shard", "shard": shard_id,
                        "host": "10.0.0.%d" % (index + 1), "port": 7871})
        for _ in range(noise // shards):
            journal.append({"event": "shard-died", "shard": shard_id})
            journal.append({"event": "shard-restarted",
                            "shard": shard_id})
    for shard_id in ids[:removed]:
        journal.append({"event": "remove-shard", "shard": shard_id})
    journal.close()
    return ids[removed:]


def test_journal_compact_rewrites_to_snapshot_with_monotone_seq(tmp_path):
    path = str(tmp_path / "membership.journal")
    _churn_journal(path)
    journal = MembershipJournal(path)
    seq_before = journal.seq
    entries_before = len(journal.replayed)
    snapshot = [{"event": "add-shard", "shard": "10.0.0.9:7871",
                 "host": "10.0.0.9", "port": 7871}]
    dropped = journal.compact(snapshot)
    assert dropped == entries_before - 1
    assert journal.seq == seq_before + 1  # continues, never rewinds
    assert journal.compactions == 1
    # an append after compaction lands on the compacted file
    journal.append({"event": "remove-shard", "shard": "10.0.0.9:7871"})
    journal.close()
    reread = MembershipJournal(path)
    assert [e["event"] for e in reread.replayed] == \
        ["add-shard", "remove-shard"]
    assert reread.seq == seq_before + 2


def test_router_compacts_oversized_journal_to_identical_ring(tmp_path):
    """The satellite contract: replaying the pre-compaction and the
    post-compaction journal builds the identical ring, and the
    compacted file is a fraction of the churned one's size."""
    path = str(tmp_path / "membership.journal")
    live = _churn_journal(path)
    size_before = MembershipJournal(path).size()

    before = ClusterRouter([], journal_path=path,
                           journal_compact_bytes=10 ** 9)  # no compaction
    assert sorted(before.ring.nodes) == sorted(live)
    assert before.journal.compactions == 0

    compacting = ClusterRouter([], journal_path=path,
                               journal_compact_bytes=1)
    assert compacting.journal.compactions == 1
    assert sorted(compacting.ring.nodes) == sorted(before.ring.nodes)
    assert compacting.journal.size() < size_before
    assert len(compacting.journal.replayed) == len(live)

    # a third router replays the *compacted* journal: identical ring,
    # identical preference lists, sequence still moving forward
    after = ClusterRouter([], journal_path=path,
                          journal_compact_bytes=10 ** 9)
    assert sorted(after.ring.nodes) == sorted(before.ring.nodes)
    for key in KEYS[:50]:
        assert after.ring.preference(key) == before.ring.preference(key)
    assert after.journal.seq >= compacting.journal.seq
    assert after.journal.compactions == 0


# -- standby routers ---------------------------------------------------------

def test_standby_syncs_membership_refuses_writes_and_promotes():
    """The full standby lifecycle in one loop: mirror the primary's
    ring (including later joins), serve reads all along, refuse
    membership writes while the primary answers, then promote after
    the primary dies and accept them."""

    async def main():
        servers = [AnalysisServer(port=0) for _ in range(2)]
        for server in servers:
            await server.start()
        addresses = [("127.0.0.1", server.port) for server in servers]
        primary = ClusterRouter(addresses, port=0, health_interval=0.05,
                                down_after=2)
        await primary.start()
        standby = ClusterRouter([], port=0, health_interval=0.05,
                                down_after=3,
                                sync_from=("127.0.0.1", primary.port))
        await standby.start()
        joiner = AnalysisServer(port=0)
        await joiner.start()
        try:
            synced = await wait_until(
                lambda: len(standby.ring.nodes) == 2)
            refused = await send(standby.port, {
                "id": 1, "op": "add-shard", "host": "127.0.0.1",
                "port": joiner.port})
            added = await send(primary.port, {
                "id": 2, "op": "add-shard", "host": "127.0.0.1",
                "port": joiner.port})
            propagated = await wait_until(
                lambda: len(standby.ring.nodes) == 3)
            served = await send(standby.port, {
                "id": 3, "op": "analyze", "benchmark": "QU",
                "payload": False})
            membership = await send(standby.port,
                                    {"id": 4, "op": "sync-membership"})
            await primary.drain_and_close(shutdown_spawned=False)
            promoted = await wait_until(
                lambda: not standby.primary_reachable)
            accepted = await send(standby.port, {
                "id": 5, "op": "remove-shard",
                "shard": "127.0.0.1:%d" % joiner.port,
                "shutdown": False})
            info = await send(standby.port, {"id": 6,
                                             "op": "router-info"})
            return (synced, refused, added, propagated, served,
                    membership, promoted, accepted, info)
        finally:
            await joiner.drain_and_close()
            await standby.drain_and_close(shutdown_spawned=False)
            for server in servers:
                await server.drain_and_close()

    (synced, refused, added, propagated, served, membership, promoted,
     accepted, info) = asyncio.run(main())
    assert synced, "standby never mirrored the primary's ring"
    assert not refused["ok"] and refused["code"] == "standby"
    assert "standby" in refused["error"]
    assert added["ok"], added
    assert propagated, "add-shard on the primary never reached standby"
    assert served["ok"]
    assert served["result"]["fingerprint"] == direct_fingerprint("QU")
    assert membership["ok"]
    assert membership["result"]["role"] == "standby"
    assert len(membership["result"]["shards"]) == 3
    assert promoted, "standby never promoted after primary death"
    assert accepted["ok"], accepted
    # a promoted standby *is* the acting primary
    assert info["result"]["role"] == "primary"
    assert info["result"]["primary_reachable"] is False
    assert info["result"]["sync_pulls"] >= 1
    events = [entry["event"] for entry in info["result"]["membership_log"]]
    assert "sync-add" in events and "standby-promoted" in events


# -- fleet spec & log rotation -----------------------------------------------

def test_load_fleet_normalizes_and_validates(tmp_path):
    import json as json_module
    path = tmp_path / "fleet.json"
    path.write_text(json_module.dumps({
        "routers": ["10.0.0.1:7870", {"host": "10.0.0.2", "port": 7870}],
        "shards": ["10.0.0.3:7871"],
        "replicate": 2,
        "note": "passes through untouched",
    }))
    fleet = load_fleet(str(path))
    assert fleet["routers"] == [("10.0.0.1", 7870), ("10.0.0.2", 7870)]
    assert fleet["shards"] == [("10.0.0.3", 7871)]
    assert fleet["replicate"] == 2
    assert fleet["note"] == "passes through untouched"

    from repro.service.client import fleet_endpoints
    assert fleet_endpoints(str(path)) == \
        [("10.0.0.1", 7870), ("10.0.0.2", 7870)]

    bad = tmp_path / "bad.json"
    bad.write_text(json_module.dumps({"shards": ["no-port-here"]}))
    with pytest.raises(ValueError):
        load_fleet(str(bad))
    bad.write_text(json_module.dumps(["not", "an", "object"]))
    with pytest.raises(ValueError):
        load_fleet(str(bad))
    routerless = tmp_path / "routerless.json"
    routerless.write_text(json_module.dumps({"shards": ["h:1"]}))
    with pytest.raises(ValueError):
        fleet_endpoints(str(routerless))


def test_rotate_log_caps_and_keeps_one_generation(tmp_path):
    from repro.service.client import _rotate_log
    log = tmp_path / "shard.log"
    log.write_bytes(b"x" * 100)
    _rotate_log(str(log), 1000)           # under the cap: untouched
    assert log.read_bytes() == b"x" * 100
    _rotate_log(str(log), 100)            # at the cap: rotated to .1
    assert not log.exists()
    assert (tmp_path / "shard.log.1").read_bytes() == b"x" * 100
    log.write_bytes(b"y" * 200)
    _rotate_log(str(log), 100)            # .1 is replaced, not stacked
    assert (tmp_path / "shard.log.1").read_bytes() == b"y" * 200
    log.write_bytes(b"z" * 500)
    _rotate_log(str(log), 0)              # 0 disables rotation
    assert log.read_bytes() == b"z" * 500
    _rotate_log(str(tmp_path / "absent.log"), 10)  # missing: no error
