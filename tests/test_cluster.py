"""Tests for the sharded analysis cluster (``repro router``).

Two layers, mirroring ``test_server.py``:

* **ring algebra** — :class:`HashRing` properties that make the
  cluster operable: deterministic preference lists, and minimal key
  movement under membership change (the property that keeps warm
  shards warm when the fleet grows or shrinks).
* **embedded cluster** — real :class:`AnalysisServer` shards and a
  :class:`ClusterRouter` inside one event loop: routing determinism,
  fingerprints identical to direct analysis, shard-down failover,
  cross-shard L2 promotion through a shared cache dir, graceful
  drain, stats aggregation, and batch splitting.
"""

import asyncio
import json
import time

import pytest

from repro import analyze
from repro.benchprogs import benchmark
from repro.service import server as server_module
from repro.service.cluster import ClusterRouter, HashRing
from repro.service.serialize import result_fingerprint
from repro.service.server import AnalysisServer


# -- hash ring ---------------------------------------------------------------

KEYS = ["key-%04d" % i for i in range(400)]


def test_ring_preference_is_deterministic_and_complete():
    ring_a = HashRing(["s1", "s2", "s3"], vnodes=32)
    ring_b = HashRing(["s3", "s1", "s2"], vnodes=32)  # order-independent
    for key in KEYS[:50]:
        preference = ring_a.preference(key)
        assert sorted(preference) == ["s1", "s2", "s3"]
        assert preference == ring_b.preference(key)
        assert ring_a.node_for(key) == preference[0]


def test_ring_spreads_keys_over_all_nodes():
    ring = HashRing(["s1", "s2", "s3", "s4"], vnodes=64)
    counts = {}
    for key in KEYS:
        counts[ring.node_for(key)] = counts.get(ring.node_for(key), 0) + 1
    assert set(counts) == {"s1", "s2", "s3", "s4"}
    # vnodes keep the split coarse-grained fair (no shard starved)
    assert min(counts.values()) >= len(KEYS) * 0.10


def test_ring_add_node_moves_only_keys_to_the_new_node():
    ring = HashRing(["s1", "s2", "s3", "s4"], vnodes=64)
    before = {key: ring.node_for(key) for key in KEYS}
    ring.add("s5")
    moved = 0
    for key in KEYS:
        owner = ring.node_for(key)
        if owner != before[key]:
            moved += 1
            assert owner == "s5"  # every moved key moved TO the joiner
    # ~1/5 of the space moves; anything near full reshuffle is a bug
    assert 0 < moved <= len(KEYS) * 0.45


def test_ring_remove_node_strands_only_its_keys():
    ring = HashRing(["s1", "s2", "s3", "s4"], vnodes=64)
    before = {key: ring.node_for(key) for key in KEYS}
    ring.remove("s2")
    for key in KEYS:
        if before[key] != "s2":
            assert ring.node_for(key) == before[key]
        else:
            assert ring.node_for(key) != "s2"


def test_ring_preference_order_is_the_failover_order():
    """Marking the owner down and rehashing must equal 'skip to the
    next entry of the preference list' — the router relies on it."""
    ring = HashRing(["s1", "s2", "s3"], vnodes=64)
    for key in KEYS[:100]:
        preference = ring.preference(key)
        survivor_ring = HashRing([node for node in ("s1", "s2", "s3")
                                  if node != preference[0]], vnodes=64)
        assert survivor_ring.node_for(key) == preference[1]


# -- embedded cluster --------------------------------------------------------

def run_cluster(scenario, shards=2, server_kwargs=None,
                router_kwargs=None):
    """N embedded shards + a router in one event loop; always drains
    router first, then the shards."""

    async def main():
        servers = [AnalysisServer(port=0,
                                  **(server_kwargs(index)
                                     if callable(server_kwargs)
                                     else dict(server_kwargs or {})))
                   for index in range(shards)]
        for server in servers:
            await server.start()
        kwargs = dict(health_interval=0.2, backoff=0.01,
                      down_after=2, request_timeout=60.0)
        kwargs.update(router_kwargs or {})
        router = ClusterRouter([("127.0.0.1", server.port)
                                for server in servers], port=0,
                               **kwargs)
        await router.start()
        try:
            return await scenario(router, servers)
        finally:
            await router.drain_and_close(shutdown_spawned=False)
            for server in servers:
                await server.drain_and_close()

    return asyncio.run(main())


async def send(port, request):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


def direct_fingerprint(name):
    bp = benchmark(name)
    analysis = analyze(bp.source, bp.query, input_types=bp.input_types)
    return result_fingerprint(analysis.result)


def shard_owning(router, benchmark_name):
    """(shard_id, index into router's shard order) the ring assigns."""
    key = router._routing_hash({"benchmark": benchmark_name})
    node = router.ring.preference(key)[0]
    return node, list(router.shards).index(node)


def test_router_analyze_matches_direct_and_sticks_to_one_shard():
    async def scenario(router, servers):
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "QU",
            "payload": False})
        route = await send(router.port, {"id": 3, "op": "route",
                                         "benchmark": "QU"})
        return first, second, route

    first, second, route = run_cluster(scenario)
    assert first["ok"] and second["ok"]
    assert first["id"] == 1 and second["id"] == 2  # ids pass through
    assert first["result"]["fingerprint"] == direct_fingerprint("QU")
    assert second["result"]["fingerprint"] == \
        first["result"]["fingerprint"]
    # the repeat was a warm hit on the owning shard, not a re-analysis
    assert second["result"]["cached"]
    assert route["result"]["target"] == route["result"]["preference"][0]


def test_router_distributes_distinct_programs():
    """With enough distinct programs both shards end up owning some."""
    sources = ["p%d(a). p%d(b)." % (i, i) for i in range(12)]

    async def scenario(router, servers):
        for index, source in enumerate(sources):
            response = await send(router.port, {
                "id": index, "op": "analyze", "source": source,
                "query": ["p%d" % index, 1], "payload": False})
            assert response["ok"]
        return [shard.forwarded for shard in router.shards.values()]

    forwarded = run_cluster(scenario)
    assert sum(forwarded) == len(sources)
    assert all(count > 0 for count in forwarded)


def test_shard_down_failover_keeps_fingerprints_identical():
    async def scenario(router, servers):
        fingerprint = direct_fingerprint("QU")
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})
        assert first["result"]["fingerprint"] == fingerprint
        # kill the owning shard abruptly (no drain): next request must
        # fail over to the replica and still match the direct result
        owner, owner_index = shard_owning(router, "QU")
        victim = servers[owner_index]
        victim._server.close()
        victim._server.hang_up()
        await victim._server.wait_closed()
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "QU",
            "payload": False})
        return fingerprint, second, router.stats.failovers, owner

    fingerprint, second, failovers, owner = run_cluster(scenario)
    assert second["ok"], second
    assert second["result"]["fingerprint"] == fingerprint
    assert failovers >= 1


def test_l2_promotion_hits_on_second_shard(tmp_path):
    """A result computed on one shard is a disk hit on another: the
    shared --cache-dir is the cross-shard L2."""
    cache_dir = str(tmp_path / "l2")

    async def scenario(router, servers):
        owner, owner_index = shard_owning(router, "RE")
        first = await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "RE",
            "payload": False})
        assert first["ok"] and not first["result"]["cached"]
        # take the owner out; the replica must serve from shared disk
        router.shards[owner].mark_down()
        second = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "RE",
            "payload": False})
        replica_index = 1 - owner_index
        disk_hits = servers[replica_index].cache.stats.disk_hits
        return first, second, disk_hits

    # each shard gets its own ResultCache over the SAME directory —
    # separate memory LRUs, one shared disk store (the deployment shape)
    from repro.service.cache import ResultCache
    first, second, disk_hits = run_cluster(
        scenario, server_kwargs=lambda i: {"cache": ResultCache(cache_dir)})
    assert second["ok"], second
    assert second["result"]["cached"]  # no recomputation
    assert second["result"]["fingerprint"] == \
        first["result"]["fingerprint"]
    assert disk_hits >= 1


def test_drain_completes_inflight_and_reroutes(monkeypatch):
    real = server_module._execute_spec

    def slow_execute(spec):
        time.sleep(0.4)
        return real(spec)

    monkeypatch.setattr(server_module, "_execute_spec", slow_execute)
    source = "drainme(a). drainme(b)."

    async def scenario(router, servers):
        owner = router.ring.preference(
            router._routing_hash({"source": source}))[0]
        inflight = asyncio.ensure_future(send(router.port, {
            "id": 1, "op": "analyze", "source": source,
            "query": ["drainme", 1], "payload": False}))
        await asyncio.sleep(0.1)  # the slow analysis is now on-shard
        drain = await send(router.port, {"id": 2, "op": "drain-shard",
                                         "shard": owner})
        assert drain["ok"]
        assert drain["result"]["status"] == "draining"
        completed = await inflight  # in-flight request still finishes
        route = await send(router.port, {"id": 3, "op": "route",
                                         "source": source})
        undrain = await send(router.port, {
            "id": 4, "op": "undrain-shard", "shard": owner})
        route_back = await send(router.port, {"id": 5, "op": "route",
                                              "source": source})
        return owner, completed, route, undrain, route_back

    owner, completed, route, undrain, route_back = run_cluster(scenario)
    assert completed["ok"], completed
    # while draining, new work for its keys flows to the replica...
    assert route["result"]["target"] != owner
    # ...and undrain deterministically brings the keys home
    assert undrain["result"]["status"] == "up"
    assert route_back["result"]["target"] == owner


def test_stats_aggregation_merges_the_fleet():
    async def scenario(router, servers):
        for name in ("QU", "RE"):
            response = await send(router.port, {
                "id": 1, "op": "analyze", "benchmark": name,
                "payload": False})
            assert response["ok"]
        return await send(router.port, {"id": 2, "op": "stats"})

    stats = run_cluster(scenario)["result"]
    assert set(stats) == {"router", "merged", "shards"}
    assert stats["router"]["routed"] == 2
    assert stats["merged"]["shards_up"] == 2
    assert stats["merged"]["requests"] == 2
    assert stats["merged"]["analyses_executed"] == 2
    assert len(stats["shards"]) == 2
    assert stats["merged"]["latency"]["count"] == 2
    assert stats["router"]["latency"]["count"] >= 2


def test_batch_splits_by_shard_and_preserves_order():
    names = ["QU", "RE", "PG", "CS", "DS"]

    async def scenario(router, servers):
        return await send(router.port, {
            "id": 1, "op": "batch", "benchmarks": names})

    response = run_cluster(scenario)
    assert response["ok"], response
    jobs = response["result"]["jobs"]
    assert [job["name"] for job in jobs] == names
    for job in jobs:
        assert job["ok"]
        assert job["fingerprint"] == direct_fingerprint(job["name"])
    assert 1 <= response["result"]["shards"] <= 2


def test_invalidate_broadcasts_to_every_shard():
    source = "inval(a). inval(b)."

    async def scenario(router, servers):
        first = await send(router.port, {
            "id": 1, "op": "analyze", "source": source,
            "query": ["inval", 1], "payload": False})
        assert first["ok"]
        report = await send(router.port, {
            "id": 2, "op": "invalidate", "source": source})
        again = await send(router.port, {
            "id": 3, "op": "analyze", "source": source,
            "query": ["inval", 1], "payload": False})
        return report, again

    report, again = run_cluster(scenario)
    assert report["ok"]
    assert report["result"]["invalidated"] >= 1
    assert len(report["result"]["shards"]) == 2
    assert again["ok"] and not again["result"]["cached"]


def test_all_shards_down_is_a_clear_error():
    async def scenario(router, servers):
        for shard in router.shards.values():
            shard.mark_down()
        return await send(router.port, {
            "id": 1, "op": "analyze", "benchmark": "QU",
            "payload": False})

    response = run_cluster(scenario)
    assert not response["ok"]
    assert response["code"] == "no-shards"
    assert "down" in response["error"]


def test_router_rejects_unknown_ops_and_benchmarks():
    async def scenario(router, servers):
        unknown_op = await send(router.port, {"id": 1, "op": "nope"})
        unknown_benchmark = await send(router.port, {
            "id": 2, "op": "analyze", "benchmark": "NO-SUCH"})
        unroutable = await send(router.port, {"id": 3, "op": "analyze"})
        ping = await send(router.port, {"id": 4, "op": "ping"})
        info = await send(router.port, {"id": 5, "op": "router-info"})
        return unknown_op, unknown_benchmark, unroutable, ping, info

    unknown_op, unknown_benchmark, unroutable, ping, info = \
        run_cluster(scenario)
    assert not unknown_op["ok"] and unknown_op["code"] == "bad-request"
    assert "router ops" in unknown_op["error"]
    assert not unknown_benchmark["ok"]
    assert "NO-SUCH" in unknown_benchmark["error"]
    assert not unroutable["ok"]
    assert ping["ok"] and ping["result"]["router"]
    assert info["ok"]
    assert len(info["result"]["shards"]) == 2
    assert set(info["result"]["ring"]) == set(info["result"]["shards"])
