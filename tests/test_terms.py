"""Unit tests for the term representation."""

import pytest

from repro.prolog.terms import (Atom, Int, NIL, Struct, Var, format_term,
                                functor_of, is_list_term, list_elements,
                                make_list, term_depth, term_size,
                                term_variables)


class TestConstruction:
    def test_atom_equality(self):
        assert Atom("foo") == Atom("foo")
        assert Atom("foo") != Atom("bar")

    def test_var_identity_by_name_and_stamp(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("X", 3)
        assert Var("X", 3) == Var("X", 3)

    def test_int_value(self):
        assert Int(42).value == 42
        assert Int(-1) != Int(1)

    def test_struct_requires_args(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_struct_arity(self):
        assert Struct("f", (Atom("a"), Atom("b"))).arity == 2

    def test_terms_hashable(self):
        seen = {Atom("a"), Int(1), Var("X"),
                Struct("f", (Atom("a"),))}
        assert len(seen) == 4


class TestLists:
    def test_make_empty_list(self):
        assert make_list([]) == NIL

    def test_make_list_structure(self):
        lst = make_list([Atom("a"), Atom("b")])
        assert lst == Struct(".", (Atom("a"),
                                   Struct(".", (Atom("b"), NIL))))

    def test_list_elements_roundtrip(self):
        items = [Atom("a"), Int(1), Var("X")]
        elements, tail = list_elements(make_list(items))
        assert elements == items
        assert tail == NIL

    def test_partial_list_tail(self):
        tail_var = Var("T")
        elements, tail = list_elements(make_list([Atom("a")], tail_var))
        assert elements == [Atom("a")]
        assert tail == tail_var

    def test_is_list_term(self):
        assert is_list_term(make_list([Atom("a")]))
        assert is_list_term(NIL)
        assert not is_list_term(make_list([Atom("a")], Var("T")))
        assert not is_list_term(Atom("a"))


class TestFunctorOf:
    def test_atom_functor(self):
        assert functor_of(Atom("foo")) == ("foo", 0)

    def test_int_functor(self):
        assert functor_of(Int(3)) == ("3", 0)

    def test_struct_functor(self):
        assert functor_of(Struct("f", (Atom("a"),))) == ("f", 1)

    def test_var_has_no_functor(self):
        with pytest.raises(TypeError):
            functor_of(Var("X"))


class TestTraversals:
    def test_term_variables_order_and_dedup(self):
        x, y = Var("X"), Var("Y")
        term = Struct("f", (x, Struct("g", (y, x))))
        assert term_variables(term) == [x, y]

    def test_term_size(self):
        term = Struct("f", (Atom("a"), Struct("g", (Int(1),))))
        assert term_size(term) == 4

    def test_term_depth(self):
        assert term_depth(Atom("a")) == 1
        assert term_depth(Struct("f", (Struct("g", (Atom("a"),)),))) == 3


class TestFormatting:
    def test_plain_atom(self):
        assert format_term(Atom("foo")) == "foo"

    def test_quoted_atom(self):
        assert format_term(Atom("Foo")) == "'Foo'"
        assert format_term(Atom("hello world")) == "'hello world'"

    def test_symbol_atom_unquoted(self):
        assert format_term(Atom("=..")) == "=.."

    def test_list_display(self):
        assert format_term(make_list([Atom("a"), Atom("b")])) == "[a,b]"

    def test_improper_list_display(self):
        assert format_term(make_list([Atom("a")], Var("T"))) == "[a|T]"

    def test_struct_display(self):
        term = Struct("f", (Atom("a"), Int(2)))
        assert format_term(term) == "f(a,2)"

    def test_quote_escaping(self):
        assert format_term(Atom("it's")) == r"'it\'s'"
