"""Tests for the content-addressed result cache."""

import pytest

from repro import AnalysisConfig, analyze
from repro.service.cache import ResultCache, make_key
from repro.service.serialize import encode_result, program_hash


@pytest.fixture
def payload(append_source):
    return encode_result(analyze(append_source, ("append", 3)).result)


def test_memory_get_put(append_source, payload):
    cache = ResultCache()
    key = make_key(append_source, ("append", 3))
    assert cache.get(key) is None
    cache.put(key, payload)
    assert cache.get(key) == payload
    assert cache.stats.misses == 1
    assert cache.stats.memory_hits == 1


def test_key_components_distinguish(append_source):
    base = make_key(append_source, ("append", 3))
    assert base == make_key(append_source, ("append", 3))
    assert base != make_key(append_source, ("append", 3),
                            input_types=["list", "any", "any"])
    assert base != make_key(append_source, ("append", 3),
                            config=AnalysisConfig(max_or_width=2))
    assert base != make_key(append_source, ("append", 3), baseline=True)
    assert base != make_key(append_source + "\nq(a).\n", ("append", 3))
    assert base.digest != make_key(append_source, ("append", 3),
                                   baseline=True).digest


def test_disk_persistence(tmp_path, append_source, payload):
    key = make_key(append_source, ("append", 3))
    writer = ResultCache(tmp_path)
    writer.put(key, payload)
    reader = ResultCache(tmp_path)
    assert reader.get(key) == payload
    assert reader.stats.disk_hits == 1
    # a second read is served from memory
    assert reader.get(key) == payload
    assert reader.stats.memory_hits == 1


def test_lru_eviction(append_source, payload):
    cache = ResultCache(max_memory_entries=2)
    keys = [make_key(append_source + "\np%d(a).\n" % i, ("append", 3))
            for i in range(3)]
    for key in keys:
        cache.put(key, payload)
    assert cache.stats.evictions == 1
    assert cache.get(keys[0]) is None  # oldest evicted
    assert cache.get(keys[1]) == payload
    assert cache.get(keys[2]) == payload


def test_lru_eviction_keeps_recently_used(append_source, payload):
    cache = ResultCache(max_memory_entries=2)
    keys = [make_key(append_source + "\np%d(a).\n" % i, ("append", 3))
            for i in range(3)]
    cache.put(keys[0], payload)
    cache.put(keys[1], payload)
    cache.get(keys[0])  # refresh 0 so 1 is the LRU victim
    cache.put(keys[2], payload)
    assert cache.get(keys[0]) == payload
    assert cache.get(keys[1]) is None


def test_disk_backs_memory_eviction(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path, max_memory_entries=1)
    keys = [make_key(append_source + "\np%d(a).\n" % i, ("append", 3))
            for i in range(2)]
    cache.put(keys[0], payload)
    cache.put(keys[1], payload)  # evicts keys[0] from memory
    assert cache.get(keys[0]) == payload  # served from disk
    assert cache.stats.disk_hits == 1


def test_entries_for_program(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key1 = make_key(append_source, ("append", 3))
    key2 = make_key(append_source, ("append", 3),
                    config=AnalysisConfig(max_or_width=5))
    other = make_key(append_source + "\nq(a).\n", ("append", 3))
    for key in (key1, key2, other):
        cache.put(key, payload)
    prog_hash = program_hash(append_source)
    entries = cache.entries_for_program(prog_hash)
    assert sorted(k.digest for k, _ in entries) == \
        sorted([key1.digest, key2.digest])
    assert len(cache.keys_for_program(other.program_hash)) == 1


def test_invalidate(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    assert cache.invalidate(key)
    assert cache.get(key) is None
    assert not cache.invalidate(key)
    # the disk copy is gone too
    assert ResultCache(tmp_path).get(key) is None


def test_invalidate_program(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key1 = make_key(append_source, ("append", 3))
    key2 = make_key(append_source, ("append", 3), baseline=True)
    other = make_key(append_source + "\nq(a).\n", ("append", 3))
    for key in (key1, key2, other):
        cache.put(key, payload)
    assert cache.invalidate_program(key1.program_hash) == 2
    assert cache.get(key1) is None
    assert cache.get(key2) is None
    assert cache.get(other) == payload


def test_clear_and_len(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    cache.put(make_key(append_source, ("append", 3)), payload)
    cache.put(make_key(append_source, ("append", 3), baseline=True),
              payload)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert len(ResultCache(tmp_path)) == 0


def test_corrupt_disk_entry_is_a_miss(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    path = cache._entry_path(key)
    with open(path, "w") as handle:
        handle.write("{not json")
    fresh = ResultCache(tmp_path)
    assert fresh.get(key) is None


def test_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ResultCache(max_memory_entries=0)


# -- concurrency (PR 5) ------------------------------------------------------
#
# The server hangs many threads off one ResultCache instance and many
# *processes* off one cache_dir; these tests hammer both axes and
# assert no torn records, no crashes, and only complete payloads.

import json
import multiprocessing
import os
import threading

from repro.service.cache import CacheKey


def _mp_context():
    # fork keeps the workers cheap and lets them share the test's
    # helpers without pickling; all CI platforms here are POSIX.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _keys_for(source, n):
    return [make_key(source + "\nextra%d(a)." % i, ("append", 3))
            for i in range(n)]


def _hammer_process(cache_dir, source, payload, worker, iterations,
                    failures):
    """Writer+reader+invalidator loop; reports failures via a queue."""
    try:
        cache = ResultCache(cache_dir, max_memory_entries=4)
        keys = _keys_for(source, 6)
        for i in range(iterations):
            key = keys[(i + worker) % len(keys)]
            cache.put(key, payload)
            observed = cache.get(keys[i % len(keys)])
            if observed is not None and observed != payload:
                failures.put("torn payload at worker %d iter %d"
                             % (worker, i))
                return
            if i % 7 == worker % 7:
                cache.invalidate_program(key.program_hash)
            if i % 11 == worker % 11:
                len(cache)  # concurrent directory scans
    except BaseException as error:  # pragma: no cover - failure path
        failures.put("worker %d crashed: %r" % (worker, error))


def test_multiprocess_writers_readers_invalidators(tmp_path,
                                                   append_source,
                                                   payload):
    context = _mp_context()
    failures = context.Queue()
    workers = [
        context.Process(target=_hammer_process,
                        args=(str(tmp_path), append_source, payload,
                              worker, 120, failures))
        for worker in range(4)
    ]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=120)
        assert process.exitcode == 0
    assert failures.empty(), failures.get()
    # the store is still fully readable afterwards
    cache = ResultCache(tmp_path)
    for key in _keys_for(append_source, 6):
        observed = cache.get(key)
        assert observed is None or observed == payload


def test_thread_safety_of_one_instance(tmp_path, append_source,
                                       payload):
    cache = ResultCache(tmp_path, max_memory_entries=3)
    keys = _keys_for(append_source, 5)
    errors = []

    def hammer(worker):
        try:
            for i in range(150):
                key = keys[(i + worker) % len(keys)]
                cache.put(key, payload)
                observed = cache.get(keys[i % len(keys)])
                assert observed is None or observed == payload
                if i % 13 == worker:
                    cache.invalidate(key)
                if i % 17 == worker:
                    cache.keys_for_program(key.program_hash)
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(w,))
               for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = cache.stats
    assert stats.puts == 8 * 150


def test_put_survives_concurrent_program_invalidation(tmp_path,
                                                      append_source,
                                                      payload):
    """A put whose program directory is removed mid-write recreates it
    (the retry path) instead of crashing."""
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    # simulate the other process: drop the whole program directory
    import shutil
    shutil.rmtree(cache._program_dir(key.program_hash))
    cache.put(key, payload)
    assert ResultCache(tmp_path).get(key) == payload


def test_flush_writes_memory_entries_to_disk(tmp_path, append_source,
                                             payload):
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    os.unlink(cache._entry_path(key))  # disk copy lost
    assert cache.flush() == 1
    assert ResultCache(tmp_path).get(key) == payload
    assert cache.flush() == 0  # idempotent


def test_reader_never_sees_partial_record(tmp_path, append_source,
                                          payload):
    """Atomic-rename writes: a reader polling during rewrites sees the
    old complete record or the new complete record, never a prefix."""
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    path = cache._entry_path(key)
    stop = threading.Event()
    errors = []

    def rewrite():
        try:
            while not stop.is_set():
                cache._write_disk(key, payload)
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    writer = threading.Thread(target=rewrite)
    writer.start()
    try:
        for _ in range(300):
            with open(path, "r", encoding="utf-8") as handle:
                record = json.loads(handle.read())
            assert record["payload"] == payload
    finally:
        stop.set()
        writer.join()
    assert not errors


def test_partial_write_is_ignored_on_read(tmp_path, append_source,
                                          payload):
    """A torn record — the shape a mid-crash writer without atomic
    rename would leave — must read as a miss, never raise or serve
    garbage."""
    key = make_key(append_source, ("append", 3))
    writer = ResultCache(tmp_path)
    writer.put(key, payload)
    path = writer._entry_path(key)
    full = open(path, "rb").read()
    with open(path, "wb") as handle:   # simulate the partial write
        handle.write(full[:len(full) // 2])
    reader = ResultCache(tmp_path)
    assert reader.get(key) is None
    assert reader.stats.misses == 1
    # a fresh put repairs the record in place
    reader.put(key, payload)
    assert ResultCache(tmp_path).get(key) == payload


def test_leftover_tempfile_is_not_a_record(tmp_path, append_source,
                                           payload):
    """A crash between mkstemp and rename leaves an orphan ``.tmp``;
    it must be invisible to reads, listings, and counts."""
    key = make_key(append_source, ("append", 3))
    cache = ResultCache(tmp_path)
    cache.put(key, payload)
    import os
    directory = cache._program_dir(key.program_hash)
    with open(os.path.join(directory, "orphan.tmp"), "w") as handle:
        handle.write('{"key": "torn mid-')
    fresh = ResultCache(tmp_path)
    assert fresh.get(key) == payload
    assert len(fresh) == 1
    assert len(fresh.entries_for_program(key.program_hash)) == 1


def test_fsync_knob(tmp_path, append_source, payload, monkeypatch):
    """fsync=True syncs the record file before the rename; the env
    knob turns it on without touching call sites."""
    import os
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd), real_fsync(fd))[1])
    key = make_key(append_source, ("append", 3))
    relaxed = ResultCache(tmp_path / "relaxed")
    relaxed.put(key, payload)
    assert not synced and not relaxed.fsync
    durable = ResultCache(tmp_path / "durable", fsync=True)
    durable.put(key, payload)
    assert len(synced) >= 2  # the record file and its directory
    assert ResultCache(tmp_path / "durable").get(key) == payload
    monkeypatch.setenv("REPRO_CACHE_FSYNC", "1")
    assert ResultCache(tmp_path / "env").fsync


def test_seed_is_memory_only(tmp_path, append_source, payload):
    """seed() — the replication primitive — must warm the memory tier
    without writing the shared disk store."""
    import os
    key = make_key(append_source, ("append", 3))
    cache = ResultCache(tmp_path)
    cache.seed(key, payload)
    assert cache.stats.seeds == 1
    assert not os.path.exists(cache._entry_path(key))   # no disk write
    assert cache.get(key) == payload
    assert cache.stats.memory_hits == 1
    assert ResultCache(tmp_path).get(key) is None       # other procs miss
