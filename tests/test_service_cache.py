"""Tests for the content-addressed result cache."""

import pytest

from repro import AnalysisConfig, analyze
from repro.service.cache import ResultCache, make_key
from repro.service.serialize import encode_result, program_hash


@pytest.fixture
def payload(append_source):
    return encode_result(analyze(append_source, ("append", 3)).result)


def test_memory_get_put(append_source, payload):
    cache = ResultCache()
    key = make_key(append_source, ("append", 3))
    assert cache.get(key) is None
    cache.put(key, payload)
    assert cache.get(key) == payload
    assert cache.stats.misses == 1
    assert cache.stats.memory_hits == 1


def test_key_components_distinguish(append_source):
    base = make_key(append_source, ("append", 3))
    assert base == make_key(append_source, ("append", 3))
    assert base != make_key(append_source, ("append", 3),
                            input_types=["list", "any", "any"])
    assert base != make_key(append_source, ("append", 3),
                            config=AnalysisConfig(max_or_width=2))
    assert base != make_key(append_source, ("append", 3), baseline=True)
    assert base != make_key(append_source + "\nq(a).\n", ("append", 3))
    assert base.digest != make_key(append_source, ("append", 3),
                                   baseline=True).digest


def test_disk_persistence(tmp_path, append_source, payload):
    key = make_key(append_source, ("append", 3))
    writer = ResultCache(tmp_path)
    writer.put(key, payload)
    reader = ResultCache(tmp_path)
    assert reader.get(key) == payload
    assert reader.stats.disk_hits == 1
    # a second read is served from memory
    assert reader.get(key) == payload
    assert reader.stats.memory_hits == 1


def test_lru_eviction(append_source, payload):
    cache = ResultCache(max_memory_entries=2)
    keys = [make_key(append_source + "\np%d(a).\n" % i, ("append", 3))
            for i in range(3)]
    for key in keys:
        cache.put(key, payload)
    assert cache.stats.evictions == 1
    assert cache.get(keys[0]) is None  # oldest evicted
    assert cache.get(keys[1]) == payload
    assert cache.get(keys[2]) == payload


def test_lru_eviction_keeps_recently_used(append_source, payload):
    cache = ResultCache(max_memory_entries=2)
    keys = [make_key(append_source + "\np%d(a).\n" % i, ("append", 3))
            for i in range(3)]
    cache.put(keys[0], payload)
    cache.put(keys[1], payload)
    cache.get(keys[0])  # refresh 0 so 1 is the LRU victim
    cache.put(keys[2], payload)
    assert cache.get(keys[0]) == payload
    assert cache.get(keys[1]) is None


def test_disk_backs_memory_eviction(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path, max_memory_entries=1)
    keys = [make_key(append_source + "\np%d(a).\n" % i, ("append", 3))
            for i in range(2)]
    cache.put(keys[0], payload)
    cache.put(keys[1], payload)  # evicts keys[0] from memory
    assert cache.get(keys[0]) == payload  # served from disk
    assert cache.stats.disk_hits == 1


def test_entries_for_program(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key1 = make_key(append_source, ("append", 3))
    key2 = make_key(append_source, ("append", 3),
                    config=AnalysisConfig(max_or_width=5))
    other = make_key(append_source + "\nq(a).\n", ("append", 3))
    for key in (key1, key2, other):
        cache.put(key, payload)
    prog_hash = program_hash(append_source)
    entries = cache.entries_for_program(prog_hash)
    assert sorted(k.digest for k, _ in entries) == \
        sorted([key1.digest, key2.digest])
    assert len(cache.keys_for_program(other.program_hash)) == 1


def test_invalidate(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    assert cache.invalidate(key)
    assert cache.get(key) is None
    assert not cache.invalidate(key)
    # the disk copy is gone too
    assert ResultCache(tmp_path).get(key) is None


def test_invalidate_program(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key1 = make_key(append_source, ("append", 3))
    key2 = make_key(append_source, ("append", 3), baseline=True)
    other = make_key(append_source + "\nq(a).\n", ("append", 3))
    for key in (key1, key2, other):
        cache.put(key, payload)
    assert cache.invalidate_program(key1.program_hash) == 2
    assert cache.get(key1) is None
    assert cache.get(key2) is None
    assert cache.get(other) == payload


def test_clear_and_len(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    cache.put(make_key(append_source, ("append", 3)), payload)
    cache.put(make_key(append_source, ("append", 3), baseline=True),
              payload)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert len(ResultCache(tmp_path)) == 0


def test_corrupt_disk_entry_is_a_miss(tmp_path, append_source, payload):
    cache = ResultCache(tmp_path)
    key = make_key(append_source, ("append", 3))
    cache.put(key, payload)
    path = cache._entry_path(key)
    with open(path, "w") as handle:
        handle.write("{not json")
    fresh = ResultCache(tmp_path)
    assert fresh.get(key) is None


def test_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ResultCache(max_memory_entries=0)
