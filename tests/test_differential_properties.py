"""Differential-engine correctness properties.

The load-bearing theorem: abstract clause execution is a deterministic
function of an entry's β_in and the callee outputs at its call sites,
so skipping a clause with no dirty call site (joining its cached
output instead) — and resuming a dirty clause from a pre-call-site
snapshot — produces *bit-identical* analysis tables.  The hypothesis
properties below exercise it over random programs (mutual recursion,
shared callees, both schedulers) and compare semantic fingerprints
(:func:`repro.service.serialize.result_fingerprint`), which cover the
multiset of per-entry (predicate, β_in, β_out) tuples and the root
tuple — entry creation order is deliberately *not* pinned there; where
order matters the tests compare the entry lists directly.

Scheduler equivalence is deliberately narrower: iteration *order*
feeds the widening/join sequence, so on multi-SCC recursive programs
``scheduler="scc"`` may legitimately reach a different (equally sound)
fixpoint than ``"lifo"`` — that is why ``scheduler`` is part of the
cache key while ``differential`` is not.  Within a single strongly
connected component the SCC priority degenerates to the same LIFO
order, so bit-identity across schedulers *is* a theorem there; the
property pins exactly that.
"""

from hypothesis import given, settings, strategies as st

from repro import analyze
from repro.fixpoint.engine import AnalysisConfig
from repro.service.serialize import result_fingerprint

# -- random program generator -------------------------------------------------

_FACTS1 = ["p%d([]).", "p%d(a).", "p%d(0).", "p%d(f(a,b))."]
_FACTS2 = ["p%d([], []).", "p%d(X, X).", "p%d(a, b)."]


@st.composite
def programs(draw, max_preds=4, same_scc=False):
    """Random terminating logic programs ``p0 .. p{n-1}``.

    Calls may target any predicate (mutual recursion and shared
    callees included).  With ``same_scc=True`` every predicate gets a
    clique-closing chain clause so the whole program is one strongly
    connected component (all arities forced to 1).

    **Boundedness invariant**: the nested-product clause
    ``p(f(X,Y)) :- q(X), r(Y)`` only ever draws its callees from the
    fact-only base predicate ``p0``.  Feeding a product constructor
    back into a recursive cycle (e.g. ``p2(f(X,Y)) :- p1(X), p0(Y)``
    with ``p0``/``p1`` list-recursing through ``p2``) makes the type
    graphs nest one constructor level per fixpoint round, and analysis
    time at unrestricted or-width explodes from milliseconds to
    minutes — the intermittent multi-minute examples this suite used
    to produce, roughly one draw in 700.  That pathology is pinned
    *deterministically* (and cheaply, under Table 3's or-width
    restriction) by ``test_product_in_recursive_cycle_restricted``;
    the random generator keeps every draw fast."""
    npreds = draw(st.integers(1, max_preds))
    if same_scc:
        arities = [1] * npreds
    else:
        # p0 is the designated fact-only base: arity 1, no rule
        # clauses, the only callee nested-product clauses may use
        arities = [1] + [draw(st.sampled_from([1, 2]))
                         for _ in range(npreds - 1)]
    lines = []
    any_pred = st.integers(0, npreds - 1)
    for i in range(npreds):
        arity = arities[i]
        # at least one fact so the predicate can succeed
        if arity == 1:
            lines.append(draw(st.sampled_from(_FACTS1)) % i)
        else:
            lines.append(draw(st.sampled_from(_FACTS2)) % i)
        if i == 0 and not same_scc:
            continue  # keep the product base fact-only
        for _ in range(draw(st.integers(0, 2))):
            j = draw(any_pred)
            k = draw(any_pred)
            if arity == 1:
                kind = draw(st.integers(0, 3))
                if kind == 0 and arities[j] == 1:
                    lines.append("p%d([_|T]) :- p%d(T)." % (i, j))
                elif kind == 1 and arities[j] == 1:
                    lines.append("p%d(X) :- p%d(X)." % (i, j))
                elif kind == 2 and not same_scc:
                    # products take the fact-only base (boundedness
                    # invariant above); inside the forced clique of
                    # same_scc there is no safe callee, so no products
                    lines.append("p%d(f(X,Y)) :- p0(X), p0(Y)." % i)
                elif arities[j] == 2:
                    lines.append("p%d(X) :- p%d(X, _)." % (i, j))
                else:
                    lines.append("p%d([_|T]) :- p%d(T)." % (i, j))
            else:
                kind = draw(st.integers(0, 2))
                if kind == 0 and arities[j] == 2:
                    lines.append("p%d([A|T], [A|S]) :- p%d(T, S)."
                                 % (i, j))
                elif kind == 1 and arities[j] == 2:
                    lines.append("p%d(X, Y) :- p%d(Y, X)." % (i, j))
                elif arities[j] == 1 and arities[k] == 1:
                    # argument-wise product: no constructor nesting,
                    # safe with any callees
                    lines.append("p%d(X, Y) :- p%d(X), p%d(Y)."
                                 % (i, j, k))
                else:
                    lines.append("p%d(X, Y) :- p%d(X, Y)." % (i, j))
    if same_scc:
        for i in range(npreds):
            lines.append("p%d(X) :- p%d(X)." % (i, (i + 1) % npreds))
    query = ("p%d" % (npreds - 1), arities[npreds - 1])
    return "\n".join(lines), query


def _run(source, query, differential, scheduler="lifo"):
    return analyze(source, query,
                   config=AnalysisConfig(differential=differential,
                                         scheduler=scheduler))


# -- differential on/off is bit-identical (any program, any scheduler) --------

@given(programs())
@settings(max_examples=60, deadline=None)
def test_differential_bitidentical_lifo(program):
    source, query = program
    on = _run(source, query, differential=True)
    off = _run(source, query, differential=False)
    assert result_fingerprint(on.result) == result_fingerprint(off.result)
    # β_out per entry, stated directly (the fingerprint covers it, but
    # a divergence here localizes the failing entry)
    for a, b in zip(on.result.entries, off.result.entries):
        assert a.pred == b.pred
        assert a.beta_in == b.beta_in
        assert a.beta_out == b.beta_out


@given(programs())
@settings(max_examples=30, deadline=None)
def test_differential_bitidentical_scc(program):
    source, query = program
    on = _run(source, query, differential=True, scheduler="scc")
    off = _run(source, query, differential=False, scheduler="scc")
    assert result_fingerprint(on.result) == result_fingerprint(off.result)


# -- scc == lifo inside one strongly connected component ----------------------

@given(programs(same_scc=True))
@settings(max_examples=40, deadline=None)
def test_scheduler_bitidentical_single_scc(program):
    source, query = program
    lifo = _run(source, query, differential=True, scheduler="lifo")
    scc = _run(source, query, differential=True, scheduler="scc")
    assert scc.stats.scheduler == "scc"
    assert result_fingerprint(lifo.result) == result_fingerprint(scc.result)


# -- the product-in-cycle pathology, pinned deterministically -----------------

# The program shape the random generator is no longer allowed to draw
# (see the boundedness invariant on ``programs``): a nested-product
# clause whose callees list-recurse back through it.  Unrestricted
# analysis of this program needs minutes; under Table 3's or-width
# restriction it is milliseconds, so the differential property stays
# checkable on exactly the shape that used to hang the suite.
_PRODUCT_IN_CYCLE = """
p0(f(a,b)).
p0([_|T]) :- p1(T).
p0([_|T]) :- p2(T).
p1([]).
p1([_|T]) :- p0(T).
p1([_|T]) :- p2(T).
p2(a).
p2(X) :- p2(X).
p2(f(X,Y)) :- p1(X), p0(Y).
"""


def test_product_in_recursive_cycle_restricted():
    for width in (2, 3):
        config_on = AnalysisConfig(differential=True,
                                   max_or_width=width)
        config_off = AnalysisConfig(differential=False,
                                    max_or_width=width)
        on = analyze(_PRODUCT_IN_CYCLE, ("p2", 1), config=config_on)
        off = analyze(_PRODUCT_IN_CYCLE, ("p2", 1), config=config_off)
        assert result_fingerprint(on.result) == \
            result_fingerprint(off.result)


# -- stats invariants ---------------------------------------------------------

def _clause_work_identity(analysis):
    """Every procedure iteration accounts every clause of its
    predicate exactly once, as executed or skipped."""
    nclauses = {pred: len(proc.clauses)
                for pred, proc in analysis.norm.procedures.items()}
    potential = sum(e.iterations * nclauses[e.pred]
                    for e in analysis.result.entries)
    stats = analysis.stats
    assert stats.clause_iterations + stats.clause_iterations_skipped \
        == potential
    assert stats.callsite_resumptions <= stats.clause_iterations


@given(programs())
@settings(max_examples=40, deadline=None)
def test_clause_work_accounting(program):
    source, query = program
    on = _run(source, query, differential=True)
    _clause_work_identity(on)
    off = _run(source, query, differential=False)
    assert off.stats.clause_iterations_skipped == 0
    assert off.stats.callsite_resumptions == 0
    _clause_work_identity(off)
    # differential never does *more* clause work than full re-execution
    assert on.stats.clause_iterations <= off.stats.clause_iterations
