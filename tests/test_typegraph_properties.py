"""Property-based tests (hypothesis) for the type-graph domain.

Strategies generate random type grammars and random ground terms; the
properties are the lattice-theoretic contracts the analysis relies on:

* membership is monotone under inclusion,
* union is an upper bound and intersection exact on membership,
* widening is an upper bound and widening chains stabilize,
* the graph view round-trips through the cosmetic restrictions.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.prolog.terms import Atom, Int, Struct
from repro.typegraph import (g_any, g_atom, g_bottom, g_equiv, g_functor,
                             g_int, g_int_literal, g_intersect, g_le,
                             g_list_of, g_union, g_widen, member,
                             normalize, to_grammar, treeify)
from repro.typegraph.views import to_automaton, to_monadic_program

# -- strategies ---------------------------------------------------------------

_ATOMS = ("a", "b", "[]", "foo")
_FUNCTORS = (("f", 1), ("g", 2), (".", 2), ("s", 1))


def _grammars(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([g_any(), g_int()]),
            st.sampled_from(list(_ATOMS)).map(g_atom),
            st.integers(0, 3).map(g_int_literal),
        )
    sub = _grammars(depth - 1)
    return st.one_of(
        _grammars(0),
        st.builds(lambda name_arity, args:
                  g_functor(name_arity[0], args[:name_arity[1]]),
                  st.sampled_from(list(_FUNCTORS)),
                  st.lists(sub, min_size=2, max_size=2)),
        st.builds(g_union, sub, sub),
        st.builds(g_list_of, sub),
    )


grammars = _grammars(2)


def _terms(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from(list(_ATOMS)).map(Atom),
            st.integers(0, 3).map(Int),
        )
    sub = _terms(depth - 1)
    return st.one_of(
        _terms(0),
        st.builds(lambda name_arity, args:
                  Struct(name_arity[0], tuple(args[:name_arity[1]])),
                  st.sampled_from(list(_FUNCTORS)),
                  st.lists(sub, min_size=2, max_size=2)),
    )


terms = _terms(3)


# -- properties ----------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(grammars, terms)
def test_any_contains_everything(g, t):
    assert member(t, g_any())


@settings(max_examples=150, deadline=None)
@given(grammars, grammars, terms)
def test_inclusion_implies_membership_monotone(g1, g2, t):
    if g_le(g1, g2) and member(t, g1):
        assert member(t, g2)


@settings(max_examples=150, deadline=None)
@given(grammars, grammars, terms)
def test_union_upper_bound_membership(g1, g2, t):
    u = g_union(g1, g2)
    if member(t, g1) or member(t, g2):
        assert member(t, u)


@settings(max_examples=100, deadline=None)
@given(grammars, grammars)
def test_union_upper_bound_inclusion(g1, g2):
    u = g_union(g1, g2)
    assert g_le(g1, u)
    assert g_le(g2, u)


@settings(max_examples=150, deadline=None)
@given(grammars, grammars, terms)
def test_intersection_exact_membership(g1, g2, t):
    i = g_intersect(g1, g2)
    assert member(t, i) == (member(t, g1) and member(t, g2))


@settings(max_examples=100, deadline=None)
@given(grammars, grammars)
def test_intersection_lower_bound(g1, g2):
    i = g_intersect(g1, g2)
    assert g_le(i, g1)
    assert g_le(i, g2)


@settings(max_examples=100, deadline=None)
@given(grammars)
def test_inclusion_reflexive(g):
    assert g_le(g, g)


@settings(max_examples=75, deadline=None)
@given(grammars, grammars, grammars)
def test_inclusion_transitive(g1, g2, g3):
    if g_le(g1, g2) and g_le(g2, g3):
        assert g_le(g1, g3)


@settings(max_examples=100, deadline=None)
@given(grammars, grammars)
def test_widening_upper_bound(g1, g2):
    w = g_widen(g1, g2)
    assert g_le(g1, w)
    assert g_le(g2, w)


@settings(max_examples=40, deadline=None)
@given(grammars, st.lists(grammars, min_size=1, max_size=6))
def test_widening_chain_stabilizes(g0, gs):
    current = g0
    for _ in range(30):
        changed = False
        for g in gs:
            new = g_widen(current, g)
            if not g_le(new, current):
                current = new
                changed = True
        if not changed:
            return
    pytest.fail("widening chain did not stabilize")


@settings(max_examples=100, deadline=None)
@given(grammars)
def test_treeify_roundtrip(g):
    assert g_equiv(to_grammar(treeify(g)), g)


@settings(max_examples=100, deadline=None)
@given(grammars)
def test_normalize_idempotent(g):
    assert normalize(g) == g  # all constructors normalize already


@settings(max_examples=100, deadline=None)
@given(grammars, terms)
def test_automaton_agrees_with_membership(g, t):
    assert to_automaton(g).accepts(t) == member(t, g)


@settings(max_examples=30, deadline=None)
@given(_grammars(1), _terms(2))
def test_monadic_program_agrees_with_membership(g, t):
    """§6.8: the monadic logic program recognizes the denotation."""
    from repro.prolog.interpreter import SolveLimits, Solver
    from repro.prolog.terms import Struct
    program = to_monadic_program(g)
    solver = Solver(program, SolveLimits(max_depth=60, max_solutions=1))
    goal = Struct("accept", (t,))
    succeeded = bool(list(solver.solve(goal)))
    assert succeeded == member(t, g)


@settings(max_examples=100, deadline=None)
@given(grammars, grammars)
def test_or_cap_is_upper_bound(g1, g2):
    """The or-degree restriction only loses precision, never soundness."""
    capped = g_union(g1, g2, max_or_width=2)
    assert g_le(g_union(g1, g2), capped)


@settings(max_examples=100, deadline=None)
@given(grammars)
def test_cosmetic_restrictions_hold(g):
    """Flip-Flop, Or-Cycle, Isolated-Any on the graph view (§6.4)."""
    graph = treeify(g)
    for v in graph.vertices():
        if v.kind == "or":
            kinds = {s.kind for s in v.successors}
            assert "or" not in kinds  # Flip-Flop
            if len(v.successors) > 1:
                assert "any" not in kinds  # Isolated-Any
        elif v.kind == "functor":
            assert all(s.kind == "or" for s in v.successors)  # Flip-Flop
