"""Unit tests for inclusion, union, intersection and split (§6.9)."""

import pytest

from repro.prolog.parser import parse_term
from repro.typegraph import (g_any, g_atom, g_bottom, g_equiv, g_functor,
                             g_int, g_int_literal, g_intersect, g_is_list,
                             g_le, g_list_of, g_split, g_union, member,
                             parse_rules)


class TestInclusion:
    def test_reflexive(self):
        for g in (g_any(), g_atom("a"), g_list_of(g_any())):
            assert g_le(g, g)

    def test_bottom_least(self):
        assert g_le(g_bottom(), g_atom("a"))
        assert not g_le(g_atom("a"), g_bottom())

    def test_any_greatest(self):
        assert g_le(g_list_of(g_int()), g_any())
        assert not g_le(g_any(), g_list_of(g_int()))

    def test_int_literal_subtyping(self):
        assert g_le(g_int_literal(3), g_int())
        assert not g_le(g_int(), g_int_literal(3))

    def test_list_covariance(self):
        assert g_le(g_list_of(g_atom("a")), g_list_of(g_any()))
        assert not g_le(g_list_of(g_any()), g_list_of(g_atom("a")))

    def test_finite_vs_recursive(self):
        finite = parse_rules("""
        T ::= [] | cons(Any,T1)
        T1 ::= []
        """)
        assert g_le(finite, g_list_of(g_any()))
        assert not g_le(g_list_of(g_any()), finite)

    def test_incomparable(self):
        assert not g_le(g_atom("a"), g_atom("b"))
        assert not g_le(g_atom("b"), g_atom("a"))

    def test_exactness_on_unfoldings(self):
        # lists of length <= 2 vs unfolded-by-one recursive list
        unfolded = parse_rules("""
        T ::= [] | cons(Any,T1)
        T1 ::= [] | cons(Any,T1)
        """)
        assert g_equiv(unfolded, g_list_of(g_any()))


class TestUnion:
    def test_upper_bound(self):
        a, b = g_atom("a"), g_atom("b")
        u = g_union(a, b)
        assert g_le(a, u) and g_le(b, u)

    def test_bottom_identity(self):
        g = g_list_of(g_int())
        assert g_union(g, g_bottom()) == g
        assert g_union(g_bottom(), g) == g

    def test_any_absorbs(self):
        assert g_union(g_any(), g_atom("a")).is_any()

    def test_disjoint_functors_exact(self):
        u = g_union(g_atom("[]"),
                    g_functor(".", [g_any(), g_atom("[]")]))
        assert member(parse_term("[]"), u)
        assert member(parse_term("[x]"), u)
        assert not member(parse_term("[x,y]"), u)

    def test_pf_restriction_merges_pointwise(self):
        # f(a,b) U f(b,a) also contains f(a,a) and f(b,b)  (§6.5)
        fab = g_functor("f", [g_atom("a"), g_atom("b")])
        fba = g_functor("f", [g_atom("b"), g_atom("a")])
        u = g_union(fab, fba)
        assert member(parse_term("f(a,a)"), u)
        assert member(parse_term("f(b,b)"), u)

    def test_int_literal_absorption(self):
        u = g_union(g_int_literal(3), g_int())
        assert g_equiv(u, g_int())

    def test_union_of_recursive_types(self):
        u = g_union(g_list_of(g_atom("a")), g_list_of(g_atom("b")))
        # pointwise merge: lists of (a|b)
        expected = g_list_of(g_union(g_atom("a"), g_atom("b")))
        assert g_equiv(u, expected)


class TestIntersection:
    def test_lower_bound(self):
        lst = g_list_of(g_any())
        short = parse_rules("""
        T ::= [] | cons(Any,T1)
        T1 ::= []
        """)
        i = g_intersect(lst, short)
        assert g_le(i, lst) and g_le(i, short)

    def test_any_identity(self):
        g = g_list_of(g_int())
        assert g_intersect(g_any(), g) == g
        assert g_intersect(g, g_any()) == g

    def test_disjoint_is_bottom(self):
        assert g_intersect(g_atom("a"), g_atom("b")).is_bottom()

    def test_lists_of_different_elements(self):
        i = g_intersect(g_list_of(g_atom("a")), g_list_of(g_atom("b")))
        # only the empty list is in both
        assert g_equiv(i, g_atom("[]"))

    def test_int_literal_meet(self):
        assert g_equiv(g_intersect(g_int(), g_int_literal(5)),
                       g_int_literal(5))

    def test_exactness(self):
        g1 = parse_rules("T ::= f(T1)\nT1 ::= a | b")
        g2 = parse_rules("T ::= f(T1) | g(T1)\nT1 ::= b | c")
        i = g_intersect(g1, g2)
        assert g_equiv(i, parse_rules("T ::= f(T1)\nT1 ::= b"))


class TestSplit:
    def test_split_any(self):
        pieces = g_split(g_any(), "f", 2)
        assert pieces is not None
        assert all(p.is_any() for p in pieces)

    def test_split_matching_functor(self):
        g = g_functor("f", [g_atom("a"), g_int()])
        pieces = g_split(g, "f", 2)
        assert g_equiv(pieces[0], g_atom("a"))
        assert g_equiv(pieces[1], g_int())

    def test_split_wrong_functor(self):
        assert g_split(g_atom("a"), "f", 1) is None

    def test_split_list_type(self):
        pieces = g_split(g_list_of(g_atom("x")), ".", 2)
        assert g_equiv(pieces[0], g_atom("x"))
        assert g_equiv(pieces[1], g_list_of(g_atom("x")))

    def test_split_int_literal_on_int(self):
        assert g_split(g_int(), "7", 0, is_int=True) == ()

    def test_is_list(self):
        assert g_is_list(g_list_of(g_any()))
        assert g_is_list(g_atom("[]"))
        assert not g_is_list(g_any())
        assert not g_is_list(g_union(g_atom("[]"), g_atom("a")))
