"""Property tests for the assertion pipeline.

Hypothesis generates random (but well-formed) assertion directives and
pins the contract: parse → compile → serialize → deserialize is
stable — re-parsing an assertion's own rendered directive, or decoding
its encoded object, reproduces an equal assertion, and compilation
into the analysis domain is deterministic (the identical interned
substitution) on every execution tier.

Separately, the served verdicts are fingerprint-stable: ``repro
check`` verdicts hash identically across ``REPRO_ARENA_KERNEL`` tiers
and whether the payload was computed cold or served from a warm cache.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro import AnalysisConfig, analyze
from repro.assertions import (Assertion, compile_assertion,
                              harvest_assertions, parse_assertion)
from repro.benchprogs import benchmark
from repro.prolog.program import parse_program
from repro.service.serialize import check_fingerprint, encode_check
from repro.typegraph import arena

TIERS = arena.available_kernels()

# -- spec-term strategy -------------------------------------------------------

_atoms = st.sampled_from(["foo", "bar", "nil", "[]"])
_vars = st.sampled_from(["X", "Y", "Z"])
_grammar_atoms = st.sampled_from(["any", "int", "list", "codes"])


def _render_children(children):
    return ", ".join(children)


#: ``list(G)`` takes only grammar specs — generate those separately.
_grammar_spec = st.recursive(
    _grammar_atoms,
    lambda sub: sub.map(lambda s: "list(%s)" % s),
    max_leaves=3)

_spec = st.recursive(
    st.one_of(
        _grammar_atoms,
        _vars,
        _atoms,
        st.integers(-9, 9).map(str),
        _atoms.map(lambda a: "atom(%s)" % a),
        _grammar_spec.map(lambda s: "list(%s)" % s),
    ),
    lambda sub: st.builds(
        lambda name, cs: "%s(%s)" % (name, _render_children(cs)),
        st.sampled_from(["f", "g", "pair", "s"]),
        st.lists(sub, min_size=1, max_size=3)),
    max_leaves=6)

_assertions = st.builds(
    lambda kind, name, specs: parse_assertion(
        "%s(%s/%d, [%s])" % (kind, name, len(specs),
                             ", ".join(specs))),
    st.sampled_from(["assert_pattern", "assert_calls"]),
    st.sampled_from(["p", "q", "main"]),
    st.lists(_spec, min_size=1, max_size=4))


# -- parse / serialize round-trips -------------------------------------------

@settings(max_examples=120, deadline=None)
@given(_assertions)
def test_reparse_of_rendered_key_is_stable(assertion):
    reparsed = parse_assertion(assertion.key)
    assert reparsed == assertion
    assert reparsed.key == assertion.key
    # canonical: rendering the reparse changes nothing further
    assert parse_assertion(reparsed.key) == reparsed


@settings(max_examples=120, deadline=None)
@given(_assertions)
def test_obj_round_trip_is_identity(assertion):
    obj = assertion.to_obj()
    decoded = Assertion.from_obj(obj)
    assert decoded == assertion
    assert decoded.line == assertion.line
    assert decoded.to_obj() == obj


@settings(max_examples=60, deadline=None)
@given(_assertions)
def test_compilation_is_deterministic_and_tier_stable(assertion):
    from repro.domains.leaf import TypeLeafDomain
    domain = TypeLeafDomain()
    compiled = []
    for tier in TIERS:
        arena.configure(kernel=tier)
        try:
            compiled.append(compile_assertion(assertion, domain))
            compiled.append(compile_assertion(assertion, domain))
        finally:
            arena.configure(kernel=None)
    first = compiled[0]
    assert all(c is first for c in compiled), \
        "compilation not interned identically across tiers"


@settings(max_examples=60, deadline=None)
@given(_assertions)
def test_directive_survives_a_program_harvest(assertion):
    source = ":- %s.\n%s(%s).\n" % (
        assertion.key, assertion.pred[0],
        ", ".join("a%d" % i for i in range(assertion.pred[1])))
    harvested = harvest_assertions(parse_program(source))
    assert len(harvested) == 1
    assert harvested[0] == assertion
    assert harvested[0].line == 1


# -- verdict fingerprint stability -------------------------------------------

CHK = benchmark("CHK")


def _chk_fingerprint():
    source, query = CHK.source, CHK.query
    assertions = tuple(harvest_assertions(parse_program(source)))
    analysis = analyze(source, query, input_types=CHK.input_types,
                       config=AnalysisConfig(keep_deps=True,
                                             assertions=assertions))
    from repro.assertions import check_analysis
    report, slices = check_analysis(analysis, assertions)
    return check_fingerprint(encode_check(report, slices))


def test_check_fingerprint_identical_across_kernel_tiers():
    prints = {}
    for tier in TIERS:
        arena.configure(kernel=tier)
        try:
            prints[tier] = _chk_fingerprint()
        finally:
            arena.configure(kernel=None)
    assert len(set(prints.values())) == 1, prints


def test_check_fingerprint_identical_cold_vs_warm_cache(tmp_path):
    from repro.service.cache import ResultCache
    from repro.service.server import AnalysisServer

    cache_dir = str(tmp_path / "cache")

    async def one_server():
        server = AnalysisServer(port=0, cache=ResultCache(cache_dir))
        await server.start()
        cold = await server._op_check({"benchmark": "CHK"})
        warm = await server._op_check({"benchmark": "CHK"})
        await server.drain_and_close()
        return cold, warm

    cold, warm = asyncio.run(one_server())
    assert not cold["cached"] and warm["cached"]
    assert cold["check_fingerprint"] == warm["check_fingerprint"]
    assert cold["verdicts"] == warm["verdicts"]

    # a fresh process-equivalent: new server, disk-warm cache
    disk_cold, disk_warm = asyncio.run(one_server())
    assert disk_cold["cached"], "disk cache should have served this"
    assert disk_cold["check_fingerprint"] == cold["check_fingerprint"]
    assert _chk_fingerprint() == cold["check_fingerprint"]
