"""Cross-tier equivalence suite for the arena execution tiers (PR 8).

The arena kernels run at one of three tiers — ``python`` (reference),
``numpy`` (word-parallel portable tier), ``native`` (lazily compiled C
extension) — selected by ``REPRO_ARENA_KERNEL`` or
``arena.configure(kernel=...)``.  The contract under test:

* **Same interned objects** — every grammar- and substitution-valued
  operation returns the *identical* canonical instance no matter which
  tier computed it (all tiers funnel through the same process-wide
  intern tables), so gids/sids, fingerprints, and serialized forms are
  tier-oblivious.
* **Round-trips** — compile → decompile reproduces the rules verbatim
  on every tier, and pickled grammars re-intern identically after a
  mid-process tier switch.
* **Graceful fallback** — when the toolchain (or numpy) is missing the
  tier machinery records a reason and silently degrades; analysis
  results do not change.
"""

import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.domains.leaf import TypeLeafDomain
from repro.domains.pattern import (PAT_BOTTOM, make_builder, subst_join,
                                   subst_le, subst_widen)
from repro.typegraph import (FuncAlt, Grammar, arena, g_any, g_atom,
                             g_bottom, g_functor, g_int, g_int_literal,
                             g_intersect, g_list_of, g_union, g_widen,
                             normalize, opcache)

TIERS = arena.available_kernels()


@pytest.fixture(autouse=True)
def _tier_and_caches_restored():
    """Run without the op caches (so each tier really executes) and
    put the requested tier back afterwards."""
    was_requested = arena.kernel_status()["requested"]
    was_cache = opcache.enabled()
    opcache.configure(enabled=False)
    yield
    opcache.configure(enabled=was_cache)
    arena.configure(kernel=was_requested)


def per_tier(fn):
    """``{tier: fn()}`` with the tier actually switched per call."""
    out = {}
    for tier in TIERS:
        arena.configure(kernel=tier)
        assert arena.kernel() == tier
        out[tier] = fn()
    return out


def assert_identical(results):
    first = next(iter(results.values()))
    for tier, value in results.items():
        assert value is first, (
            "tier %r produced a distinct object: %r vs %r"
            % (tier, value, first))
    return first


# -- strategies (same shape as test_arena_properties's) ----------------------

_ATOMS = ("a", "b", "[]", "foo")
_FUNCTORS = (("f", 1), ("g", 2), (".", 2), ("s", 1))


def _grammars(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([g_any(), g_int(), g_bottom()]),
            st.sampled_from(list(_ATOMS)).map(g_atom),
            st.integers(0, 3).map(g_int_literal),
        )
    sub = _grammars(depth - 1)
    return st.one_of(
        _grammars(0),
        st.builds(lambda name_arity, args:
                  g_functor(name_arity[0], args[:name_arity[1]]),
                  st.sampled_from(list(_FUNCTORS)),
                  st.lists(sub, min_size=2, max_size=2)),
        st.builds(g_union, sub, sub),
        st.builds(g_list_of, sub),
    )


grammars = _grammars(2)
widths = st.sampled_from([None, 1, 2, 5])


# -- grammar ops: same interned object on every tier -------------------------

@settings(max_examples=60, deadline=None)
@given(grammars, grammars, widths)
def test_union_same_interned_across_tiers(g1, g2, w):
    assert_identical(per_tier(lambda: g_union(g1, g2, w)))


@settings(max_examples=60, deadline=None)
@given(grammars, grammars, widths)
def test_intersect_same_interned_across_tiers(g1, g2, w):
    assert_identical(per_tier(lambda: g_intersect(g1, g2, w)))


@settings(max_examples=60, deadline=None)
@given(grammars, grammars)
def test_le_same_answer_across_tiers(g1, g2):
    from repro.typegraph import g_le
    answers = per_tier(lambda: g_le(g1, g2))
    assert len(set(answers.values())) == 1, answers


@settings(max_examples=40, deadline=None)
@given(grammars, grammars, widths, st.booleans())
def test_widen_same_interned_across_tiers(g_old, g_new, w, strict):
    assert_identical(per_tier(lambda: g_widen(g_old, g_new, w, strict)))


@settings(max_examples=40, deadline=None)
@given(grammars, st.sampled_from(list(_FUNCTORS)), grammars, widths)
def test_functor_same_interned_across_tiers(g1, name_arity, g2, w):
    name, arity = name_arity
    children = (g1, g2)[:arity]
    assert_identical(per_tier(lambda: g_functor(name, children, w)))


@settings(max_examples=40, deadline=None)
@given(grammars, grammars, widths)
def test_raw_normalize_same_interned_across_tiers(g1, g2, w):
    # a raw, messy grammar: two grammars glued side by side
    offset = len(g1.rules)
    rules = dict(g1.rules)
    for nt, alts in g2.rules.items():
        rules[nt + offset] = frozenset(
            FuncAlt(a.name, tuple(x + offset for x in a.args), a.is_int)
            if isinstance(a, FuncAlt) else a
            for a in alts)
    rules[len(rules)] = frozenset(
        [FuncAlt("glue", (g1.root, g2.root + offset))])
    root = len(rules) - 1
    assert_identical(per_tier(
        lambda: normalize(Grammar(dict(rules), root), w)))


# -- compile/decompile round-trips per tier ----------------------------------

@settings(max_examples=60, deadline=None)
@given(grammars)
def test_compile_decompile_round_trip_per_tier(g):
    for tier in TIERS:
        arena.configure(kernel=tier)
        compiled = arena.arena_of(g)
        assert arena.decompile(compiled).rules == g.rules, tier


# -- pattern layer: same interned substitutions on every tier ----------------

_LEAF_VALUES = [g_any(), g_atom("a"), g_atom("b"), g_int(),
                g_list_of(g_any()), g_union(g_atom("a"), g_atom("b"))]

_goals = st.lists(
    st.one_of(
        st.tuples(st.just("unify"), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.just("build"),
                  st.integers(0, 3),
                  st.sampled_from(["f", "g", ".", "s"]),
                  st.lists(st.integers(0, 3), min_size=1, max_size=2)),
        st.tuples(st.just("constrain"), st.integers(0, 3),
                  st.sampled_from(range(len(_LEAF_VALUES)))),
    ),
    max_size=6)

_DOMAIN = TypeLeafDomain()


def _build_subst(goals):
    """Run a goal script on the *active tier's* builder."""
    builder = make_builder(_DOMAIN)
    nodes = [builder.fresh_leaf() for _ in range(4)]
    for goal in goals:
        if goal[0] == "unify":
            if not builder.unify(nodes[goal[1]], nodes[goal[2]]):
                return PAT_BOTTOM
        elif goal[0] == "build":
            _, v, name, args = goal
            arity = 2 if name == "." else len(args)
            children = [nodes[a] for a in (args * 2)[:arity]]
            pattern = builder.make_pattern(name, False, children)
            if not builder.unify(nodes[v], pattern):
                return PAT_BOTTOM
        else:
            _, v, value_index = goal
            if not builder.constrain(nodes[v],
                                     _LEAF_VALUES[value_index]):
                return PAT_BOTTOM
    frozen = builder.freeze(nodes)
    return frozen


@settings(max_examples=50, deadline=None)
@given(_goals)
def test_builder_freeze_same_interned_across_tiers(goals):
    assert_identical(per_tier(lambda: _build_subst(goals)))


@settings(max_examples=40, deadline=None)
@given(_goals, _goals)
def test_subst_ops_same_across_tiers(goals1, goals2):
    s1 = assert_identical(per_tier(lambda: _build_subst(goals1)))
    s2 = assert_identical(per_tier(lambda: _build_subst(goals2)))
    if s1 is PAT_BOTTOM or s2 is PAT_BOTTOM:
        return
    assert_identical(per_tier(lambda: subst_join(s1, s2, _DOMAIN)))
    assert_identical(per_tier(lambda: subst_widen(s1, s2, _DOMAIN)))
    le = per_tier(lambda: subst_le(s1, s2, _DOMAIN))
    assert len(set(le.values())) == 1, le


# -- pickling across a tier switch -------------------------------------------

@settings(max_examples=40, deadline=None)
@given(grammars, grammars, widths)
def test_pickle_reinterns_identically_after_tier_switch(g1, g2, w):
    arena.configure(kernel=TIERS[-1])
    u = g_union(g1, g2, w)
    payload = pickle.dumps((g1, g2, u))
    arena.configure(kernel="python")
    r1, r2, ru = pickle.loads(payload)
    assert r1 is g1 and r2 is g2 and ru is u
    assert g_union(r1, r2, w) is u


# -- analysis fingerprints are tier-oblivious --------------------------------

def test_analysis_fingerprint_identical_across_tiers():
    from repro import analyze
    from repro.benchprogs import benchmark
    from repro.service.serialize import result_fingerprint

    bp = benchmark("QU")
    prints = per_tier(lambda: result_fingerprint(
        analyze(bp.source, bp.query, input_types=bp.input_types).result))
    assert len(set(prints.values())) == 1, prints


# -- tier selection / status --------------------------------------------------

def test_configure_rejects_unknown_tier():
    with pytest.raises(ValueError):
        arena.configure(kernel="fortran")


def test_kernel_status_reports_active_tier():
    for tier in TIERS:
        arena.configure(kernel=tier)
        status = arena.kernel_status()
        assert status["requested"] == tier
        assert status["active"] == tier
        assert status["enabled"] in (True, False)


def test_python_tier_always_available():
    assert "python" in TIERS


# -- graceful fallback --------------------------------------------------------

def test_native_falls_back_without_toolchain(tmp_path, monkeypatch):
    """Requesting the native tier with no working compiler (and an
    empty build cache) degrades to the next tier and records why."""
    from repro.typegraph import _native

    monkeypatch.setenv("REPRO_KERNEL_CC", "/nonexistent-compiler")
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "empty"))
    _native._reset_for_tests()
    try:
        arena.configure(kernel="native")
        status = arena.kernel_status()
        assert status["requested"] == "native"
        assert status["active"] in ("numpy", "python")
        assert "native" in status["fallbacks"]
        assert "native tier unavailable" in status["fallbacks"]["native"]
        # the degraded tier still computes (and interns) correctly
        assert g_union(g_atom("a"), g_atom("b")) is \
            g_union(g_atom("b"), g_atom("a"))
    finally:
        monkeypatch.delenv("REPRO_KERNEL_CC")
        monkeypatch.delenv("REPRO_KERNEL_CACHE")
        _native._reset_for_tests()


def test_fallback_process_produces_identical_results(tmp_path):
    """A full analysis in a subprocess with no toolchain matches this
    process's fingerprint bit-for-bit."""
    from repro import analyze
    from repro.benchprogs import benchmark
    from repro.service.serialize import result_fingerprint

    bp = benchmark("QU")
    here = result_fingerprint(
        analyze(bp.source, bp.query, input_types=bp.input_types).result)

    env = dict(os.environ)
    env["REPRO_ARENA_KERNEL"] = "native"
    env["REPRO_KERNEL_CC"] = "/nonexistent-compiler"
    env["REPRO_KERNEL_CACHE"] = str(tmp_path / "empty")
    code = (
        "from repro.typegraph import arena\n"
        "status = arena.kernel_status()\n"
        "assert status['active'] in ('numpy', 'python'), status\n"
        "assert 'native' in status['fallbacks'], status\n"
        "from repro import analyze\n"
        "from repro.benchprogs import benchmark\n"
        "from repro.service.serialize import result_fingerprint\n"
        "bp = benchmark('QU')\n"
        "res = analyze(bp.source, bp.query, input_types=bp.input_types)\n"
        "print(result_fingerprint(res.result))\n")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=180)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip().splitlines()[-1] == here
