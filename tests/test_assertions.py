"""Assertion checking and blame slicing (the verification product).

Covers the full pipeline — directive parsing, spec compilation into
the analysis domain, verdict evaluation, dependency-graph slicing —
plus the acceptance criterion: the deliberately violated assertion in
the CHK workload yields a ``violated`` verdict whose blame slice names
the guilty clause and call site identically through the one-shot CLI,
the ``check``/``slice`` server ops, and the router.
"""

import asyncio
import json

import pytest

from repro import AnalysisConfig, analyze
from repro.assertions import (Assertion, AssertionSyntaxError, UNREACHABLE,
                              VERIFIED, VIOLATED, assertion_from_directive,
                              blame_slices, check_analysis, check_result,
                              compile_assertion, harvest_assertions,
                              parse_assertion)
from repro.benchprogs import benchmark
from repro.domains.pattern import PAT_BOTTOM
from repro.prolog.program import parse_program
from repro.service.serialize import (check_fingerprint, decode_check,
                                     encode_check)

CHK = benchmark("CHK")

ANNOTATED = """
:- assert_pattern(grow/2, [list, list]).
:- assert_pattern(bad/1, [int]).
:- assert_calls(grow/2, [list, any]).
:- assert_pattern(never/1, [any]).

main(Xs, Ys) :- grow(Xs, Ys), bad(B), use(B).

grow([], []).
grow([X|Xs], [X, X|Ys]) :- grow(Xs, Ys).

bad(nope).

never(X) :- never(X).

use(_).
"""


def run_check(source, query, input_types=None):
    program = parse_program(source)
    assertions = tuple(harvest_assertions(program))
    analysis = analyze(source, query, input_types=input_types,
                       config=AnalysisConfig(keep_deps=True,
                                             assertions=assertions))
    return analysis, check_analysis(analysis, assertions)


# -- frontend ----------------------------------------------------------------

def test_harvest_finds_directives_with_lines():
    program = parse_program(ANNOTATED)
    assertions = harvest_assertions(program)
    assert [a.kind for a in assertions] == \
        ["pattern", "pattern", "calls", "pattern"]
    assert [a.pred for a in assertions] == \
        [("grow", 2), ("bad", 1), ("grow", 2), ("never", 1)]
    assert [a.line for a in assertions] == [2, 3, 4, 5]


def test_parse_assertion_accepts_bare_and_directive_forms():
    bare = parse_assertion("assert_pattern(p/2, [int, any])")
    wrapped = parse_assertion(":- assert_pattern(p/2, [int, any]).")
    assert bare.pred == wrapped.pred == ("p", 2)
    assert bare.specs == wrapped.specs == ("int", "any")


@pytest.mark.parametrize("text", [
    "assert_pattern(p, [int])",            # no /arity indicator
    "assert_pattern(p/x, [int])",          # arity not an integer
    "assert_pattern(p/2, [int])",          # spec count != arity
    "assert_pattern(p/1, int)",            # specs not a list
    "assert_pattern(p/1, [X|T])",          # improper spec list
    "assert_pattern(p/1, [atom(f(x))])",   # atom/1 wants a plain atom
    "assert_pattern(p/1, [list(p/1)])",    # list/1 wants a grammar spec
])
def test_malformed_directives_rejected(text):
    with pytest.raises(AssertionSyntaxError):
        parse_assertion(text)


def test_non_assertion_directives_ignored():
    program = parse_program(":- dynamic(foo/1).\np(a).\n")
    assert list(harvest_assertions(program)) == []


# -- checker -----------------------------------------------------------------

def test_verdict_statuses():
    _, (report, _) = run_check(ANNOTATED, ("main", 2),
                               input_types=["list", "any"])
    statuses = {v.assertion.key: v.status for v in report.verdicts}
    assert statuses["assert_pattern(grow/2, [list, list])"] == VERIFIED
    assert statuses["assert_pattern(bad/1, [int])"] == VIOLATED
    assert statuses["assert_calls(grow/2, [list, any])"] == VERIFIED
    # never/1 is never called -> no entries to check
    assert statuses["assert_pattern(never/1, [any])"] == UNREACHABLE
    assert not report.ok
    assert report.counts() == {"verified": 2, "violated": 1,
                               "unreachable": 1}


def test_violated_verdict_carries_offending_entry_detail():
    _, (report, _) = run_check(ANNOTATED, ("main", 2),
                               input_types=["list", "any"])
    [violated] = report.violations()
    assert violated.offending_entries
    assert any("nope" in detail for detail in violated.details)


def test_compile_unsatisfiable_spec_is_bottom():
    # int and a sharing group forcing it to equal an atom: bottom
    assertion = parse_assertion("assert_pattern(p/2, [f(X, a), g(X, 1)])")
    analysis = analyze("p(f(A, a), g(A, 1)).", ("p", 2))
    compiled = compile_assertion(assertion, analysis.domain)
    assert compiled is not PAT_BOTTOM  # sharing alone is satisfiable


def test_check_result_with_explicit_assertions():
    analysis = analyze("p(a).", ("p", 1))
    report = check_result(analysis.result, analysis.domain,
                          [parse_assertion("assert_pattern(p/1, [atom(a)])"),
                           parse_assertion("assert_pattern(p/1, [int])")])
    assert [v.status for v in report.verdicts] == [VERIFIED, VIOLATED]


# -- slicer ------------------------------------------------------------------

def test_blame_slice_names_guilty_clause_and_callsite():
    _, (report, slices) = run_check(ANNOTATED, ("main", 2),
                                    input_types=["list", "any"])
    [blame] = slices
    assert blame.pred == ("bad", 1)
    clause_steps = [s for s in blame.steps if s.role == "clause"]
    call_steps = [s for s in blame.steps if s.role == "call-site"]
    assert [(s.pred, s.clause_index) for s in clause_steps] == \
        [(("bad", 1), 0)]
    assert clause_steps[0].source == "bad(nope)."
    assert clause_steps[0].line == 12
    assert call_steps, "no call-site step for the violated entry"
    assert call_steps[0].pred == ("main", 2)
    assert "bad(" in call_steps[0].goal


def test_slicing_requires_retained_deps():
    source = "p(a)."
    analysis = analyze(source, ("p", 1))  # keep_deps not set
    report = check_result(analysis.result, analysis.domain,
                          [parse_assertion("assert_pattern(p/1, [int])")])
    assert analysis.result.callsite_deps is None
    with pytest.raises(ValueError):
        blame_slices(analysis.result, analysis.norm, report)
    # check_analysis degrades to verdicts-only instead of raising
    verdicts_only, slices = check_analysis(analysis)
    assert slices == []


# -- serialization -----------------------------------------------------------

def test_check_payload_round_trips():
    _, (report, slices) = run_check(ANNOTATED, ("main", 2),
                                    input_types=["list", "any"])
    encoded = encode_check(report, slices)
    decoded_report, decoded_slices = decode_check(
        json.loads(json.dumps(encoded)))
    assert encode_check(decoded_report, decoded_slices) == encoded
    assert check_fingerprint(encoded) == \
        check_fingerprint(encode_check(decoded_report, decoded_slices))


# -- the CHK workload + CLI ---------------------------------------------------

def chk_check():
    analysis = analyze(
        CHK.source, CHK.query, input_types=CHK.input_types,
        config=AnalysisConfig(keep_deps=True,
                              assertions=tuple(harvest_assertions(
                                  parse_program(CHK.source)))))
    return check_analysis(analysis)


def test_chk_violation_and_slice():
    report, slices = chk_check()
    assert report.counts() == {"verified": 3, "violated": 1,
                               "unreachable": 0}
    [violated] = report.violations()
    assert violated.assertion.pred == ("tag", 1)
    [blame] = slices
    clause_steps = [s for s in blame.steps if s.role == "clause"]
    assert [(s.pred, s.clause_index) for s in clause_steps] == \
        [(("tag", 1), 0)]
    assert any(s.role == "call-site" and s.pred == ("main", 2)
               for s in blame.steps)


def test_cli_check_exit_codes_and_json(tmp_path, capsys):
    from repro.__main__ import main

    assert main(["check", "--benchmark", "CHK"]) == 1
    human = capsys.readouterr().out
    assert "[FAIL] assert_pattern(tag/1, [int])" in human
    assert "blame slice" in human
    assert "tag(oops)." in human

    assert main(["check", "--benchmark", "CHK", "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["passed"] is False
    assert data["check"]["slices"]

    # a fully verified file exits 0
    clean = tmp_path / "clean.pl"
    clean.write_text(":- assert_pattern(p/1, [atom(a)]).\np(a).\n")
    assert main(["check", str(clean), "p/1"]) == 0

    # no directives at all also exits 0
    plain = tmp_path / "plain.pl"
    plain.write_text("p(a).\n")
    assert main(["check", str(plain), "p/1"]) == 0
    assert "no assert_pattern" in capsys.readouterr().out


# -- served identity: CLI == check op == slice op == router -------------------

def test_served_verdicts_match_oneshot_and_router():
    from repro.service.cluster import ClusterRouter
    from repro.service.server import AnalysisServer
    from repro.service.transport import (decode_message, encode_message)

    report, slices = chk_check()
    direct = encode_check(report, slices)
    direct_fp = check_fingerprint(direct)

    async def main():
        server = AnalysisServer(port=0)
        await server.start()
        check = await server._op_check({"benchmark": "CHK"})
        sliced = await server._op_slice({"benchmark": "CHK"})
        router = ClusterRouter([("127.0.0.1", server.port)], port=0)
        await router.start()
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       router.port)
        writer.write(encode_message({"id": 1, "op": "slice",
                                     "benchmark": "CHK"}))
        await writer.drain()
        routed = decode_message(await reader.readline())
        writer.close()
        await router.drain_and_close(shutdown_spawned=False)
        await server.drain_and_close()
        return check, sliced, routed

    check, sliced, routed = asyncio.run(main())
    assert check["passed"] is False
    assert check["counts"] == {"verified": 3, "violated": 1}
    assert check["check_fingerprint"] == direct_fp
    assert sliced["check_fingerprint"] == direct_fp
    assert sliced["slices"] == direct["slices"]
    assert sliced["cached"], "slice should reuse the check payload"
    assert routed["ok"], routed
    assert routed["result"]["check_fingerprint"] == direct_fp
    assert routed["result"]["slices"] == direct["slices"]
