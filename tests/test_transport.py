"""Tests for the shared nd-JSON transport layer.

The protocol pieces — framing, envelopes, :class:`LineServer`,
:class:`AsyncLineConnection`, :class:`BlockingLineConnection` — are
exercised directly, without an analysis server behind them: an echo
handler is enough to pin framing, oversized-line recovery, the raw
passthrough path, and connect retry-with-backoff.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.service.transport import (
    AsyncLineConnection, BlockingLineConnection, ConnectError,
    LineServer, ProtocolError, decode_message, encode_message,
    error_envelope, ok_envelope)


# -- framing and envelopes ---------------------------------------------------

def test_encode_decode_roundtrip():
    message = {"op": "analyze", "benchmark": "QU", "id": 7,
               "nested": {"a": [1, 2, None]}}
    line = encode_message(message)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_message(line) == message


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError):
        decode_message(b"this is not json\n")
    with pytest.raises(ProtocolError):
        decode_message(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError):
        decode_message(b'"just a string"\n')


def test_envelope_shapes():
    assert ok_envelope(3, {"x": 1}) == {"id": 3, "ok": True,
                                        "result": {"x": 1}}
    error = error_envelope(None, "boom", "timeout")
    assert error == {"id": None, "ok": False, "error": "boom",
                     "code": "timeout"}
    assert error_envelope(1, "bad")["code"] == "bad-request"


# -- LineServer --------------------------------------------------------------

def run_with_server(handler, scenario, **kwargs):
    async def main():
        server = LineServer(handler, port=0, **kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            server.close()
            server.hang_up()
            await server.wait_closed()

    return asyncio.run(main())


def test_line_server_echo_and_blank_lines():
    async def echo(line):
        return {"echo": decode_message(line)}

    async def scenario(server):
        conn = await AsyncLineConnection.open("127.0.0.1", server.port)
        try:
            first = await conn.request({"n": 1})
            # blank lines between requests are tolerated, not answered
            conn.writer.write(b"\n   \n")
            second = await conn.request({"n": 2})
            return first, second
        finally:
            conn.close()
            await conn.wait_closed()

    first, second = run_with_server(echo, scenario)
    assert first == {"echo": {"n": 1}}
    assert second == {"echo": {"n": 2}}


def test_line_server_bytes_passthrough():
    """A handler returning bytes writes them verbatim — the router's
    no-reserialize forwarding path."""
    canned = b'{"ok": true, "result": {"raw": true}}\n'

    async def handler(line):
        return canned

    async def scenario(server):
        conn = await AsyncLineConnection.open("127.0.0.1", server.port)
        try:
            return await conn.request_raw(encode_message({"any": 1}))
        finally:
            conn.close()

    assert run_with_server(handler, scenario) == canned


def test_line_server_oversized_line_answers_then_closes():
    async def handler(line):  # pragma: no cover - never reached
        raise AssertionError("oversized line must not reach the handler")

    async def scenario(server):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        try:
            writer.write(b"x" * 4096 + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            rest = await reader.read()  # server closes after answering
            return response, rest
        finally:
            writer.close()

    response, rest = run_with_server(handler, scenario, limit=1024)
    assert not response["ok"]
    assert response["code"] == "bad-request"
    assert "exceeds" in response["error"]
    assert rest == b""


# -- AsyncLineConnection -----------------------------------------------------

def test_async_connection_peer_close_raises_connect_error():
    async def handler(line):
        return None  # answer nothing; the test closes via hang_up

    async def scenario(server):
        conn = await AsyncLineConnection.open("127.0.0.1", server.port)
        request = conn.request_raw(encode_message({"op": "ping"}))
        task = asyncio.ensure_future(request)
        await asyncio.sleep(0.05)
        server.hang_up()
        with pytest.raises(ConnectError):
            await task

    run_with_server(handler, scenario)


# -- BlockingLineConnection --------------------------------------------------

def _bound_socket():
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    return sock, sock.getsockname()[1]


def test_blocking_connect_error_is_actionable():
    """No listener: the failure names the address, the attempt count,
    and what to check — not a bare ConnectionRefusedError."""
    sock, port = _bound_socket()  # bound but never listening
    try:
        conn = BlockingLineConnection("127.0.0.1", port, timeout=1.0)
        with pytest.raises(ConnectError) as exc_info:
            conn.connect(retries=1, backoff=0.01)
        message = str(exc_info.value)
        assert "no server listening at 127.0.0.1:%d" % port in message
        assert "2 attempt(s)" in message
        assert "wait_for_server" in message
    finally:
        sock.close()


def test_blocking_connect_retries_until_listener_appears():
    """The retry window covers a server that starts listening late —
    the spawn-then-connect race ServeClient.connect must survive."""
    sock, port = _bound_socket()
    served = []

    def listen_late():
        time.sleep(0.25)
        sock.listen(1)
        client, _ = sock.accept()
        handle = client.makefile("rwb")
        line = handle.readline()
        served.append(line)
        handle.write(encode_message(ok_envelope(None, {"pong": True})))
        handle.flush()
        client.close()

    thread = threading.Thread(target=listen_late)
    thread.start()
    try:
        conn = BlockingLineConnection("127.0.0.1", port, timeout=5.0)
        conn.connect(retries=8, backoff=0.05, max_backoff=0.2)
        response = conn.round_trip({"op": "ping"})
        conn.close()
        assert response["ok"]
        assert served and json.loads(served[0]) == {"op": "ping"}
    finally:
        thread.join()
        sock.close()


def test_blocking_round_trip_peer_close_raises_connect_error():
    sock, port = _bound_socket()
    sock.listen(1)

    def accept_and_close():
        client, _ = sock.accept()
        client.recv(1024)
        client.close()

    thread = threading.Thread(target=accept_and_close)
    thread.start()
    try:
        conn = BlockingLineConnection("127.0.0.1", port, timeout=5.0)
        conn.connect()
        with pytest.raises(ConnectError) as exc_info:
            conn.round_trip({"op": "ping"})
        assert "closed the connection" in str(exc_info.value)
        assert not conn.connected  # closed, may be re-connect()-ed
    finally:
        thread.join()
        sock.close()


# -- multi-endpoint failover -------------------------------------------------

def _mini_server(max_requests=None):
    """A threaded nd-JSON ping server: answers every request with
    ``{"pong": True, "port": <its port>}`` so a test can tell which
    endpoint actually served.  ``max_requests`` makes it die after N
    answers — the failure the client must ride out."""
    sock, port = _bound_socket()
    sock.listen(4)
    answered = []

    def serve():
        while True:
            try:
                client, _ = sock.accept()
            except OSError:
                return  # listener closed: shut down
            handle = client.makefile("rwb")
            while True:
                line = handle.readline()
                if not line:
                    break
                message = json.loads(line)
                answered.append(message)
                handle.write(encode_message(ok_envelope(
                    message.get("id"), {"pong": True, "port": port})))
                handle.flush()
                if (max_requests is not None
                        and len(answered) >= max_requests):
                    client.close()
                    sock.close()
                    return
            client.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return sock, port, answered


def test_blocking_multi_endpoint_connects_to_first_live_endpoint():
    dead_sock, dead_port = _bound_socket()  # bound, never listening
    live_sock, live_port, _ = _mini_server()
    try:
        conn = BlockingLineConnection(
            timeout=5.0,
            endpoints=[("127.0.0.1", dead_port),
                       ("127.0.0.1", live_port)])
        # before connecting, the first endpoint is the target...
        assert (conn.host, conn.port) == ("127.0.0.1", dead_port)
        conn.connect(retries=1, backoff=0.01)
        # ...after, the connection latched onto the live one
        assert (conn.host, conn.port) == ("127.0.0.1", live_port)
        response = conn.round_trip({"id": 1, "op": "ping"})
        assert response["result"]["port"] == live_port
        conn.close()
    finally:
        dead_sock.close()
        live_sock.close()


def test_blocking_multi_endpoint_error_names_every_address():
    sock_a, port_a = _bound_socket()
    sock_b, port_b = _bound_socket()
    try:
        conn = BlockingLineConnection(
            timeout=1.0,
            endpoints=[("127.0.0.1", port_a), ("127.0.0.1", port_b)])
        with pytest.raises(ConnectError) as exc_info:
            conn.connect(retries=1, backoff=0.01)
        message = str(exc_info.value)
        assert "any of" in message
        assert str(port_a) in message and str(port_b) in message
    finally:
        sock_a.close()
        sock_b.close()


def test_serve_client_endpoint_list_fails_over_mid_stream():
    """The client-side half of router redundancy: a ServeClient given
    several endpoints replays an idempotent request against the next
    endpoint when the current one dies mid-round-trip."""
    from repro.service.client import ServeClient

    first_sock, first_port, first_answered = _mini_server(max_requests=1)
    second_sock, second_port, second_answered = _mini_server()
    try:
        client = ServeClient(endpoints=[("127.0.0.1", first_port),
                                        ("127.0.0.1", second_port)])
        assert client.endpoints == [("127.0.0.1", first_port),
                                    ("127.0.0.1", second_port)]
        served_by_first = client.ping()
        assert served_by_first["port"] == first_port
        # the first endpoint is now gone (it died after one answer);
        # the same client call must land on the second transparently
        served_by_second = client.ping()
        assert served_by_second["port"] == second_port
        assert (client.host, client.port) == ("127.0.0.1", second_port)
        client.close()
        assert len(first_answered) == 1
        assert len(second_answered) >= 1
    finally:
        first_sock.close()
        second_sock.close()


def test_serve_client_single_endpoint_behavior_unchanged():
    """The classic (host, port) form: same attributes, same error
    message shape — the endpoints feature must not disturb it."""
    from repro.service.client import ServeClient, ServeError

    sock, port = _bound_socket()  # never listening
    try:
        client = ServeClient("127.0.0.1", port, timeout=1.0)
        assert client.endpoints == [("127.0.0.1", port)]
        with pytest.raises(ServeError) as exc_info:
            client.connect(retries=1, backoff=0.01)
        message = str(exc_info.value)
        assert "no server listening at 127.0.0.1:%d" % port in message
        assert "any of" not in message
    finally:
        sock.close()
