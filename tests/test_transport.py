"""Tests for the shared nd-JSON transport layer.

The protocol pieces — framing, envelopes, :class:`LineServer`,
:class:`AsyncLineConnection`, :class:`BlockingLineConnection` — are
exercised directly, without an analysis server behind them: an echo
handler is enough to pin framing, oversized-line recovery, the raw
passthrough path, and connect retry-with-backoff.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.service.transport import (
    AsyncLineConnection, BlockingLineConnection, ConnectError,
    LineServer, ProtocolError, decode_message, encode_message,
    error_envelope, ok_envelope)


# -- framing and envelopes ---------------------------------------------------

def test_encode_decode_roundtrip():
    message = {"op": "analyze", "benchmark": "QU", "id": 7,
               "nested": {"a": [1, 2, None]}}
    line = encode_message(message)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_message(line) == message


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError):
        decode_message(b"this is not json\n")
    with pytest.raises(ProtocolError):
        decode_message(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError):
        decode_message(b'"just a string"\n')


def test_envelope_shapes():
    assert ok_envelope(3, {"x": 1}) == {"id": 3, "ok": True,
                                        "result": {"x": 1}}
    error = error_envelope(None, "boom", "timeout")
    assert error == {"id": None, "ok": False, "error": "boom",
                     "code": "timeout"}
    assert error_envelope(1, "bad")["code"] == "bad-request"


# -- LineServer --------------------------------------------------------------

def run_with_server(handler, scenario, **kwargs):
    async def main():
        server = LineServer(handler, port=0, **kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            server.close()
            server.hang_up()
            await server.wait_closed()

    return asyncio.run(main())


def test_line_server_echo_and_blank_lines():
    async def echo(line):
        return {"echo": decode_message(line)}

    async def scenario(server):
        conn = await AsyncLineConnection.open("127.0.0.1", server.port)
        try:
            first = await conn.request({"n": 1})
            # blank lines between requests are tolerated, not answered
            conn.writer.write(b"\n   \n")
            second = await conn.request({"n": 2})
            return first, second
        finally:
            conn.close()
            await conn.wait_closed()

    first, second = run_with_server(echo, scenario)
    assert first == {"echo": {"n": 1}}
    assert second == {"echo": {"n": 2}}


def test_line_server_bytes_passthrough():
    """A handler returning bytes writes them verbatim — the router's
    no-reserialize forwarding path."""
    canned = b'{"ok": true, "result": {"raw": true}}\n'

    async def handler(line):
        return canned

    async def scenario(server):
        conn = await AsyncLineConnection.open("127.0.0.1", server.port)
        try:
            return await conn.request_raw(encode_message({"any": 1}))
        finally:
            conn.close()

    assert run_with_server(handler, scenario) == canned


def test_line_server_oversized_line_answers_then_closes():
    async def handler(line):  # pragma: no cover - never reached
        raise AssertionError("oversized line must not reach the handler")

    async def scenario(server):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        try:
            writer.write(b"x" * 4096 + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            rest = await reader.read()  # server closes after answering
            return response, rest
        finally:
            writer.close()

    response, rest = run_with_server(handler, scenario, limit=1024)
    assert not response["ok"]
    assert response["code"] == "bad-request"
    assert "exceeds" in response["error"]
    assert rest == b""


# -- AsyncLineConnection -----------------------------------------------------

def test_async_connection_peer_close_raises_connect_error():
    async def handler(line):
        return None  # answer nothing; the test closes via hang_up

    async def scenario(server):
        conn = await AsyncLineConnection.open("127.0.0.1", server.port)
        request = conn.request_raw(encode_message({"op": "ping"}))
        task = asyncio.ensure_future(request)
        await asyncio.sleep(0.05)
        server.hang_up()
        with pytest.raises(ConnectError):
            await task

    run_with_server(handler, scenario)


# -- BlockingLineConnection --------------------------------------------------

def _bound_socket():
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    return sock, sock.getsockname()[1]


def test_blocking_connect_error_is_actionable():
    """No listener: the failure names the address, the attempt count,
    and what to check — not a bare ConnectionRefusedError."""
    sock, port = _bound_socket()  # bound but never listening
    try:
        conn = BlockingLineConnection("127.0.0.1", port, timeout=1.0)
        with pytest.raises(ConnectError) as exc_info:
            conn.connect(retries=1, backoff=0.01)
        message = str(exc_info.value)
        assert "no server listening at 127.0.0.1:%d" % port in message
        assert "2 attempt(s)" in message
        assert "wait_for_server" in message
    finally:
        sock.close()


def test_blocking_connect_retries_until_listener_appears():
    """The retry window covers a server that starts listening late —
    the spawn-then-connect race ServeClient.connect must survive."""
    sock, port = _bound_socket()
    served = []

    def listen_late():
        time.sleep(0.25)
        sock.listen(1)
        client, _ = sock.accept()
        handle = client.makefile("rwb")
        line = handle.readline()
        served.append(line)
        handle.write(encode_message(ok_envelope(None, {"pong": True})))
        handle.flush()
        client.close()

    thread = threading.Thread(target=listen_late)
    thread.start()
    try:
        conn = BlockingLineConnection("127.0.0.1", port, timeout=5.0)
        conn.connect(retries=8, backoff=0.05, max_backoff=0.2)
        response = conn.round_trip({"op": "ping"})
        conn.close()
        assert response["ok"]
        assert served and json.loads(served[0]) == {"op": "ping"}
    finally:
        thread.join()
        sock.close()


def test_blocking_round_trip_peer_close_raises_connect_error():
    sock, port = _bound_socket()
    sock.listen(1)

    def accept_and_close():
        client, _ = sock.accept()
        client.recv(1024)
        client.close()

    thread = threading.Thread(target=accept_and_close)
    thread.start()
    try:
        conn = BlockingLineConnection("127.0.0.1", port, timeout=5.0)
        conn.connect()
        with pytest.raises(ConnectError) as exc_info:
            conn.round_trip({"op": "ping"})
        assert "closed the connection" in str(exc_info.value)
        assert not conn.connected  # closed, may be re-connect()-ed
    finally:
        thread.join()
        sock.close()
