"""Tests for the Bruynooghe/Janssens finite subdomain (§7's
alternative to the widening) and the ablation claim of §10."""

import pytest
from hypothesis import given, settings

from repro import analyze
from repro.domains.leaf import DepthBoundLeafDomain
from repro.domains.pattern import value_of
from repro.typegraph import (depth_bound_join, g_any, g_atom, g_equiv,
                             g_functor, g_le, g_list_of, g_union,
                             parse_rules, restrict_depth)
from repro.typegraph.depthbound import path_functor_depth

NESTED = """
T ::= [] | cons(T1,T)
T1 ::= [] | cons(T2,T1)
T2 ::= a | b
"""


class TestRestrictDepth:
    def test_flat_list_survives_k1(self):
        lst = g_list_of(g_any())
        assert g_equiv(restrict_depth(lst, 1), lst)

    def test_over_approximation(self):
        nested = parse_rules(NESTED)
        for k in (1, 2, 3):
            assert g_le(nested, restrict_depth(nested, k))

    def test_nested_lists_mix_at_k1(self):
        """§10: merging same-functor types 'makes it impossible to
        handle nested structures with the same functors'."""
        nested = parse_rules(NESTED)
        restricted = restrict_depth(nested, 1)
        assert not g_equiv(restricted, nested)
        # the mixed type accepts spine/element confusions
        from repro.prolog import parse_term
        from repro.typegraph import member
        assert member(parse_term("[a]"), restricted)
        assert member(parse_term("a"), restricted)  # ! spine = element

    def test_k2_preserves_two_levels(self):
        nested = parse_rules(NESTED)
        assert g_equiv(restrict_depth(nested, 2), nested)

    def test_result_is_within_bound(self):
        nested = parse_rules(NESTED)
        for k in (1, 2):
            assert path_functor_depth(restrict_depth(nested, k)) <= k

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            restrict_depth(g_any(), 0)

    def test_path_functor_depth(self):
        assert path_functor_depth(g_list_of(g_any())) == 1
        assert path_functor_depth(parse_rules(NESTED)) == 2
        assert path_functor_depth(g_any()) == 0


class TestDepthBoundJoin:
    def test_upper_bound(self):
        a = g_atom("[]")
        b = g_functor(".", [g_any(), g_atom("[]")])
        j = depth_bound_join(a, b, 1)
        assert g_le(a, j) and g_le(b, j)

    def test_list_chain_converges_without_widening(self):
        current = g_atom("[]")
        for _ in range(6):
            new = depth_bound_join(
                current, g_functor(".", [g_any(), current]), 1)
            if g_equiv(new, current):
                break
            current = new
        else:
            pytest.fail("depth-bound chain did not converge")
        assert g_equiv(current, g_list_of(g_any()))

    def test_finite_domain_chains_always_converge(self):
        # arbitrary growth: the subdomain is finite per signature
        current = g_atom("z")
        for step in range(40):
            new = depth_bound_join(
                current, g_functor("s", [current]), 1)
            if g_equiv(new, current):
                return
            current = new
        pytest.fail("chain exceeded the finite-domain bound")


class TestEndToEndAblation:
    FIG1 = """
    llist([]).
    llist([F|T]) :- list(F), llist(T).
    list([]).
    list([F|T]) :- p(F), list(T).
    p(a). p(b).
    reverse(X,Y) :- reverse(X,[],Y).
    reverse([],X,X).
    reverse([F|T],Acc,Res) :- reverse(T,[F|Acc],Res).
    get(Res) :- llist(X), reverse(X,Res).
    """
    EXACT = parse_rules(NESTED)

    def test_widening_beats_depth_bound_on_figure1(self):
        """The paper's motivation for the widening, measured."""
        widened = analyze(self.FIG1, ("get", 1))
        bounded = analyze(self.FIG1, ("get", 1),
                          domain=DepthBoundLeafDomain(1))
        g_widened = value_of(widened.output, widened.output.sv[0],
                             widened.domain, {})
        g_bounded = value_of(bounded.output, bounded.output.sv[0],
                             bounded.domain, {})
        # the widening is exact; the finite subdomain mixes the levels
        assert g_equiv(g_widened, self.EXACT)
        assert not g_equiv(g_bounded, self.EXACT)
        # but both are sound
        assert g_le(g_widened, g_bounded)

    def test_depth_bound_agrees_on_flat_lists(self, nreverse_source):
        widened = analyze(nreverse_source, ("nreverse", 2))
        bounded = analyze(nreverse_source, ("nreverse", 2),
                          domain=DepthBoundLeafDomain(1))
        expected = g_list_of(g_any())
        for analysis in (widened, bounded):
            g = value_of(analysis.output, analysis.output.sv[0],
                         analysis.domain, {})
            assert g_equiv(g, expected)
