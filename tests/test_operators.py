"""Unit tests for the operator table."""

import pytest

from repro.prolog.operators import OpDef, OperatorTable, default_operators


class TestOpDef:
    def test_kinds(self):
        assert OpDef(700, "xfx").is_infix
        assert OpDef(200, "fy").is_prefix
        assert OpDef(100, "xf").is_postfix
        assert not OpDef(700, "xfx").is_prefix

    def test_argument_bounds_xfx(self):
        op = OpDef(700, "xfx")
        assert op.left_max() == 699
        assert op.right_max() == 699

    def test_argument_bounds_yfx(self):
        op = OpDef(500, "yfx")
        assert op.left_max() == 500
        assert op.right_max() == 499

    def test_argument_bounds_xfy(self):
        op = OpDef(1000, "xfy")
        assert op.left_max() == 999
        assert op.right_max() == 1000


class TestTable:
    def test_standard_operators_present(self):
        table = default_operators()
        assert table.infix(":-").priority == 1200
        assert table.prefix(":-").priority == 1200
        assert table.infix(",").priority == 1000
        assert table.infix("is").priority == 700
        assert table.infix("*").priority == 400
        assert table.prefix("-").priority == 200

    def test_missing_operator(self):
        table = default_operators()
        assert table.infix("notanop") is None
        assert table.prefix("notanop") is None
        assert not table.is_operator("notanop")

    def test_infix_and_prefix_coexist(self):
        table = default_operators()
        assert table.infix("-") is not None
        assert table.prefix("-") is not None

    def test_add_operator(self):
        table = default_operators()
        table.add("===", 700, "xfx")
        assert table.infix("===").priority == 700

    def test_add_validates_priority(self):
        table = default_operators()
        with pytest.raises(ValueError):
            table.add("bad", 0, "xfx")
        with pytest.raises(ValueError):
            table.add("bad", 1300, "xfx")

    def test_add_validates_type(self):
        table = default_operators()
        with pytest.raises(ValueError):
            table.add("bad", 700, "xxx")

    def test_copy_isolation(self):
        table = default_operators()
        clone = table.copy()
        clone.add("===", 700, "xfx")
        assert table.infix("===") is None
        assert clone.infix("===") is not None
