"""Unit tests for grammar interning and the operation cache layer."""

import pytest

from repro.typegraph import (ANY, Grammar, g_any, g_atom, g_bottom,
                             g_functor, g_int, g_int_literal, g_intersect,
                             g_le, g_list_of, g_union, g_widen, normalize)
from repro.typegraph import opcache
from repro.typegraph.grammar import intern_grammar


@pytest.fixture
def restore_opcache():
    """Snapshot/restore the global cache configuration around a test."""
    was_enabled = opcache.enabled()
    yield
    opcache.configure(enabled=was_enabled)


# -- interning ---------------------------------------------------------------

def test_normalize_returns_interned_shared_instance():
    g1 = g_union(g_atom("a"), g_atom("b"))
    g2 = g_union(g_atom("b"), g_atom("a"))
    assert g1.interned and g2.interned
    # structurally equal results are one object => identity equality
    assert g1 == g2
    if g1 is g2:
        assert hash(g1) == hash(g2)


def test_interned_constructors_are_shared():
    assert g_atom("foo") is g_atom("foo")
    assert g_int_literal(7) is g_int_literal(7)
    assert g_any() is normalize(g_any())
    assert g_list_of(g_int()) is g_list_of(g_int())


def test_intern_grammar_idempotent():
    raw = Grammar({0: frozenset([ANY])}, 0)
    first = intern_grammar(raw)
    assert intern_grammar(first) is first
    # a second raw grammar with the same key resolves to the canonical one
    again = intern_grammar(Grammar({0: frozenset([ANY])}, 0))
    assert again is first


def test_uninterned_grammars_still_compare_structurally():
    raw1 = Grammar({0: frozenset([ANY])}, 0)
    raw2 = Grammar({0: frozenset([ANY])}, 0)
    assert raw1 == raw2
    assert hash(raw1) == hash(raw2)
    assert raw1 == intern_grammar(Grammar({0: frozenset([ANY])}, 0))


# -- the LRU table -----------------------------------------------------------

def test_opcache_lru_bound_and_counters():
    cache = opcache.OpCache("test", maxsize=2)
    assert cache.get("a") is None          # miss
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1             # hit; refreshes "a"
    cache.put("c", 3)                      # evicts "b" (least recent)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert len(cache) == 2
    assert cache.hits == 3 and cache.misses == 2
    cache.reset()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_opcache_put_existing_key_updates():
    cache = opcache.OpCache("test", maxsize=2)
    cache.put("a", 1)
    cache.put("a", 10)
    assert cache.get("a") == 10
    assert len(cache) == 1


def test_configure_toggles_and_resizes(restore_opcache):
    opcache.configure(enabled=False)
    assert not opcache.enabled()
    calls = []
    result = opcache.cached("test-op", ("k",), lambda: calls.append(1) or 42)
    assert result == 42 and calls == [1]
    # disabled: computed again, nothing stored
    opcache.cached("test-op", ("k",), lambda: calls.append(1) or 42)
    assert calls == [1, 1]
    opcache.configure(enabled=True)
    opcache.cached("test-op", ("k",), lambda: calls.append(1) or 42)
    opcache.cached("test-op", ("k",), lambda: calls.append(1) or 42)
    assert calls == [1, 1, 1]  # second call was a hit


def test_configure_maxsize_shrinks_tables(restore_opcache):
    original = opcache.DEFAULT_MAXSIZE
    opcache.configure(enabled=True)
    cache = opcache.cache_for("shrink-op")
    cache.reset()
    for k in range(10):
        cache.put(("k", k), k)
    opcache.configure(maxsize=4)
    try:
        assert len(cache) <= 4
    finally:
        opcache.configure(maxsize=original)
    with pytest.raises(ValueError):
        opcache.configure(maxsize=0)


def test_stats_and_snapshot_shapes():
    stats = opcache.stats()
    for record in stats.values():
        assert set(record) == {"hits", "misses", "size"}
    hits, misses = opcache.snapshot()
    assert hits >= 0 and misses >= 0


# -- cached operations agree with themselves ---------------------------------

def test_cached_ops_return_interned_results(restore_opcache):
    opcache.configure(enabled=True)
    a, b = g_atom("a"), g_atom("b")
    u = g_union(a, b)
    assert u.interned
    assert g_union(a, b) is u                    # memo hit
    assert g_intersect(u, u) is normalize(u)
    assert g_le(a, u) and not g_le(u, a)
    lst = g_list_of(a)
    w = g_widen(lst, g_union(lst, g_list_of(u)))
    assert w.interned
    assert g_widen(lst, g_union(lst, g_list_of(u))) is w


def test_g_functor_memoized_on_interned_children(restore_opcache):
    opcache.configure(enabled=True)
    a = g_atom("a")
    f1 = g_functor("f", [a, a])
    f2 = g_functor("f", (a, a))
    assert f1 is f2


# -- satellite: g_intersect fast paths respect max_or_width ------------------

def test_intersect_any_fast_path_applies_or_width_cap():
    wide = g_union(g_union(g_atom("a"), g_atom("b")), g_atom("c"))
    assert len(wide.root_alts) == 3
    capped = g_intersect(g_any(), wide, max_or_width=2)
    assert capped == g_any()  # 3 alternatives > cap 2 => Any
    capped2 = g_intersect(wide, g_any(), max_or_width=2)
    assert capped2 == g_any()
    # no cap: the fast path still returns the operand unchanged
    assert g_intersect(g_any(), wide) is wide
    # cap wide enough: unchanged too
    assert g_intersect(g_any(), wide, max_or_width=3) is wide


def test_intersect_bottom_fast_path():
    assert g_intersect(g_bottom(), g_any()).is_bottom()
    assert g_intersect(g_any(), g_bottom()).is_bottom()
