"""Soundness: the analysis over-approximates the concrete semantics.

For a battery of programs and ground queries, every answer computed by
the SLD interpreter must be a member of the inferred output type of the
corresponding argument — the paper's correctness property, checked
end-to-end (parser -> engine -> widening vs parser -> interpreter).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import analyze
from repro.domains.pattern import PAT_BOTTOM, value_of
from repro.prolog import parse_program, parse_term
from repro.prolog.interpreter import SolveLimits, Solver, resolve
from repro.prolog.terms import Atom, Int, Struct, Var, make_list
from repro.typegraph import member


def check_soundness(source, query_pred, goal_terms, max_solutions=50):
    """Analyze source for query_pred(Any...), then run each concrete
    goal and check every answer against the inferred output types."""
    program = parse_program(source)
    analysis = analyze(program, query_pred)
    out = analysis.output
    assert out is not PAT_BOTTOM, "analysis claims no success"
    grammars = [value_of(out, out.sv[k], analysis.domain, {})
                for k in range(query_pred[1])]
    solver = Solver(program, SolveLimits(max_solutions=max_solutions))
    checked = 0
    for goal_text in goal_terms:
        goal = parse_term(goal_text)
        for bindings in solver.solve(goal):
            args = goal.args if isinstance(goal, Struct) else ()
            for k, arg in enumerate(args):
                concrete = resolve(arg, bindings)
                assert member(concrete, grammars[k]), \
                    "answer %r of %s not in inferred type %s" % (
                        concrete, goal_text, grammars[k])
                checked += 1
    assert checked > 0, "no concrete answers were produced"


class TestListPrograms:
    def test_append(self, append_source):
        check_soundness(append_source, ("append", 3), [
            "append([], [], X)",
            "append([a], [b,c], X)",
            "append(X, Y, [a,b,c])",
            "append([1,2], X, Y)",
        ])

    def test_nreverse(self, nreverse_source):
        check_soundness(nreverse_source, ("nreverse", 2), [
            "nreverse([], X)",
            "nreverse([a,b,c], X)",
            "nreverse([[a],[b,c]], X)",
        ])

    def test_process_accumulator(self):
        src = """
        process(X,Y) :- process(X,0,Y).
        process([],X,X).
        process([c(X1)|Y],Acc,X) :- process(Y,c(X1,Acc),X).
        process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
        """
        check_soundness(src, ("process", 2), [
            "process([], X)",
            "process([c(1)], X)",
            "process([c(1),d(2),c(3)], X)",
        ])

    def test_gen_succ(self):
        src = """
        succ([], []).
        succ([X|Xs],[s(X)|R]) :- succ(Xs,R).
        gen([]).
        gen([0|L]) :- gen(X), succ(X,L).
        """
        check_soundness(src, ("gen", 1),
                        ["gen(X)"], max_solutions=5)

    def test_qsort(self):
        src = """
        qsort(X1, X2) :- qsort(X1, X2, []).
        qsort([], L, L).
        qsort([F|T], O, A) :-
            partition(T, F, Small, Big),
            qsort(Small, O, [F|Ot]),
            qsort(Big, Ot, A).
        partition([], X, [], []).
        partition([X|Xs], F, [X|S], B) :- X =< F, partition(Xs, F, S, B).
        partition([X|Xs], F, S, [X|B]) :- X > F, partition(Xs, F, S, B).
        """
        check_soundness(src, ("qsort", 2), [
            "qsort([3,1,2], X)",
            "qsort([], X)",
            "qsort([5,4,3,2,1], X)",
        ])


class TestArithmeticPrograms:
    def test_figure2(self):
        from repro.benchprogs import benchmark
        check_soundness(benchmark("AR").source, ("add", 2), [
            "add(0, X)",
            "add(0 + 1, X)",
            "add(0 + 1 * cst(k), X)",
            "add(0 + 1 * par(0), X)",
            "add(0 + 1 * var(v), X)",
        ])

    def test_figure3(self):
        from repro.benchprogs import benchmark
        check_soundness(benchmark("AR1").source, ("add", 2), [
            "add(cst(k), X)",
            "add(var(v) + cst(k), X)",
            "add(var(a) * cst(b) + var(c), X)",
            "add(par(cst(z)), X)",
        ])


class TestBenchmarkSoundness:
    def test_queens(self):
        from repro.benchprogs import benchmark
        check_soundness(benchmark("QU").source, ("queens", 2), [
            "queens([1,2,3,4], X)",
        ])

    def test_peephole(self):
        from repro.benchprogs import benchmark
        check_soundness(
            benchmark("PE").source, ("peephole_opt", 2),
            ["peephole_opt([movreg(r(1),r(1)), proceed], X)"],
            max_solutions=3)

    def test_planner(self):
        from repro.benchprogs import benchmark
        check_soundness(
            benchmark("PL").source, ("transform", 3),
            ["transform([on(a,b),on(b,p),on(c,r)],"
             " [on(a,b),on(b,p),on(c,r)], X)"],
            max_solutions=2)


@st.composite
def flat_lists(draw):
    items = draw(st.lists(
        st.one_of(st.sampled_from([Atom("a"), Atom("b")]),
                  st.integers(0, 9).map(Int)),
        max_size=6))
    return make_list(items)


class TestPropertySoundness:
    """Hypothesis: random ground queries against append/nreverse."""

    @settings(max_examples=30, deadline=None)
    @given(flat_lists(), flat_lists())
    def test_append_random(self, xs, ys):
        from tests.conftest import APPEND
        program = parse_program(APPEND)
        analysis = analyze(program, ("append", 3))
        out = analysis.output
        grammars = [value_of(out, out.sv[k], analysis.domain, {})
                    for k in range(3)]
        goal = Struct("append", (xs, ys, Var("Z")))
        for bindings in Solver(program).solve(goal):
            for k, arg in enumerate(goal.args):
                assert member(resolve(arg, bindings), grammars[k])

    @settings(max_examples=20, deadline=None)
    @given(flat_lists())
    def test_nreverse_random(self, xs):
        from tests.conftest import NREVERSE
        program = parse_program(NREVERSE)
        analysis = analyze(program, ("nreverse", 2))
        out = analysis.output
        grammars = [value_of(out, out.sv[k], analysis.domain, {})
                    for k in range(2)]
        goal = Struct("nreverse", (xs, Var("R")))
        for bindings in Solver(program).solve(goal):
            for k, arg in enumerate(goal.args):
                assert member(resolve(arg, bindings), grammars[k])
