"""Unit tests for the widening operator (§7) — including the paper's
worked examples."""

import pytest

from repro.typegraph import (g_any, g_atom, g_bottom, g_equiv, g_functor,
                             g_le, g_list_of, g_union, g_widen, parse_rules,
                             to_grammar, treeify, widening_clashes)


class TestWideningBasics:
    def test_covered_new_returns_old(self):
        old = g_list_of(g_any())
        new = g_atom("[]")
        assert g_widen(old, new) is old

    def test_bottom_old(self):
        new = g_atom("a")
        assert g_widen(g_bottom(), new) == new

    def test_bottom_new(self):
        old = g_atom("a")
        assert g_widen(old, g_bottom()) is old

    def test_upper_bound_property(self):
        old = g_atom("a")
        new = g_functor("f", [g_atom("a")])
        w = g_widen(old, new)
        assert g_le(old, w) and g_le(new, w)

    def test_incomparable_roots_grow(self):
        # no ancestor exists: the graph is allowed to grow (basic/2 case)
        old = parse_rules("T ::= cst(Any) | var(Any)")
        new = parse_rules("T ::= cst(Any) | par(T1) | var(Any)\nT1 ::= 0")
        w = g_widen(old, new)
        assert g_equiv(w, g_union(old, new))


class TestPaperAppendExample:
    """§7.1: the append/3 widening introducing the list cycle."""

    OLD = """
    T ::= [] | cons(Any,T1)
    T1 ::= []
    """
    NEW = """
    T ::= [] | cons(Any,T1)
    T1 ::= [] | cons(Any,T2)
    T2 ::= []
    """

    def test_cycle_introduced(self):
        w = g_widen(parse_rules(self.OLD), parse_rules(self.NEW))
        assert g_equiv(w, g_list_of(g_any()))

    def test_widening_is_stationary(self):
        w = g_widen(parse_rules(self.OLD), parse_rules(self.NEW))
        again = g_widen(w, g_union(g_atom("[]"),
                                   g_functor(".", [g_any(), w])))
        assert g_equiv(again, w)

    def test_clash_detected(self):
        old = treeify(parse_rules(self.OLD))
        new = treeify(g_union(parse_rules(self.OLD),
                              parse_rules(self.NEW)))
        clashes = widening_clashes(old, new)
        assert len(clashes) == 1
        vo, vn = clashes[0]
        assert vo.depth == vn.depth == 2
        assert vo.pf() != vn.pf()


class TestPaperArithmeticExample:
    """§7.1 / Figure 6: ancestor selection at distance (the AR widening)."""

    def test_figure6(self):
        To = parse_rules("""
        T ::= 0 | '+'(T0,T1)
        T0 ::= 0
        T1 ::= 1 | '*'(T1,T2)
        T2 ::= cst(Any) | par(T0b) | var(Any)
        T0b ::= 0
        """)
        Tn = parse_rules("""
        Tn ::= 0 | '+'(T3,T6)
        T3 ::= 0 | '+'(Z1,T4)
        Z1 ::= 0
        T4 ::= 1 | '*'(T4,T5)
        T5 ::= cst(Any) | par(Z2) | var(Any)
        Z2 ::= 0
        T6 ::= 1 | '*'(T6,T7)
        T7 ::= cst(Any) | par(T3) | var(Any)
        """)
        expected = parse_rules("""
        Tr ::= 0 | '+'(Tr,T1)
        T1 ::= 1 | '*'(T1,T2)
        T2 ::= cst(Any) | par(Tr) | var(Any)
        """)
        assert g_equiv(g_widen(To, Tn), expected)


class TestAccumulatorExample:
    """The process/3 accumulator: both branches must eventually cycle."""

    def test_two_branch_convergence(self):
        S = parse_rules("""
        T ::= 0 | c(Any,T) | d(Any,T1)
        T1 ::= 0
        """)
        gn = g_union(g_union(S, g_functor("c", [g_any(), S])),
                     g_functor("d", [g_any(), S]))
        w = g_widen(S, gn)
        assert g_equiv(w, parse_rules("S ::= 0 | c(Any,S) | d(Any,S)"))

    def test_chain_stabilizes(self):
        # iterating acc_{n+1} = widen(acc_n, 0 | c(acc_n) | d(acc_n))
        acc = parse_rules("T ::= 0")
        for _ in range(10):
            step = g_union(g_union(parse_rules("T ::= 0"),
                                   g_functor("c", [g_any(), acc])),
                           g_functor("d", [g_any(), acc]))
            new = g_widen(acc, step)
            if g_equiv(new, acc):
                break
            acc = new
        else:
            pytest.fail("widening chain did not stabilize in 10 steps")
        assert g_le(parse_rules("S ::= 0 | c(Any,S) | d(Any,S)"), acc)


class TestGentleVsStrict:
    def test_gentle_prefers_growth(self):
        # element type grows while the spine grows: gentle mode must not
        # destroy the root (the llist case)
        old = parse_rules("""
        T ::= [] | cons(T1,T2)
        T1 ::= []
        T2 ::= []
        """)
        new = parse_rules("""
        T ::= [] | cons(T1,T2)
        T1 ::= [] | cons(T3,T4)
        T3 ::= a | b
        T4 ::= []
        T2 ::= [] | cons(T4,T4)
        """)
        w = g_widen(old, new, strict=False)
        assert not w.is_any()

    def test_strict_mode_is_upper_bound_too(self):
        old = parse_rules("T ::= [] | cons(T1,T1)\nT1 ::= []")
        new = parse_rules("""
        T ::= [] | cons(T1,T2)
        T1 ::= [] | cons(T3,T4)
        T3 ::= a | b
        T4 ::= []
        T2 ::= [] | cons(T4,T4)
        """)
        for strict in (True, False):
            w = g_widen(old, new, strict=strict)
            assert g_le(old, w) and g_le(new, w)


class TestGenSucc:
    """§2 gen/succ: two recursive structures inferred simultaneously."""

    def test_simultaneous_growth(self):
        # element towers s^k(0) and list spine grow together
        elem = parse_rules("E ::= 0")
        lst = g_atom("[]")
        for _ in range(8):
            elem_new = g_union(parse_rules("E ::= 0"),
                               g_functor("s", [elem]))
            lst_new = g_union(g_atom("[]"),
                              g_functor(".", [elem_new, lst]))
            lst2 = g_widen(lst, lst_new)
            elem2 = g_widen(elem, elem_new)
            if g_equiv(lst2, lst) and g_equiv(elem2, elem):
                break
            lst, elem = lst2, elem2
        else:
            pytest.fail("gen/succ chain did not stabilize")
        paper = parse_rules("""
        T ::= [] | cons(T1,T)
        T1 ::= 0 | s(T1)
        """)
        assert g_le(lst, paper)
        assert not lst.is_bottom()
