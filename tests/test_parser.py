"""Unit tests for the operator-precedence parser."""

import pytest

from repro.prolog.parser import ParseError, parse_clauses, parse_term
from repro.prolog.terms import (Atom, Int, Struct, Var, format_term,
                                make_list)


def f(text):
    return format_term(parse_term(text))


class TestPrimary:
    def test_atom(self):
        assert parse_term("foo") == Atom("foo")

    def test_integer(self):
        assert parse_term("42") == Int(42)

    def test_negative_integer(self):
        assert parse_term("-7") == Int(-7)

    def test_variable(self):
        assert parse_term("X") == Var("X")

    def test_anonymous_variables_distinct(self):
        term = parse_term("f(_, _)")
        assert term.args[0] != term.args[1]

    def test_named_variables_shared(self):
        term = parse_term("f(X, X)")
        assert term.args[0] is term.args[1] or term.args[0] == term.args[1]

    def test_structure(self):
        assert parse_term("f(a, b)") == Struct("f", (Atom("a"), Atom("b")))

    def test_nested_structure(self):
        assert f("f(g(h(a)))") == "f(g(h(a)))"

    def test_string_as_code_list(self):
        assert parse_term('"ab"') == make_list([Int(97), Int(98)])

    def test_curly_braces(self):
        assert parse_term("{}") == Atom("{}")
        assert parse_term("{a}") == Struct("{}", (Atom("a"),))


class TestLists:
    def test_empty_list(self):
        assert parse_term("[]") == Atom("[]")

    def test_proper_list(self):
        assert f("[a,b,c]") == "[a,b,c]"

    def test_list_with_tail(self):
        assert f("[a|T]") == "[a|T]"

    def test_nested_lists(self):
        assert f("[[a],[b,[c]]]") == "[[a],[b,[c]]]"

    def test_list_elements_are_arg_priority(self):
        # ',' inside a list separates elements, it is not the operator
        term = parse_term("[a,b]")
        assert format_term(term) == "[a,b]"


class TestOperators:
    def test_infix_priority(self):
        assert f("1 + 2 * 3") == "+(1,*(2,3))"

    def test_left_associative(self):
        assert f("1 - 2 - 3") == "-(-(1,2),3)"

    def test_right_associative(self):
        assert f("(a , b , c)") == ",(a,,(b,c))"

    def test_xfx_comparison(self):
        assert f("X is Y + 1") == "is(X,+(Y,1))"

    def test_clause_operator(self):
        assert f("a :- b") == ":-(a,b)"

    def test_prefix_minus_on_term(self):
        assert f("-(a)") == "-(a)"
        assert f("- a") == "-(a)"

    def test_prefix_negation(self):
        assert f("\\+ a") == "\\+(a)"

    def test_parentheses_override(self):
        assert f("(1 + 2) * 3") == "*(+(1,2),3)"

    def test_operator_as_atom_in_args(self):
        assert f("f(+, -)") == "f(+,-)"

    def test_if_then_else(self):
        assert f("(a -> b ; c)") == ";(->(a,b),c)"

    def test_functor_requires_no_layout(self):
        # "f (a)" is not an application; it fails as two terms
        with pytest.raises(ParseError):
            parse_term("f (a) x")

    def test_priority_violation(self):
        with pytest.raises(ParseError):
            parse_term("f(a :- b)")  # 1200 > 999 inside arguments


class TestClauses:
    def test_multiple_clauses(self):
        clauses = parse_clauses("a. b. c(X) :- d(X).")
        assert len(clauses) == 3

    def test_variables_reset_per_clause(self):
        clauses = parse_clauses("p(X). q(X).")
        # same printed name, but each clause gets its own variable map
        assert clauses[0].args[0] == clauses[1].args[0]

    def test_op_directive(self):
        clauses = parse_clauses("""
            :- op(700, xfx, ===).
            rule(X === Y).
        """)
        rule = clauses[1]
        assert rule.args[0] == Struct("===", (Var("X"), Var("Y")))

    def test_missing_end_dot(self):
        with pytest.raises(ParseError):
            parse_clauses("a :- b")

    def test_comment_only_source(self):
        assert parse_clauses("% nothing here\n") == []


class TestRealisticClauses:
    def test_append_clause(self):
        text = "append([F|T], S, [F|R]) :- append(T, S, R)."
        clause = parse_clauses(text)[0]
        assert clause.name == ":-"

    def test_arithmetic_guard(self):
        clause = parse_clauses("p(X) :- X > 0, X =< 10.")[0]
        body = clause.args[1]
        assert body.name == ","

    def test_deep_program(self, nreverse_source):
        assert len(parse_clauses(nreverse_source)) == 4
