"""Unit tests for kernel normalization."""

import pytest

from repro.prolog.normalize import (NBuild, NCall, NUnify, normalize_clause,
                                    normalize_program)
from repro.prolog.program import clause_from_term, parse_program
from repro.prolog.parser import parse_term


def norm_one(text):
    clause = clause_from_term(parse_term(text))
    results = normalize_clause(clause)
    assert len(results) == 1
    return results[0]


class TestHeads:
    def test_fact_head_variables(self):
        nc = norm_one("p(X, Y)")
        assert nc.pred == ("p", 2)
        assert nc.nvars == 2
        assert nc.body == []

    def test_repeated_head_variable(self):
        nc = norm_one("p(X, X)")
        assert nc.body == [NUnify(1, 0)]

    def test_head_structure_flattening(self):
        nc = norm_one("p(f(X))")
        assert nc.body[0] == NBuild(0, "f", (1,))

    def test_head_atom_argument(self):
        nc = norm_one("p(a)")
        assert nc.body == [NBuild(0, "a", ())]

    def test_head_integer_argument(self):
        nc = norm_one("p(3)")
        assert nc.body == [NBuild(0, "3", (), True)]

    def test_list_head(self):
        nc = norm_one("p([F|T])")
        assert nc.body[0] == NBuild(0, ".", (1, 2))


class TestBodies:
    def test_call_with_variables(self):
        nc = norm_one("p(X) :- q(X)")
        assert nc.body == [NCall(("q", 1), (0,))]

    def test_call_with_structure_argument(self):
        nc = norm_one("p(X) :- q(f(X))")
        build = [g for g in nc.body if isinstance(g, NBuild)]
        call = [g for g in nc.body if isinstance(g, NCall)]
        assert len(build) == 1 and len(call) == 1
        assert build[0].name == "f"
        # the unification happens before the call
        assert nc.body.index(build[0]) < nc.body.index(call[0])

    def test_explicit_unification_var_term(self):
        nc = norm_one("p(X) :- X = f(a)")
        assert isinstance(nc.body[0], NBuild)

    def test_unification_nonvar_nonvar(self):
        nc = norm_one("p :- f(a) = f(b)")
        builds = [g for g in nc.body if isinstance(g, NBuild)]
        assert len(builds) >= 2

    def test_true_removed(self):
        nc = norm_one("p :- true")
        assert nc.body == []

    def test_variable_goal_becomes_call(self):
        nc = norm_one("p(X) :- X")
        assert nc.body == [NCall(("call", 1), (0,))]

    def test_negation_kept_as_test(self):
        nc = norm_one("p(X) :- \\+ q(X)")
        assert any(g.pred == ("\\+", 1) for g in nc.body
                   if isinstance(g, NCall))


class TestDisjunction:
    def test_disjunction_splits_clause(self):
        clause = clause_from_term(parse_term("p(X) :- (q(X) ; r(X))"))
        results = normalize_clause(clause)
        assert len(results) == 2
        assert results[0].body == [NCall(("q", 1), (0,))]
        assert results[1].body == [NCall(("r", 1), (0,))]

    def test_if_then_else(self):
        clause = clause_from_term(
            parse_term("p(X) :- (q(X) -> r(X) ; s(X))"))
        results = normalize_clause(clause)
        assert len(results) == 2
        # branch 1 runs the condition then the then-goal
        assert [g.pred for g in results[0].body] == [("q", 1), ("r", 1)]
        assert [g.pred for g in results[1].body] == [("s", 1)]

    def test_nested_disjunction(self):
        clause = clause_from_term(
            parse_term("p :- (a ; b), (c ; d)"))
        results = normalize_clause(clause)
        assert len(results) == 4


class TestProgramLevel:
    def test_head_args_are_first_vars(self, nreverse_source):
        norm = normalize_program(parse_program(nreverse_source))
        for pred in norm.order:
            for clause in norm.procedures[pred].clauses:
                assert clause.nvars >= clause.pred[1]

    def test_program_points_positive(self, nreverse_source):
        norm = normalize_program(parse_program(nreverse_source))
        assert norm.num_program_points() > len(norm.order)

    def test_all_goal_args_are_distinct_vars_per_call(self):
        norm = normalize_program(parse_program(
            "p(X) :- q(f(X), g(X, X))."))
        clause = norm.procedures[("p", 1)].clauses[0]
        calls = [g for g in clause.body if isinstance(g, NCall)]
        assert len(calls) == 1
        assert all(isinstance(a, int) for a in calls[0].args)


class TestOversizedDisjunction:
    """PR 5: cartesian expansion past the cap degrades to auxiliary
    predicates instead of aborting the analysis."""

    @staticmethod
    def _wide_source(n):
        disj = " , ".join("(X%d = a ; X%d = b)" % (i, i)
                          for i in range(n))
        head_args = ", ".join("X%d" % i for i in range(n))
        return "p(%s) :- %s.\n" % (head_args, disj)

    def test_under_cap_unchanged(self):
        # 2^6 = 64 bodies is exactly the cap: still plain expansion.
        norm = normalize_program(parse_program(self._wide_source(6)))
        assert norm.disjunction_fallbacks == 0
        assert len(norm.procedures[("p", 6)].clauses) == 64
        assert list(norm.procedures) == [("p", 6)]

    def test_over_cap_extracts_aux_predicates(self):
        norm = normalize_program(parse_program(self._wide_source(8)))
        assert norm.disjunction_fallbacks > 0
        aux = [pred for pred in norm.procedures
               if pred[0].startswith("$or_")]
        assert aux
        for pred in aux:
            # one clause per disjunct
            assert len(norm.procedures[pred].clauses) == 2

    def test_over_cap_analysis_is_sound_and_precise(self):
        from repro import analyze
        source = self._wide_source(8)
        analysis = analyze(source, ("p", 8))
        assert analysis.stats.disjunction_fallbacks > 0
        assert analysis.result.unknown_predicates == []
        # every argument still gets the exact a|b type
        text = analysis.grammar_text()
        assert text.count("a | b") == 8

    def test_aux_names_unique_across_clauses(self):
        source = (self._wide_source(8)
                  + self._wide_source(8).replace("p(", "p2(", 1))
        norm = normalize_program(parse_program(source))
        aux = [pred for pred in norm.procedures
               if pred[0].startswith("$or_")]
        assert len(aux) == len(set(aux)) == 4

    def test_normalize_clause_appends_aux_clauses(self):
        clause = clause_from_term(parse_term(
            self._wide_source(8).strip().rstrip(".")))
        results = normalize_clause(clause)
        own = [c for c in results if c.pred == ("p", 8)]
        aux = [c for c in results if c.pred != ("p", 8)]
        assert own and aux
        assert all(c.pred[0].startswith("$or_") for c in aux)
