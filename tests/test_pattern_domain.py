"""Unit tests for the Pat(R) pattern domain (§5)."""

import pytest

from repro.domains.leaf import TrivialLeafDomain, TypeLeafDomain
from repro.domains.pattern import (PAT_BOTTOM, SubstBuilder, subst_eq,
                                   subst_join, subst_le, subst_top,
                                   subst_widen, value_of)
from repro.typegraph import (g_any, g_atom, g_equiv, g_functor, g_int,
                             g_le, g_list_of, g_union)

D = TypeLeafDomain()


def frozen(builder, roots):
    subst = builder.freeze(roots)
    assert subst is not PAT_BOTTOM
    return subst


class TestBuilderUnification:
    def test_leaf_leaf_meet(self):
        b = SubstBuilder(D)
        x = b.fresh_leaf(g_union(g_atom("a"), g_atom("b")))
        y = b.fresh_leaf(g_union(g_atom("b"), g_atom("c")))
        assert b.unify(x, y)
        subst = frozen(b, [x])
        assert g_equiv(subst.nodes[0].value, g_atom("b"))

    def test_leaf_leaf_disjoint_fails(self):
        b = SubstBuilder(D)
        x = b.fresh_leaf(g_atom("a"))
        y = b.fresh_leaf(g_atom("b"))
        assert not b.unify(x, y)

    def test_pattern_pattern_same_functor(self):
        b = SubstBuilder(D)
        x1, x2 = b.fresh_leaf(g_atom("a")), b.fresh_leaf()
        y1, y2 = b.fresh_leaf(), b.fresh_leaf(g_atom("c"))
        p1 = b.make_pattern("f", False, [x1, x2])
        p2 = b.make_pattern("f", False, [y1, y2])
        assert b.unify(p1, p2)
        subst = frozen(b, [x1, x2])
        assert g_equiv(subst.nodes[subst.sv[0]].value, g_atom("a"))
        assert g_equiv(subst.nodes[subst.sv[1]].value, g_atom("c"))

    def test_pattern_pattern_clash(self):
        b = SubstBuilder(D)
        p1 = b.make_pattern("f", False, [b.fresh_leaf()])
        p2 = b.make_pattern("g", False, [b.fresh_leaf()])
        assert not b.unify(p1, p2)

    def test_pattern_leaf_split(self):
        b = SubstBuilder(D)
        leaf = b.fresh_leaf(g_list_of(g_atom("x")))
        head, tail = b.fresh_leaf(), b.fresh_leaf()
        pattern = b.make_pattern(".", False, [head, tail])
        assert b.unify(pattern, leaf)
        subst = frozen(b, [head, tail])
        assert g_equiv(subst.nodes[subst.sv[0]].value, g_atom("x"))
        assert g_equiv(subst.nodes[subst.sv[1]].value,
                       g_list_of(g_atom("x")))

    def test_pattern_leaf_wrong_functor_fails(self):
        b = SubstBuilder(D)
        leaf = b.fresh_leaf(g_atom("[]"))
        pattern = b.make_pattern(".", False, [b.fresh_leaf(),
                                              b.fresh_leaf()])
        assert not b.unify(pattern, leaf)

    def test_same_value_sharing(self):
        b = SubstBuilder(D)
        x, y = b.fresh_leaf(), b.fresh_leaf()
        assert b.unify(x, y)
        subst = frozen(b, [x, y])
        assert subst.sv[0] == subst.sv[1]

    def test_occur_check_gives_bottom(self):
        b = SubstBuilder(D)
        x = b.fresh_leaf()
        pattern = b.make_pattern("f", False, [x])
        assert b.unify(x, pattern)  # merge itself succeeds...
        assert b.freeze([x]) is PAT_BOTTOM  # ...the occur check rejects

    def test_constrain_pushes_through_pattern(self):
        b = SubstBuilder(D)
        inner = b.fresh_leaf()
        pattern = b.make_pattern("f", False, [inner])
        assert b.constrain(pattern, g_functor("f", [g_atom("a")]))
        subst = frozen(b, [inner])
        assert g_equiv(subst.nodes[0].value, g_atom("a"))

    def test_constrain_failure(self):
        b = SubstBuilder(D)
        pattern = b.make_pattern("f", False, [b.fresh_leaf()])
        assert not b.constrain(pattern, g_atom("a"))


class TestFreezeInstantiate:
    def test_canonical_numbering(self):
        b = SubstBuilder(D)
        x, y = b.fresh_leaf(g_atom("a")), b.fresh_leaf(g_atom("b"))
        s1 = frozen(b, [x, y])
        b2 = SubstBuilder(D)
        p, q = b2.fresh_leaf(g_atom("a")), b2.fresh_leaf(g_atom("b"))
        s2 = frozen(b2, [p, q])
        assert s1 == s2

    def test_instantiate_preserves_sharing(self):
        b = SubstBuilder(D)
        x = b.fresh_leaf()
        s = frozen(b, [x, x])
        b2 = SubstBuilder(D)
        nodes = b2.instantiate(s)
        assert b2.find(nodes[0]) is b2.find(nodes[1])

    def test_instantiate_preserves_structure(self):
        b = SubstBuilder(D)
        inner = b.fresh_leaf(g_int())
        pattern = b.make_pattern("f", False, [inner])
        s = frozen(b, [pattern])
        b2 = SubstBuilder(D)
        [node] = b2.instantiate(s)
        node = b2.find(node)
        assert node.name == "f"
        assert g_equiv(b2.find(node.args[0]).value, g_int())


class TestJoin:
    def _subst(self, build):
        b = SubstBuilder(D)
        roots = build(b)
        return frozen(b, roots)

    def test_join_identical(self):
        s = subst_top(2, D)
        assert subst_eq(subst_join(s, s, D), s, D)

    def test_join_with_bottom(self):
        s = subst_top(1, D)
        assert subst_join(s, PAT_BOTTOM, D) is s
        assert subst_join(PAT_BOTTOM, s, D) is s

    def test_join_same_pattern_kept(self):
        def one(value):
            def build(b):
                leaf = b.fresh_leaf(value)
                return [b.make_pattern("f", False, [leaf])]
            return self._subst(build)
        j = subst_join(one(g_atom("a")), one(g_atom("b")), D)
        node = j.nodes[j.sv[0]]
        assert not node.is_leaf and node.name == "f"
        child = j.nodes[node.args[0]]
        assert g_equiv(child.value, g_union(g_atom("a"), g_atom("b")))

    def test_join_different_pattern_collapses(self):
        def one(name):
            def build(b):
                return [b.make_pattern(name, False, [b.fresh_leaf()])]
            return self._subst(build)
        j = subst_join(one("f"), one("g"), D)
        node = j.nodes[j.sv[0]]
        assert node.is_leaf
        assert g_equiv(node.value,
                       g_union(g_functor("f", [g_any()]),
                               g_functor("g", [g_any()])))

    def test_join_keeps_common_sharing(self):
        def shared(b):
            x = b.fresh_leaf()
            return [x, x]
        def unshared(b):
            return [b.fresh_leaf(), b.fresh_leaf()]
        s_shared = self._subst(shared)
        s_unshared = self._subst(unshared)
        both = subst_join(s_shared, s_shared, D)
        assert both.sv[0] == both.sv[1]
        mixed = subst_join(s_shared, s_unshared, D)
        assert mixed.sv[0] != mixed.sv[1]


class TestOrder:
    def test_top_is_greatest(self):
        b = SubstBuilder(D)
        s = frozen(b, [b.make_pattern("f", False, [b.fresh_leaf()])])
        assert subst_le(s, subst_top(1, D), D)
        assert not subst_le(subst_top(1, D), s, D)

    def test_bottom_least(self):
        assert subst_le(PAT_BOTTOM, subst_top(1, D), D)
        assert not subst_le(subst_top(1, D), PAT_BOTTOM, D)

    def test_leaf_value_order(self):
        def leaf(value):
            b = SubstBuilder(D)
            return frozen(b, [b.fresh_leaf(value)])
        assert subst_le(leaf(g_atom("a")), leaf(g_any()), D)
        assert not subst_le(leaf(g_any()), leaf(g_atom("a")), D)

    def test_leaf_vs_pattern_through_domain(self):
        # s1 leaf f(a) <= s2 pattern f(leaf a): decidable via grammars
        b1 = SubstBuilder(D)
        s1 = frozen(b1, [b1.fresh_leaf(g_functor("f", [g_atom("a")]))])
        b2 = SubstBuilder(D)
        s2 = frozen(b2, [b2.make_pattern("f", False,
                                         [b2.fresh_leaf(g_any())])])
        assert subst_le(s1, s2, D)

    def test_sharing_constraint(self):
        b1 = SubstBuilder(D)
        x = b1.fresh_leaf()
        s_shared = frozen(b1, [x, x])
        b2 = SubstBuilder(D)
        s_unshared = frozen(b2, [b2.fresh_leaf(), b2.fresh_leaf()])
        # shared <= unshared but not conversely
        assert subst_le(s_shared, s_unshared, D)
        assert not subst_le(s_unshared, s_shared, D)

    def test_join_is_least_upperish(self):
        b = SubstBuilder(D)
        s1 = frozen(b, [b.fresh_leaf(g_atom("a"))])
        b2 = SubstBuilder(D)
        s2 = frozen(b2, [b2.fresh_leaf(g_atom("b"))])
        j = subst_join(s1, s2, D)
        assert subst_le(s1, j, D) and subst_le(s2, j, D)


class TestWidenSubst:
    def test_widen_upper_bound(self):
        b = SubstBuilder(D)
        s1 = frozen(b, [b.fresh_leaf(g_atom("a"))])
        b2 = SubstBuilder(D)
        s2 = frozen(b2, [b2.fresh_leaf(g_atom("b"))])
        w = subst_widen(s1, s2, D)
        assert subst_le(s1, w, D) and subst_le(s2, w, D)

    def test_widen_structure_is_prefix_of_old(self):
        b = SubstBuilder(D)
        inner = b.make_pattern("g", False, [b.fresh_leaf()])
        s_old = frozen(b, [b.make_pattern("f", False, [inner])])
        b2 = SubstBuilder(D)
        s_new = frozen(b2, [b2.make_pattern("f", False,
                                            [b2.fresh_leaf()])])
        w = subst_widen(s_old, s_new, D)
        node = w.nodes[w.sv[0]]
        assert node.name == "f"
        assert w.nodes[node.args[0]].is_leaf  # inner collapsed


class TestTrivialDomain:
    T = TrivialLeafDomain()

    def test_unify_never_fails_on_leaves(self):
        b = SubstBuilder(self.T)
        assert b.unify(b.fresh_leaf(), b.fresh_leaf())

    def test_pattern_tracking_still_works(self):
        b = SubstBuilder(self.T)
        leaf = b.fresh_leaf()
        pattern = b.make_pattern("f", False, [b.fresh_leaf()])
        assert b.unify(leaf, pattern)
        subst = b.freeze([leaf])
        assert subst.nodes[subst.sv[0]].name == "f"

    def test_functor_clash_detected(self):
        b = SubstBuilder(self.T)
        p1 = b.make_pattern("f", False, [b.fresh_leaf()])
        p2 = b.make_pattern("g", False, [b.fresh_leaf()])
        assert not b.unify(p1, p2)

    def test_value_of_is_top(self):
        b = SubstBuilder(self.T)
        pattern = b.make_pattern("f", False, [b.fresh_leaf()])
        subst = b.freeze([pattern])
        from repro.domains.leaf import TOP
        assert value_of(subst, subst.sv[0], self.T, {}) is TOP
