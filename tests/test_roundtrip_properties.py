"""Property tests for the front end: format/parse round trips and
normalization/interpretation consistency."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.prolog import (parse_term, parse_program, tokenize)
from repro.prolog.normalize import normalize_clause
from repro.prolog.program import clause_from_term
from repro.prolog.terms import (Atom, Int, Struct, Term, Var, format_term,
                                make_list, term_variables)

_atom_names = st.sampled_from(["a", "foo", "bar_baz", "x1", "[]",
                               "hello world", "It's"])
_var_names = st.sampled_from(["X", "Y", "Zed", "_under", "A1"])


def _terms(depth):
    base = st.one_of(
        _atom_names.map(Atom),
        st.integers(-999, 999).map(Int),
        _var_names.map(Var),
    )
    if depth == 0:
        return base
    sub = _terms(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda name, args: Struct(name, tuple(args)),
                  st.sampled_from(["f", "g", "point", "node"]),
                  st.lists(sub, min_size=1, max_size=3)),
        st.lists(sub, max_size=3).map(make_list),
    )


terms = _terms(3)


@settings(max_examples=200, deadline=None)
@given(terms)
def test_format_parse_roundtrip(term):
    """parse(format(t)) == t for ground and non-ground terms."""
    text = format_term(term)
    reparsed = parse_term(text)
    assert reparsed == term


@settings(max_examples=200, deadline=None)
@given(terms)
def test_tokenizer_never_crashes_on_formatted_terms(term):
    tokens = tokenize(format_term(term) + " .")
    assert tokens[-1].kind == "eof"
    assert tokens[-2].kind == "end"


@settings(max_examples=100, deadline=None)
@given(terms, terms)
def test_clause_roundtrip_through_program_parser(head_arg, body_arg):
    head = Struct("p", (head_arg,))
    body = Struct("q", (body_arg,))
    text = "%s :- %s." % (format_term(head), format_term(body))
    program = parse_program(text)
    clause = program.procedure(("p", 1)).clauses[0]
    assert clause.head == head
    assert clause.body == [body]


@settings(max_examples=100, deadline=None)
@given(terms)
def test_normalization_mentions_all_variables(term):
    """Every variable of the source clause appears in the kernel form
    (no bindings are lost)."""
    clause = clause_from_term(Struct("p", (term,)))
    [norm] = normalize_clause(clause)
    assert norm.nvars >= 1
    assert norm.nvars >= len(term_variables(term))


@settings(max_examples=60, deadline=None)
@given(st.lists(_terms(1), min_size=1, max_size=3))
def test_facts_survive_program_roundtrip(args):
    fact = Struct("p", tuple(args))
    program = parse_program(format_term(fact) + ".")
    assert program.procedure(("p", len(args))).clauses[0].head == fact
