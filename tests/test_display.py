"""Tests for grammar display and the rule-notation parser."""

import pytest

from repro.typegraph import (g_any, g_atom, g_bottom, g_equiv, g_functor,
                             g_int, g_int_literal, g_list_of, g_union,
                             parse_rules)
from repro.typegraph.display import grammar_rules, grammar_to_text


class TestRendering:
    def test_any(self):
        assert grammar_to_text(g_any()) == "T ::= Any"

    def test_integer(self):
        assert grammar_to_text(g_int()) == "T ::= Integer"

    def test_int_literal(self):
        assert grammar_to_text(g_int_literal(7)) == "T ::= 7"

    def test_alternatives_sorted(self):
        g = g_union(g_atom("b"), g_atom("a"))
        assert grammar_to_text(g) == "T ::= a | b"

    def test_cons_displayed(self):
        assert "cons(Any,T)" in grammar_to_text(g_list_of(g_any()))

    def test_leaf_inlining(self):
        g = g_functor("f", [g_any(), g_int()])
        assert grammar_to_text(g) == "T ::= f(Any,Integer)"

    def test_shared_nonterminal_named(self):
        ab = g_union(g_atom("a"), g_atom("b"))
        g = g_functor("f", [ab, ab])
        text = grammar_to_text(g)
        assert "f(T1,T1)" in text
        assert "T1 ::= a | b" in text

    def test_numbering_stable_above_ten(self):
        # many distinct child types: T10 must sort after T2
        children = [g_union(g_atom("a%d" % i), g_atom("b%d" % i))
                    for i in range(12)]
        g = g_functor("f", children[:6])
        lines = grammar_rules(g)
        assert lines[0].startswith("T ::=")
        names = [line.split()[0] for line in lines[1:]]
        assert names == sorted(names, key=lambda n: int(n[1:]))


class TestParseRules:
    def test_simple(self):
        g = parse_rules("T ::= a | b")
        assert g_equiv(g, g_union(g_atom("a"), g_atom("b")))

    def test_recursive(self):
        g = parse_rules("T ::= [] | cons(Any,T)")
        assert g_equiv(g, g_list_of(g_any()))

    def test_integer_keyword(self):
        assert g_equiv(parse_rules("T ::= Integer"), g_int())

    def test_int_literal(self):
        assert g_equiv(parse_rules("T ::= 42"), g_int_literal(42))

    def test_negative_literal(self):
        assert g_equiv(parse_rules("T ::= -3"), g_int_literal(-3))

    def test_multiple_nonterminals(self):
        g = parse_rules("""
        T ::= f(T1)
        T1 ::= a
        """)
        assert g_equiv(g, g_functor("f", [g_atom("a")]))

    def test_comments_and_blanks(self):
        g = parse_rules("""
        # the list type
        T ::= [] | cons(Any,T)

        """)
        assert g_equiv(g, g_list_of(g_any()))

    def test_nil_spelling(self):
        assert g_equiv(parse_rules("T ::= nil"), g_atom("[]"))

    def test_roundtrip_complex(self):
        g = parse_rules("""
        T ::= 0 | '+'(T,T1)
        T1 ::= 1 | '*'(T1,T2)
        T2 ::= cst(Any) | par(T) | var(Any)
        """)
        assert g_equiv(parse_rules(grammar_to_text(g)), g)

    def test_bottom_rendering(self):
        assert grammar_rules(g_bottom()) == ["T ::= <empty>"]
