"""Unit tests for the abstract builtin table and its use by the
engine."""

import pytest

from repro import analyze
from repro.domains.leaf import TrivialLeafDomain, TypeLeafDomain
from repro.domains.pattern import PAT_BOTTOM, value_of
from repro.fixpoint.builtins import BUILTINS, is_builtin, tag_value
from repro.typegraph import (g_any, g_equiv, g_int, g_le, g_list_of,
                             parse_rules)


class TestTable:
    def test_core_builtins_present(self):
        for pred in [("is", 2), ("<", 2), ("=..", 2), ("functor", 3),
                     ("true", 0), ("fail", 0), ("!", 0), ("var", 1),
                     ("write", 1), ("\\+", 1)]:
            assert is_builtin(pred), pred

    def test_tag_arity_matches_pred_arity(self):
        for (name, arity), spec in BUILTINS.items():
            assert len(spec.tags) == arity, (name, arity)

    def test_only_fail_like_builtins_fail(self):
        failing = {pred for pred, spec in BUILTINS.items() if spec.fails}
        assert failing == {("fail", 0), ("false", 0), ("halt", 0)}


class TestTagValues:
    def test_type_domain_values(self):
        domain = TypeLeafDomain()
        assert g_equiv(tag_value(domain, "int"), g_int())
        assert g_equiv(tag_value(domain, "list"), g_list_of(g_any()))
        assert g_equiv(tag_value(domain, "codes"), g_list_of(g_int()))
        assert tag_value(domain, "any").is_any()

    def test_ordering_tag(self):
        domain = TypeLeafDomain()
        g = tag_value(domain, "ordering")
        assert g_equiv(g, parse_rules("T ::= < | = | >"))

    def test_trivial_domain_ignores_tags(self):
        domain = TrivialLeafDomain()
        from repro.domains.leaf import TOP
        assert tag_value(domain, "int") is TOP
        assert tag_value(domain, "list") is TOP

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            tag_value(TypeLeafDomain(), "nonsense")


class TestAbstractSemantics:
    def out_type(self, src, query, arg):
        analysis = analyze(src, query)
        out = analysis.output
        assert out is not PAT_BOTTOM
        return value_of(out, out.sv[arg], analysis.domain, {})

    def test_is_produces_integer(self):
        g = self.out_type("p(X, Y) :- X is Y + 1.", ("p", 2), 0)
        assert g_le(g, g_int())

    def test_univ_produces_list(self):
        g = self.out_type("p(X, L) :- X =.. L.", ("p", 2), 1)
        assert g_le(g, g_list_of(g_any()))

    def test_name_produces_codes(self):
        g = self.out_type("p(X, L) :- name(X, L).", ("p", 2), 1)
        assert g_le(g, g_list_of(g_int()))

    def test_length_constrains_both(self):
        analysis = analyze("p(L, N) :- length(L, N).", ("p", 2))
        out = analysis.output
        g0 = value_of(out, out.sv[0], analysis.domain, {})
        g1 = value_of(out, out.sv[1], analysis.domain, {})
        assert g_le(g0, g_list_of(g_any()))
        assert g_le(g1, g_int())

    def test_comparison_is_identity(self):
        g = self.out_type("p(X) :- q(X), X < 3. q(1). q(f(a)).",
                          ("p", 1), 0)
        # identity transfer: the disjunction survives the test
        assert g_equiv(g, parse_rules("T ::= 1 | f(T1)\nT1 ::= a"))

    def test_is_refutes_structures(self):
        # X is bound to a structure, then required to be an integer
        analysis = analyze("p(X) :- X = f(a), X is 1 + 1.", ("p", 1))
        assert analysis.output is PAT_BOTTOM

    def test_compare_order_atoms(self):
        g = self.out_type("p(O) :- compare(O, a, b).", ("p", 1), 0)
        assert g_le(g, parse_rules("T ::= < | = | >"))

    def test_functor_third_argument_int(self):
        g = self.out_type("p(N) :- functor(f(a,b), _, N).", ("p", 1), 0)
        assert g_le(g, g_int())


class TestIsoAdditions:
    """PR 5: common ISO predicates real programs use must not fall
    into the unknown-predicate identity bucket."""

    NEW = [("sort", 2), ("msort", 2), ("keysort", 2),
           ("atom_length", 2), ("number_chars", 2), ("char_code", 2),
           ("succ", 2)]

    def test_present(self):
        for pred in self.NEW:
            assert is_builtin(pred), pred

    def test_no_unknown_predicate_reported(self):
        source = """
        p(L, S, N, Cs, C, M) :-
            msort(L, L1), sort(L1, S), keysort([a-1], _),
            atom_length(foo, N), number_chars(N, Cs),
            char_code(a, C), succ(N, M).
        """
        analysis = analyze(source, ("p", 6))
        assert analysis.result.unknown_predicates == []

    def test_sort_produces_lists(self):
        analysis = analyze("p(L, S) :- sort(L, S).", ("p", 2))
        out = analysis.output
        for arg in (0, 1):
            g = value_of(out, out.sv[arg], analysis.domain, {})
            assert g_le(g, g_list_of(g_any()))

    def test_succ_produces_integers(self):
        analysis = analyze("p(X, Y) :- succ(X, Y).", ("p", 2))
        out = analysis.output
        for arg in (0, 1):
            g = value_of(out, out.sv[arg], analysis.domain, {})
            assert g_le(g, g_int())

    def test_atom_length_second_int(self):
        analysis = analyze("p(N) :- atom_length(abc, N).", ("p", 1))
        out = analysis.output
        g = value_of(out, out.sv[0], analysis.domain, {})
        assert g_le(g, g_int())

    def test_defined_predicate_still_wins(self):
        # gen/succ-style programs *define* succ/2; the abstract table
        # must not shadow user definitions.
        source = """
        succ([], []).
        succ([X|Xs], [s(X)|R]) :- succ(Xs, R).
        p(X, Y) :- succ(X, Y).
        """
        analysis = analyze(source, ("p", 2))
        out = analysis.output
        g = value_of(out, out.sv[0], analysis.domain, {})
        assert g_le(g, g_list_of(g_any()))
