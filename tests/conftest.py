"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.domains.leaf import TrivialLeafDomain, TypeLeafDomain


@pytest.fixture
def type_domain():
    return TypeLeafDomain()


@pytest.fixture
def trivial_domain():
    return TrivialLeafDomain()


APPEND = """
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""

NREVERSE = APPEND + """
nreverse([], []).
nreverse([F|T], Res) :- nreverse(T, Trev), append(Trev, [F], Res).
"""


@pytest.fixture
def append_source():
    return APPEND


@pytest.fixture
def nreverse_source():
    return NREVERSE
