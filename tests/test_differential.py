"""Unit tests for differential re-evaluation: knobs, counters, stale
dependency pruning, and the SCC scheduler."""

import pytest

from repro import analyze
from repro.benchprogs import benchmark
from repro.fixpoint.engine import (AnalysisConfig, Engine,
                                   _env_differential)
from repro.prolog.normalize import normalize_program
from repro.prolog.program import parse_program
from repro.service.serialize import result_fingerprint

NREV = """
nreverse([], []).
nreverse([H|T], R) :- nreverse(T, RT), concatenate(RT, [H], R).
concatenate([], L, L).
concatenate([X|L1], L2, [X|L3]) :- concatenate(L1, L2, L3).
"""


def _engine(source, **config):
    norm = normalize_program(parse_program(source))
    return Engine(norm, config=AnalysisConfig(**config))


# -- knobs -------------------------------------------------------------------

def test_differential_default_on():
    engine = _engine(NREV)
    assert engine.differential is True
    assert engine.scheduler == "lifo"


def test_differential_config_off():
    analysis = analyze(NREV, ("nreverse", 2),
                       config=AnalysisConfig(differential=False))
    assert analysis.stats.clause_iterations_skipped == 0
    assert analysis.stats.callsite_resumptions == 0


def test_env_override_disables(monkeypatch):
    monkeypatch.setenv("REPRO_DIFFERENTIAL", "0")
    assert _env_differential() is False
    engine = _engine(NREV)  # config default says on; env wins
    assert engine.differential is False
    result = engine.analyze(("nreverse", 2))
    assert result.stats.clause_iterations_skipped == 0


def test_env_override_enables(monkeypatch):
    monkeypatch.setenv("REPRO_DIFFERENTIAL", "1")
    engine = _engine(NREV, differential=False)
    assert engine.differential is True


def test_env_unset_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_DIFFERENTIAL", raising=False)
    assert _env_differential() is None


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        _engine(NREV, scheduler="fifo")


# -- counters ----------------------------------------------------------------

def test_skipping_and_resumption_happen():
    analysis = analyze(NREV, ("nreverse", 2))
    stats = analysis.stats
    assert stats.clause_iterations_skipped > 0
    assert stats.callsite_resumptions > 0
    assert stats.scheduler == "lifo"


def test_differential_reduces_clause_work_benchmarks():
    for name in ("QU", "PE"):
        bp = benchmark(name)
        on = analyze(bp.source, bp.query, input_types=bp.input_types)
        off = analyze(bp.source, bp.query, input_types=bp.input_types,
                      config=AnalysisConfig(differential=False))
        assert on.stats.clause_iterations < off.stats.clause_iterations
        assert result_fingerprint(on.result) == \
            result_fingerprint(off.result)


# -- stale dependency pruning -------------------------------------------------

# Forces input-pattern widening on q/1 (max_input_patterns below the
# number of distinct call patterns), so early q-entries are superseded
# by a general entry and the call sites re-resolve.
MANY_PATTERNS = """
q(a). q(b). q(c). q(d). q(e).
top(X) :- q(a), q(b), q(c), q(d), q(e), q(X).
"""


def test_callsite_rebinding_prunes_stale_edges():
    norm = normalize_program(parse_program(MANY_PATTERNS))
    engine = Engine(norm, config=AnalysisConfig(max_input_patterns=2))
    result = engine.analyze(("top", 1))
    assert result.stats.input_widenings > 0
    top_ids = {e.id for e in result.entries if e.pred == ("top", 1)}
    for entry in result.entries:
        if entry.pred != ("q", 1):
            continue
        # an entry only keeps a caller in `dependents` while some call
        # site still resolves to it
        callsite_callers = {caller for caller, _, _ in
                            engine._callsite_deps.get(entry.id, ())}
        assert entry.dependents & top_ids <= callsite_callers


def test_widened_run_matches_full_mode():
    config = AnalysisConfig(max_input_patterns=2)
    on = analyze(MANY_PATTERNS, ("top", 1), config=config)
    off = analyze(MANY_PATTERNS, ("top", 1),
                  config=AnalysisConfig(max_input_patterns=2,
                                        differential=False))
    assert result_fingerprint(on.result) == result_fingerprint(off.result)


# -- self-edges ---------------------------------------------------------------

SELF = """
loop([]).
loop([_|T]) :- loop(T).
"""


def test_self_recursion_converges_and_matches():
    on = analyze(SELF, ("loop", 1))
    off = analyze(SELF, ("loop", 1),
                  config=AnalysisConfig(differential=False))
    assert result_fingerprint(on.result) == result_fingerprint(off.result)
    # the differential engine never schedules more work than full mode
    assert on.stats.procedure_iterations <= off.stats.procedure_iterations


# -- SCC scheduler ------------------------------------------------------------

def test_scc_scheduler_runs_and_reports():
    bp = benchmark("QU")
    scc = analyze(bp.source, bp.query, input_types=bp.input_types,
                  config=AnalysisConfig(scheduler="scc"))
    lifo = analyze(bp.source, bp.query, input_types=bp.input_types)
    assert scc.stats.scheduler == "scc"
    # driving callee SCCs to a local fixpoint first saves caller
    # iterations on the benchmark programs
    assert scc.stats.procedure_iterations <= lifo.stats.procedure_iterations
    assert scc.result.output is not None


def test_scc_differential_invariant():
    bp = benchmark("PE")
    on = analyze(bp.source, bp.query, input_types=bp.input_types,
                 config=AnalysisConfig(scheduler="scc"))
    off = analyze(bp.source, bp.query, input_types=bp.input_types,
                  config=AnalysisConfig(scheduler="scc",
                                        differential=False))
    assert result_fingerprint(on.result) == result_fingerprint(off.result)
