"""Unit tests for the fixpoint engine."""

import pytest

from repro.domains import display_subst
from repro.domains.pattern import PAT_BOTTOM
from repro.fixpoint import AnalysisConfig, Engine
from repro.prolog import normalize_program, parse_program
from repro.typegraph import g_atom, g_equiv, g_int, g_le, g_list_of, g_union
from repro.domains.pattern import value_of


def run(src, pred, **config):
    norm = normalize_program(parse_program(src))
    engine = Engine(norm, config=AnalysisConfig(**config))
    return engine.analyze(pred), engine


def out_grammar(result, engine, arg):
    subst = result.output
    assert subst is not PAT_BOTTOM
    return value_of(subst, subst.sv[arg], engine.domain, {})


class TestFacts:
    def test_single_fact(self):
        result, engine = run("p(a).", ("p", 1))
        assert g_equiv(out_grammar(result, engine, 0), g_atom("a"))

    def test_multiple_facts_disjunction(self):
        result, engine = run("p(a). p(b).", ("p", 1))
        assert g_equiv(out_grammar(result, engine, 0),
                       g_union(g_atom("a"), g_atom("b")))

    def test_integer_fact(self):
        result, engine = run("p(3).", ("p", 1))
        g = out_grammar(result, engine, 0)
        assert g_le(g, g_int())

    def test_structure_fact(self):
        result, engine = run("p(f(a, 1)).", ("p", 1))
        node = result.output.nodes[result.output.sv[0]]
        assert node.name == "f"

    def test_no_clauses_means_failure(self):
        result, engine = run("p(a). q(b).", ("p", 1))
        # r/1 undefined: analyzing it is a KeyError
        norm = normalize_program(parse_program("p(a)."))
        with pytest.raises(KeyError):
            Engine(norm).analyze(("missing", 1))


class TestBodies:
    def test_chained_calls(self):
        result, engine = run("p(X) :- q(X). q(a).", ("p", 1))
        assert g_equiv(out_grammar(result, engine, 0), g_atom("a"))

    def test_failure_propagates(self):
        result, engine = run("p(X) :- q(X), r(X). q(a). r(b).", ("p", 1))
        assert result.output is PAT_BOTTOM

    def test_builtin_is_types_result(self):
        result, engine = run("p(X) :- X is 1 + 2.", ("p", 1))
        assert g_le(out_grammar(result, engine, 0), g_int())

    def test_builtin_fail(self):
        result, engine = run("p(X) :- fail.", ("p", 1))
        assert result.output is PAT_BOTTOM

    def test_cut_is_noop(self):
        result, engine = run("p(a) :- !.", ("p", 1))
        assert g_equiv(out_grammar(result, engine, 0), g_atom("a"))

    def test_unknown_predicate_identity(self):
        result, engine = run("p(X) :- mystery(X).", ("p", 1))
        assert ("mystery", 1) in result.unknown_predicates
        assert result.output is not PAT_BOTTOM

    def test_disjunction_branches_joined(self):
        result, engine = run("p(X) :- (X = a ; X = b).", ("p", 1))
        assert g_equiv(out_grammar(result, engine, 0),
                       g_union(g_atom("a"), g_atom("b")))


class TestRecursion:
    def test_append_list_type(self, append_source):
        from repro.typegraph import g_any
        result, engine = run(append_source, ("append", 3))
        assert g_equiv(out_grammar(result, engine, 0), g_list_of(g_any()))

    def test_mutual_recursion(self):
        src = """
        even(0).
        even(s(X)) :- odd(X).
        odd(s(X)) :- even(X).
        """
        result, engine = run(src, ("even", 1))
        g = out_grammar(result, engine, 0)
        from repro.typegraph import parse_rules
        assert g_le(g, parse_rules("T ::= 0 | s(T)"))
        assert not g.is_bottom()

    def test_infinite_failure_is_bottom(self):
        # p has no base case: no success set
        result, engine = run("p(X) :- p(X).", ("p", 1))
        assert result.output is PAT_BOTTOM


class TestPolyvariance:
    SRC = """
    p(X, Y) :- q(X, Y).
    p(X, Y) :- q(Y, X).
    q(a, b).
    """

    def test_entries_per_input_pattern(self):
        result, engine = run(self.SRC, ("p", 2))
        assert len(result.entries_for(("q", 2))) >= 1

    def test_collapsed_view(self):
        result, engine = run(self.SRC, ("p", 2))
        collapsed = result.collapsed_for(("p", 2))
        assert collapsed is not None
        beta_in, beta_out = collapsed
        assert beta_out is not PAT_BOTTOM

    def test_input_cap_respected_via_general_entry(self):
        src = """
        walk([], Acc, Acc).
        walk([X|Xs], Acc, R) :- walk(Xs, f(X, Acc), R).
        go(L, R) :- walk(L, start, R).
        """
        result, engine = run(src, ("go", 2), max_input_patterns=3)
        # the accumulator forces input widening; analysis terminates and
        # the result is a recursive accumulator type, not Any
        g = out_grammar(result, engine, 1)
        assert not g.is_any()
        from repro.typegraph import parse_rules
        assert g_le(g, parse_rules("T ::= start | f(Any,T)"))

    def test_tuples_listing(self):
        result, engine = run(self.SRC, ("p", 2))
        tuples = result.tuples()
        assert tuples[0][1] == ("p", 2)
        assert all(len(t) == 3 for t in tuples)


class TestStatistics:
    def test_iterations_counted(self, nreverse_source):
        result, engine = run(nreverse_source, ("nreverse", 2))
        assert result.stats.procedure_iterations > 0
        assert result.stats.clause_iterations >= \
            result.stats.procedure_iterations

    def test_cpu_time_recorded(self, nreverse_source):
        result, engine = run(nreverse_source, ("nreverse", 2))
        assert result.stats.cpu_time >= 0.0

    def test_budget_exceeded_raises(self):
        from repro.fixpoint import AnalysisBudgetExceeded
        src = "p([], []). p([X|Xs], [f(X)|Ys]) :- p(Xs, Ys)."
        norm = normalize_program(parse_program(src))
        engine = Engine(norm, config=AnalysisConfig(
            max_procedure_iterations=1))
        with pytest.raises(AnalysisBudgetExceeded):
            engine.analyze(("p", 2))


class TestOrWidthRestriction:
    def test_capped_analysis_is_coarser_but_sound(self):
        src = "p(a). p(b). p(c). p(d)."
        r_full, e_full = run(src, ("p", 1))
        r_cap, e_cap = run(src, ("p", 1), max_or_width=2)
        g_full = out_grammar(r_full, e_full, 0)
        g_cap = out_grammar(r_cap, e_cap, 0)
        assert g_le(g_full, g_cap)
        assert g_cap.is_any()
