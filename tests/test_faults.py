"""Tests for deterministic fault injection (``repro.service.faults``).

Three layers:

* **plan algebra** — spec parsing/validation, per-rule RNG stream
  independence, and bit-identical replay of the same seeded plan;
* **transport hooks** — an embedded :class:`AnalysisServer` under a
  :class:`FaultPlan`: refused accepts, dropped connections, truncated
  response lines (which clients must surface as transport failures,
  never as data), and injected read delays;
* **crash-process** — a real ``repro serve --faults`` subprocess
  SIGKILLed at request N, the failure shape supervision recovers from.
"""

import asyncio
import json
import time

import pytest

from repro.service.faults import (FAULTS_ENV, FaultPlan, FaultRule,
                                  FaultSpecError, faults_from_env,
                                  parse_fault_spec)
from repro.service.server import AnalysisServer


# -- plan algebra ------------------------------------------------------------

def drive(plan, requests=50):
    """The (request, response) firing trace of a plan over a clean
    request/response sequence."""
    trace = []
    for _ in range(requests):
        trace.append((tuple(plan.on_request()), plan.on_response()))
    return trace


def test_same_seed_same_trace():
    spec = {"seed": 11, "faults": [
        {"kind": "drop-connection", "p": 0.2},
        {"kind": "delay-write", "p": 0.3, "delay": 0.5},
    ]}
    first = drive(FaultPlan.from_obj(spec))
    second = drive(FaultPlan.from_obj(spec))
    assert first == second
    assert any(actions for actions, _ in first)  # it does fire


def test_different_seeds_differ():
    rules = [{"kind": "drop-connection", "p": 0.2}]
    a = drive(FaultPlan.from_obj({"seed": 1, "faults": rules}))
    b = drive(FaultPlan.from_obj({"seed": 2, "faults": rules}))
    assert a != b


def test_rules_are_independent_streams():
    """Adding a rule never shifts another rule's decisions — each rule
    draws from Random(seed/index/kind), not a shared stream."""
    alone = FaultPlan.from_obj({"seed": 5, "faults": [
        {"kind": "drop-connection", "p": 0.25}]})
    paired = FaultPlan.from_obj({"seed": 5, "faults": [
        {"kind": "drop-connection", "p": 0.25},
        {"kind": "delay-read", "p": 0.5, "delay": 0.01}]})
    drops_alone = [("drop-connection", 0.01) in
                   [(k, 0.01) for k, _ in alone.on_request()]
                   for _ in range(80)]
    drops_paired = [any(k == "drop-connection"
                        for k, _ in paired.on_request())
                    for _ in range(80)]
    assert [bool(x) for x in drops_alone] == drops_paired


def test_at_request_fires_exactly_once():
    plan = FaultPlan.from_obj([{"kind": "drop-connection", "at": 3}])
    fired = [bool(plan.on_request()) for _ in range(6)]
    assert fired == [False, False, True, False, False, False]
    assert plan.injected == {"drop-connection": 1}


def test_after_suppresses_early_events():
    plan = FaultPlan.from_obj({"seed": 0, "faults": [
        {"kind": "drop-connection", "p": 1.0, "after": 4}]})
    fired = [bool(plan.on_request()) for _ in range(6)]
    assert fired == [False, False, False, False, True, True]


def test_spec_validation_errors():
    with pytest.raises(FaultSpecError):
        FaultRule("no-such-kind")
    with pytest.raises(FaultSpecError):
        FaultRule("delay-read", probability=1.5)
    with pytest.raises(FaultSpecError):
        FaultRule("delay-read", delay=-1)
    with pytest.raises(FaultSpecError):
        FaultRule("crash-process", at_request=0)
    with pytest.raises(FaultSpecError):
        FaultRule.from_obj({"kind": "delay-read", "bogus": 1})
    with pytest.raises(FaultSpecError):
        FaultPlan.from_obj({"faults": []})
    with pytest.raises(FaultSpecError):
        parse_fault_spec("{not json")
    with pytest.raises(FaultSpecError):
        parse_fault_spec("@/no/such/file.json")


def test_spec_roundtrip_and_file_and_env(tmp_path, monkeypatch):
    spec = {"seed": 9, "faults": [
        {"kind": "refuse-accept", "p": 0.1},
        {"kind": "crash-process", "at": 7},
    ]}
    plan = parse_fault_spec(json.dumps(spec))
    assert plan.to_obj() == spec
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(spec))
    assert parse_fault_spec("@%s" % path).to_obj() == spec
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    assert faults_from_env() is None
    monkeypatch.setenv(FAULTS_ENV, json.dumps(spec))
    assert faults_from_env().to_obj() == spec


# -- transport hooks ---------------------------------------------------------

def run_faulty_server(scenario, faults):
    async def main():
        server = AnalysisServer(port=0, faults=faults)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.drain_and_close()

    return asyncio.run(main())


async def raw_round_trip(port, request):
    """One connection, one request; the raw response bytes (possibly
    empty on hangup, possibly a torn half-line).  A reset counts as a
    hangup too: refusing before reading leaves the request unread in
    the socket buffer, which close() turns into RST."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        # readline covers all three shapes: b"" on hangup, a partial
        # line (no trailing newline) on truncation, a full line else.
        return await reader.readline()
    except (ConnectionResetError, BrokenPipeError):
        return b""
    finally:
        writer.close()


def test_refuse_accept_closes_before_reading():
    plan = FaultPlan.from_obj([{"kind": "refuse-accept", "at": 1}])

    async def scenario(server):
        first = await raw_round_trip(server.port,
                                     {"id": 1, "op": "ping"})
        second = await raw_round_trip(server.port,
                                      {"id": 2, "op": "ping"})
        return first, second

    first, second = run_faulty_server(scenario, plan)
    assert first == b""                      # hung up, nothing served
    assert json.loads(second)["ok"]          # next connection is clean
    assert plan.injected == {"refuse-accept": 1}


def test_drop_connection_answers_nothing():
    plan = FaultPlan.from_obj([{"kind": "drop-connection", "at": 1}])

    async def scenario(server):
        dropped = await raw_round_trip(server.port,
                                       {"id": 1, "op": "ping"})
        ok = await raw_round_trip(server.port, {"id": 2, "op": "ping"})
        return dropped, ok

    dropped, ok = run_faulty_server(scenario, plan)
    assert dropped == b""
    assert json.loads(ok)["ok"]
    assert plan.requests_seen == 2
    assert plan.injected == {"drop-connection": 1}


def test_truncate_line_is_a_torn_write_not_data():
    plan = FaultPlan.from_obj([{"kind": "truncate-line", "at": 1}])

    async def scenario(server):
        torn = await raw_round_trip(server.port, {"id": 1, "op": "ping"})
        clean = await raw_round_trip(server.port, {"id": 2, "op": "ping"})
        return torn, clean

    torn, clean = run_faulty_server(scenario, plan)
    assert torn and not torn.endswith(b"\n")  # half a line, then EOF
    assert json.loads(clean)["ok"]


def test_blocking_client_rejects_torn_response():
    """BlockingLineConnection must surface a truncated response as a
    transport failure (retryable), never hand garbage to json."""
    from repro.service.client import ServeClient, ServeError
    plan = FaultPlan.from_obj([{"kind": "truncate-line", "at": 1}])

    async def scenario(server):
        loop = asyncio.get_running_loop()

        def blocking():
            client = ServeClient("127.0.0.1", server.port)
            try:
                client.ping()
            except ServeError as error:
                return error.code, str(error)
            finally:
                client.close()
            return None, None

        return await loop.run_in_executor(None, blocking)

    code, message = run_faulty_server(scenario, plan)
    assert code == "connection"
    assert "mid-response" in message


def test_delay_read_stalls_the_request():
    plan = FaultPlan.from_obj([{"kind": "delay-read", "at": 1,
                                "delay": 0.25}])

    async def scenario(server):
        start = time.perf_counter()
        response = await raw_round_trip(server.port,
                                        {"id": 1, "op": "ping"})
        return time.perf_counter() - start, response

    elapsed, response = run_faulty_server(scenario, plan)
    assert elapsed >= 0.25
    assert json.loads(response)["ok"]


def test_server_stats_reports_the_active_plan():
    plan = FaultPlan.from_obj({"seed": 4, "faults": [
        {"kind": "delay-write", "p": 0.0}]})

    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        writer.write(b'{"id": 1, "op": "stats"}\n')
        await writer.drain()
        response = json.loads(await reader.readline())
        writer.close()
        return response

    response = run_faulty_server(scenario, plan)
    faults = response["result"]["faults"]
    assert faults["seed"] == 4
    assert faults["rules"] == [{"kind": "delay-write", "p": 0.0,
                                "delay": 0.01}]
    assert faults["requests_seen"] >= 1


# -- crash-process against a real subprocess ---------------------------------

def test_crash_process_sigkills_at_request_n():
    from repro.service.client import ServeClient, ServeError, spawn_server
    process, host, port = spawn_server(
        "--faults", '{"faults": [{"kind": "crash-process", "at": 2}]}')
    try:
        with ServeClient(host, port) as client:
            assert client.ping()["pong"]          # request 1 survives
            with pytest.raises(ServeError):
                client.ping()                     # request 2 dies hard
        assert process.wait(timeout=10) == -9     # SIGKILL, no cleanup
    finally:
        if process.poll() is None:
            process.kill()
