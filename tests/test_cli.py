"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_benchmark_mode(capsys):
    assert main(["--benchmark", "QU"]) == 0
    out = capsys.readouterr().out
    assert "queens/2:" in out
    assert "procedure iterations" in out


def test_file_mode(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("""
        app([], X, X).
        app([F|T], S, [F|R]) :- app(T, S, R).
    """)
    assert main([str(source), "app/3"]) == 0
    out = capsys.readouterr().out
    assert "app/3:" in out
    assert "cons(Any,T)" in out


def test_input_types_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("id(X, X).")
    assert main([str(source), "id/2", "--input", "list,any"]) == 0
    out = capsys.readouterr().out
    assert "cons" in out


def test_tags_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("p([]).")
    assert main([str(source), "p/1", "--tags"]) == 0
    out = capsys.readouterr().out
    assert "output tags" in out
    assert "NI" in out


def test_baseline_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("p([]).")
    assert main([str(source), "p/1", "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out


def test_or_width_flag(capsys):
    assert main(["--benchmark", "PG", "--or-width", "2"]) == 0


def test_all_predicates_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("p(X) :- q(X). q(a).")
    assert main([str(source), "p/1", "--all-predicates"]) == 0
    out = capsys.readouterr().out
    assert "q/1:" in out


def test_bad_query_format(tmp_path):
    source = tmp_path / "prog.pl"
    source.write_text("p(a).")
    with pytest.raises(SystemExit):
        main([str(source), "noarity"])


def test_missing_arguments():
    with pytest.raises(SystemExit):
        main([])
