"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_benchmark_mode(capsys):
    assert main(["--benchmark", "QU"]) == 0
    out = capsys.readouterr().out
    assert "queens/2:" in out
    assert "procedure iterations" in out


def test_file_mode(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("""
        app([], X, X).
        app([F|T], S, [F|R]) :- app(T, S, R).
    """)
    assert main([str(source), "app/3"]) == 0
    out = capsys.readouterr().out
    assert "app/3:" in out
    assert "cons(Any,T)" in out


def test_input_types_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("id(X, X).")
    assert main([str(source), "id/2", "--input", "list,any"]) == 0
    out = capsys.readouterr().out
    assert "cons" in out


def test_tags_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("p([]).")
    assert main([str(source), "p/1", "--tags"]) == 0
    out = capsys.readouterr().out
    assert "output tags" in out
    assert "NI" in out


def test_baseline_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("p([]).")
    assert main([str(source), "p/1", "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out


def test_or_width_flag(capsys):
    assert main(["--benchmark", "PG", "--or-width", "2"]) == 0


def test_all_predicates_flag(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    source.write_text("p(X) :- q(X). q(a).")
    assert main([str(source), "p/1", "--all-predicates"]) == 0
    out = capsys.readouterr().out
    assert "q/1:" in out


def test_bad_query_format(tmp_path):
    source = tmp_path / "prog.pl"
    source.write_text("p(a).")
    with pytest.raises(SystemExit):
        main([str(source), "noarity"])


def test_missing_arguments():
    with pytest.raises(SystemExit):
        main([])


def test_non_integer_arity_is_clean_error(tmp_path):
    # regression: this used to escape as a raw ValueError traceback
    source = tmp_path / "prog.pl"
    source.write_text("p(a).")
    with pytest.raises(SystemExit) as exc_info:
        main([str(source), "foo/bar"])
    assert "arity must be an integer" in str(exc_info.value)


def test_negative_arity_is_clean_error(tmp_path):
    source = tmp_path / "prog.pl"
    source.write_text("p(a).")
    with pytest.raises(SystemExit) as exc_info:
        main([str(source), "foo/-1"])
    assert "arity" in str(exc_info.value)


def test_input_length_mismatch_is_clean_error(tmp_path):
    source = tmp_path / "prog.pl"
    source.write_text("p(a).")
    with pytest.raises(SystemExit) as exc_info:
        main([str(source), "p/1", "--input", "list,any"])
    message = str(exc_info.value)
    assert "2 type(s)" in message and "p/1" in message


def test_profile_input_length_mismatch_is_clean_error(tmp_path):
    from repro.__main__ import profile_main
    source = tmp_path / "prog.pl"
    source.write_text("p(a).")
    with pytest.raises(SystemExit) as exc_info:
        profile_main([str(source), "p/1", "--input", "list,any"])
    assert "2 type(s)" in str(exc_info.value)


def test_disjunction_fallback_warning(tmp_path, capsys):
    source = tmp_path / "prog.pl"
    disj = " , ".join("(X%d = a ; X%d = b)" % (i, i) for i in range(8))
    head = ", ".join("X%d" % i for i in range(8))
    source.write_text("p(%s) :- %s.\n" % (head, disj))
    assert main([str(source), "p/8"]) == 0
    out = capsys.readouterr().out
    assert "oversized disjunction" in out
