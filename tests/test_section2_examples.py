"""The paper's §2 examples, asserted against the published grammars.

These are the headline correctness results of the reproduction: each
program from §2 is analyzed with the paper's input pattern and the
inferred grammar is compared with the printed one.  Where marked, our
result is *strictly more precise* than the published grammar (asserted
as sound inclusion plus non-collapse).
"""

import pytest

from repro import analyze
from repro.domains.pattern import PAT_BOTTOM, value_of
from repro.typegraph import g_equiv, g_le, parse_rules

NREVERSE = """
nreverse([], []).
nreverse([F|T], Res) :- nreverse(T, Trev), append(Trev, [F], Res).
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""

PROCESS = """
process(X,Y) :- process(X,0,Y).
process([],X,X).
process([c(X1)|Y],Acc,X) :- process(Y,c(X1,Acc),X).
process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
"""

PROCESS_MUTUAL = """
process(X,Y) :- process(X,0,Y).
process([],X,X).
process([c(X1)|Y],Acc,X) :- other_process(Y,c(X1,Acc),X).
other_process([d(X1)|Y],Acc,X) :- process(Y,d(X1,Acc),X).
"""

FIGURE1 = """
llist([]).
llist([F|T]) :- list(F), llist(T).
list([]).
list([F|T]) :- p(F), list(T).
p(a). p(b).
reverse(X,Y) :- reverse(X,[],Y).
reverse([],X,X).
reverse([F|T],Acc,Res) :- reverse(T,[F|Acc],Res).
get(Res) :- llist(X), reverse(X,Res).
"""

FIGURE2 = """
add(0,[]).
add(X + Y,Res) :- add(X,Res1), mult(Y,Res2), append(Res1,Res2,Res).
mult(1,[]).
mult(X * Y,Res) :- mult(X,Res1), basic(Y,Res2), append(Res1,Res2,Res).
basic(var(X),[X]).
basic(cst(C),[]).
basic(par(X),Res) :- add(X,Res).
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""

FIGURE3 = """
add(X,Res) :- mult(X,Res).
add(X + Y,Res) :- add(X,R1), mult(Y,R2), append(R1,R2,Res).
mult(X,Res) :- basic(X,Res).
mult(X * Y,Res) :- mult(X,R1), basic(Y,R2), append(R1,R2,Res).
basic(var(X),[X]).
basic(cst(X),[]).
basic(par(X),Res) :- add(X,Res).
append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""

GEN_SUCC = """
succ([], []).
succ([X|Xs],[s(X)|R]) :- succ(Xs,R).
gen([]).
gen([0|L]) :- gen(X), succ(X,L).
"""

QSORT = """
qsort(X1, X2) :- qsort(X1, X2, []).
qsort([], L, L).
qsort([F|T], O, A) :-
    partition(T, F, Small, Big),
    qsort(Small, O, [F|Ot]),
    qsort(Big, Ot, A).
partition([], _, [], []).
partition([X|Xs], F, [X|S], B) :- X =< F, partition(Xs, F, S, B).
partition([X|Xs], F, S, [X|B]) :- X > F, partition(Xs, F, S, B).
"""


def arg_grammar(source, query, arg):
    analysis = analyze(source, query)
    out = analysis.output
    assert out is not PAT_BOTTOM
    return value_of(out, out.sv[arg], analysis.domain, {})


class TestNReverse:
    """§2: nreverse(Any,Any) -> nreverse(T,T), T ::= [] | cons(Any,T)."""

    def test_both_arguments_are_lists(self):
        expected = parse_rules("T ::= [] | cons(Any,T)")
        for arg in (0, 1):
            assert g_equiv(arg_grammar(NREVERSE, ("nreverse", 2), arg),
                           expected)

    def test_append_first_argument_is_a_list(self):
        analysis = analyze(NREVERSE, ("nreverse", 2))
        collapsed = analysis.result.collapsed_for(("append", 3))
        beta_in, _ = collapsed
        g = value_of(beta_in, beta_in.sv[0], analysis.domain, {})
        assert g_le(g, parse_rules("T ::= [] | cons(Any,T)"))


class TestProcessAccumulator:
    """§2: the accumulator program."""

    def test_first_argument(self):
        expected = parse_rules("""
        T ::= [] | cons(T1,T)
        T1 ::= c(Any) | d(Any)
        """)
        assert g_equiv(arg_grammar(PROCESS, ("process", 2), 0), expected)

    def test_second_argument_accumulator(self):
        expected = parse_rules("S ::= 0 | c(Any,S) | d(Any,S)")
        assert g_equiv(arg_grammar(PROCESS, ("process", 2), 1), expected)


class TestProcessMutual:
    """§2: the mutually recursive variant with alternating c/d."""

    def test_first_argument_alternation(self):
        expected = parse_rules("""
        T ::= [] | cons(T1,T2)
        T1 ::= c(Any)
        T2 ::= cons(T3,T)
        T3 ::= d(Any)
        """)
        assert g_equiv(arg_grammar(PROCESS_MUTUAL, ("process", 2), 0),
                       expected)

    def test_second_argument_alternation(self):
        expected = parse_rules("""
        S ::= 0 | d(Any,S1)
        S1 ::= c(Any,S)
        """)
        assert g_equiv(arg_grammar(PROCESS_MUTUAL, ("process", 2), 1),
                       expected)


class TestFigure1NestedLists:
    """Figure 1: nested lists through reverse's accumulator."""

    def test_nested_list_type(self):
        expected = parse_rules("""
        T ::= [] | cons(T1,T)
        T1 ::= [] | cons(T2,T1)
        T2 ::= a | b
        """)
        assert g_equiv(arg_grammar(FIGURE1, ("get", 1), 0), expected)


class TestFigure2Arithmetic:
    """Figure 2: mutually recursive grammar rules (T2 references T)."""

    def test_expression_type(self):
        expected = parse_rules("""
        T ::= '+'(T,T1) | 0
        T1 ::= '*'(T1,T2) | 1
        T2 ::= cst(Any) | par(T) | var(Any)
        """)
        assert g_equiv(arg_grammar(FIGURE2, ("add", 2), 0), expected)

    def test_result_is_a_list(self):
        expected = parse_rules("S ::= [] | cons(Any,S)")
        assert g_equiv(arg_grammar(FIGURE2, ("add", 2), 1), expected)


class TestFigure3AR1:
    """Figure 3: the case needing postponed widening (T/T1/T2 must not
    be mixed)."""

    def test_optimal_layered_type(self):
        expected = parse_rules("""
        T ::= cst(Any) | var(Any) | par(T) | '*'(T1,T2) | '+'(T,T1)
        T1 ::= cst(Any) | var(Any) | par(T) | '*'(T1,T2)
        T2 ::= cst(Any) | var(Any) | par(T)
        """)
        assert g_equiv(arg_grammar(FIGURE3, ("add", 2), 0), expected)

    def test_result_is_a_list(self):
        expected = parse_rules("S ::= [] | cons(Any,S)")
        assert g_equiv(arg_grammar(FIGURE3, ("add", 2), 1), expected)


class TestGenSucc:
    """§2: both recursive structures inferred simultaneously.  Our
    result is strictly more precise than the published grammar."""

    PAPER = """
    T ::= [] | cons(T1,T)
    T1 ::= 0 | s(T1)
    """

    def test_sound_wrt_paper(self):
        got = arg_grammar(GEN_SUCC, ("gen", 1), 0)
        assert g_le(got, parse_rules(self.PAPER))
        assert not got.is_bottom()

    def test_not_collapsed(self):
        got = arg_grammar(GEN_SUCC, ("gen", 1), 0)
        assert not got.is_any()

    def test_strictly_more_precise_head_element(self):
        # the first element is exactly 0 in every success
        got = arg_grammar(GEN_SUCC, ("gen", 1), 0)
        from repro.typegraph import g_split
        pieces = g_split(got, ".", 2)
        assert pieces is not None
        head = pieces[0]
        assert g_equiv(head, parse_rules("T ::= 0"))


class TestQsortWeakness:
    """§2 end: the documented difference-list imprecision."""

    def test_first_argument_is_a_list(self):
        expected = parse_rules("T ::= [] | cons(Any,T)")
        assert g_equiv(arg_grammar(QSORT, ("qsort", 2), 0), expected)

    def test_second_argument_loses_tail(self):
        # paper: T ::= [] | cons(Any,Any) — Ot is unbound at the call
        expected = parse_rules("T ::= [] | cons(Any,Any)")
        assert g_equiv(arg_grammar(QSORT, ("qsort", 2), 1), expected)

    def test_swapped_calls_recover_list(self):
        swapped = QSORT.replace(
            """qsort(Small, O, [F|Ot]),
    qsort(Big, Ot, A).""",
            """qsort(Big, Ot, A),
    qsort(Small, O, [F|Ot]).""")
        expected = parse_rules("T ::= [] | cons(Any,T)")
        assert g_equiv(arg_grammar(swapped, ("qsort", 2), 1), expected)
