"""Unit tests for the automata and monadic-program views (§6.7–6.8)."""

import pytest

from repro.prolog import parse_term
from repro.prolog.interpreter import SolveLimits, Solver
from repro.prolog.terms import Struct
from repro.typegraph import (g_any, g_atom, g_int, g_list_of, g_union,
                             member, parse_rules)
from repro.typegraph.views import (monadic_text, to_automaton,
                                   to_monadic_program)


class TestAutomaton:
    def test_deterministic(self):
        for g in (g_any(), g_list_of(g_any()),
                  parse_rules("T ::= 0 | s(T)")):
            assert to_automaton(g).is_deterministic()

    def test_accepts_matches_member(self):
        g = parse_rules("T ::= [] | cons(T1,T)\nT1 ::= a | b")
        auto = to_automaton(g)
        for text in ("[]", "[a]", "[a,b,a]", "[c]", "f(a)", "3"):
            term = parse_term(text)
            assert auto.accepts(term) == member(term, g)

    def test_any_state(self):
        auto = to_automaton(g_any())
        assert auto.accepts(parse_term("anything(at, all)"))

    def test_int_state(self):
        auto = to_automaton(g_int())
        assert auto.accepts(parse_term("42"))
        assert not auto.accepts(parse_term("a"))

    def test_state_count_matches_nonterminals(self):
        g = g_list_of(g_atom("x"))
        assert to_automaton(g).num_states == g.num_nonterminals()


class TestMonadicProgram:
    def test_text_contains_entry(self):
        text = monadic_text(g_list_of(g_any()))
        assert "accept(X) :- t0(X)." in text
        assert "any(X)." in text

    def test_program_recognizes_members(self):
        g = parse_rules("T ::= 0 | s(T)")
        program = to_monadic_program(g)
        solver = Solver(program, SolveLimits(max_solutions=1))
        assert list(solver.solve(Struct("accept",
                                        (parse_term("s(s(0))"),))))
        assert not list(solver.solve(Struct("accept",
                                            (parse_term("s(a)"),))))

    def test_integer_rules(self):
        program = to_monadic_program(g_int())
        solver = Solver(program, SolveLimits(max_solutions=1))
        assert list(solver.solve(Struct("accept", (parse_term("7"),))))

    def test_union_type(self):
        g = g_union(g_atom("a"), g_list_of(g_atom("b")))
        program = to_monadic_program(g)
        solver = Solver(program, SolveLimits(max_solutions=1))
        for text, expected in [("a", True), ("[b,b]", True),
                               ("[a]", False), ("c", False)]:
            got = bool(list(solver.solve(
                Struct("accept", (parse_term(text),)))))
            assert got == expected, text

    def test_generated_program_is_monadic(self):
        program = to_monadic_program(g_list_of(g_any()))
        for pred in program.procedures:
            assert pred[1] == 1
