"""Unit tests for call-graph analysis and the Table 1/2 metrics."""

import pytest

from repro.analysis.callgraph import (build_callgraph, classify_procedures,
                                      program_metrics, recursion_summary)
from repro.prolog.program import parse_program


class TestCallGraph:
    def test_edges(self):
        p = parse_program("a :- b, c. b :- c. c.")
        g = build_callgraph(p)
        assert g.callees(("a", 0)) == {("b", 0), ("c", 0)}
        assert g.callees(("c", 0)) == set()

    def test_builtins_not_in_edges(self):
        p = parse_program("a(X) :- X is 1, b(X). b(X).")
        g = build_callgraph(p)
        assert g.callees(("a", 1)) == {("b", 1)}
        # but builtins are counted as goal occurrences
        assert ("is", 2) in g.clause_calls[("a", 1)][0]

    def test_goals_inside_disjunction_counted(self):
        p = parse_program("a :- (b ; c, d).")
        g = build_callgraph(p)
        assert g.callees(("a", 0)) == set()  # b,c,d undefined
        assert len(g.clause_calls[("a", 0)][0]) == 3

    def test_sccs_mutual(self):
        p = parse_program("""
        even(z).
        even(s(X)) :- odd(X).
        odd(s(X)) :- even(X).
        main :- even(s(z)).
        """)
        g = build_callgraph(p)
        assert g.same_scc(("even", 1), ("odd", 1))
        assert not g.same_scc(("main", 0), ("even", 1))

    def test_reachability(self):
        p = parse_program("a :- b. b. c :- d. d.")
        g = build_callgraph(p)
        assert g.reachable_from([("a", 0)]) == {("a", 0), ("b", 0)}


class TestClassification:
    def test_non_recursive(self):
        p = parse_program("a :- b. b.")
        classes = classify_procedures(build_callgraph(p))
        assert classes[("a", 0)] == "non"
        assert classes[("b", 0)] == "non"

    def test_tail_recursive(self):
        p = parse_program("""
        walk([]).
        walk([X|Xs]) :- use(X), walk(Xs).
        use(_).
        """)
        classes = classify_procedures(build_callgraph(p))
        assert classes[("walk", 1)] == "tail"

    def test_locally_recursive_nonterminal_call(self):
        p = parse_program("""
        rev([], []).
        rev([X|Xs], R) :- rev(Xs, R1), last(R1, X, R).
        last(A, B, C).
        """)
        classes = classify_procedures(build_callgraph(p))
        assert classes[("rev", 2)] == "local"

    def test_locally_recursive_two_calls(self):
        p = parse_program("""
        fib(0, 0). fib(1, 1).
        fib(N, F) :- fib(A, B), fib(C, D).
        """)
        classes = classify_procedures(build_callgraph(p))
        assert classes[("fib", 2)] == "local"

    def test_mutually_recursive(self):
        p = parse_program("""
        a(X) :- b(X).
        b(X) :- a(X).
        """)
        classes = classify_procedures(build_callgraph(p))
        assert classes[("a", 1)] == "mutual"
        assert classes[("b", 1)] == "mutual"

    def test_summary_counts(self):
        p = parse_program("""
        t([]). t([X|Xs]) :- t(Xs).
        l(0). l(N) :- l(A), l(B).
        m1 :- m2. m2 :- m1.
        n.
        """)
        summary = recursion_summary(build_callgraph(p))
        assert summary.as_row() == (1, 1, 2, 1)


class TestMetrics:
    def test_queens_matches_paper_exactly(self):
        """Table 1's QU row: 5 procedures, 9 clauses."""
        from repro.benchprogs import benchmark
        p = parse_program(benchmark("QU").source)
        m = program_metrics(p)
        assert m.procedures == 5
        assert m.clauses == 9

    def test_goals_count(self):
        p = parse_program("a :- b, c. b :- write(x). c.")
        m = program_metrics(p)
        assert m.goals == 3

    def test_static_call_tree_removes_recursion(self):
        p = parse_program("""
        main :- walk.
        walk :- step, walk.
        step.
        """)
        m = program_metrics(p, entry_points=[("main", 0)])
        # main->walk and walk->step count; walk->walk does not
        assert m.static_call_tree == 2

    def test_entry_point_restriction(self):
        p = parse_program("""
        main :- a.
        a.
        unreached :- a.
        """)
        all_m = program_metrics(p)
        some_m = program_metrics(p, entry_points=[("main", 0)])
        assert some_m.static_call_tree < all_m.static_call_tree

    def test_benchmark_sizes_have_paper_shape(self):
        """RE/PE/PR are the big ones, QU/PG the small ones (Table 1)."""
        from repro.benchprogs import benchmark
        sizes = {}
        for name in ("QU", "PG", "PE", "PR", "RE"):
            p = parse_program(benchmark(name).source)
            sizes[name] = program_metrics(p).clauses
        assert sizes["QU"] < sizes["PG"] < sizes["RE"]
        assert sizes["QU"] < sizes["PR"]
        assert max(sizes.values()) == max(sizes["PE"], sizes["PR"],
                                          sizes["RE"])
