"""Command-line interface: ``repro FILE QUERY`` (also reachable as
``python -m repro``).

Examples::

    repro program.pl nreverse/2
    repro program.pl 'append/3' --input list,list,any --json
    repro --benchmark QU
    repro program.pl main/1 --baseline --or-width 5 --tags
    repro check annotated.pl main/1
    repro check --benchmark CHK --json
    repro batch --all --cache-dir .repro-cache --workers 4
    repro cache info --cache-dir .repro-cache
    repro cache promote old.pl new.pl --cache-dir .repro-cache
    repro profile --benchmark RE --top 20
    repro serve --port 7871 --cache-dir .repro-cache
    repro router --spawn 4 --cache-dir .repro-cache --replicate 2
    repro router --fleet fleet.json
    repro router --fleet fleet.json --sync-from 10.0.0.1:7870
"""

from __future__ import annotations

import argparse
import json
import sys

from . import AnalysisConfig, analyze
from .analysis import format_table
from .benchprogs import BENCHMARKS, benchmark
from .domains.pattern import PAT_BOTTOM


def _parse_query(text: str):
    name, _, arity = text.rpartition("/")
    if not name or not arity:
        raise SystemExit("query must look like name/arity, got %r" % text)
    try:
        arity_value = int(arity)
    except ValueError:
        raise SystemExit("query arity must be an integer, got %r in %r"
                         % (arity, text)) from None
    if arity_value < 0:
        raise SystemExit("query arity must be >= 0, got %d" % arity_value)
    return (name, arity_value)


def _check_input_arity(input_types, query) -> None:
    """A clean exit when ``--input`` does not match the query arity."""
    if input_types is not None and len(input_types) != query[1]:
        raise SystemExit(
            "error: --input lists %d type(s) but %s/%d takes %d "
            "argument(s)" % (len(input_types), query[0], query[1],
                             query[1]))


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        return check_main(argv[1:])
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service.server import serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "router":
        from .service.cluster import router_main
        return router_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type analysis of Prolog using type graphs "
                    "(Van Hentenryck, Cortesi, Le Charlier, PLDI'94).  "
                    "Subcommands: 'repro batch' analyzes many programs "
                    "through the result cache; 'repro cache' inspects "
                    "and maintains it; 'repro check' verifies "
                    "assert_* directives and blame-slices violations; "
                    "'repro serve' runs the long-lived analysis "
                    "server; 'repro profile' reports per-operation "
                    "statistics.")
    parser.add_argument("file", nargs="?",
                        help="Prolog source file to analyze")
    parser.add_argument("query", nargs="?",
                        help="query predicate as name/arity")
    parser.add_argument("--benchmark", metavar="NAME",
                        help="analyze a built-in benchmark (%s)"
                             % ", ".join(sorted(BENCHMARKS)))
    parser.add_argument("--input", metavar="TYPES",
                        help="comma-separated input types per argument "
                             "(any, list, int, codes)")
    parser.add_argument("--baseline", action="store_true",
                        help="use the principal-functor baseline domain")
    parser.add_argument("--or-width", type=int, default=None,
                        help="or-degree restriction (Table 3's 5 / 2)")
    parser.add_argument("--tags", action="store_true",
                        help="print input/output tags for every "
                             "analyzed predicate")
    parser.add_argument("--all-predicates", action="store_true",
                        help="print grammars for every analyzed "
                             "predicate, not just the query")
    parser.add_argument("--json", action="store_true",
                        help="dump the serialized analysis result as "
                             "JSON instead of the human-readable report")
    args = parser.parse_args(argv)

    if args.benchmark:
        bp = benchmark(args.benchmark)
        source, query, input_types = bp.source, bp.query, bp.input_types
    else:
        if not args.file or not args.query:
            parser.error("either FILE QUERY or --benchmark is required")
        with open(args.file) as handle:
            source = handle.read()
        query = _parse_query(args.query)
        input_types = None
    if args.input:
        input_types = [t.strip() for t in args.input.split(",")]
    _check_input_arity(input_types, query)

    config = AnalysisConfig(max_or_width=args.or_width)
    try:
        analysis = analyze(source, query, input_types=input_types,
                           config=config, baseline=args.baseline)
    except (KeyError, ValueError) as error:
        raise SystemExit("error: %s" % (error.args[0],))

    if args.json:
        from .service import encode_result, program_hash
        print(json.dumps({
            "query": list(query),
            "program_hash": program_hash(analysis.program),
            "wall_time": analysis.wall_time,
            "result": encode_result(analysis.result),
        }, indent=2, sort_keys=True))
        return 0
    if args.baseline:
        print("(principal-functor baseline domain)")
    if analysis.output is PAT_BOTTOM:
        print("%s/%d has no derivable success pattern" % query)
    else:
        print(analysis.grammar_text())
    if args.all_predicates:
        for pred in analysis.analyzed_predicates():
            if pred != query:
                print()
                print(analysis.grammar_text(pred=pred))
    if args.tags:
        print()
        rows = []
        out_tags = analysis.output_tags()
        in_tags = analysis.input_tags()
        for pred in sorted(out_tags):
            rows.append(["%s/%d" % pred,
                         " ".join(t or "-" for t in in_tags.get(pred, [])),
                         " ".join(t or "-" for t in out_tags[pred])])
        print(format_table(["predicate", "input tags", "output tags"],
                           rows))
    print()
    print("time %.2fs, %d procedure iterations, %d clause iterations "
          "(%d skipped, %d resumed), %d entries"
          % (analysis.wall_time, analysis.stats.procedure_iterations,
             analysis.stats.clause_iterations,
             analysis.stats.clause_iterations_skipped,
             analysis.stats.callsite_resumptions,
             analysis.stats.entries_created))
    if analysis.result.unknown_predicates:
        print("warning: unknown predicates treated as identity: %s"
              % ", ".join("%s/%d" % p
                          for p in analysis.result.unknown_predicates))
    if analysis.stats.disjunction_fallbacks:
        print("warning: %d oversized disjunction(s) compiled to "
              "auxiliary predicates" % analysis.stats.disjunction_fallbacks)
    return 0


# -- repro check -------------------------------------------------------------

def check_main(argv) -> int:
    """``repro check``: verify a program's own ``assert_*`` directives
    against the analysis and blame-slice every violation.

    Exit code contract: 0 when no assertion is violated (verified and
    unreachable both pass), 1 when at least one is — so the command
    slots straight into CI.  Other failures (bad arguments, missing or
    unparsable programs, malformed directives) exit 2.
    """
    from .analysis.report import format_check_report
    from .assertions import (AssertionSyntaxError, check_analysis,
                             harvest_assertions)
    from .prolog.parser import ParseError
    from .prolog.program import parse_program
    from .service.serialize import check_fingerprint, encode_check

    def usage_error(message) -> int:
        print("error: %s" % message, file=sys.stderr)
        return 2

    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Check a program's assert_pattern/assert_calls "
                    "directives against the computed type analysis; "
                    "violations are reported with a source-anchored "
                    "blame slice and exit status 1.")
    parser.add_argument("file", nargs="?",
                        help="Prolog source file to check")
    parser.add_argument("query", nargs="?",
                        help="query predicate as name/arity")
    parser.add_argument("--benchmark", metavar="NAME",
                        help="check a built-in benchmark (%s)"
                             % ", ".join(sorted(BENCHMARKS)))
    parser.add_argument("--input", metavar="TYPES",
                        help="comma-separated input types per argument "
                             "(any, list, int, codes)")
    parser.add_argument("--or-width", type=int, default=None)
    parser.add_argument("--baseline", action="store_true",
                        help="check against the principal-functor "
                             "baseline domain")
    parser.add_argument("--no-slices", action="store_true",
                        help="report verdicts only, skip blame slicing")
    parser.add_argument("--json", action="store_true",
                        help="dump verdicts and slices as JSON")
    args = parser.parse_args(argv)

    if args.benchmark:
        bp = benchmark(args.benchmark)
        source, query, input_types = bp.source, bp.query, bp.input_types
        name = bp.name
    else:
        if not args.file or not args.query:
            parser.error("either FILE QUERY or --benchmark is required")
        try:
            with open(args.file) as handle:
                source = handle.read()
        except OSError as error:
            return usage_error(error)
        query = _parse_query(args.query)
        input_types = None
        name = args.file
    if args.input:
        input_types = [t.strip() for t in args.input.split(",")]
    _check_input_arity(input_types, query)

    try:
        assertions = tuple(harvest_assertions(parse_program(source)))
    except AssertionSyntaxError as error:
        return usage_error("bad assertion directive: %s" % error)
    except ParseError as error:
        return usage_error(error)
    except (KeyError, ValueError) as error:
        return usage_error(error.args[0])

    config = AnalysisConfig(max_or_width=args.or_width,
                            keep_deps=True, assertions=assertions)
    try:
        analysis = analyze(source, query, input_types=input_types,
                           config=config, baseline=args.baseline)
        report, slices = check_analysis(
            analysis, assertions, with_slices=not args.no_slices)
    except (KeyError, ValueError) as error:
        return usage_error(error.args[0])

    if args.json:
        check = encode_check(report, slices)
        print(json.dumps({
            "name": name,
            "query": list(query),
            "check": check,
            "check_fingerprint": check_fingerprint(check),
            "passed": report.ok,
        }, indent=2, sort_keys=True))
        return 0 if report.ok else 1
    if not assertions:
        print("%s: no assert_pattern/assert_calls directives declared"
              % name)
        return 0
    print(format_check_report(report, slices, name=name))
    return 0 if report.ok else 1


# -- repro profile -----------------------------------------------------------

def profile_main(argv) -> int:
    """Profile one analysis run and print a per-operation breakdown.

    The point (PR 4): perf work should start from data.  Reports wall
    time, the cProfile hot spots inside ``repro``, per-operation memo
    traffic (hits/misses/hit rate for every opcache table), and arena
    compilation counters.
    """
    import cProfile
    import pstats

    from .typegraph import arena, opcache

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Run one analysis under cProfile and report "
                    "per-operation wall/call/cache statistics.")
    parser.add_argument("file", nargs="?",
                        help="Prolog source file to analyze")
    parser.add_argument("query", nargs="?",
                        help="query predicate as name/arity")
    parser.add_argument("--benchmark", metavar="NAME",
                        help="profile a built-in benchmark (%s)"
                             % ", ".join(sorted(BENCHMARKS)))
    parser.add_argument("--input", metavar="TYPES",
                        help="comma-separated input types per argument")
    parser.add_argument("--or-width", type=int, default=None)
    parser.add_argument("--baseline", action="store_true",
                        help="use the principal-functor baseline domain")
    parser.add_argument("--top", type=int, default=15,
                        help="number of hot functions to list")
    parser.add_argument("--sort", choices=("cumulative", "tottime"),
                        default="tottime",
                        help="profile ordering (default: tottime)")
    args = parser.parse_args(argv)

    if args.benchmark:
        bp = benchmark(args.benchmark)
        source, query, input_types = bp.source, bp.query, bp.input_types
    else:
        if not args.file or not args.query:
            parser.error("either FILE QUERY or --benchmark is required")
        with open(args.file) as handle:
            source = handle.read()
        query = _parse_query(args.query)
        input_types = None
    if args.input:
        input_types = [t.strip() for t in args.input.split(",")]
    _check_input_arity(input_types, query)

    # Fresh counters so the report attributes traffic to this run only
    # (cached *results* are kept — a warm service process profiles as
    # the warm process it is).
    before = {cache.name: (cache.hits, cache.misses)
              for cache in opcache.caches()}
    arena_before = arena.stats()

    config = AnalysisConfig(max_or_width=args.or_width)
    profiler = cProfile.Profile()
    arena.reset_kernel_counters()
    arena.profile_kernels(True)
    profiler.enable()
    try:
        analysis = analyze(source, query, input_types=input_types,
                           config=config, baseline=args.baseline)
    finally:
        profiler.disable()
        arena.profile_kernels(False)

    stats = analysis.stats
    print("wall %.3fs  cpu %.3fs  proc-it %d  clause-it %d "
          "(%d skipped, %d resumed)  entries %d"
          % (analysis.wall_time, stats.cpu_time,
             stats.procedure_iterations, stats.clause_iterations,
             stats.clause_iterations_skipped, stats.callsite_resumptions,
             stats.entries_created))

    print("\n== operation caches (this run) ==")
    rows = []
    for name, table in sorted(opcache.stats().items()):
        old_hits, old_misses = before.get(name, (0, 0))
        hits = table["hits"] - old_hits
        misses = table["misses"] - old_misses
        total = hits + misses
        if not total:
            continue
        rows.append([name, hits, misses,
                     "%.1f%%" % (100.0 * hits / total), table["size"]])
    print(format_table(["op", "hits", "misses", "hit-rate", "entries"],
                       rows))

    arena_now = arena.stats()
    print("\n== arena ==")
    print("enabled=%s  grammar-compiles=%d (+%d this run)  "
          "step-indexes=%d  symbols=%d"
          % (arena.enabled(), arena_now["compiles"],
             arena_now["compiles"] - arena_before["compiles"],
             arena_now["index_builds"], arena_now["symbols"]))

    status = arena.kernel_status()
    print("\n== kernel tier ==")
    line = "active=%s  requested=%s" % (status["active"],
                                        status["requested"] or "auto")
    for tier, reason in sorted(status["fallbacks"].items()):
        line += "  %s-unavailable(%s)" % (tier, reason)
    print(line)
    counters = arena.kernel_counters()
    if counters:
        kernel_rows = [
            [op, cell["calls"], "%.3fs" % cell["seconds"]]
            for op, cell in sorted(counters.items(),
                                   key=lambda kv: -kv[1]["seconds"])]
        print(format_table(["kernel-op", "calls", "time"], kernel_rows))
        print("(native-tier times nest: an op's time includes the "
              "kernel ops it calls)" if status["active"] == "native"
              else "")

    print("\n== hot functions (repro code, by %s) ==" % args.sort)
    profile_stats = pstats.Stats(profiler, stream=sys.stdout)
    profile_stats.sort_stats(args.sort)
    profile_stats.print_stats(r"repro", args.top)
    return 0


# -- repro batch -------------------------------------------------------------

def batch_main(argv) -> int:
    """Analyze many workloads through the result cache."""
    from .benchprogs import benchmark_names
    from .service import Job, ResultCache, jobs_from_benchmarks, run_batch

    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Analyze a batch of workloads, consulting the "
                    "content-addressed result cache before dispatching "
                    "misses (optionally over a process pool).")
    parser.add_argument("names", nargs="*",
                        help="built-in benchmark names (%s)"
                             % ", ".join(sorted(BENCHMARKS)))
    parser.add_argument("--all", action="store_true",
                        help="run the whole built-in corpus")
    parser.add_argument("--file", action="append", default=[],
                        metavar="FILE:QUERY",
                        help="extra job from a Prolog file, e.g. "
                             "prog.pl:main/1 (repeatable)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk cache directory (default: "
                             "in-memory only)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process pool size for cache misses "
                             "(default: serial)")
    parser.add_argument("--or-width", type=int, default=None)
    parser.add_argument("--baseline", action="store_true")
    parser.add_argument("--json", action="store_true",
                        help="dump the report as JSON")
    args = parser.parse_args(argv)

    config = AnalysisConfig(max_or_width=args.or_width)
    names = benchmark_names() if args.all else [n.upper()
                                                for n in args.names]
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        parser.error("unknown benchmarks: %s" % ", ".join(unknown))
    jobs = jobs_from_benchmarks(names, config=config,
                                baseline=args.baseline)
    for spec in args.file:
        path, _, query_text = spec.rpartition(":")
        if not path:
            parser.error("--file wants FILE:QUERY, got %r" % spec)
        with open(path) as handle:
            source = handle.read()
        jobs.append(Job(name=path, source=source,
                        query=_parse_query(query_text), config=config,
                        baseline=args.baseline))
    if not jobs:
        parser.error("nothing to do: give benchmark names, --all, "
                     "or --file")

    cache = ResultCache(args.cache_dir)
    try:
        report = run_batch(jobs, cache, workers=args.workers)
    except (KeyError, ValueError) as error:
        raise SystemExit("error: %s" % (error.args[0],))

    if args.json:
        print(json.dumps({
            "hits": report.hits,
            "misses": report.misses,
            "seconds": report.seconds,
            "jobs": [{"name": r.name, "cached": r.cached,
                      "seconds": r.seconds,
                      "key": r.key.digest,
                      "result": r.payload} for r in report.results],
        }, indent=2, sort_keys=True))
        return 0
    rows = []
    for job_result in report.results:
        stats = job_result.payload["stats"]
        rows.append([job_result.name,
                     "hit" if job_result.cached else "miss",
                     "%.3f" % job_result.seconds,
                     stats["procedure_iterations"],
                     len(job_result.payload["entries"])])
    print(format_table(["job", "cache", "time", "proc-it", "entries"],
                       rows))
    print()
    print("%d jobs: %d cache hits, %d analyzed, %.2fs total"
          % (len(report.results), report.hits, report.misses,
             report.seconds))
    return 0


# -- repro cache -------------------------------------------------------------

def cache_main(argv) -> int:
    """Inspect and maintain the on-disk result cache."""
    from .service import ResultCache, program_hash, promote

    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and maintain the content-addressed "
                    "analysis result cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="count stored entries")
    info.add_argument("--cache-dir", required=True)

    clear = sub.add_parser("clear", help="drop every stored entry")
    clear.add_argument("--cache-dir", required=True)

    prom = sub.add_parser(
        "promote",
        help="carry results of OLD forward to the edited NEW: entries "
             "whose query cone is unchanged are re-keyed, SCC-affected "
             "ones invalidated")
    prom.add_argument("old", help="Prolog source before the edit")
    prom.add_argument("new", help="Prolog source after the edit")
    prom.add_argument("--cache-dir", required=True)

    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)

    if args.command == "info":
        print("%d entries under %s" % (len(cache), args.cache_dir))
        return 0
    if args.command == "clear":
        count = len(cache)
        cache.clear()
        print("cleared %d entries" % count)
        return 0
    assert args.command == "promote"
    with open(args.old) as handle:
        old_source = handle.read()
    with open(args.new) as handle:
        new_source = handle.read()
    report = promote(cache, old_source, new_source)
    print("program %s -> %s" % (report.old_program_hash[:12],
                                report.new_program_hash[:12]))
    if report.dirty:
        print("dirty predicates: %s"
              % ", ".join(sorted("%s/%d" % p for p in report.dirty)))
    print("%d promoted, %d invalidated"
          % (len(report.promoted), len(report.invalidated)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
