"""Command-line interface: ``python -m repro FILE QUERY``.

Examples::

    python -m repro program.pl nreverse/2
    python -m repro program.pl 'append/3' --input list,list,any
    python -m repro --benchmark QU
    python -m repro program.pl main/1 --baseline --or-width 5 --tags
"""

from __future__ import annotations

import argparse
import sys

from . import AnalysisConfig, analyze
from .analysis import format_table
from .benchprogs import BENCHMARKS, benchmark
from .domains.pattern import PAT_BOTTOM


def _parse_query(text: str):
    name, _, arity = text.rpartition("/")
    if not name:
        raise SystemExit("query must look like name/arity, got %r" % text)
    return (name, int(arity))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Type analysis of Prolog using type graphs "
                    "(Van Hentenryck, Cortesi, Le Charlier, PLDI'94).")
    parser.add_argument("file", nargs="?",
                        help="Prolog source file to analyze")
    parser.add_argument("query", nargs="?",
                        help="query predicate as name/arity")
    parser.add_argument("--benchmark", metavar="NAME",
                        help="analyze a built-in benchmark (%s)"
                             % ", ".join(sorted(BENCHMARKS)))
    parser.add_argument("--input", metavar="TYPES",
                        help="comma-separated input types per argument "
                             "(any, list, int, codes)")
    parser.add_argument("--baseline", action="store_true",
                        help="use the principal-functor baseline domain")
    parser.add_argument("--or-width", type=int, default=None,
                        help="or-degree restriction (Table 3's 5 / 2)")
    parser.add_argument("--tags", action="store_true",
                        help="print input/output tags for every "
                             "analyzed predicate")
    parser.add_argument("--all-predicates", action="store_true",
                        help="print grammars for every analyzed "
                             "predicate, not just the query")
    args = parser.parse_args(argv)

    if args.benchmark:
        bp = benchmark(args.benchmark)
        source, query, input_types = bp.source, bp.query, bp.input_types
    else:
        if not args.file or not args.query:
            parser.error("either FILE QUERY or --benchmark is required")
        with open(args.file) as handle:
            source = handle.read()
        query = _parse_query(args.query)
        input_types = None
    if args.input:
        input_types = [t.strip() for t in args.input.split(",")]

    config = AnalysisConfig(max_or_width=args.or_width)
    analysis = analyze(source, query, input_types=input_types,
                       config=config, baseline=args.baseline)

    if args.baseline:
        print("(principal-functor baseline domain)")
    if analysis.output is PAT_BOTTOM:
        print("%s/%d has no derivable success pattern" % query)
    else:
        print(analysis.grammar_text())
    if args.all_predicates:
        for pred in analysis.analyzed_predicates():
            if pred != query:
                print()
                print(analysis.grammar_text(pred=pred))
    if args.tags:
        print()
        rows = []
        out_tags = analysis.output_tags()
        in_tags = analysis.input_tags()
        for pred in sorted(out_tags):
            rows.append(["%s/%d" % pred,
                         " ".join(t or "-" for t in in_tags.get(pred, [])),
                         " ".join(t or "-" for t in out_tags[pred])])
        print(format_table(["predicate", "input tags", "output tags"],
                           rows))
    print()
    print("time %.2fs, %d procedure iterations, %d clause iterations, "
          "%d entries"
          % (analysis.wall_time, analysis.stats.procedure_iterations,
             analysis.stats.clause_iterations,
             analysis.stats.entries_created))
    if analysis.result.unknown_predicates:
        print("warning: unknown predicates treated as identity: %s"
              % ", ".join("%s/%d" % p
                          for p in analysis.result.unknown_predicates))
    return 0


if __name__ == "__main__":
    sys.exit(main())
