"""Arena-compiled type-graph kernel: flat integer grammars, bitset
reachability, and iterative core operations.

PRs 2–3 removed *redundant* type-graph operations (interning + memo
caches, differential clause re-evaluation); what remains on the hot
path is the per-call cost of the operations themselves, which walked
linked ``Grammar``/``FuncAlt`` Python objects with dict-backed tuple
memos.  This module lowers every interned, normalized grammar into an
immutable **arena** and re-runs the core algorithms as iterative
worklist loops over plain ints:

* **Symbols** — functor keys ``(kind, name, arity)`` become dense ints
  from a process-wide :class:`SymbolTable`, so comparing functors is an
  int compare instead of a string-tuple compare, and alternative lists
  arrive pre-sorted in canonical (:func:`_alt_sort_key`) order.
* **Nonterminals** — already dense (normalization renumbers in BFS
  order), so per-nonterminal data lives in flat tuples indexed by
  position, and nonterminal *sets* (ANY/INT membership, nonemptiness,
  reachability) are Python-int bitsets: one ``(mask >> nt) & 1`` per
  test, one ``|`` per union.
* **Operations** — inclusion is an iterative pair-worklist over the
  synchronized product (pairs encoded as ``n1 * n2 + n2``-style ints);
  union/intersection build their product rules directly as int tuples;
  ``subgrammar`` is a bitset-guided BFS renumbering that skips
  normalization entirely (sub-automata of a minimized automaton are
  minimized); normalization itself — the single hottest function in
  the PR3 profile — runs nonemptiness, pruning, or-width capping,
  partition refinement, and BFS renumbering over int arrays, touching
  ``FuncAlt`` objects only once to build the final interned result.

Results are **bit-identical** to the reference implementations kept in
:mod:`repro.typegraph.grammar` / :mod:`repro.typegraph.ops`
(``tests/test_arena_properties.py`` proves it with hypothesis; the
benchmark trajectory compares full-engine fingerprints).  The
``REPRO_ARENA`` environment variable (``0``/``off``/``false``) or
:func:`configure` routes every operation back through the reference
paths for A/B runs.

Execution tiers
---------------

The arena kernels themselves run in one of three tiers, selected by
``REPRO_ARENA_KERNEL`` (or ``configure(kernel=...)``):

* ``python`` — the iterative worklist loops below, over Python-int
  bitsets.  Always available; the portable baseline.
* ``numpy`` — the same algorithms with the dense passes (reachability
  closure, nonemptiness, partition refinement, the inclusion pair
  walk) restated as fixed-width word-array operations in
  :mod:`repro.typegraph._kernels_numpy` (bulk ``|=``/``&``,
  ``nonzero``, sorted-signature grouping).  Falls back to ``python``
  when numpy is not importable.
* ``native`` — a small C extension (:mod:`repro.typegraph._native`)
  compiled lazily with the system C compiler, which additionally
  serves the memoized grammar *operations* (``g_le``/``g_union``/
  ``g_intersect``/``g_functor``/``subgrammar``) and the Pat(Type)
  pattern walks from C-side tables.  Falls back to ``numpy`` (then
  ``python``) when no toolchain is available.

``auto`` (the default) resolves to the fastest available tier.  Every
tier returns the *identical interned* ``Grammar`` objects — the three
implementations share the canonical renumbering and the process-wide
intern tables, so ``gid``s, fingerprints, and serialized forms are
tier-oblivious (``tests/test_kernel_tiers.py`` sweeps them).
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, List, Optional, Tuple

from .grammar import ANY, INT, FuncAlt, Grammar, intern_grammar

__all__ = [
    "SymbolTable", "SYMBOLS", "GrammarArena", "arena_of", "decompile",
    "arena_le", "arena_union", "arena_intersect", "arena_functor",
    "arena_subgrammar", "arena_normalize", "RulesIndex",
    "enabled", "configure", "stats", "snapshot",
    "kernel", "available_kernels", "kernel_status",
]


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_ARENA", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


_ENABLED = _env_enabled()

#: Process-wide counters (the engine diffs :func:`snapshot` across a
#: run to attribute compilation work to it).
_COMPILES = 0
_INDEX_BUILDS = 0

# -- kernel tier selection ---------------------------------------------------

_KERNEL_TIERS = ("python", "numpy", "native")


def _env_kernel() -> str:
    value = os.environ.get("REPRO_ARENA_KERNEL", "auto").strip().lower()
    if value in _KERNEL_TIERS or value == "auto":
        return value
    return "auto"


#: Requested tier ("auto" resolves on first use), the resolved active
#: tier, and per-tier fallback reasons for :func:`kernel_status`.
_KERNEL_REQUESTED = _env_kernel()
_KERNEL_ACTIVE: Optional[str] = None
_KERNEL_REASONS: Dict[str, str] = {}

#: Loaded helper modules for the non-python tiers (None = inactive).
#: ``NATIVE`` is read directly by the dispatch sites in ``ops.py`` /
#: ``grammar.py`` / ``pattern.py`` — a plain module-global read, reset
#: whenever the tier is re-resolved.
_NUMPY_MOD = None
NATIVE = None


def _try_numpy():
    try:
        from . import _kernels_numpy
        return _kernels_numpy, None
    except Exception as exc:  # numpy absent or too old
        return None, "numpy tier unavailable: %s" % (exc,)


def _try_native():
    try:
        from . import _native
        mod, reason = _native.load()
        if mod is None:
            return None, "native tier unavailable: %s" % (reason,)
        return _native, None
    except Exception as exc:
        return None, "native tier unavailable: %s" % (exc,)


def _resolve_kernel() -> str:
    """Resolve the requested tier to an available one (recording why
    any better tier was skipped), load its helper module, and publish
    the module globals the dispatch sites read."""
    global _KERNEL_ACTIVE, _NUMPY_MOD, NATIVE
    if _KERNEL_ACTIVE is not None:
        return _KERNEL_ACTIVE
    chain = {
        "python": ("python",),
        "numpy": ("numpy", "python"),
        "native": ("native", "numpy", "python"),
        "auto": ("native", "numpy", "python"),
    }[_KERNEL_REQUESTED]
    _NUMPY_MOD = None
    NATIVE = None
    for tier in chain:
        if tier == "python":
            _KERNEL_ACTIVE = "python"
            break
        mod, reason = _try_native() if tier == "native" else _try_numpy()
        if mod is None:
            _KERNEL_REASONS[tier] = reason
            continue
        if tier == "native":
            NATIVE = mod
        else:
            _NUMPY_MOD = mod
        _KERNEL_ACTIVE = tier
        break
    return _KERNEL_ACTIVE


def kernel() -> str:
    """The active kernel tier ("python", "numpy", or "native"),
    resolving the requested tier on first use."""
    return _KERNEL_ACTIVE or _resolve_kernel()


def available_kernels() -> List[str]:
    """Tiers that can actually run in this process/environment."""
    tiers = ["python"]
    if _try_numpy()[0] is not None:
        tiers.append("numpy")
    if _KERNEL_ACTIVE == "native" or _try_native()[0] is not None:
        tiers.append("native")
    return tiers


def kernel_status() -> Dict[str, object]:
    """Requested vs. active tier plus the recorded fallback reasons —
    what ``repro profile`` and the bench reports surface."""
    return {
        "requested": _KERNEL_REQUESTED,
        "active": kernel(),
        "enabled": _ENABLED,
        "fallbacks": dict(_KERNEL_REASONS),
    }


# -- per-kernel profiling ----------------------------------------------------

#: ``op -> [calls, seconds]`` for the python/numpy tiers; the native
#: tier keeps equivalent counters in C.  Timing is gated behind
#: :func:`profile_kernels` so the hot path pays nothing by default.
_KCOUNTS: Dict[str, list] = {}
_KPROF = False


def profile_kernels(enable: bool = True) -> None:
    """Turn per-op kernel timing on/off (used by ``repro profile``)."""
    global _KPROF
    _KPROF = bool(enable)
    if NATIVE is not None:
        NATIVE.set_profile(enable)


def kernel_counters() -> Dict[str, Dict[str, float]]:
    """Per-op ``{calls, seconds}`` for the active tier (native counters
    are read from the C module)."""
    merged = {op: {"calls": int(cell[0]), "seconds": cell[1]}
              for op, cell in _KCOUNTS.items()}
    if NATIVE is not None:
        for op, cell in NATIVE.kernel_counters().items():
            entry = merged.setdefault(op, {"calls": 0, "seconds": 0.0})
            entry["calls"] += cell["calls"]
            entry["seconds"] += cell["seconds"]
    return merged


def reset_kernel_counters() -> None:
    _KCOUNTS.clear()
    if NATIVE is not None:
        NATIVE.reset_kernel_counters()


def _timed(op: str, impl, *args):
    from time import perf_counter
    start = perf_counter()
    try:
        return impl(*args)
    finally:
        cell = _KCOUNTS.get(op)
        if cell is None:
            cell = _KCOUNTS[op] = [0, 0.0]
        cell[0] += 1
        cell[1] += perf_counter() - start


def enabled() -> bool:
    return _ENABLED


def configure(enabled: Optional[bool] = None,
              kernel: Optional[str] = None) -> None:
    """Toggle the arena kernels at runtime (reference paths remain
    available and bit-identical, so flipping mid-process is safe), and
    select the execution tier (``python``/``numpy``/``native``/
    ``auto``) with the same fallback semantics as the
    ``REPRO_ARENA_KERNEL`` environment variable."""
    global _ENABLED, _KERNEL_REQUESTED, _KERNEL_ACTIVE
    if enabled is not None:
        _ENABLED = bool(enabled)
    if kernel is not None:
        kernel = kernel.strip().lower()
        if kernel not in _KERNEL_TIERS and kernel != "auto":
            raise ValueError("unknown arena kernel tier: %r" % (kernel,))
        _KERNEL_REQUESTED = kernel
        _KERNEL_ACTIVE = None
        _KERNEL_REASONS.clear()
        _resolve_kernel()


def stats() -> Dict[str, int]:
    """Process-wide arena counters: grammar compilations, widening
    step-index builds, and distinct functor symbols interned.  With
    the native tier active the C-side compilation counters are folded
    in, so the engine's attribution stays tier-oblivious."""
    compiles = _COMPILES
    index_builds = _INDEX_BUILDS
    if NATIVE is not None:
        native_stats = NATIVE.stats()
        compiles += native_stats.get("compiles", 0)
        index_builds += native_stats.get("index_builds", 0)
    return {"compiles": compiles, "index_builds": index_builds,
            "symbols": len(SYMBOLS.fkeys)}


def snapshot() -> int:
    """Aggregate compilation count (grammar arenas + step indexes)."""
    counters = stats()
    return counters["compiles"] + counters["index_builds"]


# -- symbol table ------------------------------------------------------------

class SymbolTable:
    """Process-wide functor-key interner: ``(kind, name, arity)`` ->
    dense int.  Ids are per-process (never pickled); a grammar sent to
    a ``run_batch`` worker re-interns its symbols on arrival, and the
    arena kernels only ever compare ids from one process's table, so
    results do not depend on the numbering.

    Allocation is thread-safe: lookups stay a lock-free dict probe
    (ids are published to ``_ids`` only after the parallel arrays hold
    their row), and the probe-then-allocate of a *new* symbol runs
    under a lock so two threads can never mint two ids for one key."""

    __slots__ = ("_ids", "fkeys", "is_literal", "arities", "_lock")

    def __init__(self) -> None:
        self._ids: Dict[Tuple[str, str, int], int] = {}
        self.fkeys: List[Tuple[str, str, int]] = []
        self.is_literal: List[bool] = []  # integer-literal symbols
        self.arities: List[int] = []
        self._lock = threading.Lock()

    def sym(self, kind: str, name: str, arity: int) -> int:
        key = (kind, name, arity)
        sym = self._ids.get(key)
        if sym is None:
            with self._lock:
                sym = self._ids.get(key)
                if sym is None:
                    sym = len(self.fkeys)
                    self.fkeys.append(key)
                    self.is_literal.append(kind == "i")
                    self.arities.append(arity)
                    self._ids[key] = sym  # publish last
        return sym

    def sym_of_alt(self, alt: FuncAlt) -> int:
        return self.sym("i" if alt.is_int else "f", alt.name,
                        len(alt.args))

    def __len__(self) -> int:
        return len(self.fkeys)


SYMBOLS = SymbolTable()

#: Flat-int-keyed view of the grammar intern table: normalization
#: probes it with an integer encoding of its (already canonical)
#: result before constructing any FuncAlt/frozenset objects, so repeat
#: normalizations return the canonical instance object-free.  Keys use
#: process-local symbol ids, which is fine for a process-local index.
#: Unlocked by design: it is a pure accelerator in front of
#: ``intern_grammar`` (which *is* locked), so the worst a
#: check-then-insert race can do is recompute a normalization — both
#: threads still receive the one canonical instance, and the last
#: (identical) insert wins.
_INTKEY_INTERN: "weakref.WeakValueDictionary[tuple, Grammar]" = \
    weakref.WeakValueDictionary()

#: Decoded-alternative cache for :func:`_grammar_from_intkey`: functor
#: alternatives repeat heavily across grammars (``.``/2, ``[]``/0,
#: ...), so reusing one FuncAlt per ``(sym, args)`` skips both the
#: construction and its hash.  FuncAlts are tiny and compare by value,
#: so sharing is purely an accelerator; the size cap bounds a
#: long-lived process.
_ALT_CACHE: Dict[tuple, "FuncAlt"] = {}
_ALT_CACHE_MAX = 1 << 18


# -- the per-grammar arena ---------------------------------------------------

class GrammarArena:
    """Immutable flat-int view of one normalized grammar.

    ``syms[nt]`` / ``args[nt]`` are parallel tuples of the functor
    alternatives, pre-sorted in canonical fkey order (so BFS
    renumbering never sorts); ``by_sym[nt]`` maps symbol -> argument
    tuple for the product constructions; ``any_mask`` / ``int_mask``
    are bitsets of the nonterminals carrying ANY / INT alternatives.
    ``reach`` (lazy) holds per-nonterminal reachability bitsets.
    """

    __slots__ = ("n", "any_mask", "int_mask", "syms", "args", "by_sym",
                 "nt_index", "_reach", "_np")

    def __init__(self, n: int, any_mask: int, int_mask: int,
                 syms: tuple, args: tuple, by_sym: tuple,
                 nt_index: Optional[Dict[int, int]] = None) -> None:
        self.n = n
        self.any_mask = any_mask
        self.int_mask = int_mask
        self.syms = syms
        self.args = args
        self.by_sym = by_sym
        #: original-nonterminal -> dense index, or None when identity
        #: (normalized grammars are already dense with root 0).
        self.nt_index = nt_index
        self._reach: Optional[Tuple[int, ...]] = None
        #: lazily built word-array view (numpy tier), see
        #: :func:`repro.typegraph._kernels_numpy.np_view`.
        self._np = None

    def index_of(self, nt: int) -> int:
        if self.nt_index is None:
            return nt
        return self.nt_index[nt]

    def reach(self) -> Tuple[int, ...]:
        """``reach()[nt]`` is the bitset of nonterminals reachable from
        ``nt`` (including itself) — fixpoint of bitset unions (the
        numpy tier computes the same closure with word-array ors)."""
        if self._reach is None:
            if _NUMPY_MOD is not None:
                self._reach = _NUMPY_MOD.reach(self)
                return self._reach
            n = self.n
            succ = [0] * n
            for i in range(n):
                mask = 0
                for arg_tuple in self.args[i]:
                    for child in arg_tuple:
                        mask |= 1 << child
                succ[i] = mask
            reach = [(1 << i) | succ[i] for i in range(n)]
            changed = True
            while changed:
                changed = False
                for i in range(n):
                    acc = reach[i]
                    todo = succ[i]
                    while todo:
                        low = todo & -todo
                        acc |= reach[low.bit_length() - 1]
                        todo ^= low
                    if acc != reach[i]:
                        reach[i] = acc
                        changed = True
            self._reach = tuple(reach)
        return self._reach


def arena_of(grammar: Grammar) -> GrammarArena:
    """The (cached) arena of an interned grammar."""
    arena = grammar._arena
    if arena is None:
        arena = _compile(grammar)
        grammar._arena = arena
    return arena


def _compile(grammar: Grammar) -> GrammarArena:
    global _COMPILES
    _COMPILES += 1
    rules = grammar.rules
    n = len(rules)
    root = grammar.root
    # Normalized grammars are dense 0..n-1 with root 0; fall back to an
    # explicit index for anything else (e.g. hand-built interned
    # literals are dense too, so this is effectively always identity).
    if root == 0 and n and all(0 <= nt < n for nt in rules):
        nt_index = None
        dense = rules
    else:
        nt_index = {root: 0}
        for nt in sorted(rules):
            if nt != root:
                nt_index[nt] = len(nt_index)
        dense = {nt_index[nt]: alts for nt, alts in rules.items()}
    any_mask = 0
    int_mask = 0
    syms: List[tuple] = [()] * n
    args: List[tuple] = [()] * n
    by_sym: List[dict] = [None] * n
    sym_of_alt = SYMBOLS.sym_of_alt
    fkeys = SYMBOLS.fkeys
    remap = (None if nt_index is None
             else nt_index.__getitem__)
    for i in range(n):
        funcs = []
        for alt in dense[i]:
            if alt is ANY:
                any_mask |= 1 << i
            elif alt is INT:
                int_mask |= 1 << i
            else:
                if remap is None:
                    funcs.append((sym_of_alt(alt), alt.args))
                else:
                    funcs.append((sym_of_alt(alt),
                                  tuple(map(remap, alt.args))))
        funcs.sort(key=lambda pair: fkeys[pair[0]])
        syms[i] = tuple(pair[0] for pair in funcs)
        args[i] = tuple(pair[1] for pair in funcs)
        by_sym[i] = dict(funcs)
    return GrammarArena(n, any_mask, int_mask, tuple(syms), tuple(args),
                        tuple(by_sym), nt_index)


def decompile(arena: GrammarArena) -> Grammar:
    """Reconstruct a plain (raw, non-interned) grammar from an arena —
    the inverse of :func:`_compile` up to interning (round-trip
    property: ``decompile(arena_of(g)).rules == g.rules``)."""
    fkeys = SYMBOLS.fkeys
    rules: Dict[int, frozenset] = {}
    for i in range(arena.n):
        alts: List[object] = []
        if (arena.any_mask >> i) & 1:
            alts.append(ANY)
        if (arena.int_mask >> i) & 1:
            alts.append(INT)
        for sym, arg_tuple in zip(arena.syms[i], arena.args[i]):
            kind, name, _ = fkeys[sym]
            alts.append(FuncAlt(name, arg_tuple, kind == "i"))
        rules[i] = frozenset(alts)
    return Grammar(rules, 0)


# -- normalization core ------------------------------------------------------
#
# The shared back half of every arena operation: raw integer rules in,
# interned Grammar (with its arena attached) out.  ``items`` maps an
# arbitrary int key to ``(has_any, has_int, [(sym, arg_keys), ...])``.

def _normalize_core(items: Dict[int, tuple], root: int,
                    max_or_width: Optional[int]) -> Grammar:
    keys = sorted(items)
    index = {key: i for i, key in enumerate(keys)}
    n = len(keys)
    any_f = [False] * n
    int_f = [False] * n
    funcs: List[list] = [None] * n
    for key in keys:
        has_any, has_int, alts = items[key]
        i = index[key]
        any_f[i] = has_any
        int_f[i] = has_int
        seen_alts = set()
        mapped = []
        for sym, arg_keys in alts:
            entry = (sym, tuple(index[a] for a in arg_keys))
            if entry not in seen_alts:  # sets dedup like frozenset did
                seen_alts.add(entry)
                mapped.append(entry)
        funcs[i] = mapped
    return _normalize_dense(any_f, int_f, funcs, index[root],
                            max_or_width)


def _nonempty_bits(any_f: List[bool], int_f: List[bool],
                   funcs: List[list], n: int) -> int:
    """Nonempty bitset (worklist with per-alternative counters;
    duplicate argument occurrences register the cell once per
    occurrence and count once per occurrence, so they balance)."""
    nonempty = 0
    waiting: Dict[int, list] = {}
    stack: List[int] = []
    for i in range(n):
        if any_f[i] or int_f[i]:
            nonempty |= 1 << i
            stack.append(i)
            continue
        for sym, arg_idx in funcs[i]:
            if not arg_idx:
                if not (nonempty >> i) & 1:
                    nonempty |= 1 << i
                    stack.append(i)
                break
            cell = [i, len(arg_idx)]
            for a in arg_idx:
                waiting.setdefault(a, []).append(cell)
    while stack:
        proved = stack.pop()
        for cell in waiting.get(proved, ()):
            cell[1] -= 1
            if cell[1] == 0 and not (nonempty >> cell[0]) & 1:
                nonempty |= 1 << cell[0]
                stack.append(cell[0])
    return nonempty


def _normalize_dense(any_f: List[bool], int_f: List[bool],
                     funcs: List[list], root_i: int,
                     max_or_width: Optional[int],
                     prune: bool = True) -> Grammar:
    """Normalization over dense arrays: ``funcs[i]`` lists the functor
    alternatives of nonterminal ``i`` as ``(sym, arg_index_tuple)``
    (duplicate-free).  Mutates the argument lists in place.

    ``prune=False`` skips the nonemptiness pass — sound for
    constructions that cannot produce empty nonterminals from
    normalized operands (union merges derive a superset of either
    side; functor embeds copy nonempty grammars)."""
    if NATIVE is not None:
        return NATIVE.normalize_dense(any_f, int_f, funcs, root_i,
                                      max_or_width, prune)
    n = len(any_f)
    is_literal = SYMBOLS.is_literal

    if prune:
        # 1. nonempty pass (the numpy tier iterates the same least
        #    fixpoint with word-array ors instead of a worklist)
        if _NUMPY_MOD is not None:
            nonempty = _NUMPY_MOD.nonempty_bits(any_f, int_f, funcs, n)
        else:
            nonempty = _nonempty_bits(any_f, int_f, funcs, n)
    all_mask = (1 << n) - 1

    # 2+3. prune empty references, absorb, cap or-width
    for i in range(n):
        row = funcs[i]
        if prune and nonempty != all_mask:
            kept = []
            for sym, arg_idx in row:
                ok = True
                for a in arg_idx:
                    if not (nonempty >> a) & 1:
                        ok = False
                        break
                if ok:
                    kept.append((sym, arg_idx))
        else:
            kept = row if isinstance(row, list) else list(row)
        has_any = any_f[i]
        has_int = int_f[i]
        if has_any and (has_int or kept):
            has_int = False
            kept = []
        elif has_int:
            kept = [(sym, arg_idx) for sym, arg_idx in kept
                    if not is_literal[sym]]
        if max_or_width is not None and \
                (has_any + has_int + len(kept)) > max_or_width:
            has_any, has_int, kept = True, False, []
        any_f[i] = has_any
        int_f[i] = has_int
        funcs[i] = kept

    # 4. partition refinement to the coarsest bisimulation — identical
    #    partition to the reference walk (the coarsest
    #    signature-stable partition is unique; any fair split order
    #    reaches it).  Split-based with a dirty-class worklist: only
    #    classes containing a node whose successors were relabelled
    #    recompute signatures, instead of re-signing every node every
    #    round.  An alternative's signature is a flat
    #    ``(code, digits)`` pair: ``digits`` packs the arg classes as
    #    base-(n+1) positional digits (each >= 1), and ``code`` fixes
    #    the symbol hence the arity, so the pair is injective — and
    #    far cheaper to hash than variable-length nested tuples.
    #    (ANY -> code 0, INT -> 1, functor sym -> s + 2.)
    #    The numpy tier reaches the same (unique) partition by global
    #    sorted-signature grouping rounds; only the class *labels* can
    #    differ, and the representative/renumber steps below depend
    #    only on the partition itself.
    if _NUMPY_MOD is not None and n > 1:
        classes = _NUMPY_MOD.refine_classes(any_f, int_f, funcs, n)
    else:
        classes = _refine_classes(any_f, int_f, funcs, n)
    representative: Dict[int, int] = {}
    for i in range(n):
        representative.setdefault(classes[i], i)
    cmap = [representative[c] for c in classes]
    return _renumber_and_intern(any_f, int_f, funcs, cmap, root_i)


def _refine_classes(any_f: List[bool], int_f: List[bool],
                    funcs: List[list], n: int) -> List[int]:
    classes = [0] * n
    if n > 1:
        shapes: List[list] = [None] * n
        preds: List[list] = [[] for _ in range(n)]
        for i in range(n):
            parts = []
            if any_f[i]:
                parts.append((0, ()))
            if int_f[i]:
                parts.append((1, ()))
            for sym, arg_idx in funcs[i]:
                parts.append((sym + 2, arg_idx))
                for a in arg_idx:
                    preds[a].append(i)
            shapes[i] = parts
        base = n + 1
        members: Dict[int, List[int]] = {0: list(range(n))}
        next_class = 1
        pending = {0}
        while pending:
            cls = pending.pop()
            group = members[cls]
            if len(group) <= 1:
                continue
            sig_groups: Dict[tuple, list] = {}
            for i in group:
                row = []
                for code, arg_idx in shapes[i]:
                    digits = 0
                    for a in arg_idx:
                        digits = digits * base + classes[a] + 1
                    row.append((code, digits))
                if len(row) > 1:
                    row.sort()
                sig_groups.setdefault(tuple(row), []).append(i)
            if len(sig_groups) == 1:
                continue
            # the largest part keeps the label; relabelled nodes make
            # their predecessors' classes dirty
            parts_by_size = sorted(sig_groups.values(), key=len,
                                   reverse=True)
            members[cls] = parts_by_size[0]
            for part in parts_by_size[1:]:
                label = next_class
                next_class += 1
                members[label] = part
                for i in part:
                    classes[i] = label
                for i in part:
                    for pred in preds[i]:
                        pending.add(classes[pred])
    return classes


def _renumber_and_intern(any_f: List[bool], int_f: List[bool],
                         funcs: List[list], cmap: List[int],
                         root_i: int) -> Grammar:
    """Steps 5–6 of :func:`_normalize_dense` — shared across the
    python and numpy tiers so the canonical numbering, intern probe,
    and fused arena build are literally the same code."""
    # 5. BFS renumbering from the root's class, alternatives visited in
    #    canonical fkey order (ANY/INT have no children, so only the
    #    functor alternatives drive the numbering)
    fkeys = SYMBOLS.fkeys
    start = cmap[root_i]
    number = {start: 0}
    order = [start]
    qi = 0
    merged: Dict[int, list] = {}
    while qi < len(order):
        i = order[qi]
        qi += 1
        seen_alts = set()
        alts = []
        for sym, arg_idx in funcs[i]:
            mapped = tuple(cmap[a] for a in arg_idx)
            entry = (sym, mapped)
            if entry in seen_alts:  # class-mapping can merge duplicates
                continue
            seen_alts.add(entry)
            alts.append((fkeys[sym], sym, mapped))
        alts.sort()
        merged[i] = alts
        for _, _, mapped in alts:
            for child in mapped:
                if child not in number:
                    number[child] = len(number)
                    order.append(child)

    # 6. probe the int-keyed intern index before building any objects:
    #    the canonical numbering and per-node fkey-sorted rows make the
    #    flat int encoding below a deterministic function of the
    #    grammar's structure, so a repeat normalization returns the
    #    canonical instance without constructing a single FuncAlt,
    #    frozenset, or structural hash.
    out_n = len(number)
    flat: List[int] = [out_n]
    renumbered: List[tuple] = [None] * out_n
    for i, new_nt in number.items():
        rows = []
        for fkey, sym, mapped in merged[i]:
            renum = tuple(number[c] for c in mapped)
            rows.append((fkey, sym, renum))
        renumbered[new_nt] = (i, rows)
    for new_nt in range(out_n):
        i, rows = renumbered[new_nt]
        flat.append((1 if any_f[i] else 0) | (2 if int_f[i] else 0))
        flat.append(len(rows))
        for _, sym, renum in rows:
            flat.append(sym)
            flat.extend(renum)
    int_key = tuple(flat)
    cached_grammar = _INTKEY_INTERN.get(int_key)
    if cached_grammar is not None:
        return cached_grammar

    # build the final Grammar once (plus its arena, for free)
    final: Dict[int, frozenset] = {}
    out_any = 0
    out_int = 0
    out_syms: List[tuple] = [()] * out_n
    out_args: List[tuple] = [()] * out_n
    out_by: List[dict] = [None] * out_n
    key_items: List[tuple] = [None] * out_n
    for new_nt in range(out_n):
        i, rows = renumbered[new_nt]
        alt_objs: List[object] = []
        if any_f[i]:
            alt_objs.append(ANY)
            out_any |= 1 << new_nt
        if int_f[i]:
            alt_objs.append(INT)
            out_int |= 1 << new_nt
        for fkey, sym, renum in rows:
            alt_objs.append(FuncAlt(fkey[1], renum, fkey[0] == "i"))
        out_syms[new_nt] = tuple(sym for _, sym, _ in rows)
        out_args[new_nt] = tuple(renum for _, _, renum in rows)
        out_by[new_nt] = {sym: renum for _, sym, renum in rows}
        key_items[new_nt] = (new_nt, tuple(alt_objs))
        final[new_nt] = frozenset(alt_objs)
    raw = Grammar(final, 0)
    # alt_objs is already in _alt_sort_key order (ANY, INT, functors in
    # fkey order) and nts are dense from 0, so the structural key can be
    # assembled here without re-sorting the frozensets.
    raw._key_cache = (0, tuple(key_items))
    grammar = intern_grammar(raw)
    if grammar._arena is None:
        global _COMPILES
        _COMPILES += 1  # fused compile: the arrays are already flat
        grammar._arena = GrammarArena(
            out_n, out_any, out_int, tuple(out_syms), tuple(out_args),
            tuple(out_by))
    _INTKEY_INTERN[int_key] = grammar
    return grammar


# -- native-tier bridge ------------------------------------------------------
#
# The C extension keeps only integers; these callbacks are its one
# door back into the Python object layer.  ``_grammar_from_intkey``
# funnels every C-side construction through the same flat-int intern
# probe as :func:`_renumber_and_intern`, so the native tier returns
# the identical interned instances as the python/numpy tiers.

def _grammar_from_intkey(int_key: tuple) -> Grammar:
    """Decode a canonical flat int key (``_renumber_and_intern``'s
    encoding: ``[out_n, per nt: flags, nrows, (sym, args...)...]``,
    argument counts implied by the symbol table) into the interned
    Grammar, building objects only on an intern miss."""
    cached_grammar = _INTKEY_INTERN.get(int_key)
    if cached_grammar is not None:
        return cached_grammar
    fkeys = SYMBOLS.fkeys
    arities = SYMBOLS.arities
    alt_cache = _ALT_CACHE
    out_n = int_key[0]
    p = 1
    final: Dict[int, frozenset] = {}
    out_any = 0
    out_int = 0
    out_syms: List[tuple] = [()] * out_n
    out_args: List[tuple] = [()] * out_n
    out_by: List[dict] = [None] * out_n
    key_items: List[tuple] = [None] * out_n
    for nt in range(out_n):
        flags = int_key[p]
        nrows = int_key[p + 1]
        p += 2
        alt_objs: List[object] = []
        if flags & 1:
            alt_objs.append(ANY)
            out_any |= 1 << nt
        if flags & 2:
            alt_objs.append(INT)
            out_int |= 1 << nt
        syms_row: List[int] = []
        args_row: List[tuple] = []
        for _ in range(nrows):
            sym = int_key[p]
            q = p + 1 + arities[sym]
            renum = int_key[p + 1:q]  # tuple slice is already a tuple
            p = q
            alt = alt_cache.get((sym, renum))
            if alt is None:
                kind, name, _ = fkeys[sym]
                alt = FuncAlt(name, renum, kind == "i")
                if len(alt_cache) >= _ALT_CACHE_MAX:
                    alt_cache.clear()
                alt_cache[(sym, renum)] = alt
            alt_objs.append(alt)
            syms_row.append(sym)
            args_row.append(renum)
        out_syms[nt] = tuple(syms_row)
        out_args[nt] = tuple(args_row)
        out_by[nt] = dict(zip(syms_row, args_row))
        key_items[nt] = (nt, tuple(alt_objs))
        final[nt] = frozenset(alt_objs)
    raw = Grammar(final, 0)
    # rows arrive in canonical fkey order, so alt_objs is already in
    # _alt_sort_key order — assemble the structural key without the
    # per-frozenset sort intern_grammar would otherwise pay for.
    raw._key_cache = (0, tuple(key_items))
    grammar = intern_grammar(raw)
    if grammar._arena is None:
        global _COMPILES
        _COMPILES += 1
        grammar._arena = GrammarArena(
            out_n, out_any, out_int, tuple(out_syms), tuple(out_args),
            tuple(out_by))
    _INTKEY_INTERN[int_key] = grammar
    return grammar


def _arena_flat(grammar: Grammar) -> List[int]:
    """Flat operand encoding handed to the C tier on first sight of a
    gid: ``[n, root, per nt: flags, nrows, (sym, nargs, args...)...]``
    with rows in the arena's canonical fkey order."""
    a = arena_of(grammar)
    flat = [a.n, a.index_of(grammar.root)]
    any_mask = a.any_mask
    int_mask = a.int_mask
    for i in range(a.n):
        flat.append(((any_mask >> i) & 1) | (((int_mask >> i) & 1) << 1))
        syms = a.syms[i]
        args = a.args[i]
        flat.append(len(syms))
        for sym, arg_tuple in zip(syms, args):
            flat.append(sym)
            flat.append(len(arg_tuple))
            flat.extend(arg_tuple)
    return flat


def _sym_rows(start: int) -> List[Tuple[str, str, int]]:
    """Symbol-table rows from ``start`` on (the C registry mirrors the
    table incrementally; ids are dense and append-only)."""
    return list(SYMBOLS.fkeys[start:])


def _sym_f(name: str, arity: int) -> int:
    return SYMBOLS.sym("f", name, arity)


def arena_normalize(grammar: Grammar,
                    max_or_width: Optional[int]) -> Grammar:
    """Normalize an arbitrary raw grammar through the int pipeline
    (bit-identical to the reference :func:`~.grammar.normalize`)."""
    if _KPROF and NATIVE is None:
        return _timed("normalize", _arena_normalize_impl, grammar,
                      max_or_width)
    return _arena_normalize_impl(grammar, max_or_width)


def _arena_normalize_impl(grammar: Grammar,
                          max_or_width: Optional[int]) -> Grammar:
    sym_of_alt = SYMBOLS.sym_of_alt
    items: Dict[int, tuple] = {}
    for nt, alts in grammar.rules.items():
        has_any = False
        has_int = False
        funcs = []
        for alt in alts:
            if alt is ANY:
                has_any = True
            elif alt is INT:
                has_int = True
            else:
                funcs.append((sym_of_alt(alt), alt.args))
        items[nt] = (has_any, has_int, funcs)
    return _normalize_core(items, grammar.root, max_or_width)


# -- inclusion ---------------------------------------------------------------

def arena_le(g1: Grammar, g2: Grammar) -> bool:
    """Exact inclusion as an iterative worklist over the synchronized
    product: every reachable pair must locally match (determinism makes
    the local condition complete)."""
    if NATIVE is not None:
        return NATIVE.arena_le(g1, g2)
    impl = _arena_le_py if _NUMPY_MOD is None else _NUMPY_MOD.arena_le
    if _KPROF:
        return _timed("le", impl, g1, g2)
    return impl(g1, g2)


def _arena_le_py(g1: Grammar, g2: Grammar) -> bool:
    a1 = arena_of(g1)
    a2 = arena_of(g2)
    any1, int1 = a1.any_mask, a1.int_mask
    any2, int2 = a2.any_mask, a2.int_mask
    n2 = a2.n
    is_literal = SYMBOLS.is_literal
    r1 = a1.index_of(g1.root)
    r2 = a2.index_of(g2.root)
    seen = {r1 * n2 + r2}
    stack = [(r1, r2)]
    syms1, args1, by2 = a1.syms, a1.args, a2.by_sym
    while stack:
        i, j = stack.pop()
        if (any2 >> j) & 1:
            continue  # ANY on the right covers everything below
        if (any1 >> i) & 1:
            return False  # nothing but ANY covers all terms
        has_int = (int2 >> j) & 1
        if (int1 >> i) & 1 and not has_int:
            return False
        row = by2[j]
        for sym, arg_tuple in zip(syms1[i], args1[i]):
            if has_int and is_literal[sym]:
                continue
            other = row.get(sym)
            if other is None:
                return False
            for c1, c2 in zip(arg_tuple, other):
                key = c1 * n2 + c2
                if key not in seen:
                    seen.add(key)
                    stack.append((c1, c2))
    return True


# -- union -------------------------------------------------------------------

def arena_union(g1: Grammar, g2: Grammar,
                max_or_width: Optional[int]) -> Grammar:
    """Pointwise-merged union (principal functor restriction) as an
    iterative product construction over int keys, emitting the dense
    arrays normalization consumes directly.  The product discovery is
    inherently sequential hash-consing; its dense back half (the
    nonemptiness and refinement passes inside ``_normalize_dense``)
    is where the numpy tier applies, and the native tier runs the
    whole construction in C."""
    if NATIVE is not None:
        return NATIVE.arena_union(g1, g2, max_or_width)
    if _KPROF:
        return _timed("union", _arena_union_py, g1, g2, max_or_width)
    return _arena_union_py(g1, g2, max_or_width)


def _arena_union_py(g1: Grammar, g2: Grammar,
                    max_or_width: Optional[int]) -> Grammar:
    a1 = arena_of(g1)
    a2 = arena_of(g2)
    n1, n2 = a1.n, a2.n
    base = n1 * n2          # keys < base: merged pairs i * n2 + j
    base_r = base + n1      # then n1 left-embed keys, n2 right-embed
    is_literal = SYMBOLS.is_literal
    ids: Dict[int, int] = {}
    any_f: List[int] = []
    int_f: List[int] = []
    funcs: List[list] = []
    work: List[int] = []

    def nid(key: int) -> int:
        i = ids.get(key)
        if i is None:
            i = len(ids)
            ids[key] = i
            any_f.append(0)
            int_f.append(0)
            funcs.append(())
            work.append(key)
        return i

    root = nid(a1.index_of(g1.root) * n2 + a2.index_of(g2.root))
    while work:
        key = work.pop()
        slot = ids[key]
        if key >= base_r:                       # embedded from g2
            j = key - base_r
            any_f[slot] = (a2.any_mask >> j) & 1
            int_f[slot] = (a2.int_mask >> j) & 1
            funcs[slot] = [
                (sym, tuple(nid(base_r + c) for c in arg_tuple))
                for sym, arg_tuple in zip(a2.syms[j], a2.args[j])]
            continue
        if key >= base:                         # embedded from g1
            i = key - base
            any_f[slot] = (a1.any_mask >> i) & 1
            int_f[slot] = (a1.int_mask >> i) & 1
            funcs[slot] = [
                (sym, tuple(nid(base + c) for c in arg_tuple))
                for sym, arg_tuple in zip(a1.syms[i], a1.args[i])]
            continue
        i, j = divmod(key, n2)
        if ((a1.any_mask >> i) & 1) or ((a2.any_mask >> j) & 1):
            any_f[slot] = 1
            funcs[slot] = []
            continue
        has_int = ((a1.int_mask >> i) & 1) or ((a2.int_mask >> j) & 1)
        int_f[slot] = has_int
        by1, by2 = a1.by_sym[i], a2.by_sym[j]
        row = []
        for sym, arg_tuple in by1.items():
            if has_int and is_literal[sym]:
                continue
            other = by2.get(sym)
            if other is not None:
                row.append((sym, tuple(
                    nid(c1 * n2 + c2)
                    for c1, c2 in zip(arg_tuple, other))))
            else:
                row.append((sym, tuple(nid(base + c)
                                       for c in arg_tuple)))
        for sym, arg_tuple in by2.items():
            if sym in by1 or (has_int and is_literal[sym]):
                continue
            row.append((sym, tuple(nid(base_r + c)
                                   for c in arg_tuple)))
        funcs[slot] = row
    # Union cannot create empty nonterminals from normalized operands.
    return _normalize_dense(any_f, int_f, funcs, root, max_or_width,
                            prune=False)


# -- intersection ------------------------------------------------------------

def arena_intersect(g1: Grammar, g2: Grammar,
                    max_or_width: Optional[int]) -> Grammar:
    """Exact intersection (product of deterministic automata) as an
    iterative construction over int keys."""
    if NATIVE is not None:
        return NATIVE.arena_intersect(g1, g2, max_or_width)
    if _KPROF:
        return _timed("intersect", _arena_intersect_py, g1, g2,
                      max_or_width)
    return _arena_intersect_py(g1, g2, max_or_width)


def _arena_intersect_py(g1: Grammar, g2: Grammar,
                        max_or_width: Optional[int]) -> Grammar:
    a1 = arena_of(g1)
    a2 = arena_of(g2)
    n1, n2 = a1.n, a2.n
    base = n1 * n2
    base_r = base + n1
    is_literal = SYMBOLS.is_literal
    ids: Dict[int, int] = {}
    any_f: List[int] = []
    int_f: List[int] = []
    funcs: List[list] = []
    work: List[int] = []

    def nid(key: int) -> int:
        i = ids.get(key)
        if i is None:
            i = len(ids)
            ids[key] = i
            any_f.append(0)
            int_f.append(0)
            funcs.append(())
            work.append(key)
        return i

    root = nid(a1.index_of(g1.root) * n2 + a2.index_of(g2.root))
    while work:
        key = work.pop()
        slot = ids[key]
        if key >= base_r:                       # embedded from g2
            j = key - base_r
            any_f[slot] = (a2.any_mask >> j) & 1
            int_f[slot] = (a2.int_mask >> j) & 1
            funcs[slot] = [
                (sym, tuple(nid(base_r + c) for c in arg_tuple))
                for sym, arg_tuple in zip(a2.syms[j], a2.args[j])]
            continue
        if key >= base:                         # embedded from g1
            i = key - base
            any_f[slot] = (a1.any_mask >> i) & 1
            int_f[slot] = (a1.int_mask >> i) & 1
            funcs[slot] = [
                (sym, tuple(nid(base + c) for c in arg_tuple))
                for sym, arg_tuple in zip(a1.syms[i], a1.args[i])]
            continue
        i, j = divmod(key, n2)
        if (a1.any_mask >> i) & 1:              # Any ∩ x = x
            any_f[slot] = (a2.any_mask >> j) & 1
            int_f[slot] = (a2.int_mask >> j) & 1
            funcs[slot] = [
                (sym, tuple(nid(base_r + c) for c in arg_tuple))
                for sym, arg_tuple in zip(a2.syms[j], a2.args[j])]
            continue
        if (a2.any_mask >> j) & 1:
            any_f[slot] = (a1.any_mask >> i) & 1
            int_f[slot] = (a1.int_mask >> i) & 1
            funcs[slot] = [
                (sym, tuple(nid(base + c) for c in arg_tuple))
                for sym, arg_tuple in zip(a1.syms[i], a1.args[i])]
            continue
        int1 = (a1.int_mask >> i) & 1
        int2 = (a2.int_mask >> j) & 1
        by1, by2 = a1.by_sym[i], a2.by_sym[j]
        row = []
        for sym, arg_tuple in by1.items():
            other = by2.get(sym)
            if other is None:
                continue
            row.append((sym, tuple(nid(c1 * n2 + c2)
                                   for c1, c2 in zip(arg_tuple, other))))
        if int2 and not int1:   # literals of g1 ∩ INT = those literals
            for sym in by1:
                if is_literal[sym] and sym not in by2:
                    row.append((sym, ()))
        if int1 and not int2:
            for sym in by2:
                if is_literal[sym] and sym not in by1:
                    row.append((sym, ()))
        int_f[slot] = int1 and int2
        funcs[slot] = row
    return _normalize_dense(any_f, int_f, funcs, root, max_or_width)


# -- functor constructor -----------------------------------------------------

def arena_functor(name: str, children: Tuple[Grammar, ...],
                  max_or_width: Optional[int]) -> Grammar:
    """``name(c1, ..., cn)`` built by embedding the children's arenas
    at int offsets (no recursive copy, no GrammarBuilder) — the
    layout is dense by construction."""
    if NATIVE is not None:
        return NATIVE.arena_functor(name, children, max_or_width)
    if _KPROF:
        return _timed("functor", _arena_functor_py, name, children,
                      max_or_width)
    return _arena_functor_py(name, children, max_or_width)


def _arena_functor_py(name: str, children: Tuple[Grammar, ...],
                      max_or_width: Optional[int]) -> Grammar:
    any_f: List[int] = [0]
    int_f: List[int] = [0]
    funcs: List[list] = [()]
    offset = 1
    child_roots = []
    for child in children:
        arena = arena_of(child)
        child_roots.append(offset + arena.index_of(child.root))
        any_mask = arena.any_mask
        int_mask = arena.int_mask
        for i in range(arena.n):
            any_f.append((any_mask >> i) & 1)
            int_f.append((int_mask >> i) & 1)
            funcs.append([
                (sym, tuple(offset + c for c in arg_tuple))
                for sym, arg_tuple in zip(arena.syms[i], arena.args[i])])
        offset += arena.n
    funcs[0] = [(SYMBOLS.sym("f", name, len(children)),
                 tuple(child_roots))]
    # A normalized grammar is either bottom or empty-free, so the
    # nonempty pass is only needed when some child is bottom (then the
    # root's alternative must be pruned, making the result bottom).
    prune = any(child.is_bottom() for child in children)
    return _normalize_dense(any_f, int_f, funcs, 0, max_or_width,
                            prune=prune)


# -- graph view bridge -------------------------------------------------------

def graph_to_grammar(root, max_or_width: Optional[int]) -> Grammar:
    """Normalized grammar of a type-graph (``root`` is an or-vertex) —
    the arena-side ``to_grammar``: or-vertices get dense ids on
    discovery and the rules feed :func:`_normalize_dense` directly,
    with no ``GrammarBuilder``/``FuncAlt`` intermediates."""
    sym = SYMBOLS.sym
    ids: Dict[int, int] = {id(root): 0}
    queue = [root]
    any_f: List[int] = [0]
    int_f: List[int] = [0]
    funcs: List[list] = [()]
    position = 0
    while position < len(queue):
        vertex = queue[position]
        slot = ids[id(vertex)]
        row: List[tuple] = []
        seen_alts = None
        for successor in vertex.successors:
            kind = successor.kind
            if kind == "any":
                any_f[slot] = 1
            elif kind == "int":
                int_f[slot] = 1
            else:
                children = []
                for child in successor.successors:
                    child_id = ids.get(id(child))
                    if child_id is None:
                        child_id = len(ids)
                        ids[id(child)] = child_id
                        any_f.append(0)
                        int_f.append(0)
                        funcs.append(())
                        queue.append(child)
                    children.append(child_id)
                entry = (sym("i" if successor.is_int else "f",
                             successor.name, len(children)),
                         tuple(children))
                if len(row) >= 1:  # dedup like frozenset(alts) did
                    if seen_alts is None:
                        seen_alts = set(row)
                    if entry in seen_alts:
                        continue
                    seen_alts.add(entry)
                row.append(entry)
        funcs[slot] = row
        position += 1
    return _normalize_dense(any_f, int_f, funcs, 0, max_or_width)


# -- subgrammar --------------------------------------------------------------

def arena_subgrammar(grammar: Grammar, nt: int) -> Grammar:
    """The grammar rooted at ``nt`` — a BFS renumbering over arena
    rows (pre-sorted in canonical alternative order).

    Normalization is skipped entirely: sub-automata of a normalized
    grammar are already pruned, absorbed, and bisimulation-minimal
    (distinguishing experiments only use reachable structure, which the
    subgrammar keeps), so only the canonical renumbering remains.
    """
    if NATIVE is not None:
        return NATIVE.arena_subgrammar(grammar, nt)
    if _KPROF:
        return _timed("subgrammar", _arena_subgrammar_py, grammar, nt)
    return _arena_subgrammar_py(grammar, nt)


def _arena_subgrammar_py(grammar: Grammar, nt: int) -> Grammar:
    arena = arena_of(grammar)
    start = arena.index_of(nt)
    number = {start: 0}
    order = [start]
    qi = 0
    while qi < len(order):
        i = order[qi]
        qi += 1
        for arg_tuple in arena.args[i]:  # pre-sorted canonical order
            for child in arg_tuple:
                if child not in number:
                    number[child] = len(number)
                    order.append(child)
    fkeys = SYMBOLS.fkeys
    final: Dict[int, frozenset] = {}
    for i, new_nt in number.items():
        alts: List[object] = []
        if (arena.any_mask >> i) & 1:
            alts.append(ANY)
        if (arena.int_mask >> i) & 1:
            alts.append(INT)
        for sym, arg_tuple in zip(arena.syms[i], arena.args[i]):
            kind, name, _ = fkeys[sym]
            alts.append(FuncAlt(name,
                                tuple(number[c] for c in arg_tuple),
                                kind == "i"))
        final[new_nt] = frozenset(alts)
    return intern_grammar(Grammar(final, 0))


# -- raw-rules index (widening steps) ----------------------------------------

class RulesIndex:
    """One widening step's raw vertex grammar compiled to flat ints,
    with pair-memoized inclusion queries.

    The widening's transformation rules probe many overlapping
    or-vertex pairs of the *same* uninterned graph; compiling its rules
    once and answering each ``le`` query with the iterative pair
    worklist (plus a shared memo) replaces a fresh recursive traversal
    per query.  A ``True`` answer certifies every visited pair (all
    pairs reachable from a passing root pass), so positive runs
    populate the memo wholesale.
    """

    __slots__ = ("n", "index", "any_mask", "int_mask", "syms", "args",
                 "by_sym", "memo")

    @classmethod
    def from_graph(cls, root) -> tuple:
        """Compile a type-graph (``root`` an or-vertex) directly into a
        pair index, skipping the raw-grammar detour.  Returns
        ``(index, nts, vertices)`` where ``nts`` maps ``id(or_vertex)``
        to its (dense) nonterminal and ``vertices`` lists the
        or-vertices in numbering order — enough for a caller to build
        the raw grammar lazily with the same numbering."""
        global _INDEX_BUILDS
        _INDEX_BUILDS += 1
        sym_table = SYMBOLS
        nts: Dict[int, int] = {id(root): 0}
        vertices = [root]
        any_mask = 0
        int_mask = 0
        syms: List[tuple] = []
        args: List[tuple] = []
        by_sym: List[dict] = []
        position = 0
        while position < len(vertices):
            vertex = vertices[position]
            row = []
            for successor in vertex.successors:
                kind = successor.kind
                if kind == "any":
                    any_mask |= 1 << position
                elif kind == "int":
                    int_mask |= 1 << position
                else:
                    children = []
                    for child in successor.successors:
                        child_nt = nts.get(id(child))
                        if child_nt is None:
                            child_nt = len(vertices)
                            nts[id(child)] = child_nt
                            vertices.append(child)
                        children.append(child_nt)
                    row.append((sym_table.sym(
                        "i" if successor.is_int else "f",
                        successor.name, len(children)),
                        tuple(children)))
            syms.append(tuple(pair[0] for pair in row))
            args.append(tuple(pair[1] for pair in row))
            by_sym.append(dict(row))
            position += 1
        index = cls.__new__(cls)
        index.n = len(vertices)
        index.index = None  # identity: nts already dense
        index.any_mask = any_mask
        index.int_mask = int_mask
        index.syms = tuple(syms)
        index.args = tuple(args)
        index.by_sym = tuple(by_sym)
        index.memo = {}
        return index, nts, vertices

    def __init__(self, rules: Dict[int, frozenset]) -> None:
        global _INDEX_BUILDS
        _INDEX_BUILDS += 1
        index = {nt: i for i, nt in enumerate(rules)}
        n = len(index)
        any_mask = 0
        int_mask = 0
        syms: List[tuple] = [()] * n
        args: List[tuple] = [()] * n
        by_sym: List[dict] = [None] * n
        sym_of_alt = SYMBOLS.sym_of_alt
        for nt, alts in rules.items():
            i = index[nt]
            funcs = []
            for alt in alts:
                if alt is ANY:
                    any_mask |= 1 << i
                elif alt is INT:
                    int_mask |= 1 << i
                else:
                    funcs.append((sym_of_alt(alt),
                                  tuple(index[a] for a in alt.args)))
            syms[i] = tuple(pair[0] for pair in funcs)
            args[i] = tuple(pair[1] for pair in funcs)
            by_sym[i] = dict(funcs)
        self.n = n
        self.index = index
        self.any_mask = any_mask
        self.int_mask = int_mask
        self.syms = tuple(syms)
        self.args = tuple(args)
        self.by_sym = tuple(by_sym)
        self.memo: Dict[int, bool] = {}

    def le(self, nt1: int, nt2: int) -> bool:
        """Denotation inclusion between two nonterminals (original
        numbering) of the indexed rules."""
        n = self.n
        if self.index is None:
            i0, j0 = nt1, nt2
        else:
            i0 = self.index[nt1]
            j0 = self.index[nt2]
        root = i0 * n + j0
        cached = self.memo.get(root)
        if cached is not None:
            return cached
        any_mask, int_mask = self.any_mask, self.int_mask
        is_literal = SYMBOLS.is_literal
        memo = self.memo
        seen = {root}
        stack = [(i0, j0)]
        result = True
        while stack:
            i, j = stack.pop()
            key = i * n + j
            known = memo.get(key)
            if known is True:
                continue  # all pairs reachable from it pass too
            if known is False:
                result = False
                break
            if (any_mask >> j) & 1:
                continue
            if (any_mask >> i) & 1:
                memo[key] = False
                result = False
                break
            has_int = (int_mask >> j) & 1
            if (int_mask >> i) & 1 and not has_int:
                memo[key] = False
                result = False
                break
            row = self.by_sym[j]
            failed = False
            for sym, arg_tuple in zip(self.syms[i], self.args[i]):
                if has_int and is_literal[sym]:
                    continue
                other = row.get(sym)
                if other is None:
                    failed = True
                    break
                for c1, c2 in zip(arg_tuple, other):
                    child = c1 * n + c2
                    if child not in seen:
                        seen.add(child)
                        stack.append((c1, c2))
            if failed:
                memo[key] = False
                result = False
                break
        if result:
            for key in seen:
                memo[key] = True
        else:
            memo[root] = False
        return result


# Resolve the requested tier eagerly so the dispatch sites (here and in
# ``ops.py`` / ``grammar.py`` / ``pattern.py``) can read the module
# globals ``NATIVE`` / ``_NUMPY_MOD`` without a per-call probe.  The
# helper modules import nothing from this module at import time, so
# this cannot recurse.
_resolve_kernel()
