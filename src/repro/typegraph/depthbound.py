"""The Bruynooghe/Janssens-style finite subdomain (§7's alternative).

"To overcome this difficulty, Bruynooghe and Janssens use a finite
subdomain by restricting the number of occurrences of a functional
symbol on the paths of the graphs."  :func:`restrict_depth` enforces
that restriction by *folding*: when a functor key occurs more than
``k`` times on a tree path, the deeper occurrence's or-vertex is merged
(unioned) into the earlier one, introducing a cycle.  This is also the
normalization flavour of Gallagher & de Waal that §10 discusses —
"merging types with the same principal functors ... makes it
impossible to handle nested structures with the same functors", which
is precisely the accuracy gap the ablation harness measures against
the paper's widening.

The result is a finite domain for a fixed program signature:
``depth_bound_join`` (union followed by restriction) can therefore
replace the widening entirely, at the cost §10 describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .grammar import FuncAlt, Grammar, GrammarBuilder, normalize
from .graph import Vertex, treeify
from .ops import g_union

__all__ = ["restrict_depth", "depth_bound_join", "path_functor_depth"]

_FKey = Tuple[str, str, int]
_MAX_FOLD_ROUNDS = 60


def path_functor_depth(grammar: Grammar) -> int:
    """The largest number of occurrences of one functor key on a tree
    path of the graph view (cycles count once — their path re-enters an
    existing vertex)."""
    graph = treeify(grammar)
    best = [0]

    def walk(vertex: Vertex, counts: Dict[_FKey, int],
             on_path: Set[int]) -> None:
        if id(vertex) in on_path:
            return  # back edge: the path ends here
        if vertex.kind in ("functor", "int"):
            key = vertex.fkey
            counts = dict(counts)
            counts[key] = counts.get(key, 0) + 1
            best[0] = max(best[0], counts[key])
        on_path = on_path | {id(vertex)}
        for successor in vertex.successors:
            walk(successor, counts, on_path)

    walk(graph.root, {}, set())
    return best[0]


def _fold_once(grammar: Grammar, k: int) -> Optional[Grammar]:
    """Find one path with a functor repeated more than ``k`` times and
    merge the deepest occurrence into the earliest; None if clean."""
    graph = treeify(grammar)
    nts: Dict[int, int] = {}
    builder = GrammarBuilder()
    from .graph import vertex_rules
    root_nt = vertex_rules(graph.root, builder, nts)
    raw = Grammar({nt: frozenset(alts)
                   for nt, alts in builder._rules.items()}, root_nt)

    # Depth-first search for a violation; stacks[fkey] holds the
    # or-vertices that introduced each functor on the current path.
    violation: List[Tuple[Vertex, Vertex]] = []

    def search(vertex: Vertex, stacks: Dict[_FKey, List[Vertex]],
               on_path: Set[int]) -> bool:
        if id(vertex) in on_path or violation:
            return bool(violation)
        on_path = on_path | {id(vertex)}
        if vertex.kind == "or":
            for successor in vertex.successors:
                if successor.kind not in ("functor", "int"):
                    continue
                key = successor.fkey
                stack = stacks.get(key, [])
                if len(stack) >= k:
                    violation.append((stack[0], vertex))
                    return True
                stacks[key] = stack + [vertex]
                for child in successor.successors:
                    if search(child, stacks, on_path):
                        return True
                stacks[key] = stack
        return False

    search(graph.root, {}, set())
    if not violation:
        return None
    ancestor, deep = violation[0]
    nt_a, nt_d = nts[id(ancestor)], nts[id(deep)]
    if nt_a == nt_d:
        return None  # already the same vertex (cycle): clean
    return _merge_nonterminals(raw, nt_a, nt_d)


def _merge_nonterminals(grammar: Grammar, a: int, b: int) -> Grammar:
    """Quotient grammar where nonterminals ``a`` and ``b`` are merged
    (references preserved, so cycles form) and the principal functor
    restriction is restored by cascading child merges."""
    parent: Dict[int, int] = {}

    def find(nt: int) -> int:
        root = nt
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(nt, nt) != nt:
            parent[nt], nt = root, parent[nt]
        return root

    pending = [(a, b)]
    while pending:
        x, y = pending.pop()
        x, y = find(x), find(y)
        if x == y:
            continue
        parent[y] = x
        # same-functor alternatives of the merged class must agree on
        # their children: schedule those merges too (determinization)
        by_key: Dict[Tuple[str, str, int], FuncAlt] = {}
        for source in (x, y):
            for alt in grammar.rules[source]:
                if not isinstance(alt, FuncAlt):
                    continue
                other = by_key.get(alt.fkey)
                if other is None:
                    by_key[alt.fkey] = alt
                else:
                    pending.extend(zip(other.args, alt.args))

    # Rebuild with classes collapsed; one alternative per functor key.
    builder = GrammarBuilder()
    mapping: Dict[int, int] = {}
    for nt in grammar.rules:
        rep = find(nt)
        if rep not in mapping:
            mapping[rep] = builder.fresh()
    members: Dict[int, List[int]] = {}
    for nt in grammar.rules:
        members.setdefault(find(nt), []).append(nt)
    for rep, group in members.items():
        target = mapping[rep]
        seen: Dict[Tuple[str, str, int], bool] = {}
        for nt in group:
            for alt in grammar.rules[nt]:
                if isinstance(alt, FuncAlt):
                    if alt.fkey in seen:
                        continue  # children classes already merged
                    seen[alt.fkey] = True
                    builder.add(target, FuncAlt(
                        alt.name,
                        tuple(mapping[find(c)] for c in alt.args),
                        alt.is_int))
                else:
                    builder.add(target, alt)
    return builder.finish(mapping[find(grammar.root)])


def restrict_depth(grammar: Grammar, k: int = 1) -> Grammar:
    """Over-approximate ``grammar`` within the subdomain where no
    functor key occurs more than ``k`` times on a tree path."""
    if k < 1:
        raise ValueError("depth bound must be >= 1")
    current = grammar
    for _ in range(_MAX_FOLD_ROUNDS):
        folded = _fold_once(current, k)
        if folded is None:
            return current
        current = folded
    # Safety net: collapse to or-width-1 (finite and very coarse).
    return normalize(current, 1)


def depth_bound_join(g1: Grammar, g2: Grammar, k: int = 1) -> Grammar:
    """Upper bound in the finite subdomain: union then restriction.
    Substituting this for the widening gives the restriction-based
    analysis the ablation compares against §7's widening."""
    return restrict_depth(g_union(g1, g2), k)
