"""Operations on type grammars: inclusion, union, intersection, split.

These are the three operations of §6.9 (plus ``g_split``, the
unification helper used by ``Pat(Type)``).  On deterministic grammars
with empties pruned:

* ``g_le`` is *exact* inclusion (simulation between deterministic
  top-down automata);
* ``g_intersect`` is exact (product construction);
* ``g_union`` is the most precise union satisfying the principal
  functor restriction — same-functor alternatives are merged pointwise,
  which is where deterministic top-down automata lose expressiveness
  (§6.7's f(a,b)/f(b,a) example).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from . import arena, opcache
from .grammar import (ANY, INT, Alt, FuncAlt, Grammar, GrammarBuilder,
                      g_any, g_bottom, normalize)

__all__ = ["g_le", "g_equiv", "g_union", "g_intersect", "g_split",
           "g_list_of", "g_is_list"]

#: Open-coded memo tables for the two hottest operations (the generic
#: :func:`repro.typegraph.opcache.cached` helper allocates a closure
#: per call, which shows up at these call rates).
_LE_CACHE = opcache.cache_for("g_le")
_UNION_CACHE = opcache.cache_for("g_union")


# -- inclusion --------------------------------------------------------------

def g_le(g1: Grammar, g2: Grammar) -> bool:
    """``Cc(g1) <= Cc(g2)`` — exact on normalized grammars.

    Memoized on interned operand identities (see
    :mod:`repro.typegraph.opcache`); ``g1 is g2`` is free.
    """
    if g1 is g2:
        return True
    if g1.interned and g2.interned and opcache.enabled():
        cache = _LE_CACHE
        key = (g1.gid, g2.gid)
        value = cache.get(key)
        if value is None:
            value = _g_le_impl(g1, g2)
            cache.put(key, value)
        return value
    return _g_le_impl(g1, g2)


def _g_le_impl(g1: Grammar, g2: Grammar) -> bool:
    if arena.enabled() and g1.interned and g2.interned:
        if g1.is_bottom():
            return True
        if g2.is_bottom():
            return False
        return arena.arena_le(g1, g2)
    return _g_le_reference(g1, g2)


def _g_le_reference(g1: Grammar, g2: Grammar) -> bool:
    memo: Dict[Tuple[int, int], bool] = {}

    def le(n1: int, n2: int) -> bool:
        key = (n1, n2)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = True  # coinductive hypothesis
        alts2 = g2.rules[n2]
        if ANY in alts2:
            return True
        by_key = {a.fkey: a for a in alts2 if isinstance(a, FuncAlt)}
        has_int = INT in alts2
        ok = True
        for alt in g1.rules[n1]:
            if alt is ANY:
                ok = False  # nothing but ANY covers all terms
            elif alt is INT:
                ok = has_int
            else:
                assert isinstance(alt, FuncAlt)
                if alt.is_int and has_int:
                    continue
                other = by_key.get(alt.fkey)
                if other is None:
                    ok = False
                else:
                    ok = all(le(a, b) for a, b in zip(alt.args, other.args))
            if not ok:
                break
        memo[key] = ok
        return ok

    if g1.is_bottom():
        return True
    if g2.is_bottom():
        return False
    return le(g1.root, g2.root)


def g_equiv(g1: Grammar, g2: Grammar) -> bool:
    """Denotation equality."""
    return g_le(g1, g2) and g_le(g2, g1)


# -- union ------------------------------------------------------------------

def g_union(g1: Grammar, g2: Grammar,
            max_or_width: Optional[int] = None) -> Grammar:
    """Upper bound; exact union when principal functors are disjoint,
    pointwise-merged otherwise (principal functor restriction).

    Memoized on interned operand identities.
    """
    if g1.is_bottom():
        return normalize(g2, max_or_width)
    if g2.is_bottom():
        return normalize(g1, max_or_width)
    if g1 is g2:
        return normalize(g1, max_or_width)
    if g1.interned and g2.interned and opcache.enabled():
        cache = _UNION_CACHE
        key = (g1.gid, g2.gid, max_or_width)
        value = cache.get(key)
        if value is None:
            value = _g_union_impl(g1, g2, max_or_width)
            cache.put(key, value)
        return value
    return _g_union_impl(g1, g2, max_or_width)


def _g_union_impl(g1: Grammar, g2: Grammar,
                  max_or_width: Optional[int]) -> Grammar:
    if arena.enabled() and g1.interned and g2.interned:
        # Comparable operands: the pointwise merge of a <= b is b —
        # every reachable product pair mirrors an inclusion pair, so
        # the construction rebuilds b node for node and normalization
        # folds the copies back onto b.  An iterative pair walk is far
        # cheaper than product construction + normalization.
        if g_le(g1, g2):
            return normalize(g2, max_or_width)
        if g_le(g2, g1):
            return normalize(g1, max_or_width)
        return arena.arena_union(g1, g2, max_or_width)
    return _g_union_reference(g1, g2, max_or_width)


def _g_union_reference(g1: Grammar, g2: Grammar,
                       max_or_width: Optional[int]) -> Grammar:
    builder = GrammarBuilder()
    # keys: ('L', nt) from g1, ('R', nt) from g2, ('B', n1, n2) merged
    memo: Dict[tuple, int] = {}

    def visit(key: tuple) -> int:
        if key in memo:
            return memo[key]
        nt = builder.fresh()
        memo[key] = nt
        if key[0] == "L":
            alts: FrozenSet[Alt] = g1.rules[key[1]]
            side = "L"
            for alt in alts:
                builder.add(nt, _map_alt(alt, side))
            return nt
        if key[0] == "R":
            for alt in g2.rules[key[1]]:
                builder.add(nt, _map_alt(alt, "R"))
            return nt
        _, n1, n2 = key
        alts1, alts2 = g1.rules[n1], g2.rules[n2]
        if ANY in alts1 or ANY in alts2:
            builder.add(nt, ANY)
            return nt
        has_int = INT in alts1 or INT in alts2
        if has_int:
            builder.add(nt, INT)
        by1 = {a.fkey: a for a in alts1 if isinstance(a, FuncAlt)}
        by2 = {a.fkey: a for a in alts2 if isinstance(a, FuncAlt)}
        for fkey in sorted(set(by1) | set(by2)):
            if has_int and fkey[0] == "i":
                continue  # literal absorbed by INT
            a1, a2 = by1.get(fkey), by2.get(fkey)
            if a1 is not None and a2 is not None:
                children = tuple(visit(("B", c1, c2))
                                 for c1, c2 in zip(a1.args, a2.args))
                builder.add(nt, FuncAlt(a1.name, children, a1.is_int))
            elif a1 is not None:
                builder.add(nt, _map_alt(a1, "L"))
            else:
                assert a2 is not None
                builder.add(nt, _map_alt(a2, "R"))
        return nt

    def _map_alt(alt: Alt, side: str) -> Alt:
        if isinstance(alt, FuncAlt):
            return FuncAlt(alt.name,
                           tuple(visit((side, a)) for a in alt.args),
                           alt.is_int)
        return alt

    root = visit(("B", g1.root, g2.root))
    return builder.finish(root, max_or_width)


# -- intersection -----------------------------------------------------------

def g_intersect(g1: Grammar, g2: Grammar,
                max_or_width: Optional[int] = None) -> Grammar:
    """Exact intersection (product of deterministic automata).

    Memoized on interned operand identities.
    """
    if g1.is_bottom() or g2.is_bottom():
        return g_bottom()
    # The fast paths still apply the or-width cap, like every other
    # operation (a cap-violating operand must not leak through).
    if g1.is_any():
        return normalize(g2, max_or_width)
    if g2.is_any():
        return normalize(g1, max_or_width)
    if g1 is g2:
        return normalize(g1, max_or_width)
    if g1.interned and g2.interned:
        return opcache.cached(
            "g_intersect", (g1.gid, g2.gid, max_or_width),
            lambda: _g_intersect_impl(g1, g2, max_or_width))
    return _g_intersect_impl(g1, g2, max_or_width)


def _g_intersect_impl(g1: Grammar, g2: Grammar,
                      max_or_width: Optional[int]) -> Grammar:
    if arena.enabled() and g1.interned and g2.interned:
        # Comparable operands: a <= b makes the product rebuild a
        # (see the union shortcut; exact intersection of comparable
        # languages is the smaller one, node for node).
        if g_le(g1, g2):
            return normalize(g1, max_or_width)
        if g_le(g2, g1):
            return normalize(g2, max_or_width)
        return arena.arena_intersect(g1, g2, max_or_width)
    return _g_intersect_reference(g1, g2, max_or_width)


def _g_intersect_reference(g1: Grammar, g2: Grammar,
                           max_or_width: Optional[int]) -> Grammar:
    builder = GrammarBuilder()
    memo: Dict[tuple, int] = {}

    def embed(grammar: Grammar, nt: int, side: str) -> int:
        key = (side, nt)
        if key in memo:
            return memo[key]
        new = builder.fresh()
        memo[key] = new
        for alt in grammar.rules[nt]:
            if isinstance(alt, FuncAlt):
                builder.add(new, FuncAlt(
                    alt.name,
                    tuple(embed(grammar, a, side) for a in alt.args),
                    alt.is_int))
            else:
                builder.add(new, alt)
        return new

    def visit(n1: int, n2: int) -> int:
        key = ("B", n1, n2)
        if key in memo:
            return memo[key]
        nt = builder.fresh()
        memo[key] = nt
        alts1, alts2 = g1.rules[n1], g2.rules[n2]
        if ANY in alts1:
            builder.set_alts(nt, [
                FuncAlt(a.name, tuple(embed(g2, x, "R") for x in a.args),
                        a.is_int) if isinstance(a, FuncAlt) else a
                for a in alts2])
            return nt
        if ANY in alts2:
            builder.set_alts(nt, [
                FuncAlt(a.name, tuple(embed(g1, x, "L") for x in a.args),
                        a.is_int) if isinstance(a, FuncAlt) else a
                for a in alts1])
            return nt
        int1, int2 = INT in alts1, INT in alts2
        if int1 and int2:
            builder.add(nt, INT)
        by1 = {a.fkey: a for a in alts1 if isinstance(a, FuncAlt)}
        by2 = {a.fkey: a for a in alts2 if isinstance(a, FuncAlt)}
        for fkey in sorted(set(by1) & set(by2)):
            a1, a2 = by1[fkey], by2[fkey]
            children = tuple(visit(c1, c2)
                             for c1, c2 in zip(a1.args, a2.args))
            builder.add(nt, FuncAlt(a1.name, children, a1.is_int))
        if int2 and not int1:
            for alt in alts1:
                if isinstance(alt, FuncAlt) and alt.is_int:
                    builder.add(nt, alt)
        if int1 and not int2:
            for alt in alts2:
                if isinstance(alt, FuncAlt) and alt.is_int:
                    builder.add(nt, alt)
        return nt

    root = visit(g1.root, g2.root)
    return builder.finish(root, max_or_width)


# -- split (unification helper) ----------------------------------------------

def g_split(grammar: Grammar, name: str, arity: int,
            is_int: bool = False) -> Optional[Tuple[Grammar, ...]]:
    """Restrict ``grammar`` to terms with principal functor
    ``name/arity`` and return the argument types, or None if no term of
    the type has that functor.

    Used by abstract unification ``X = f(X1..Xn)`` in Pat(Type): the
    type of each ``Xi`` becomes the i-th returned grammar.
    """
    from .grammar import subgrammar
    alts = grammar.root_alts
    if ANY in alts:
        return tuple(g_any() for _ in range(arity))
    if is_int and INT in alts:
        return ()
    for alt in alts:
        if isinstance(alt, FuncAlt) and alt.fkey == \
                ("i" if is_int else "f", name, arity):
            return tuple(subgrammar(grammar, a) for a in alt.args)
    return None


# -- convenience types --------------------------------------------------------

def g_list_of(element: Grammar) -> Grammar:
    """The proper-list type ``T ::= [] | '.'(element, T)``."""
    builder = GrammarBuilder()
    root = builder.fresh()
    from .grammar import _embed
    elem_nt = _embed(builder, element)
    builder.add(root, FuncAlt("[]"))
    builder.add(root, FuncAlt(".", (elem_nt, root)))
    return builder.finish(root)


def g_is_list(grammar: Grammar) -> bool:
    """Is every term of the type a proper list?"""
    return g_le(grammar, g_list_of(g_any()))
