"""The type graph domain (paper §6–§7): grammars, graphs, operations,
the widening operator, and alternative views (tree automata, monadic
logic programs).  The hot kernels run on the flat-int arena
(:mod:`repro.typegraph.arena`) unless ``REPRO_ARENA`` disables it."""

from . import opcache
from .grammar import (ANY, INT, Alt, FuncAlt, Grammar, GrammarBuilder,
                      g_alternatives, g_any, g_atom, g_bottom, g_functor,
                      g_int, g_int_literal, intern_grammar, member,
                      normalize, normalize_reference, subgrammar)
from . import arena
from .ops import (g_equiv, g_intersect, g_is_list, g_le, g_list_of,
                  g_split, g_union)
from .widening import g_widen, widening_clashes
from .graph import TypeGraph, Vertex, to_grammar, treeify
from .display import grammar_rules, grammar_to_text, parse_rules
from .views import TreeAutomaton, monadic_text, to_automaton, to_monadic_program
from .depthbound import depth_bound_join, restrict_depth

__all__ = [
    "ANY", "INT", "Alt", "FuncAlt", "Grammar", "GrammarBuilder",
    "arena",
    "g_alternatives", "g_any", "g_atom", "g_bottom", "g_functor",
    "g_int", "g_int_literal", "intern_grammar", "member", "normalize",
    "normalize_reference", "opcache", "subgrammar",
    "g_equiv", "g_intersect", "g_is_list", "g_le", "g_list_of",
    "g_split", "g_union",
    "g_widen", "widening_clashes",
    "TypeGraph", "Vertex", "to_grammar", "treeify",
    "grammar_rules", "grammar_to_text", "parse_rules",
    "TreeAutomaton", "monadic_text", "to_automaton", "to_monadic_program",
    "depth_bound_join", "restrict_depth",
]
