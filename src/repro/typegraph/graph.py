"""Type graphs: the tree + back-edge view of a type grammar.

This is the representation of §6.1 with the cosmetic restrictions of
§6.4 holding *by construction*:

* **Flip-Flop** — or-vertices alternate with functor/any/int vertices;
  the root is an or-vertex.
* **Or-Cycle** — every cycle's initial vertex is an or-vertex (back
  edges always target or-vertices on the current path).
* **No-Sharing** — removing the closing edge of every canonical cycle
  leaves a tree: :func:`treeify` duplicates shared subgraphs and only
  re-uses a vertex when it is an *ancestor* on the path being built.
* **Isolated-Any** — guaranteed by grammar normalization (Any
  absorption).

Because of No-Sharing, each vertex has a unique tree parent and its
tree depth equals the paper's ``depth`` (length of the shortest path
from the root).  The widening (§7) manipulates this view and converts
back with :func:`to_grammar`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .grammar import (ANY, INT, INT_FKEY, Alt, FuncAlt, Grammar,
                      GrammarBuilder, _alt_sort_key)

__all__ = ["Vertex", "TypeGraph", "treeify", "to_grammar",
           "vertex_rules"]

_TREEIFY_VERTEX_LIMIT = 250000


class Vertex:
    """One type-graph vertex.  ``kind`` is ``or``, ``functor``, ``any``
    or ``int`` (the latter two are the Any leaf of §6.1 and the Integer
    extension)."""

    __slots__ = ("kind", "name", "is_int", "successors", "parent",
                 "depth", "_pf")

    def __init__(self, kind: str, name: str = "",
                 is_int: bool = False,
                 parent: Optional["Vertex"] = None) -> None:
        self.kind = kind
        self.name = name
        self.is_int = is_int
        self.successors: List["Vertex"] = []
        self.parent = parent
        self.depth = -1
        #: lazily cached pf-set; invalidated by :meth:`clear_pf` when a
        #: transformation edits ``successors`` (the widening re-unfolds
        #: the graph after every transformation, so in practice caches
        #: live for exactly one clash-detection/ancestor-scan phase).
        self._pf = None

    @property
    def fkey(self) -> Tuple[str, str, int]:
        """Functor identity for pf-set computation."""
        if self.kind == "int":
            return INT_FKEY
        assert self.kind == "functor"
        return ("i" if self.is_int else "f", self.name,
                len(self.successors))

    def pf(self) -> FrozenSet[Tuple[str, str, int]]:
        """Principal-functor set (§6.3): functors of the successors for
        or-vertices; empty for any-vertices.  Cached per vertex (the
        widening's clash detection and ancestor scans re-query the same
        vertices many times per step)."""
        pf = self._pf
        if pf is None:
            if self.kind == "or":
                pf = frozenset(s.fkey for s in self.successors
                               if s.kind in ("functor", "int"))
            elif self.kind in ("functor", "int"):
                pf = frozenset([self.fkey])
            else:
                pf = frozenset()
            self._pf = pf
        return pf

    def clear_pf(self) -> None:
        self._pf = None

    def __repr__(self) -> str:
        if self.kind == "functor":
            return "<functor %s/%d @%d>" % (self.name,
                                            len(self.successors), self.depth)
        return "<%s @%d>" % (self.kind, self.depth)


class TypeGraph:
    """A rooted type graph.  Build with :func:`treeify`."""

    def __init__(self, root: Vertex, refresh: bool = True) -> None:
        self.root = root
        if refresh:
            self.refresh()

    def refresh(self) -> None:
        """Recompute depths (tree depth = shortest-path depth, thanks to
        No-Sharing) after a transformation."""
        seen = set()
        queue: deque = deque([(self.root, 0)])
        while queue:
            vertex, depth = queue.popleft()
            if id(vertex) in seen:
                continue
            seen.add(id(vertex))
            vertex.depth = depth
            for successor in vertex.successors:
                if id(successor) not in seen:
                    queue.append((successor, depth + 1))

    def vertices(self) -> Iterator[Vertex]:
        seen = set()
        queue: deque = deque([self.root])
        while queue:
            vertex = queue.popleft()
            if id(vertex) in seen:
                continue
            seen.add(id(vertex))
            yield vertex
            queue.extend(vertex.successors)

    def size(self) -> int:
        """Vertices + edges (§6.3)."""
        vertex_count = 0
        edge_count = 0
        for vertex in self.vertices():
            vertex_count += 1
            edge_count += len(vertex.successors)
        return vertex_count + edge_count

    @staticmethod
    def or_ancestors(vertex: Vertex) -> List[Vertex]:
        """Or-vertices strictly above ``vertex`` on its tree path,
        nearest first."""
        result = []
        current = vertex.parent
        while current is not None:
            if current.kind == "or":
                result.append(current)
            current = current.parent
        return result


def treeify(grammar: Grammar) -> TypeGraph:
    """Unfold a grammar into a type graph satisfying the cosmetic
    restrictions.  Shared nonterminals are duplicated; a back edge is
    created only when a nonterminal recurs on the current path.

    Iterative DFS with an explicit task stack: ``path`` holds exactly
    the or-nonterminals between the root and the task being executed
    (their "exit" markers are still on the stack), so back-edge
    resolution matches the recursive formulation — without Python's
    recursion limit capping the unfold depth.
    """
    from . import arena as _arena
    use_arena = grammar.interned and _arena.enabled()
    if use_arena:
        # Arena rows are pre-sorted in canonical alternative order, so
        # the unfold skips both the per-nonterminal sort and the
        # FuncAlt object walk.
        ar = _arena.arena_of(grammar)
        fkeys = _arena.SYMBOLS.fkeys
        root_nt = ar.index_of(grammar.root)
    else:
        root_nt = grammar.root
    count = 0
    path: Dict[int, Vertex] = {}
    root_holder: List[Vertex] = []
    # task: ("or", nt, parent_vertex, destination_list) | ("exit", nt)
    stack: List[tuple] = [("or", root_nt, None, root_holder)]
    while stack:
        task = stack.pop()
        if task[0] == "exit":
            del path[task[1]]
            continue
        _, nt, parent, dest = task
        existing = path.get(nt)
        if existing is not None:
            dest.append(existing)  # back edge to an ancestor or-vertex
            continue
        count += 1
        if count > _TREEIFY_VERTEX_LIMIT:
            raise RecursionError("type graph too large to unfold")
        vertex = Vertex("or", parent=parent)
        # Tree depth is shortest-path depth under No-Sharing (back
        # edges only ever point *up*), so depths can be assigned at
        # construction instead of by a second BFS pass.
        vertex.depth = 0 if parent is None else parent.depth + 1
        path[nt] = vertex
        dest.append(vertex)
        stack.append(("exit", nt))
        # ANY/INT sort before functors, so appending the leaves now and
        # the functor vertices in alternative order keeps the canonical
        # successor ordering; only the argument subtrees are deferred.
        pending: List[Vertex] = []
        pending_args: List[Tuple[int, ...]] = []
        if use_arena:
            if (ar.any_mask >> nt) & 1:
                leaf = Vertex("any", parent=vertex)
                leaf.depth = vertex.depth + 1
                vertex.successors.append(leaf)
            if (ar.int_mask >> nt) & 1:
                leaf = Vertex("int", parent=vertex)
                leaf.depth = vertex.depth + 1
                vertex.successors.append(leaf)
            for sym, args in zip(ar.syms[nt], ar.args[nt]):
                kind, name, _ = fkeys[sym]
                child = Vertex("functor", name, kind == "i",
                               parent=vertex)
                child.depth = vertex.depth + 1
                vertex.successors.append(child)
                pending.append(child)
                pending_args.append(args)
        else:
            for alt in sorted(grammar.rules[nt], key=_alt_sort_key):
                if alt is ANY:
                    leaf = Vertex("any", parent=vertex)
                    leaf.depth = vertex.depth + 1
                    vertex.successors.append(leaf)
                elif alt is INT:
                    leaf = Vertex("int", parent=vertex)
                    leaf.depth = vertex.depth + 1
                    vertex.successors.append(leaf)
                else:
                    assert isinstance(alt, FuncAlt)
                    child = Vertex("functor", alt.name, alt.is_int,
                                   parent=vertex)
                    child.depth = vertex.depth + 1
                    vertex.successors.append(child)
                    pending.append(child)
                    pending_args.append(alt.args)
        for child, args in zip(reversed(pending), reversed(pending_args)):
            for arg in reversed(args):
                stack.append(("or", arg, child, child.successors))
    return TypeGraph(root_holder[0], refresh=False)


def vertex_rules(root: Vertex, builder: GrammarBuilder,
                 nts: Dict[int, int]) -> int:
    """Record the rules of the or-vertices reachable from ``root``
    into ``builder`` (iterative BFS; ``nts`` maps ``id(or_vertex)`` ->
    nonterminal).  Returns the root's nonterminal.  The numbering is
    discovery order — callers either normalize the result (which
    renumbers canonically) or only use nonterminals through ``nts``.
    """
    queue: List[Vertex] = [root]
    nts[id(root)] = builder.fresh()
    position = 0
    while position < len(queue):
        vertex = queue[position]
        position += 1
        nt = nts[id(vertex)]
        for successor in vertex.successors:
            if successor.kind == "any":
                builder.add(nt, ANY)
            elif successor.kind == "int":
                builder.add(nt, INT)
            else:
                assert successor.kind == "functor"
                children = []
                for child in successor.successors:
                    child_nt = nts.get(id(child))
                    if child_nt is None:
                        child_nt = builder.fresh()
                        nts[id(child)] = child_nt
                        queue.append(child)
                    children.append(child_nt)
                builder.add(nt, FuncAlt(successor.name, tuple(children),
                                        successor.is_int))
    return nts[id(root)]


def to_grammar(graph: TypeGraph,
               max_or_width: Optional[int] = None) -> Grammar:
    """Convert back to a (normalized) grammar.  Vertices no longer
    reachable from the root are dropped — this is the paper's
    ``removeUnconnected``."""
    from . import arena as _arena
    if _arena.enabled():
        return _arena.graph_to_grammar(graph.root, max_or_width)
    builder = GrammarBuilder()
    return builder.finish(vertex_rules(graph.root, builder, {}),
                          max_or_width)
