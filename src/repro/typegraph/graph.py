"""Type graphs: the tree + back-edge view of a type grammar.

This is the representation of §6.1 with the cosmetic restrictions of
§6.4 holding *by construction*:

* **Flip-Flop** — or-vertices alternate with functor/any/int vertices;
  the root is an or-vertex.
* **Or-Cycle** — every cycle's initial vertex is an or-vertex (back
  edges always target or-vertices on the current path).
* **No-Sharing** — removing the closing edge of every canonical cycle
  leaves a tree: :func:`treeify` duplicates shared subgraphs and only
  re-uses a vertex when it is an *ancestor* on the path being built.
* **Isolated-Any** — guaranteed by grammar normalization (Any
  absorption).

Because of No-Sharing, each vertex has a unique tree parent and its
tree depth equals the paper's ``depth`` (length of the shortest path
from the root).  The widening (§7) manipulates this view and converts
back with :func:`to_grammar`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .grammar import (ANY, INT, INT_FKEY, Alt, FuncAlt, Grammar,
                      GrammarBuilder, _alt_sort_key)

__all__ = ["Vertex", "TypeGraph", "treeify", "to_grammar"]

_TREEIFY_VERTEX_LIMIT = 250000


class Vertex:
    """One type-graph vertex.  ``kind`` is ``or``, ``functor``, ``any``
    or ``int`` (the latter two are the Any leaf of §6.1 and the Integer
    extension)."""

    __slots__ = ("kind", "name", "is_int", "successors", "parent", "depth")

    def __init__(self, kind: str, name: str = "",
                 is_int: bool = False,
                 parent: Optional["Vertex"] = None) -> None:
        self.kind = kind
        self.name = name
        self.is_int = is_int
        self.successors: List["Vertex"] = []
        self.parent = parent
        self.depth = -1

    @property
    def fkey(self) -> Tuple[str, str, int]:
        """Functor identity for pf-set computation."""
        if self.kind == "int":
            return INT_FKEY
        assert self.kind == "functor"
        return ("i" if self.is_int else "f", self.name,
                len(self.successors))

    def pf(self) -> FrozenSet[Tuple[str, str, int]]:
        """Principal-functor set (§6.3): functors of the successors for
        or-vertices; empty for any-vertices."""
        if self.kind == "or":
            return frozenset(s.fkey for s in self.successors
                             if s.kind in ("functor", "int"))
        if self.kind in ("functor", "int"):
            return frozenset([self.fkey])
        return frozenset()

    def __repr__(self) -> str:
        if self.kind == "functor":
            return "<functor %s/%d @%d>" % (self.name,
                                            len(self.successors), self.depth)
        return "<%s @%d>" % (self.kind, self.depth)


class TypeGraph:
    """A rooted type graph.  Build with :func:`treeify`."""

    def __init__(self, root: Vertex) -> None:
        self.root = root
        self.refresh()

    def refresh(self) -> None:
        """Recompute depths (tree depth = shortest-path depth, thanks to
        No-Sharing) after a transformation."""
        seen = set()
        queue: deque = deque([(self.root, 0)])
        while queue:
            vertex, depth = queue.popleft()
            if id(vertex) in seen:
                continue
            seen.add(id(vertex))
            vertex.depth = depth
            for successor in vertex.successors:
                if id(successor) not in seen:
                    queue.append((successor, depth + 1))

    def vertices(self) -> Iterator[Vertex]:
        seen = set()
        queue: deque = deque([self.root])
        while queue:
            vertex = queue.popleft()
            if id(vertex) in seen:
                continue
            seen.add(id(vertex))
            yield vertex
            queue.extend(vertex.successors)

    def size(self) -> int:
        """Vertices + edges (§6.3)."""
        vertex_count = 0
        edge_count = 0
        for vertex in self.vertices():
            vertex_count += 1
            edge_count += len(vertex.successors)
        return vertex_count + edge_count

    @staticmethod
    def or_ancestors(vertex: Vertex) -> List[Vertex]:
        """Or-vertices strictly above ``vertex`` on its tree path,
        nearest first."""
        result = []
        current = vertex.parent
        while current is not None:
            if current.kind == "or":
                result.append(current)
            current = current.parent
        return result


def treeify(grammar: Grammar) -> TypeGraph:
    """Unfold a grammar into a type graph satisfying the cosmetic
    restrictions.  Shared nonterminals are duplicated; a back edge is
    created only when a nonterminal recurs on the current path."""
    count = [0]

    def build(nt: int, parent: Optional[Vertex],
              path: Dict[int, Vertex]) -> Vertex:
        if nt in path:
            return path[nt]  # back edge to an ancestor or-vertex
        count[0] += 1
        if count[0] > _TREEIFY_VERTEX_LIMIT:
            raise RecursionError("type graph too large to unfold")
        vertex = Vertex("or", parent=parent)
        path[nt] = vertex
        for alt in sorted(grammar.rules[nt], key=_alt_sort_key):
            if alt is ANY:
                vertex.successors.append(Vertex("any", parent=vertex))
            elif alt is INT:
                vertex.successors.append(Vertex("int", parent=vertex))
            else:
                assert isinstance(alt, FuncAlt)
                child = Vertex("functor", alt.name, alt.is_int,
                               parent=vertex)
                child.successors = [build(a, child, path)
                                    for a in alt.args]
                vertex.successors.append(child)
        del path[nt]
        return vertex

    return TypeGraph(build(grammar.root, None, {}))


def to_grammar(graph: TypeGraph,
               max_or_width: Optional[int] = None) -> Grammar:
    """Convert back to a (normalized) grammar.  Vertices no longer
    reachable from the root are dropped — this is the paper's
    ``removeUnconnected``."""
    builder = GrammarBuilder()
    nts: Dict[int, int] = {}

    def or_nt(vertex: Vertex) -> int:
        key = id(vertex)
        if key in nts:
            return nts[key]
        nt = builder.fresh()
        nts[key] = nt
        for successor in vertex.successors:
            if successor.kind == "any":
                builder.add(nt, ANY)
            elif successor.kind == "int":
                builder.add(nt, INT)
            else:
                assert successor.kind == "functor"
                children = tuple(or_nt(c) for c in successor.successors)
                builder.add(nt, FuncAlt(successor.name, children,
                                        successor.is_int))
        return nt

    return builder.finish(or_nt(graph.root), max_or_width)
