"""Alternative views of type graphs (paper §6.7–§6.8).

* :func:`to_automaton` — the deterministic top-down tree automaton a
  grammar corresponds to (states = nonterminals, transitions = rules);
* :func:`to_monadic_program` — the monadic logic program whose success
  set is the denotation.  The generated program runs on the package's
  own SLD interpreter, which gives an executable cross-check of
  membership (used by the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..prolog.program import Clause, Program
from ..prolog.terms import Atom, Int, Struct, Term, Var
from .grammar import ANY, INT, FuncAlt, Grammar

__all__ = ["TreeAutomaton", "to_automaton", "to_monadic_program",
           "monadic_text"]


@dataclass
class TreeAutomaton:
    """A top-down tree automaton with an ``any`` pseudo-state.

    ``transitions[state]`` maps functor keys ``(kind, name, arity)`` to
    child-state tuples.  The ``any``/``int`` flags mark states
    accepting every term / every integer.
    """

    initial: int
    transitions: Dict[int, Dict[Tuple[str, str, int], Tuple[int, ...]]] = \
        field(default_factory=dict)
    any_states: FrozenSet[int] = frozenset()
    int_states: FrozenSet[int] = frozenset()

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def is_deterministic(self) -> bool:
        """Always true for grammars obeying the principal functor
        restriction (§6.7: deterministic top-down automata)."""
        return all(len(set(t)) == len(t) for t in self.transitions.values())

    def accepts(self, term: Term, state: Optional[int] = None) -> bool:
        state = self.initial if state is None else state
        if state in self.any_states:
            return True
        if isinstance(term, Var):
            return False
        if isinstance(term, Int):
            if state in self.int_states:
                return True
            key = ("i", str(term.value), 0)
            return key in self.transitions.get(state, {})
        if isinstance(term, Atom):
            return ("f", term.name, 0) in self.transitions.get(state, {})
        assert isinstance(term, Struct)
        children = self.transitions.get(state, {}).get(
            ("f", term.name, term.arity))
        if children is None:
            return False
        return all(self.accepts(sub, child)
                   for sub, child in zip(term.args, children))


def to_automaton(grammar: Grammar) -> TreeAutomaton:
    """The automaton view: one state per nonterminal."""
    transitions: Dict[int, Dict[Tuple[str, str, int], Tuple[int, ...]]] = {}
    any_states = set()
    int_states = set()
    for nt, alts in grammar.rules.items():
        transitions[nt] = {}
        for alt in alts:
            if alt is ANY:
                any_states.add(nt)
            elif alt is INT:
                int_states.add(nt)
            else:
                assert isinstance(alt, FuncAlt)
                transitions[nt][alt.fkey] = alt.args
    return TreeAutomaton(grammar.root, transitions,
                         frozenset(any_states), frozenset(int_states))


def _pred_name(nt: int) -> str:
    return "t%d" % nt


def to_monadic_program(grammar: Grammar,
                       entry: str = "accept") -> Program:
    """The monadic logic program of §6.8.

    One procedure per nonterminal; ``any/1`` always succeeds;
    integers are tested with ``integer/1``.  The ``entry/1`` predicate
    recognizes exactly the denotation (modulo the interpreter's
    bounds).
    """
    program = Program()
    x = Var("X")
    program.add_clause(Clause(Struct(entry, (x,)),
                              [Struct(_pred_name(grammar.root), (x,))]))
    program.add_clause(Clause(Struct("any", (x,)), []))
    needs_any = False
    for nt in sorted(grammar.rules):
        head_var = Var("X")
        pred = _pred_name(nt)
        for alt in sorted(grammar.rules[nt], key=repr):
            if alt is ANY:
                program.add_clause(Clause(Struct(pred, (head_var,)),
                                          [Struct("any", (head_var,))]))
                needs_any = True
            elif alt is INT:
                program.add_clause(Clause(
                    Struct(pred, (head_var,)),
                    [Struct("integer", (head_var,))]))
            elif isinstance(alt, FuncAlt) and alt.is_int:
                program.add_clause(Clause(
                    Struct(pred, (Int(int(alt.name)),)), []))
            else:
                assert isinstance(alt, FuncAlt)
                if not alt.args:
                    program.add_clause(Clause(
                        Struct(pred, (Atom(alt.name),)), []))
                else:
                    arg_vars = tuple(Var("X%d" % i)
                                     for i in range(len(alt.args)))
                    head = Struct(pred, (Struct(alt.name, arg_vars),))
                    body = [Struct(_pred_name(child), (v,))
                            for v, child in zip(arg_vars, alt.args)]
                    program.add_clause(Clause(head, body))
    del needs_any
    return program


def monadic_text(grammar: Grammar, entry: str = "accept") -> str:
    """The monadic program as Prolog source text."""
    program = to_monadic_program(grammar, entry)
    return "\n".join(repr(clause) for clause in program.all_clauses())
