"""Deterministic regular tree grammars — the canonical form of types.

A :class:`Grammar` is the paper's type graph in grammar clothing
(§6.7): a set of rules ``N -> alt | alt | ...`` where an alternative is

* :data:`ANY` — any term (the paper's any-vertex),
* :data:`INT` — any integer (the "more types can be added easily"
  extension of §6.1; integer literals are nullary functors with
  ``literal <= INT`` subtyping),
* :class:`FuncAlt` — ``f(N1, ..., Nk)``.

Invariants maintained by :func:`normalize` (the grammar-side image of
the paper's cosmetic + principal-functor restrictions, §6.4–6.5):

* **Any absorption** (Isolated-Any): ``ANY`` never coexists with other
  alternatives.
* **Int absorption**: ``INT`` absorbs integer-literal alternatives.
* **Principal functor restriction**: at most one alternative per
  functor key, so grammars are deterministic top-down tree automata.
* Empty alternatives/nonterminals are pruned, unreachable nonterminals
  dropped, bisimilar nonterminals merged, and everything renumbered in
  BFS order — so structurally equal grammars compare equal with ``==``.

The widening (§7) does *not* live here; it works on the tree+back-edge
view in :mod:`repro.typegraph.graph`.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..prolog.terms import Atom, Int, Struct, Term, Var
from . import opcache

__all__ = [
    "ANY", "INT", "FuncAlt", "Alt", "Grammar", "GrammarBuilder",
    "normalize", "normalize_reference", "intern_grammar", "g_any",
    "g_bottom", "g_int", "g_atom", "g_int_literal", "g_functor",
    "g_alternatives", "nonempty_nonterminals", "member", "pf_of",
]


class _AnyAlt:
    """The alternative recognizing every term (including variables)."""

    __slots__ = ()
    _instance: Optional["_AnyAlt"] = None

    def __new__(cls) -> "_AnyAlt":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Any"


class _IntAlt:
    """The alternative recognizing every integer."""

    __slots__ = ()
    _instance: Optional["_IntAlt"] = None

    def __new__(cls) -> "_IntAlt":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Integer"


ANY = _AnyAlt()
INT = _IntAlt()


class FuncAlt:
    """Alternative ``name(args...)``; ``is_int`` marks integer literals
    (then arity is 0 and ``name`` is the decimal text).

    A slotted value class rather than a frozen dataclass: alternatives
    are hashed constantly (frozenset rules, structural grammar keys),
    so the hash is computed once at construction and served from a
    slot."""

    __slots__ = ("name", "args", "is_int", "_hashv")

    def __init__(self, name: str, args: Tuple[int, ...] = (),
                 is_int: bool = False) -> None:
        self.name = name
        self.args = args
        self.is_int = is_int
        self._hashv = hash((name, args, is_int))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, FuncAlt):
            return NotImplemented
        return (self._hashv == other._hashv and self.name == other.name
                and self.args == other.args and self.is_int == other.is_int)

    def __hash__(self) -> int:
        return self._hashv

    def __reduce__(self):
        return (FuncAlt, (self.name, self.args, self.is_int))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def fkey(self) -> Tuple[str, str, int]:
        """Functor identity: (kind, name, arity)."""
        return ("i" if self.is_int else "f", self.name, len(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        return "%s(%s)" % (self.name, ",".join("N%d" % a for a in self.args))


Alt = object  # union of _AnyAlt | _IntAlt | FuncAlt
INT_FKEY = ("I", "$integer", 0)


def _alt_sort_key(alt: Alt) -> tuple:
    if alt is ANY:
        return (0, "", 0)
    if alt is INT:
        return (1, "", 0)
    assert isinstance(alt, FuncAlt)
    return (2,) + alt.fkey


class Grammar:
    """An immutable, normalized tree grammar.  Construct through the
    ``g_*`` helpers, :class:`GrammarBuilder`, or the operations in
    :mod:`repro.typegraph.ops` — never by mutating ``rules``.

    Grammars returned by :func:`normalize` (hence by every public
    constructor and operation) are *interned*: structurally equal
    results are the same object, ``==`` is an identity check on the
    hot path, and ``hash`` is a precomputed field.  ``interned`` marks
    canonical instances; raw intermediates (e.g. the widening's
    vertex-view grammars) keep the structural slow paths.
    """

    __slots__ = ("rules", "root", "_hash", "_key_cache", "_obj_cache",
                 "interned", "gid", "_arena", "__weakref__")

    def __init__(self, rules: Dict[int, FrozenSet[Alt]], root: int) -> None:
        self.rules = rules
        self.root = root
        self._hash: Optional[int] = None
        self._key_cache: Optional[tuple] = None
        self._obj_cache: Optional[dict] = None
        self.interned = False
        #: dense per-process arena id, assigned at interning (-1 until
        #: then); never reused, so int-keyed memo tables stay sound
        #: even after the weak intern table drops the grammar.
        self.gid = -1
        #: lazily compiled :class:`repro.typegraph.arena.GrammarArena`.
        self._arena = None

    def alts(self, nt: int) -> FrozenSet[Alt]:
        return self.rules[nt]

    @property
    def root_alts(self) -> FrozenSet[Alt]:
        return self.rules[self.root]

    def is_bottom(self) -> bool:
        """Does this grammar denote the empty set of terms?"""
        return not self.rules[self.root]

    def is_any(self) -> bool:
        return ANY in self.rules[self.root]

    def num_nonterminals(self) -> int:
        return len(self.rules)

    def size(self) -> int:
        """Vertices + edges of the corresponding type graph, the measure
        used by the widening termination argument (§6.3)."""
        vertices = len(self.rules)
        edges = 0
        for alts in self.rules.values():
            for alt in alts:
                vertices += 1
                edges += 1  # or-vertex -> alternative
                if isinstance(alt, FuncAlt):
                    edges += len(alt.args)
        return vertices + edges

    def pf(self, nt: Optional[int] = None) -> FrozenSet[Tuple[str, str, int]]:
        """Principal-functor set of a nonterminal (§6.3); ANY yields
        the empty set, as for the paper's any-vertices."""
        alts = self.rules[self.root if nt is None else nt]
        keys = []
        for alt in alts:
            if alt is INT:
                keys.append(INT_FKEY)
            elif isinstance(alt, FuncAlt):
                keys.append(alt.fkey)
        return frozenset(keys)

    def _key(self) -> tuple:
        key = self._key_cache
        if key is None:
            key = (self.root,
                   tuple(sorted((nt, tuple(sorted(alts, key=_alt_sort_key)))
                                for nt, alts in self.rules.items())))
            self._key_cache = key
        return key

    # -- canonical plain-object form (service serialization layer) ----------

    def to_obj(self) -> dict:
        """JSON-ready canonical encoding: rules sorted by nonterminal,
        alternatives in :func:`_alt_sort_key` order, so equal grammars
        encode to identical objects (content-addressable).

        Memoized on interned instances (the service layer re-encodes
        the same shared grammars constantly); treat the returned
        object as read-only."""
        if self._obj_cache is not None:
            return self._obj_cache
        rules = []
        for nt in sorted(self.rules):
            alts = []
            for alt in sorted(self.rules[nt], key=_alt_sort_key):
                if alt is ANY:
                    alts.append(["any"])
                elif alt is INT:
                    alts.append(["int"])
                else:
                    assert isinstance(alt, FuncAlt)
                    if alt.is_int:
                        alts.append(["i", alt.name])
                    else:
                        alts.append(["f", alt.name, list(alt.args)])
            rules.append([nt, alts])
        obj = {"root": self.root, "rules": rules}
        if self.interned:
            self._obj_cache = obj
        return obj

    @classmethod
    def from_obj(cls, data: dict) -> "Grammar":
        """Inverse of :meth:`to_obj`.  Re-normalizes, so hand-edited or
        foreign encodings still yield a canonical grammar (for outputs
        of :meth:`to_obj` normalization is the identity)."""
        rules: Dict[int, FrozenSet[Alt]] = {}
        for nt, alts in data["rules"]:
            decoded: List[Alt] = []
            for alt in alts:
                kind = alt[0]
                if kind == "any":
                    decoded.append(ANY)
                elif kind == "int":
                    decoded.append(INT)
                elif kind == "i":
                    decoded.append(FuncAlt(alt[1], (), True))
                elif kind == "f":
                    decoded.append(FuncAlt(alt[1], tuple(alt[2])))
                else:
                    raise ValueError("unknown alternative kind: %r" % kind)
            rules[int(nt)] = frozenset(decoded)
        return normalize(cls(rules, int(data["root"])))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Grammar):
            return NotImplemented
        if self.interned and other.interned:
            return False  # interning makes structural equality identity
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __reduce__(self):
        # Canonical identity is per-process: an unpickled grammar must
        # re-enter the receiving process's intern table (or arrive as a
        # plain structural grammar), never claim to be interned there.
        return (_unpickle_grammar, (self.rules, self.root, self.interned))

    def __repr__(self) -> str:
        from .display import grammar_to_text
        return grammar_to_text(self)


class GrammarBuilder:
    """Mutable staging area for constructing grammars."""

    def __init__(self) -> None:
        self._rules: Dict[int, List[Alt]] = {}
        self._next = 0

    def fresh(self) -> int:
        nt = self._next
        self._next += 1
        self._rules[nt] = []
        return nt

    def add(self, nt: int, alt: Alt) -> None:
        self._rules[nt].append(alt)

    def set_alts(self, nt: int, alts: Iterable[Alt]) -> None:
        self._rules[nt] = list(alts)

    def finish(self, root: int,
               max_or_width: Optional[int] = None) -> Grammar:
        rules = {nt: frozenset(alts) for nt, alts in self._rules.items()}
        return normalize(Grammar(rules, root), max_or_width)


def _unpickle_grammar(rules: Dict[int, FrozenSet[Alt]], root: int,
                      was_interned: bool) -> "Grammar":
    grammar = Grammar(rules, root)
    if was_interned:  # was normalized, so interning directly is sound
        return intern_grammar(grammar)
    return grammar


# -- interning ---------------------------------------------------------------

#: Process-wide weak intern table: canonical key -> the one shared
#: Grammar instance.  Weak values, so grammars no longer referenced
#: anywhere are collected and do not pin memory for a long-lived
#: service process.
_INTERN: "weakref.WeakValueDictionary[tuple, Grammar]" = \
    weakref.WeakValueDictionary()

#: Guards the probe-then-insert of :func:`intern_grammar` and the gid
#: counter.  Canonicality is an *identity* invariant: an unguarded
#: check-then-insert race would let two threads intern two distinct
#: instances for one structural key, silently breaking ``==`` between
#: values produced on different threads.  The analysis hot loops run
#: single-threaded per process (see :mod:`repro.typegraph.opcache`),
#: but interning is also reached from service control paths (cache
#: decode, request keying), so it takes the lock unconditionally — one
#: uncontended acquire per *newly seen* grammar is noise next to the
#: normalization that precedes it.
_INTERN_LOCK = threading.Lock()

#: Next arena id handed to a newly interned grammar (monotonic, never
#: reused — see :attr:`Grammar.gid`).
_NEXT_GID = 0


def intern_grammar(grammar: Grammar) -> Grammar:
    """Canonical shared instance of an already-*normalized* grammar.

    The first grammar seen for a given structural key becomes the
    canonical instance (with its hash precomputed); later structurally
    equal grammars resolve to it.  Interned grammars compare with a
    pure identity check, which is what makes the operation caches in
    :mod:`repro.typegraph.opcache` cheap to key.  Thread-safe.
    """
    global _NEXT_GID
    if grammar.interned:
        return grammar
    key = grammar._key()
    with _INTERN_LOCK:
        # setdefault hashes the (large, uncached) key tuple once,
        # where a get-then-insert would hash it twice more; the
        # grammar's own hash fills in lazily from the cached key.
        canonical = _INTERN.setdefault(key, grammar)
        if canonical is grammar:
            grammar.interned = True
            grammar.gid = _NEXT_GID
            _NEXT_GID += 1
    return canonical


# -- normalization ----------------------------------------------------------

def nonempty_nonterminals(rules: Dict[int, FrozenSet[Alt]]) -> set:
    """Least fixpoint of "has at least one finite tree".

    Worklist formulation: each functor alternative tracks how many of
    its argument nonterminals are still unproven; proving a
    nonterminal decrements the counters of the alternatives waiting on
    it.  Linear in the grammar size, replacing the quadratic
    restart-the-scan loop.
    """
    nonempty: set = set()
    # waiting[nt] = list of counter cells for alternatives blocked on nt
    waiting: Dict[int, List[List]] = {}
    queue: deque = deque()
    for nt, alts in rules.items():
        for alt in alts:
            if alt is ANY or alt is INT:
                if nt not in nonempty:
                    nonempty.add(nt)
                    queue.append(nt)
                break
        else:
            for alt in alts:
                assert isinstance(alt, FuncAlt)
                pending = set(alt.args)
                if not pending:
                    if nt not in nonempty:
                        nonempty.add(nt)
                        queue.append(nt)
                    break
                cell = [nt, len(pending)]
                for arg in pending:
                    waiting.setdefault(arg, []).append(cell)
    while queue:
        proved = queue.popleft()
        for cell in waiting.get(proved, ()):
            cell[1] -= 1
            if cell[1] == 0 and cell[0] not in nonempty:
                nonempty.add(cell[0])
                queue.append(cell[0])
    return nonempty


def _absorb(alts: FrozenSet[Alt]) -> FrozenSet[Alt]:
    if ANY in alts and len(alts) > 1:
        return frozenset([ANY])
    if INT in alts:
        return frozenset(a for a in alts
                         if not (isinstance(a, FuncAlt) and a.is_int))
    return alts


def _within_width(grammar: Grammar, max_or_width: int) -> bool:
    return all(len(alts) <= max_or_width
               for alts in grammar.rules.values())


def normalize(grammar: Grammar,
              max_or_width: Optional[int] = None) -> Grammar:
    """Prune empties, absorb, cap or-width, merge bisimilar
    nonterminals, renumber in BFS order.  The result is interned
    (:func:`intern_grammar`); re-normalizing an interned grammar that
    already satisfies the width cap is free.

    Runs on the flat-int arena pipeline
    (:func:`repro.typegraph.arena.arena_normalize`) unless the arena
    kernels are disabled; both paths are bit-identical."""
    if grammar.interned and (max_or_width is None
                             or _within_width(grammar, max_or_width)):
        return grammar
    if arena.enabled():
        return arena.arena_normalize(grammar, max_or_width)
    return normalize_reference(grammar, max_or_width)


def normalize_reference(grammar: Grammar,
                        max_or_width: Optional[int] = None) -> Grammar:
    """The original object-walking normalization, kept as the
    reference path (``REPRO_ARENA=0``) and as the oracle the arena
    property tests compare against."""
    if grammar.interned and (max_or_width is None
                             or _within_width(grammar, max_or_width)):
        return grammar
    rules = dict(grammar.rules)
    root = grammar.root

    # 1. prune empty nonterminals and the alternatives mentioning them
    nonempty = nonempty_nonterminals(rules)
    pruned: Dict[int, FrozenSet[Alt]] = {}
    for nt, alts in rules.items():
        kept = []
        for alt in alts:
            if isinstance(alt, FuncAlt) and \
                    any(a not in nonempty for a in alt.args):
                continue
            kept.append(alt)
        pruned[nt] = _absorb(frozenset(kept))

    # 2. or-width cap: an or-vertex with too many successors becomes Any
    #    (Table 3's "(5)" and "(2)" restriction, §9)
    if max_or_width is not None:
        for nt, alts in pruned.items():
            if len(alts) > max_or_width:
                pruned[nt] = frozenset([ANY])

    # 3. merge bisimilar nonterminals by partition refinement: start
    #    with one class and split by signature until stable.  For
    #    deterministic grammars bisimilarity implies language equality,
    #    so merging is sound and keeps graphs small (handles mutually
    #    recursive copies, not just acyclic sharing).  Signatures hash
    #    a precomputed static part (functor keys, sorted once) with
    #    the per-round argument classes; refinement only ever splits,
    #    so the loop stops as soon as the class count stops growing,
    #    and immediately when every nonterminal sits alone.
    order = sorted(pruned)
    # static per-nt shape: (functor prefix, raw arg nts) per alternative
    shapes: Dict[int, List[Tuple[tuple, Tuple[int, ...]]]] = {}
    for nt in order:
        sig_alts = []
        for alt in pruned[nt]:
            if isinstance(alt, FuncAlt):
                sig_alts.append((("F",) + alt.fkey, alt.args))
            else:
                sig_alts.append((("ANY",) if alt is ANY else ("INT",), ()))
        shapes[nt] = sig_alts
    classes: Dict[int, int] = {nt: 0 for nt in pruned}
    num_classes = 1
    while num_classes < len(order):
        signature_ids: Dict[tuple, int] = {}
        new_classes: Dict[int, int] = {}
        for nt in order:
            sig = (classes[nt],) + tuple(sorted(
                static + (tuple(classes[a] for a in args),)
                for static, args in shapes[nt]))
            cls = signature_ids.setdefault(sig, len(signature_ids))
            new_classes[nt] = cls
        if len(signature_ids) == num_classes:
            break  # refinement only splits: same count => same partition
        classes = new_classes
        num_classes = len(signature_ids)
    # map each class to one representative nonterminal
    representative: Dict[int, int] = {}
    for nt in sorted(pruned):
        representative.setdefault(classes[nt], nt)
    classes = {nt: representative[cls] for nt, cls in classes.items()}

    merged: Dict[int, FrozenSet[Alt]] = {}
    for nt in pruned:
        cls = classes[nt]
        if cls in merged:
            continue
        merged[cls] = frozenset(
            FuncAlt(a.name, tuple(classes[x] for x in a.args), a.is_int)
            if isinstance(a, FuncAlt) else a
            for a in pruned[nt])
    root = classes[root]

    # 4. BFS renumbering from the root (canonical numbering)
    numbering: Dict[int, int] = {root: 0}
    queue: deque = deque([root])
    while queue:
        nt = queue.popleft()
        for alt in sorted(merged[nt], key=_alt_sort_key):
            if isinstance(alt, FuncAlt):
                for child in alt.args:
                    if child not in numbering:
                        numbering[child] = len(numbering)
                        queue.append(child)
    final: Dict[int, FrozenSet[Alt]] = {}
    for nt, number in numbering.items():
        final[number] = frozenset(
            FuncAlt(a.name, tuple(numbering[x] for x in a.args), a.is_int)
            if isinstance(a, FuncAlt) else a
            for a in merged[nt])
    return intern_grammar(Grammar(final, 0))


# -- constructors -----------------------------------------------------------

_G_ANY = intern_grammar(Grammar({0: frozenset([ANY])}, 0))
_G_BOTTOM = intern_grammar(Grammar({0: frozenset()}, 0))
_G_INT = intern_grammar(Grammar({0: frozenset([INT])}, 0))

# strong caches for the tiny flat constructors called in hot loops
_ATOM_CACHE: Dict[str, Grammar] = {}
_INT_LITERAL_CACHE: Dict[int, Grammar] = {}


def g_any() -> Grammar:
    """The type of all terms."""
    return _G_ANY


def g_bottom() -> Grammar:
    """The empty type."""
    return _G_BOTTOM


def g_int() -> Grammar:
    """The type of all integers."""
    return _G_INT


def g_atom(name: str) -> Grammar:
    """The singleton type of one atom."""
    grammar = _ATOM_CACHE.get(name)
    if grammar is None:
        grammar = intern_grammar(Grammar({0: frozenset([FuncAlt(name)])}, 0))
        if len(_ATOM_CACHE) < 4096:
            _ATOM_CACHE[name] = grammar
    return grammar


def g_int_literal(value: int) -> Grammar:
    """The singleton type of one integer literal."""
    grammar = _INT_LITERAL_CACHE.get(value)
    if grammar is None:
        grammar = intern_grammar(
            Grammar({0: frozenset([FuncAlt(str(value), (), True)])}, 0))
        if len(_INT_LITERAL_CACHE) < 4096:
            _INT_LITERAL_CACHE[value] = grammar
    return grammar


def _embed(builder: GrammarBuilder, grammar: Grammar) -> int:
    """Copy ``grammar`` into ``builder``; return its root nt."""
    mapping: Dict[int, int] = {}

    def visit(nt: int) -> int:
        if nt in mapping:
            return mapping[nt]
        new = builder.fresh()
        mapping[nt] = new
        for alt in grammar.rules[nt]:
            if isinstance(alt, FuncAlt):
                builder.add(new, FuncAlt(alt.name,
                                         tuple(visit(a) for a in alt.args),
                                         alt.is_int))
            else:
                builder.add(new, alt)
        return new

    return visit(grammar.root)


def g_functor(name: str, children: Sequence[Grammar],
              max_or_width: Optional[int] = None) -> Grammar:
    """The type ``name(c1, ..., cn)``.

    Memoized on interned child identities — collapsing pattern
    subtrees into grammars (``value_of`` in the Pat(R) domain) rebuilds
    the same functor types constantly.
    """
    children = tuple(children)
    if all(c.interned for c in children) and opcache.enabled():
        cache = opcache.cache_for("g_functor")
        key = (name, tuple(c.gid for c in children), max_or_width)
        value = cache.get(key)
        if value is None:
            value = _g_functor_impl(name, children, max_or_width)
            cache.put(key, value)
        return value
    return _g_functor_impl(name, children, max_or_width)


def _g_functor_impl(name: str, children: Tuple[Grammar, ...],
                    max_or_width: Optional[int]) -> Grammar:
    if arena.enabled() and all(c.interned for c in children):
        return arena.arena_functor(name, children, max_or_width)
    builder = GrammarBuilder()
    root = builder.fresh()
    child_nts = tuple(_embed(builder, c) for c in children)
    builder.add(root, FuncAlt(name, child_nts))
    return builder.finish(root, max_or_width)


def g_alternatives(grammars: Sequence[Grammar],
                   max_or_width: Optional[int] = None) -> Grammar:
    """Disjunction of grammars (requires pairwise-distinct principal
    functors; use :func:`repro.typegraph.ops.g_union` otherwise)."""
    from .ops import g_union
    result = g_bottom()
    for grammar in grammars:
        result = g_union(result, grammar, max_or_width)
    return result


def subgrammar(grammar: Grammar, nt: int) -> Grammar:
    """The grammar rooted at nonterminal ``nt``.

    Memoized on interned grammars — abstract unification splits the
    same argument positions out of the same shared grammars on every
    clause iteration.
    """
    if nt == grammar.root:
        return grammar
    if grammar.interned and opcache.enabled():
        cache = opcache.cache_for("subgrammar")
        key = (grammar.gid, nt)
        value = cache.get(key)
        if value is None:
            value = (arena.arena_subgrammar(grammar, nt)
                     if arena.enabled()
                     else normalize(Grammar(grammar.rules, nt)))
            cache.put(key, value)
        return value
    if grammar.interned and arena.enabled():
        return arena.arena_subgrammar(grammar, nt)
    return normalize(Grammar(grammar.rules, nt))


# -- membership -------------------------------------------------------------

def member(term: Term, grammar: Grammar, nt: Optional[int] = None) -> bool:
    """Is ``term`` in the denotation (§6.2)?  Variables match only ANY
    (type graphs denote instantiation-closed sets; a free variable is
    described only by Any — the paper's qsort discussion, §2)."""
    node = grammar.root if nt is None else nt
    alts = grammar.rules[node]
    if ANY in alts:
        return True
    if isinstance(term, Var):
        return False
    if isinstance(term, Int):
        if INT in alts:
            return True
        return any(isinstance(a, FuncAlt) and a.is_int
                   and a.name == str(term.value) for a in alts)
    if isinstance(term, Atom):
        return any(isinstance(a, FuncAlt) and not a.is_int
                   and a.name == term.name and not a.args for a in alts)
    assert isinstance(term, Struct)
    for alt in alts:
        if isinstance(alt, FuncAlt) and not alt.is_int \
                and alt.name == term.name and alt.arity == term.arity:
            return all(member(sub, grammar, child)
                       for sub, child in zip(term.args, alt.args))
    return False


def pf_of(grammar: Grammar) -> FrozenSet[Tuple[str, str, int]]:
    """Principal-functor set of the root."""
    return grammar.pf()


# Imported last: arena.py imports the names above, and the functions
# here only touch the module at call time, so the cycle is harmless.
from . import arena  # noqa: E402
