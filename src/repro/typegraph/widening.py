"""The widening operator on type graphs (§7) — the paper's key
technical contribution.

``g_widen(g_old, g_new)`` implements Definition 7.6::

    go V gn = go                      if gn <= go
              widen(go, go U gn)     otherwise

``widen`` repeatedly applies the two transformation rules until no
widening clash can be resolved:

* **cycle introduction** (TRi, Definition 7.4): when a corresponding
  or-vertex of ``gn`` has grown w.r.t. ``go`` and has an ancestor
  ``va`` with ``va >= vn``, the tree edge into ``vn`` is redirected to
  ``va`` — the append example turning ``[] | cons(Any, [] | ...)`` into
  ``T ::= [] | cons(Any, T)``;

* **vertex replacement** (TRr, Definition 7.5): when the candidate
  ancestor is *not* an upper bound of the clashing vertex, it is
  replaced by an upper bound of both, accepted only if the graph
  shrinks (otherwise the ancestor becomes Any, which always shrinks).

When neither rule applies the graph is allowed to grow — that growth
adds a new pf-set along the branch, which is what makes the whole
operator a widening (Theorem 7.1).

A step budget acts as an engineering safety net; on overflow we fall
back to the or-width-1 cap (a finite subdomain), preserving soundness
and termination of the enclosing fixpoint.

``g_widen`` also implements the extension the paper's conclusion
proposes: an optional **type database** consulted when a vertex must be
replaced — instead of collapsing a clashing region to Any, the smallest
database type covering it is grafted (e.g. "list of Any" for an
overgrown list region).  See :func:`g_widen`'s ``type_database``.
"""

from __future__ import annotations

import warnings
import weakref
from collections import deque
from typing import Dict, List, Optional, Tuple

from . import arena, opcache
from .grammar import Grammar, normalize
from .graph import TypeGraph, Vertex, to_grammar, treeify
from .ops import g_le, g_union

__all__ = ["g_widen", "widening_clashes"]

_MAX_WIDEN_STEPS = 400

#: Read-only unfoldings of *old* iterates: ``g_widen`` re-treeifies the
#: same interned g_old across steps and across calls, and the old-side
#: graph is only ever read (clash detection), never transformed.
#: Bounded: unfoldings can be much larger than their grammars, and the
#: weak keys only die when the intern table lets them — an unbounded
#: map could pin a long-lived service process's memory.
_TREEIFY_OLD: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_TREEIFY_OLD_MAX = 256


def _treeify_readonly(grammar: Grammar) -> TypeGraph:
    if not grammar.interned:
        return treeify(grammar)
    graph = _TREEIFY_OLD.get(grammar)
    if graph is None:
        graph = treeify(grammar)
        if len(_TREEIFY_OLD) >= _TREEIFY_OLD_MAX:
            _TREEIFY_OLD.clear()
        _TREEIFY_OLD[grammar] = graph
    return graph


def _vertex_grammars(graph: TypeGraph) -> Tuple[Grammar, Dict[int, int]]:
    """The grammar of ``graph`` plus the or-vertex -> nonterminal map,
    *without* normalization (so the map stays valid)."""
    from .grammar import GrammarBuilder
    from .graph import vertex_rules

    builder = GrammarBuilder()
    nts: Dict[int, int] = {}
    root = vertex_rules(graph.root, builder, nts)
    rules = {nt: frozenset(alts) for nt, alts in builder._rules.items()}
    return Grammar(rules, root), nts


def _raw_from_vertices(vertices, nts: Dict[int, int]) -> Grammar:
    """Raw (unnormalized) grammar of the or-vertices in ``vertices``,
    numbered by ``nts`` — the lazy counterpart of
    :func:`_vertex_grammars` for the arena path, built only when a
    replacement rule actually needs grammar surgery."""
    from .grammar import ANY, INT, FuncAlt

    rules: Dict[int, frozenset] = {}
    for vertex in vertices:
        alts = []
        for successor in vertex.successors:
            if successor.kind == "any":
                alts.append(ANY)
            elif successor.kind == "int":
                alts.append(INT)
            else:
                alts.append(FuncAlt(
                    successor.name,
                    tuple(nts[id(child)]
                          for child in successor.successors),
                    successor.is_int))
        rules[nts[id(vertex)]] = frozenset(alts)
    return Grammar(rules, nts[id(vertices[0])])


def _vertex_le(raw: Grammar, nts: Dict[int, int],
               v1: Vertex, v2: Vertex,
               memo: Optional[Dict[Tuple[int, int], bool]] = None,
               index: Optional["arena.RulesIndex"] = None) -> bool:
    """Denotation inclusion between two or-vertices of the same graph.

    With the arena kernels enabled, ``index`` is the step's raw rules
    compiled once to flat ints (:class:`repro.typegraph.arena
    .RulesIndex`), which memoizes pair queries internally — the
    ancestor scans of both transformation rules probe many overlapping
    vertex pairs.  ``memo`` (nonterminal-pair -> bool) is the
    reference path's equivalent shared cache.
    """
    if index is not None:
        return index.le(nts[id(v1)], nts[id(v2)])
    key = (nts[id(v1)], nts[id(v2)])
    if memo is not None:
        cached = memo.get(key)
        if cached is not None:
            return cached
    result = g_le(Grammar(raw.rules, key[0]), Grammar(raw.rules, key[1]))
    if memo is not None:
        memo[key] = result
    return result


def widening_clashes(g_old: TypeGraph,
                     g_new: TypeGraph) -> List[Tuple[Vertex, Vertex]]:
    """Widening clashes WTC(go, gn) (Definition 7.3), in BFS discovery
    order of the correspondence set (Definition 7.1)."""
    clashes: List[Tuple[Vertex, Vertex]] = []
    seen = set()
    sorted_successors: Dict[int, list] = {}  # a vertex can pair many ways

    def aligned(vertex: Vertex) -> list:
        cached = sorted_successors.get(id(vertex))
        if cached is None:
            cached = sorted(vertex.successors,
                            key=lambda v: (v.kind, v.name,
                                           len(v.successors)))
            sorted_successors[id(vertex)] = cached
        return cached

    queue: deque = deque([(g_old.root, g_new.root)])
    while queue:
        vo, vn = queue.popleft()
        key = (id(vo), id(vn))
        if key in seen:
            continue
        seen.add(key)
        if vo.kind == "or" and vn.kind == "or":
            same_depth = vo.depth == vn.depth
            same_pf = vo.pf() == vn.pf()
            if same_depth and same_pf:
                # align successors by functor key (sorted identically)
                queue.extend(zip(aligned(vo), aligned(vn)))
            else:
                # topological clash; keep it if it is a widening clash
                pf_o, pf_n = vo.pf(), vn.pf()
                if pf_n and ((pf_o != pf_n and same_depth)
                             or vo.depth < vn.depth):
                    clashes.append((vo, vn))
        elif vo.kind == "functor" and vn.kind == "functor":
            queue.extend(zip(vo.successors, vn.successors))
        # any/int leaf pairs and mixed pairs: nothing to descend into
    return clashes


def _try_cycle_introduction(graph_new: TypeGraph, raw: Grammar,
                            nts: Dict[int, int],
                            clashes: List[Tuple[Vertex, Vertex]],
                            strict: bool,
                            le_memo: Optional[Dict] = None,
                            le_index: Optional["arena.RulesIndex"] = None
                            ) -> Optional[Grammar]:
    """Apply TRi (Definition 7.4) to the first eligible clash; the
    ancestor search is nearest-first.

    In gentle mode the ancestor must have the *same* pf-set as the
    clashing vertex, not merely a superset: cycling a vertex into a
    strictly richer ancestor is what "mixes the definitions of T, T1
    and T2" in the AR1 example (§2) — growth is preferred until the
    structure has stabilized.  Strict mode uses the paper's subset
    condition.
    """
    for vo, vn in clashes:
        if vn.parent is None:
            continue  # the root has no ancestors
        for va in TypeGraph.or_ancestors(vn):
            # Need depth(vo) >= depth(va); Proposition 7.2's proof covers
            # the depth(va) = depth(vo) case, so the bound is not strict.
            if va.depth > vo.depth:
                continue
            if strict:
                if not vn.pf() <= va.pf():
                    continue  # quick filter implied by va >= vn
            elif vn.pf() != va.pf():
                continue
            if not _vertex_le(raw, nts, vn, va, le_memo, le_index):
                continue
            parent = vn.parent
            parent.successors = [va if s is vn else s
                                 for s in parent.successors]
            parent.clear_pf()
            return to_grammar(graph_new)
    return None


def _try_replacement(graph_new: TypeGraph, raw_of,
                     nts: Dict[int, int],
                     clashes: List[Tuple[Vertex, Vertex]],
                     current: Grammar,
                     max_or_width: Optional[int],
                     strict: bool,
                     type_database: Optional[List[Grammar]] = None,
                     le_memo: Optional[Dict] = None,
                     le_index: Optional["arena.RulesIndex"] = None
                     ) -> Optional[Grammar]:
    """Apply TRr (Definition 7.5) to the first eligible clash.

    In gentle mode (``strict=False``) only the precise
    upper-bound-graft variant is attempted; if it does not shrink the
    graph the clash is left unresolved and the graph is allowed to grow
    — "postponing the widening until the structure of the type appears
    clearly" (§2).  In strict mode the Any fallback guarantees a size
    decrease, which Theorem 7.1's termination argument needs.
    """
    from .grammar import ANY

    current_size = current.size()
    # With an arena pair index the raw grammar view is only needed
    # once a clash actually reaches grammar surgery; the reference
    # path's _vertex_le needs it up front.
    raw = None if le_index is not None else raw_of()
    for vo, vn in clashes:
        for va in TypeGraph.or_ancestors(vn):
            if va.depth > vo.depth:
                continue  # need depth(vo) >= depth(va)
            if not (vn.pf() <= va.pf() or vo.depth < vn.depth):
                continue
            if _vertex_le(raw, nts, vn, va, le_memo, le_index):
                continue  # CI territory, not CR
            if raw is None:
                raw = raw_of()  # grammar surgery ahead: build the view
            nt_va, nt_vn = nts[id(va)], nts[id(vn)]
            # Precise attempt: upper bound of va and vn grafted at va.
            upper = g_union(Grammar(raw.rules, nt_va),
                            Grammar(raw.rules, nt_vn), max_or_width)
            grafted = _graft(raw, nt_va, upper)
            candidate = normalize(grafted, max_or_width)
            if candidate.size() < current_size:
                return candidate
            # Type-database fallback (§10's proposed extension): graft
            # the smallest database type covering both vertices.
            if type_database:
                for db_type in sorted(type_database,
                                      key=lambda g: g.size()):
                    if not g_le(upper, db_type):
                        continue
                    candidate = normalize(_graft(raw, nt_va, db_type),
                                          max_or_width)
                    if candidate.size() < current_size:
                        return candidate
                    break
            if not strict:
                continue
            # Fallback: va becomes Any — always shrinks.
            rules = dict(raw.rules)
            rules[nt_va] = frozenset([ANY])
            candidate = normalize(Grammar(rules, raw.root), max_or_width)
            if candidate.size() < current_size:
                return candidate
    return None


def _graft(base: Grammar, target_nt: int, replacement: Grammar) -> Grammar:
    """A grammar equal to ``base`` except that ``target_nt`` now derives
    what ``replacement`` derives (replaceVertex's edge surgery)."""
    from .grammar import ANY, INT, FuncAlt

    rules = {}
    offset = max(base.rules) + 1

    def shift(alt):
        if isinstance(alt, FuncAlt):
            return FuncAlt(alt.name,
                           tuple(a + offset for a in alt.args), alt.is_int)
        return alt

    for nt, alts in replacement.rules.items():
        rules[nt + offset] = frozenset(shift(a) for a in alts)
    for nt, alts in base.rules.items():
        if nt == target_nt:
            rules[nt] = rules[replacement.root + offset]
        else:
            rules[nt] = alts
    return Grammar(rules, base.root)


def g_widen(g_old: Grammar, g_new: Grammar,
            max_or_width: Optional[int] = None,
            strict: bool = True,
            type_database: Optional[List[Grammar]] = None) -> Grammar:
    """``g_old V g_new`` (Definition 7.6).

    ``strict=False`` skips the destructive replacement fallback (see
    :func:`_try_replacement`); callers using gentle mode must escalate
    to strict eventually to guarantee stabilization.

    ``type_database`` (§10's extension) supplies well-known types
    (e.g. list of Any, character codes) to graft instead of Any when a
    replacement must shrink the graph.
    """
    if g_new.is_bottom() or g_le(g_new, g_old):
        return g_old
    if g_old.interned and g_new.interned:
        db_key = (None if type_database is None
                  else tuple(g.gid if g.interned else g
                             for g in type_database))
        return opcache.cached(
            "g_widen", (g_old.gid, g_new.gid, max_or_width, strict, db_key),
            lambda: _g_widen_impl(g_old, g_new, max_or_width, strict,
                                  type_database))
    return _g_widen_impl(g_old, g_new, max_or_width, strict,
                         type_database)


def _g_widen_impl(g_old: Grammar, g_new: Grammar,
                  max_or_width: Optional[int],
                  strict: bool,
                  type_database: Optional[List[Grammar]]) -> Grammar:
    if (type_database is None and arena.enabled()
            and arena.NATIVE is not None
            and g_old.interned and g_new.interned):
        # The compiled tier runs the whole transformation loop —
        # unfold, clash scan, TRi/TRr, renormalize — and interns each
        # iterate through the same tables, so the result is the
        # identical object this function would build.  The
        # type-database extension stays on the Python path.
        return arena.NATIVE.g_widen(g_old, g_new, max_or_width, strict)
    gn = g_union(g_old, g_new, max_or_width)
    if g_old.is_bottom():
        return gn

    try:
        graph_old = _treeify_readonly(g_old)
    except RecursionError:
        # The tree+back-edge view duplicates shared subgraphs, which
        # can explode exponentially on adversarial sharing.  Same
        # safety net as the step budget: collapse to the or-width-1
        # finite subdomain (a sound upper bound), keeping the
        # enclosing fixpoint terminating instead of crashing.
        warnings.warn("type graph too large to unfold for widening; "
                      "collapsing to the or-width-1 subdomain",
                      RuntimeWarning)
        return normalize(gn, 1)
    for _ in range(_MAX_WIDEN_STEPS):
        try:
            graph_new = treeify(gn)
        except RecursionError:
            warnings.warn("type graph too large to unfold for "
                          "widening; collapsing to the or-width-1 "
                          "subdomain", RuntimeWarning)
            return normalize(gn, 1)
        clashes = widening_clashes(graph_old, graph_new)
        if not clashes:
            return gn
        # One inclusion memo per step: the vertex numbering is fixed
        # until the graph is transformed, so every ancestor scan below
        # shares it.  With arena kernels on, the step compiles once
        # into a flat-int pair index (straight from the graph) and the
        # raw grammar view is built lazily, only if a replacement rule
        # reaches grammar surgery.
        if arena.enabled():
            le_index, nts, vertices = \
                arena.RulesIndex.from_graph(graph_new.root)
            raw = None

            def raw_of(vertices=vertices, nts=nts):
                return _raw_from_vertices(vertices, nts)
        else:
            le_index = None
            raw, nts = _vertex_grammars(graph_new)

            def raw_of(raw=raw):
                return raw
        le_memo: Dict = {}
        result = _try_cycle_introduction(graph_new, raw, nts, clashes,
                                         strict, le_memo, le_index)
        if result is None:
            result = _try_replacement(graph_new, raw_of, nts, clashes,
                                      gn, max_or_width, strict,
                                      type_database, le_memo, le_index)
        if result is None:
            return gn
        gn = normalize(result, max_or_width)

    warnings.warn("widening step budget exceeded; collapsing to the "
                  "or-width-1 subdomain", RuntimeWarning)
    return normalize(gn, 1)
