/* Native arena kernels for the type-graph hot path.
 *
 * Compiled lazily by repro/typegraph/_native.py with the system C
 * compiler; everything here mirrors the pure-Python kernels in
 * arena.py / ops.py / pattern.py step for step, so results are
 * bit-identical: all Grammar / AbstractSubst construction funnels
 * through Python callbacks into the process-wide intern tables, and
 * this module only ever hands back the canonical interned objects.
 *
 * Layout:
 *   1. int64 open-addressing map (registries, memo tables, worklists)
 *   2. symbol registry mirroring repro.typegraph.arena.SYMBOLS
 *   3. per-grammar arena structs (CSR rows keyed by gid)
 *   4. dense normalization (nonempty / prune / absorb / cap /
 *      partition refinement / BFS renumber -> flat int key ->
 *      intern-table callback)
 *   5. grammar operations: le / union / intersect / functor /
 *      subgrammar / split, with C-side memo tables
 *   6. pattern-layer walks: value_of / subst_le over frozen
 *      substitution structs
 *   7. the KNode union-find builder (unify / constrain / fork /
 *      freeze / instantiate)
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>
#include <time.h>

/* ------------------------------------------------------------------ */
/* small utilities                                                     */

static double now_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

/* int64 -> int64 open-addressing hash map (sentinel key INT64_MIN). */

#define IMAP_EMPTY INT64_MIN

typedef struct {
    int64_t *keys;
    int64_t *vals;
    size_t cap;     /* power of two */
    size_t count;
} IMap;

static int imap_init(IMap *m, size_t cap_hint) {
    size_t cap = 16;
    while (cap < cap_hint * 2) cap <<= 1;
    m->keys = (int64_t *)malloc(cap * sizeof(int64_t));
    m->vals = (int64_t *)malloc(cap * sizeof(int64_t));
    if (!m->keys || !m->vals) {
        free(m->keys); free(m->vals);
        m->keys = m->vals = NULL;
        return -1;
    }
    for (size_t i = 0; i < cap; i++) m->keys[i] = IMAP_EMPTY;
    m->cap = cap;
    m->count = 0;
    return 0;
}

static void imap_free(IMap *m) {
    free(m->keys); free(m->vals);
    m->keys = m->vals = NULL;
    m->cap = m->count = 0;
}

static size_t imap_slot(const IMap *m, int64_t key) {
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    size_t i = (size_t)(h >> 17) & (m->cap - 1);
    while (m->keys[i] != IMAP_EMPTY && m->keys[i] != key)
        i = (i + 1) & (m->cap - 1);
    return i;
}

static int imap_grow(IMap *m) {
    IMap bigger;
    if (imap_init(&bigger, m->cap) < 0) return -1;  /* init doubles */
    for (size_t i = 0; i < m->cap; i++) {
        if (m->keys[i] == IMAP_EMPTY) continue;
        size_t j = imap_slot(&bigger, m->keys[i]);
        bigger.keys[j] = m->keys[i];
        bigger.vals[j] = m->vals[i];
        bigger.count++;
    }
    imap_free(m);
    *m = bigger;
    return 0;
}

/* returns 1 found (val filled), 0 missing */
static int imap_get(const IMap *m, int64_t key, int64_t *val) {
    if (!m->cap) return 0;
    size_t i = imap_slot(m, key);
    if (m->keys[i] == IMAP_EMPTY) return 0;
    *val = m->vals[i];
    return 1;
}

static int imap_put(IMap *m, int64_t key, int64_t val) {
    if (!m->cap && imap_init(m, 8) < 0) return -1;
    if ((m->count + 1) * 4 >= m->cap * 3 && imap_grow(m) < 0) return -1;
    size_t i = imap_slot(m, key);
    if (m->keys[i] == IMAP_EMPTY) {
        m->keys[i] = key;
        m->count++;
    }
    m->vals[i] = val;
    return 0;
}

/* growable int array */
typedef struct { int *data; int len, cap; } IVec;

static int ivec_push(IVec *v, int x) {
    if (v->len == v->cap) {
        int cap = v->cap ? v->cap * 2 : 64;
        int *data = (int *)realloc(v->data, (size_t)cap * sizeof(int));
        if (!data) return -1;
        v->data = data; v->cap = cap;
    }
    v->data[v->len++] = x;
    return 0;
}

static void ivec_free(IVec *v) { free(v->data); v->data = NULL; v->len = v->cap = 0; }

/* ------------------------------------------------------------------ */
/* module state                                                        */

/* callbacks + canonical objects, filled by init() */
static PyObject *cb_from_flat;     /* flat int tuple -> interned Grammar */
static PyObject *cb_arena_flat;    /* Grammar -> flat list of ints */
static PyObject *cb_sym_rows;      /* start -> [(kind, name, arity), ...] */
static PyObject *cb_sym_f;         /* (name, arity) -> dense symbol id */
static PyObject *cb_int_literal;   /* name str -> Grammar */
static PyObject *cb_freeze_build;  /* (sv tuple, descs list) -> AbstractSubst */
static PyObject *cb_subst_rows;    /* AbstractSubst -> (sv, rows) */
static PyObject *obj_any;          /* the interned Any grammar */
static PyObject *obj_bottom;       /* the interned bottom grammar */
static PyObject *cb_pat_bottom;    /* () -> PAT_BOTTOM (lazy) */
static PyObject *obj_pat_bottom;   /* cached PAT_BOTTOM */
static PyObject *s_gid;            /* "gid" */
static PyObject *s_sid;            /* "sid" */

/* symbol registry (mirrors arena.SYMBOLS, synced lazily) */
typedef struct {
    char kind;              /* 'f' or 'i' */
    char is_literal;
    int arity;
    const char *name;       /* UTF-8, owned by name_obj */
    Py_ssize_t name_len;
    PyObject *name_obj;     /* strong ref keeping `name` alive */
} SymInfo;

static SymInfo *g_syms = NULL;
static int g_nsyms = 0, g_syms_cap = 0;

/* fkey order: (kind, name, arity); UTF-8 byte order == code point order */
static int fkey_cmp(int a, int b) {
    const SymInfo *x = &g_syms[a], *y = &g_syms[b];
    if (x->kind != y->kind) return x->kind < y->kind ? -1 : 1;
    Py_ssize_t n = x->name_len < y->name_len ? x->name_len : y->name_len;
    int c = memcmp(x->name, y->name, (size_t)n);
    if (c) return c;
    if (x->name_len != y->name_len)
        return x->name_len < y->name_len ? -1 : 1;
    if (x->arity != y->arity) return x->arity < y->arity ? -1 : 1;
    return 0;
}

/* pull rows [start..) from the Python symbol table */
static int ensure_syms(int sym) {
    if (sym < g_nsyms) return 0;
    PyObject *rows = PyObject_CallFunction(cb_sym_rows, "i", g_nsyms);
    if (!rows) return -1;
    Py_ssize_t n = PyList_Size(rows);
    if (n < 0) { Py_DECREF(rows); return -1; }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *row = PyList_GET_ITEM(rows, i);
        PyObject *kind_o = PyTuple_GET_ITEM(row, 0);
        PyObject *name_o = PyTuple_GET_ITEM(row, 1);
        PyObject *arity_o = PyTuple_GET_ITEM(row, 2);
        if (g_nsyms == g_syms_cap) {
            int cap = g_syms_cap ? g_syms_cap * 2 : 256;
            SymInfo *bigger = (SymInfo *)realloc(
                g_syms, (size_t)cap * sizeof(SymInfo));
            if (!bigger) { Py_DECREF(rows); PyErr_NoMemory(); return -1; }
            g_syms = bigger; g_syms_cap = cap;
        }
        SymInfo *info = &g_syms[g_nsyms];
        const char *kind = PyUnicode_AsUTF8(kind_o);
        if (!kind) { Py_DECREF(rows); return -1; }
        info->kind = kind[0];
        info->is_literal = (kind[0] == 'i');
        info->arity = (int)PyLong_AsLong(arity_o);
        info->name = PyUnicode_AsUTF8AndSize(name_o, &info->name_len);
        if (!info->name) { Py_DECREF(rows); return -1; }
        Py_INCREF(name_o);
        info->name_obj = name_o;
        g_nsyms++;
    }
    Py_DECREF(rows);
    if (sym >= g_nsyms) {
        PyErr_Format(PyExc_RuntimeError,
                     "symbol %d missing from symbol table", sym);
        return -1;
    }
    return 0;
}

/* per-grammar arena (dense rows, fkey-sorted, like GrammarArena) */
typedef struct {
    int n;
    int root;
    unsigned char *flags;   /* bit0 ANY, bit1 INT */
    int *row_start;         /* n+1 prefix over alts */
    int *alt_sym;           /* nalts */
    int *arg_start;         /* nalts+1 prefix over args */
    int *args;              /* total args */
    int nalts;
    PyObject *grammar;      /* strong ref: keeps gid -> struct valid */
} CArena;

static IMap g_arena_map;    /* gid -> (CArena *) */

static void carena_free(CArena *a) {
    free(a->flags); free(a->row_start); free(a->alt_sym);
    free(a->arg_start); free(a->args);
    Py_XDECREF(a->grammar);
    free(a);
}

static long get_gid(PyObject *g) {
    PyObject *o = PyObject_GetAttr(g, s_gid);
    if (!o) return -2;
    long gid = PyLong_AsLong(o);
    Py_DECREF(o);
    if (gid == -1 && PyErr_Occurred()) return -2;
    return gid;
}

/* register an arena struct for `gid` from a flat int sequence
 * [n, root, then per nt: flags, nrows, (sym, nargs, args...)...] */
static CArena *register_arena_from_flat(long gid, PyObject *grammar,
                                        const int64_t *flat,
                                        Py_ssize_t flat_len) {
    CArena *a = (CArena *)calloc(1, sizeof(CArena));
    if (!a) { PyErr_NoMemory(); return NULL; }
    Py_ssize_t p = 0;
    a->n = (int)flat[p++];
    a->root = (int)flat[p++];
    a->flags = (unsigned char *)calloc((size_t)a->n + 1, 1);
    a->row_start = (int *)malloc(((size_t)a->n + 1) * sizeof(int));
    if (!a->flags || !a->row_start) { carena_free(a); PyErr_NoMemory(); return NULL; }
    IVec syms = {0}, argst = {0}, argv = {0};
    int ok = 1;
    for (int i = 0; ok && i < a->n; i++) {
        a->flags[i] = (unsigned char)flat[p++];
        a->row_start[i] = syms.len;
        int nrows = (int)flat[p++];
        for (int r = 0; ok && r < nrows; r++) {
            int sym = (int)flat[p++];
            int nargs = (int)flat[p++];
            if (ensure_syms(sym) < 0) { ok = 0; break; }
            ok = ivec_push(&syms, sym) == 0 && ivec_push(&argst, argv.len) == 0;
            for (int k = 0; ok && k < nargs; k++)
                ok = ivec_push(&argv, (int)flat[p++]) == 0;
        }
    }
    if (ok && p != flat_len) {
        PyErr_SetString(PyExc_RuntimeError, "bad arena flat encoding");
        ok = 0;
    }
    if (!ok) {
        ivec_free(&syms); ivec_free(&argst); ivec_free(&argv);
        carena_free(a);
        if (!PyErr_Occurred()) PyErr_NoMemory();
        return NULL;
    }
    a->row_start[a->n] = syms.len;
    a->nalts = syms.len;
    ivec_push(&argst, argv.len);
    a->alt_sym = syms.data;
    a->arg_start = argst.data;
    a->args = argv.data;
    Py_INCREF(grammar);
    a->grammar = grammar;
    if (imap_put(&g_arena_map, gid, (int64_t)(intptr_t)a) < 0) {
        carena_free(a); PyErr_NoMemory(); return NULL;
    }
    return a;
}

static CArena *get_arena(PyObject *g) {
    long gid = get_gid(g);
    if (gid == -2) return NULL;
    if (gid < 0) {
        PyErr_SetString(PyExc_RuntimeError,
                        "native kernel called on non-interned grammar");
        return NULL;
    }
    int64_t val;
    if (imap_get(&g_arena_map, gid, &val))
        return (CArena *)(intptr_t)val;
    PyObject *flat = PyObject_CallFunctionObjArgs(cb_arena_flat, g, NULL);
    if (!flat) return NULL;
    Py_ssize_t n = PyList_Size(flat);
    if (n < 0) { Py_DECREF(flat); return NULL; }
    int64_t *buf = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    if (!buf) { Py_DECREF(flat); PyErr_NoMemory(); return NULL; }
    for (Py_ssize_t i = 0; i < n; i++) {
        buf[i] = PyLong_AsLongLong(PyList_GET_ITEM(flat, i));
        if (buf[i] == -1 && PyErr_Occurred()) {
            free(buf); Py_DECREF(flat); return NULL;
        }
    }
    Py_DECREF(flat);
    CArena *a = register_arena_from_flat(gid, g, buf, n);
    free(buf);
    return a;
}

/* pre-register the arena for a grammar freshly interned from its
 * canonical int key [n, per nt: flags, nrows, (sym, args...)...]
 * (root 0, arities implied by the symbol table).  Spares the round
 * trip through the Python flat encoder the first time the grammar
 * comes back as an operand.  Best-effort: on any failure the error is
 * cleared and the regular get_arena upload path recovers later. */
static void register_arena_from_intkey(PyObject *grammar,
                                       const int *ik, int len) {
    long gid = get_gid(grammar);
    if (gid < 0) { PyErr_Clear(); return; }
    int64_t val;
    if (imap_get(&g_arena_map, gid, &val)) return;
    CArena *a = (CArena *)calloc(1, sizeof(CArena));
    if (!a) return;
    int p = 0;
    a->n = ik[p++];
    a->root = 0;
    a->flags = (unsigned char *)calloc((size_t)a->n + 1, 1);
    a->row_start = (int *)malloc(((size_t)a->n + 1) * sizeof(int));
    if (!a->flags || !a->row_start) { carena_free(a); return; }
    IVec syms = {0}, argst = {0}, argv = {0};
    int ok = 1;
    for (int i = 0; ok && i < a->n; i++) {
        a->flags[i] = (unsigned char)ik[p++];
        a->row_start[i] = syms.len;
        int nrows = ik[p++];
        for (int r = 0; ok && r < nrows; r++) {
            int sym = ik[p++];
            if (ensure_syms(sym) < 0) { PyErr_Clear(); ok = 0; break; }
            ok = ivec_push(&syms, sym) == 0
                 && ivec_push(&argst, argv.len) == 0;
            int nargs = g_syms[sym].arity;
            for (int k = 0; ok && k < nargs; k++)
                ok = ivec_push(&argv, ik[p++]) == 0;
        }
    }
    if (!ok || p != len || ivec_push(&argst, argv.len) < 0) {
        ivec_free(&syms); ivec_free(&argst); ivec_free(&argv);
        carena_free(a);
        return;
    }
    a->row_start[a->n] = syms.len;
    a->nalts = syms.len;
    a->alt_sym = syms.data;
    a->arg_start = argst.data;
    a->args = argv.data;
    Py_INCREF(grammar);
    a->grammar = grammar;
    if (imap_put(&g_arena_map, gid, (int64_t)(intptr_t)a) < 0)
        carena_free(a);
}

static int arena_is_any(const CArena *a) {
    return (a->flags[a->root] & 1) != 0;
}

static int arena_within_width(const CArena *a, int w) {
    for (int i = 0; i < a->n; i++) {
        int cnt = (a->flags[i] & 1) + ((a->flags[i] >> 1) & 1)
                  + (a->row_start[i + 1] - a->row_start[i]);
        if (cnt > w) return 0;
    }
    return 1;
}

/* ------------------------------------------------------------------ */
/* memo tables + counters                                              */

enum {
    OP_LE, OP_UNION, OP_INTERSECT, OP_FUNCTOR, OP_SUBGRAMMAR,
    OP_NORMALIZE, OP_SPLIT, OP_SUBST_LE, OP_VALUE_OF, OP_UNIFY,
    OP_CONSTRAIN, OP_FREEZE, OP_INSTANTIATE, OP_FORK, OP_WIDEN,
    OP_MERGE, OP_COUNT
};

static const char *OP_NAMES[OP_COUNT] = {
    "le", "union", "intersect", "functor", "subgrammar", "normalize",
    "split", "subst_le", "value_of", "unify", "constrain", "freeze",
    "instantiate", "fork", "widen", "merge"
};

static long g_calls[OP_COUNT];
static double g_secs[OP_COUNT];
static int g_profile = 0;

#define PROF_BEGIN(op) \
    double _t0 = 0.0; g_calls[op]++; if (g_profile) _t0 = now_seconds();
#define PROF_END(op) \
    if (g_profile) g_secs[op] += now_seconds() - _t0;

/* le memo: (gid1 << 31 | gid2) -> 1 false / 2 true */
static IMap memo_le;
/* subgrammar memo: (gid << 28 | nt) -> Grammar* (strong) */
static IMap memo_sub;
/* union memo: PyDict (gid1, gid2, w) -> Grammar */
static PyObject *memo_union;
/* intersect memo: PyDict (gid1, gid2, w) -> Grammar */
static PyObject *memo_intersect;
/* functor memo: PyDict (sym, gids..., w) -> Grammar */
static PyObject *memo_functor;
/* widen memo: PyDict (gid_old, gid_new, w, strict) -> Grammar */
static PyObject *memo_widen;
/* flat normalize cache: PyDict bytes(int32 flat) -> Grammar */
static PyObject *flat_cache;
/* freeze intern front: PyDict bytes -> AbstractSubst */
static PyObject *freeze_cache;

#define MEMO_CAP 200000

static void imap_clear_strong(IMap *m) {
    for (size_t i = 0; i < m->cap; i++)
        if (m->keys[i] != IMAP_EMPTY)
            Py_DECREF((PyObject *)(intptr_t)m->vals[i]);
    imap_free(m);
}

static void bound_dict(PyObject *d) {
    if (d && PyDict_Size(d) > MEMO_CAP)
        PyDict_Clear(d);
}

/* ------------------------------------------------------------------ */
/* dense normalization                                                 */

/* Working buffer for a grammar under construction / normalization.
 * Rows of one node are contiguous in the alt pool (the product
 * constructions emit a node's full row before moving on). */
typedef struct {
    int n, cap_nodes;
    unsigned char *flags;
    int *row_start, *row_len;   /* per node, into the alt pool */
    IVec asym;                   /* per alt: symbol */
    IVec astart;                 /* per alt: start into argpool */
    IVec alen;                   /* per alt: arg count */
    IVec argpool;
} Dense;

static int dense_reserve(Dense *d, int n) {
    if (n <= d->cap_nodes) return 0;
    int cap = d->cap_nodes ? d->cap_nodes : 64;
    while (cap < n) cap *= 2;
    unsigned char *f = (unsigned char *)realloc(d->flags, (size_t)cap);
    if (!f) { PyErr_NoMemory(); return -1; }
    d->flags = f;
    int *rs = (int *)realloc(d->row_start, (size_t)cap * sizeof(int));
    if (!rs) { PyErr_NoMemory(); return -1; }
    d->row_start = rs;
    int *rl = (int *)realloc(d->row_len, (size_t)cap * sizeof(int));
    if (!rl) { PyErr_NoMemory(); return -1; }
    d->row_len = rl;
    d->cap_nodes = cap;
    return 0;
}

static int dense_add_node(Dense *d) {
    if (dense_reserve(d, d->n + 1) < 0) return -1;
    d->flags[d->n] = 0;
    d->row_start[d->n] = -1;
    d->row_len[d->n] = 0;
    return d->n++;
}

static int dense_begin_row(Dense *d, int node) {
    d->row_start[node] = d->asym.len;
    d->row_len[node] = 0;
    return 0;
}

static int dense_add_alt(Dense *d, int node, int sym,
                         const int *args, int nargs) {
    if (ivec_push(&d->asym, sym) < 0 ||
        ivec_push(&d->astart, d->argpool.len) < 0 ||
        ivec_push(&d->alen, nargs) < 0)
        return -1;
    for (int k = 0; k < nargs; k++)
        if (ivec_push(&d->argpool, args[k]) < 0) return -1;
    d->row_len[node]++;
    return 0;
}

static void dense_free(Dense *d) {
    free(d->flags); free(d->row_start); free(d->row_len);
    ivec_free(&d->asym); ivec_free(&d->astart); ivec_free(&d->alen);
    ivec_free(&d->argpool);
    memset(d, 0, sizeof(*d));
}

/* nonempty least fixpoint, mirroring arena._nonempty_bits */
static int dense_nonempty(const Dense *d, char *ne) {
    int n = d->n;
    int nalts = d->asym.len;
    int *remain = (int *)calloc((size_t)nalts + 1, sizeof(int));
    char *registered = (char *)calloc((size_t)nalts + 1, 1);
    int *alt_node = (int *)malloc(((size_t)nalts + 1) * sizeof(int));
    int *stack = (int *)malloc(((size_t)n + 1) * sizeof(int));
    int sp = 0, rc = -1;
    if (!remain || !registered || !alt_node || !stack) { PyErr_NoMemory(); goto done; }
    for (int i = 0; i < n; i++) {
        if (d->flags[i] & 3) { ne[i] = 1; stack[sp++] = i; continue; }
        int rs = d->row_start[i];
        for (int r = 0; r < d->row_len[i]; r++) {
            int alt = rs + r;
            int nargs = d->alen.data[alt];
            if (nargs == 0) {
                if (!ne[i]) { ne[i] = 1; stack[sp++] = i; }
                break;
            }
            remain[alt] = nargs;
            registered[alt] = 1;
            alt_node[alt] = i;
        }
    }
    /* waiting CSR over arg occurrences of registered alts */
    {
        int *occ = (int *)calloc((size_t)n + 1, sizeof(int));
        if (!occ) { PyErr_NoMemory(); goto done; }
        int total = 0;
        for (int alt = 0; alt < nalts; alt++) {
            if (!registered[alt]) continue;
            int as = d->astart.data[alt];
            for (int k = 0; k < d->alen.data[alt]; k++)
                occ[d->argpool.data[as + k]]++;
            total += d->alen.data[alt];
        }
        int *wptr = (int *)malloc(((size_t)n + 2) * sizeof(int));
        int *wlist = (int *)malloc(((size_t)total + 1) * sizeof(int));
        if (!wptr || !wlist) { free(occ); free(wptr); free(wlist); PyErr_NoMemory(); goto done; }
        wptr[0] = 0;
        for (int i = 0; i < n; i++) wptr[i + 1] = wptr[i] + occ[i];
        int *fill = occ;  /* reuse as cursor */
        for (int i = 0; i < n; i++) fill[i] = wptr[i];
        for (int alt = 0; alt < nalts; alt++) {
            if (!registered[alt]) continue;
            int as = d->astart.data[alt];
            for (int k = 0; k < d->alen.data[alt]; k++) {
                int a = d->argpool.data[as + k];
                wlist[fill[a]++] = alt;
            }
        }
        while (sp) {
            int proved = stack[--sp];
            for (int w = wptr[proved]; w < wptr[proved + 1]; w++) {
                int alt = wlist[w];
                remain[alt]--;
                int node = alt_node[alt];
                if (remain[alt] == 0 && !ne[node]) {
                    ne[node] = 1;
                    stack[sp++] = node;
                }
            }
        }
        free(occ); free(wptr); free(wlist);
    }
    rc = 0;
done:
    free(remain); free(registered); free(alt_node); free(stack);
    return rc;
}

/* Full normalization of a Dense buffer; returns a NEW reference to the
 * canonical interned Grammar.  Mirrors arena._normalize_dense +
 * _renumber_and_intern exactly (the partition is unique, the
 * representative is the minimum original index, BFS order is fkey-
 * sorted), so the flat int key matches the Python tiers bit for bit. */
static PyObject *flat_to_grammar(const IVec *flat);

static PyObject *dense_normalize(Dense *d, int root, int w, int prune) {
    PROF_BEGIN(OP_NORMALIZE)
    int n = d->n;
    int nalts = d->asym.len;
    PyObject *result = NULL;
    char *ne = NULL;
    char *kept = NULL;
    int *cls = NULL, *newcls = NULL, *cmap = NULL;
    int *keybuf = NULL, *sig_start = NULL, *sig_len = NULL, *sorted_nodes = NULL;
    int *num = NULL, *order = NULL;
    int64_t *sigpool = NULL;

    ne = (char *)calloc((size_t)n + 1, 1);
    kept = (char *)malloc((size_t)nalts + 1);
    if (!ne || !kept) { PyErr_NoMemory(); goto done; }

    /* 1. nonempty pass */
    if (prune) {
        if (dense_nonempty(d, ne) < 0) goto done;
    } else {
        memset(ne, 1, (size_t)n);
    }

    /* 2+3. prune empty references, absorb, cap or-width */
    for (int i = 0; i < n; i++) {
        int rs = d->row_start[i];
        int nkept = 0;
        for (int r = 0; r < d->row_len[i]; r++) {
            int alt = rs + r;
            int ok = 1;
            int as = d->astart.data[alt];
            for (int k = 0; k < d->alen.data[alt]; k++)
                if (!ne[d->argpool.data[as + k]]) { ok = 0; break; }
            kept[alt] = (char)ok;
            nkept += ok;
        }
        int has_any = d->flags[i] & 1;
        int has_int = (d->flags[i] >> 1) & 1;
        if (has_any && (has_int || nkept)) {
            has_int = 0;
            for (int r = 0; r < d->row_len[i]; r++) kept[rs + r] = 0;
            nkept = 0;
        } else if (has_int) {
            for (int r = 0; r < d->row_len[i]; r++) {
                int alt = rs + r;
                if (kept[alt] && g_syms[d->asym.data[alt]].is_literal) {
                    kept[alt] = 0;
                    nkept--;
                }
            }
        }
        if (w >= 0 && has_any + has_int + nkept > w) {
            has_any = 1; has_int = 0;
            for (int r = 0; r < d->row_len[i]; r++) kept[rs + r] = 0;
        }
        d->flags[i] = (unsigned char)(has_any | (has_int << 1));
    }

    /* 4. partition refinement (global rounds; the coarsest signature-
     * stable partition is unique, so matching the Python split-based
     * worklist is not required — only the partition matters). */
    cls = (int *)calloc((size_t)n + 1, sizeof(int));
    if (!cls) { PyErr_NoMemory(); goto done; }
    if (n > 1) {
        newcls = (int *)malloc(((size_t)n + 1) * sizeof(int));
        sig_start = (int *)malloc(((size_t)n + 1) * sizeof(int));
        sig_len = (int *)malloc(((size_t)n + 1) * sizeof(int));
        sorted_nodes = (int *)malloc(((size_t)n + 1) * sizeof(int));
        /* worst-case signature size: 1 + per alt (1 + nargs) + ANY/INT */
        size_t sigcap = (size_t)n * 3 + (size_t)nalts * 2
                        + (size_t)d->argpool.len + 16;
        sigpool = (int64_t *)malloc(sigcap * sizeof(int64_t));
        keybuf = (int *)malloc(((size_t)nalts + 2) * 2 * sizeof(int));
        if (!newcls || !sig_start || !sig_len || !sorted_nodes || !sigpool
            || !keybuf) { PyErr_NoMemory(); goto done; }
        int ncls = 1;
        for (;;) {
            /* build per-node signatures:
             * [cls[i], then sorted alt keys (code, argcls+1 ...)] */
            size_t sp2 = 0;
            for (int i = 0; i < n; i++) {
                sig_start[i] = (int)sp2;
                sigpool[sp2++] = cls[i];
                /* collect alt key offsets: emit keys into sigpool
                 * sequentially, then insertion-sort the (variable
                 * length) keys via an index array. */
                int rs = d->row_start[i];
                int nkeys = 0;
                int key_off[2];  /* unused: placate compilers */
                (void)key_off;
                /* ANY -> code 0, INT -> 1, sym -> sym + 2; keys are
                 * uniquely parseable, so flat lexicographic compare of
                 * the concatenation equals tuple compare. */
                size_t keys_begin = sp2;
                int koff[256];
                int klen[256];
                int *koffp = koff, *klenp = klen;
                int dynamic = 0;
                int total_keys = (d->flags[i] & 1 ? 1 : 0)
                                 + ((d->flags[i] >> 1) & 1 ? 1 : 0)
                                 + d->row_len[i];
                if (total_keys > 256) {
                    koffp = (int *)malloc((size_t)total_keys * sizeof(int));
                    klenp = (int *)malloc((size_t)total_keys * sizeof(int));
                    if (!koffp || !klenp) { free(koffp); free(klenp); PyErr_NoMemory(); goto done; }
                    dynamic = 1;
                }
                if (d->flags[i] & 1) {
                    koffp[nkeys] = (int)(sp2 - keys_begin);
                    klenp[nkeys++] = 1;
                    sigpool[sp2++] = 0;
                }
                if ((d->flags[i] >> 1) & 1) {
                    koffp[nkeys] = (int)(sp2 - keys_begin);
                    klenp[nkeys++] = 1;
                    sigpool[sp2++] = 1;
                }
                for (int r = 0; r < d->row_len[i]; r++) {
                    int alt = rs + r;
                    if (!kept[alt]) continue;
                    koffp[nkeys] = (int)(sp2 - keys_begin);
                    int as = d->astart.data[alt];
                    int na = d->alen.data[alt];
                    klenp[nkeys++] = 1 + na;
                    sigpool[sp2++] = (int64_t)d->asym.data[alt] + 2;
                    for (int k = 0; k < na; k++)
                        sigpool[sp2++] = cls[d->argpool.data[as + k]] + 1;
                }
                /* insertion sort keys lexicographically */
                for (int a = 1; a < nkeys; a++) {
                    int oa = koffp[a], la = klenp[a];
                    /* copy key a to scratch (end of pool is safe: we
                     * sort in place via rotation instead) */
                    int b = a;
                    while (b > 0) {
                        int ob = koffp[b - 1], lb = klenp[b - 1];
                        int64_t *ka = sigpool + keys_begin + oa;
                        int64_t *kb = sigpool + keys_begin + ob;
                        int m = la < lb ? la : lb;
                        int c = 0;
                        for (int t = 0; t < m; t++) {
                            if (ka[t] != kb[t]) { c = ka[t] < kb[t] ? -1 : 1; break; }
                        }
                        if (c == 0) c = la < lb ? -1 : (la > lb ? 1 : 0);
                        if (c >= 0) break;
                        /* swap order only (offsets move, data stays) */
                        koffp[b] = ob; klenp[b] = lb;
                        koffp[b - 1] = oa; klenp[b - 1] = la;
                        b--;
                    }
                }
                /* rewrite signature as concatenation in sorted order:
                 * compact into a scratch area then copy back */
                {
                    size_t total = sp2 - keys_begin;
                    int64_t *scratch = (int64_t *)malloc(
                        (total + 1) * sizeof(int64_t));
                    if (!scratch) { if (dynamic) { free(koffp); free(klenp); } PyErr_NoMemory(); goto done; }
                    size_t t = 0;
                    for (int a = 0; a < nkeys; a++) {
                        memcpy(scratch + t, sigpool + keys_begin + koffp[a],
                               (size_t)klenp[a] * sizeof(int64_t));
                        t += (size_t)klenp[a];
                    }
                    memcpy(sigpool + keys_begin, scratch,
                           t * sizeof(int64_t));
                    free(scratch);
                }
                if (dynamic) { free(koffp); free(klenp); }
                sig_len[i] = (int)(sp2 - (size_t)sig_start[i]);
                sorted_nodes[i] = i;
            }
            /* sort node indices by signature (insertion sort: n is
             * small for type graphs; stable order not required) */
            for (int a = 1; a < n; a++) {
                int ia = sorted_nodes[a];
                int b = a;
                while (b > 0) {
                    int ib = sorted_nodes[b - 1];
                    int64_t *sa = sigpool + sig_start[ia];
                    int64_t *sb = sigpool + sig_start[ib];
                    int la = sig_len[ia], lb = sig_len[ib];
                    int m = la < lb ? la : lb;
                    int c = 0;
                    for (int t = 0; t < m; t++)
                        if (sa[t] != sb[t]) { c = sa[t] < sb[t] ? -1 : 1; break; }
                    if (c == 0) c = la < lb ? -1 : (la > lb ? 1 : 0);
                    if (c >= 0) break;
                    sorted_nodes[b] = ib;
                    sorted_nodes[b - 1] = ia;
                    b--;
                }
            }
            /* assign group labels in sorted order */
            int count = 0;
            for (int a = 0; a < n; a++) {
                if (a > 0) {
                    int ia = sorted_nodes[a], ib = sorted_nodes[a - 1];
                    int la = sig_len[ia], lb = sig_len[ib];
                    int equal = (la == lb);
                    if (equal) {
                        int64_t *sa = sigpool + sig_start[ia];
                        int64_t *sb = sigpool + sig_start[ib];
                        for (int t = 0; t < la; t++)
                            if (sa[t] != sb[t]) { equal = 0; break; }
                    }
                    if (!equal) count++;
                }
                newcls[sorted_nodes[a]] = count;
            }
            count++;
            if (count == ncls) break;
            ncls = count;
            memcpy(cls, newcls, (size_t)n * sizeof(int));
            if (ncls >= n) break;
        }
    }

    /* representative = minimum original index per class */
    cmap = (int *)malloc(((size_t)n + 1) * sizeof(int));
    num = (int *)malloc(((size_t)n + 1) * sizeof(int));
    order = (int *)malloc(((size_t)n + 1) * sizeof(int));
    if (!cmap || !num || !order) { PyErr_NoMemory(); goto done; }
    {
        int *rep = newcls ? newcls : cls;  /* reuse as scratch */
        for (int i = 0; i < n; i++) rep[i] = -1;
        /* careful: cls holds the classes; use a separate scratch */
    }
    {
        int *repof = (int *)malloc(((size_t)n + 1) * sizeof(int));
        if (!repof) { PyErr_NoMemory(); goto done; }
        for (int i = 0; i < n; i++) repof[i] = -1;
        for (int i = 0; i < n; i++)
            if (repof[cls[i]] < 0) repof[cls[i]] = i;
        for (int i = 0; i < n; i++) cmap[i] = repof[cls[i]];
        free(repof);
    }

    /* 5. BFS renumber from cmap[root]; per rep node the merged row is
     * the deduped (sym, cmapped args) entries sorted by fkey then
     * mapped args. */
    {
        for (int i = 0; i < n; i++) num[i] = -1;
        int start = cmap[root];
        num[start] = 0;
        order[0] = start;
        int cnt = 1, qi = 0;
        /* merged rows, rebuilt per visited node into scratch vectors */
        IVec msym = {0}, mstart = {0}, mlen = {0}, margs = {0};
        IVec node_row_start = {0};  /* per visited node: index into msym */
        int fail = 0;
        while (qi < cnt && !fail) {
            int i = order[qi++];
            if (ivec_push(&node_row_start, msym.len) < 0) { fail = 1; break; }
            int rs = d->row_start[i];
            int row_begin = msym.len;
            for (int r = 0; r < d->row_len[i] && !fail; r++) {
                int alt = rs + r;
                if (!kept[alt]) continue;
                int sym = d->asym.data[alt];
                int as = d->astart.data[alt];
                int na = d->alen.data[alt];
                /* mapped args */
                int stackbuf[32];
                int *m = stackbuf;
                if (na > 32) {
                    m = (int *)malloc((size_t)na * sizeof(int));
                    if (!m) { fail = 1; break; }
                }
                for (int k = 0; k < na; k++)
                    m[k] = cmap[d->argpool.data[as + k]];
                /* dedup: linear scan of entries emitted for this node */
                int dup = 0;
                for (int e = row_begin; e < msym.len; e++) {
                    if (msym.data[e] != sym) continue;
                    if (mlen.data[e] != na) continue;
                    int same = 1;
                    int es = mstart.data[e];
                    for (int k = 0; k < na; k++)
                        if (margs.data[es + k] != m[k]) { same = 0; break; }
                    if (same) { dup = 1; break; }
                }
                if (!dup) {
                    if (ivec_push(&msym, sym) < 0 ||
                        ivec_push(&mstart, margs.len) < 0 ||
                        ivec_push(&mlen, na) < 0) fail = 1;
                    for (int k = 0; k < na && !fail; k++)
                        if (ivec_push(&margs, m[k]) < 0) fail = 1;
                }
                if (m != stackbuf) free(m);
            }
            if (fail) break;
            /* sort this node's entries by (fkey, mapped args) */
            for (int a = row_begin + 1; a < msym.len; a++) {
                int b = a;
                while (b > row_begin) {
                    int c = fkey_cmp(msym.data[b - 1], msym.data[b]);
                    if (c == 0) {
                        int la = mlen.data[b - 1];
                        int sa = mstart.data[b - 1], sb = mstart.data[b];
                        for (int k = 0; k < la; k++) {
                            int x = margs.data[sa + k], y = margs.data[sb + k];
                            if (x != y) { c = x < y ? -1 : 1; break; }
                        }
                    }
                    if (c <= 0) break;
                    /* swap entries b-1 and b (args stay; swap headers) */
                    int ts = msym.data[b - 1]; msym.data[b - 1] = msym.data[b]; msym.data[b] = ts;
                    ts = mstart.data[b - 1]; mstart.data[b - 1] = mstart.data[b]; mstart.data[b] = ts;
                    ts = mlen.data[b - 1]; mlen.data[b - 1] = mlen.data[b]; mlen.data[b] = ts;
                    b--;
                }
            }
            /* BFS-number children in sorted entry order */
            for (int e = row_begin; e < msym.len; e++) {
                int es = mstart.data[e];
                for (int k = 0; k < mlen.data[e]; k++) {
                    int child = margs.data[es + k];
                    if (num[child] < 0) {
                        num[child] = cnt;
                        order[cnt++] = child;
                    }
                }
            }
        }
        if (fail) {
            ivec_free(&msym); ivec_free(&mstart); ivec_free(&mlen);
            ivec_free(&margs); ivec_free(&node_row_start);
            PyErr_NoMemory();
            goto done;
        }
        ivec_push(&node_row_start, msym.len);

        /* 6. emit the flat int key:
         * [out_n, per new nt: flags, nrows, (sym, renumbered args)...] */
        IVec flat = {0};
        int out_n = cnt;
        int emit_fail = ivec_push(&flat, out_n) < 0;
        for (int newnt = 0; newnt < out_n && !emit_fail; newnt++) {
            int i = order[newnt];
            emit_fail |= ivec_push(&flat, d->flags[i]) < 0;
            int rb = node_row_start.data[newnt];
            int re = node_row_start.data[newnt + 1];
            emit_fail |= ivec_push(&flat, re - rb) < 0;
            for (int e = rb; e < re && !emit_fail; e++) {
                emit_fail |= ivec_push(&flat, msym.data[e]) < 0;
                int es = mstart.data[e];
                for (int k = 0; k < mlen.data[e] && !emit_fail; k++)
                    emit_fail |= ivec_push(&flat,
                                           num[margs.data[es + k]]) < 0;
            }
        }
        ivec_free(&msym); ivec_free(&mstart); ivec_free(&mlen);
        ivec_free(&margs); ivec_free(&node_row_start);
        if (emit_fail) { ivec_free(&flat); PyErr_NoMemory(); goto done; }

        /* probe the C-side flat cache (bytes key), then fall through
         * to the Python intern-table callback on miss */
        result = flat_to_grammar(&flat);
        ivec_free(&flat);
    }

done:
    free(ne); free(kept); free(cls); free(newcls); free(cmap);
    free(keybuf); free(sig_start); free(sig_len); free(sorted_nodes);
    free(num); free(order); free(sigpool);
    PROF_END(OP_NORMALIZE)
    return result;
}

/* ------------------------------------------------------------------ */
/* grammar operations                                                  */

typedef struct { int64_t *data; int len, cap; } I64Vec;

static int i64vec_push(I64Vec *v, int64_t x) {
    if (v->len == v->cap) {
        int cap = v->cap ? v->cap * 2 : 64;
        int64_t *data = (int64_t *)realloc(
            v->data, (size_t)cap * sizeof(int64_t));
        if (!data) return -1;
        v->data = data; v->cap = cap;
    }
    v->data[v->len++] = x;
    return 0;
}

static void i64vec_free(I64Vec *v) { free(v->data); v->data = NULL; v->len = v->cap = 0; }

static int row_find(const CArena *a, int node, int sym) {
    for (int r = a->row_start[node]; r < a->row_start[node + 1]; r++)
        if (a->alt_sym[r] == sym) return r;
    return -1;
}

static int grammar_is_bottom(const CArena *a) {
    return a->flags[a->root] == 0
        && a->row_start[a->root + 1] == a->row_start[a->root];
}

/* shared tail of every construction: probe the bytes-keyed flat cache,
 * fall back to the Python intern-table callback */
static PyObject *flat_to_grammar(const IVec *flat) {
    PyObject *key = PyBytes_FromStringAndSize(
        (const char *)flat->data,
        (Py_ssize_t)flat->len * (Py_ssize_t)sizeof(int));
    if (!key) return NULL;
    PyObject *hit = PyDict_GetItem(flat_cache, key);  /* borrowed */
    if (hit) {
        Py_INCREF(hit);
        Py_DECREF(key);
        return hit;
    }
    PyObject *tup = PyTuple_New(flat->len);
    if (!tup) { Py_DECREF(key); return NULL; }
    for (int t = 0; t < flat->len; t++)
        PyTuple_SET_ITEM(tup, t, PyLong_FromLong(flat->data[t]));
    PyObject *grammar = PyObject_CallFunctionObjArgs(cb_from_flat, tup, NULL);
    Py_DECREF(tup);
    if (!grammar) { Py_DECREF(key); return NULL; }
    register_arena_from_intkey(grammar, flat->data, flat->len);
    bound_dict(flat_cache);
    if (PyDict_SetItem(flat_cache, key, grammar) < 0) {
        Py_DECREF(key); Py_DECREF(grammar); return NULL;
    }
    Py_DECREF(key);
    return grammar;
}

/* normalize(g, w) for an interned grammar (the Python fast path plus
 * the dense pipeline when the width cap actually bites) */
static PyObject *norm_interned(PyObject *g, int w) {
    if (w < 0) { Py_INCREF(g); return g; }
    CArena *a = get_arena(g);
    if (!a) return NULL;
    if (arena_within_width(a, w)) { Py_INCREF(g); return g; }
    Dense d; memset(&d, 0, sizeof d);
    PyObject *res = NULL;
    if (dense_reserve(&d, a->n) < 0) { dense_free(&d); return NULL; }
    for (int i = 0; i < a->n; i++) {
        int node = dense_add_node(&d);
        d.flags[node] = a->flags[i];
        dense_begin_row(&d, node);
        for (int r = a->row_start[i]; r < a->row_start[i + 1]; r++) {
            if (dense_add_alt(&d, node, a->alt_sym[r],
                              a->args + a->arg_start[r],
                              a->arg_start[r + 1] - a->arg_start[r]) < 0) {
                PyErr_NoMemory(); dense_free(&d); return NULL;
            }
        }
    }
    res = dense_normalize(&d, a->root, w, 1);
    dense_free(&d);
    return res;
}

/* -- inclusion: pair worklist over the synchronized product -- */

static int le_walk_from(const CArena *a1, int start1,
                        const CArena *a2, int start2) {
    int64_t n2 = a2->n;
    IMap seen; memset(&seen, 0, sizeof seen);
    I64Vec stack = {0};
    int res = 1;
    int64_t key0 = (int64_t)start1 * n2 + start2;
    if (imap_put(&seen, key0, 1) < 0 || i64vec_push(&stack, key0) < 0) {
        res = -1; goto done;
    }
    while (stack.len) {
        int64_t key = stack.data[--stack.len];
        int i = (int)(key / n2), j = (int)(key % n2);
        if (a2->flags[j] & 1) continue;          /* ANY right covers */
        if (a1->flags[i] & 1) { res = 0; goto done; }
        int has_int = (a2->flags[j] >> 1) & 1;
        if (((a1->flags[i] >> 1) & 1) && !has_int) { res = 0; goto done; }
        for (int r = a1->row_start[i]; r < a1->row_start[i + 1]; r++) {
            int sym = a1->alt_sym[r];
            if (has_int && g_syms[sym].is_literal) continue;
            int other = row_find(a2, j, sym);
            if (other < 0) { res = 0; goto done; }
            int as1 = a1->arg_start[r], as2 = a2->arg_start[other];
            int na = a1->arg_start[r + 1] - as1;
            for (int k = 0; k < na; k++) {
                int64_t pk = (int64_t)a1->args[as1 + k] * n2
                             + a2->args[as2 + k];
                int64_t dummy;
                if (!imap_get(&seen, pk, &dummy)) {
                    if (imap_put(&seen, pk, 1) < 0 ||
                        i64vec_push(&stack, pk) < 0) { res = -1; goto done; }
                }
            }
        }
    }
done:
    imap_free(&seen);
    i64vec_free(&stack);
    if (res < 0) PyErr_NoMemory();
    return res;
}

static int le_walk(const CArena *a1, const CArena *a2) {
    return le_walk_from(a1, a1->root, a2, a2->root);
}

/* full g_le chain (identity / memo / bottoms / walk), mirroring
 * repro.typegraph.ops.g_le; returns -1 on error */
static int c_g_le(PyObject *g1, PyObject *g2) {
    if (g1 == g2) return 1;
    PROF_BEGIN(OP_LE)
    int res = -1;
    CArena *a1 = get_arena(g1);
    CArena *a2 = a1 ? get_arena(g2) : NULL;
    if (!a2) goto done;
    long gid1 = get_gid(g1), gid2 = get_gid(g2);
    if (gid1 == -2 || gid2 == -2) goto done;
    int64_t key = -1;
    if (gid1 < (1L << 31) && gid2 < (1L << 31)) {
        key = ((int64_t)gid1 << 31) | gid2;
        int64_t v;
        if (imap_get(&memo_le, key, &v)) { res = (int)v; goto done; }
    }
    if (grammar_is_bottom(a1)) res = 1;
    else if (grammar_is_bottom(a2)) res = 0;
    else res = le_walk(a1, a2);
    if (res >= 0 && key >= 0) {
        if (memo_le.count > MEMO_CAP) imap_free(&memo_le);
        imap_put(&memo_le, key, res);
    }
done:
    PROF_END(OP_LE)
    return res;
}

/* -- product constructions (union / intersect / functor) -- */

typedef struct {
    IMap ids;
    I64Vec work;
    Dense d;
    int err;
} Prod;

static int prod_nid(Prod *p, int64_t key) {
    int64_t slot;
    if (imap_get(&p->ids, key, &slot)) return (int)slot;
    int node = dense_add_node(&p->d);
    if (node < 0 || imap_put(&p->ids, key, node) < 0 ||
        i64vec_push(&p->work, key) < 0) {
        p->err = 1;
        return 0;
    }
    return node;
}

/* emit one alternative whose args map through `nid(make_key(c))` */
static int prod_emit_alt(Prod *p, int slot, int sym,
                         const int *args, int na,
                         const int64_t *keys) {
    int stackbuf[32];
    int *m = stackbuf;
    if (na > 32) {
        m = (int *)malloc((size_t)na * sizeof(int));
        if (!m) { p->err = 1; return -1; }
    }
    for (int k = 0; k < na; k++)
        m[k] = prod_nid(p, keys[k]);
    int rc = p->err ? -1 : dense_add_alt(&p->d, slot, sym, m, na);
    if (m != stackbuf) free(m);
    if (rc < 0) p->err = 1;
    (void)args;
    return rc;
}

/* embed one node of `a` with key offset `key_base` */
static void prod_embed_row(Prod *p, int slot, const CArena *a, int node,
                           int64_t key_base) {
    p->d.flags[slot] = a->flags[node];
    dense_begin_row(&p->d, slot);
    for (int r = a->row_start[node];
         !p->err && r < a->row_start[node + 1]; r++) {
        int as = a->arg_start[r];
        int na = a->arg_start[r + 1] - as;
        int64_t keybuf[32];
        int64_t *keys = keybuf;
        if (na > 32) {
            keys = (int64_t *)malloc((size_t)na * sizeof(int64_t));
            if (!keys) { p->err = 1; return; }
        }
        for (int k = 0; k < na; k++)
            keys[k] = key_base + a->args[as + k];
        prod_emit_alt(p, slot, a->alt_sym[r], NULL, na, keys);
        if (keys != keybuf) free(keys);
    }
}

static void prod_free(Prod *p) {
    imap_free(&p->ids);
    i64vec_free(&p->work);
    dense_free(&p->d);
}

/* bare union product, mirroring arena._arena_union_py */
static PyObject *union_product(PyObject *g1, PyObject *g2, int w) {
    CArena *a1 = get_arena(g1);
    CArena *a2 = a1 ? get_arena(g2) : NULL;
    if (!a2) return NULL;
    int64_t n2 = a2->n;
    int64_t base = (int64_t)a1->n * n2;
    int64_t base_r = base + a1->n;
    Prod p; memset(&p, 0, sizeof p);
    int root = prod_nid(&p, (int64_t)a1->root * n2 + a2->root);
    while (p.work.len && !p.err) {
        int64_t key = p.work.data[--p.work.len];
        int64_t sv;
        imap_get(&p.ids, key, &sv);
        int slot = (int)sv;
        if (key >= base_r) {
            prod_embed_row(&p, slot, a2, (int)(key - base_r), base_r);
            continue;
        }
        if (key >= base) {
            prod_embed_row(&p, slot, a1, (int)(key - base), base);
            continue;
        }
        int i = (int)(key / n2), j = (int)(key % n2);
        if ((a1->flags[i] & 1) || (a2->flags[j] & 1)) {
            p.d.flags[slot] = 1;
            dense_begin_row(&p.d, slot);
            continue;
        }
        int has_int = ((a1->flags[i] | a2->flags[j]) >> 1) & 1;
        p.d.flags[slot] = (unsigned char)(has_int << 1);
        dense_begin_row(&p.d, slot);
        for (int r = a1->row_start[i];
             !p.err && r < a1->row_start[i + 1]; r++) {
            int sym = a1->alt_sym[r];
            if (has_int && g_syms[sym].is_literal) continue;
            int as1 = a1->arg_start[r];
            int na = a1->arg_start[r + 1] - as1;
            int other = row_find(a2, j, sym);
            int64_t keybuf[32];
            int64_t *keys = keybuf;
            if (na > 32) {
                keys = (int64_t *)malloc((size_t)na * sizeof(int64_t));
                if (!keys) { p.err = 1; break; }
            }
            if (other >= 0) {
                int as2 = a2->arg_start[other];
                for (int k = 0; k < na; k++)
                    keys[k] = (int64_t)a1->args[as1 + k] * n2
                              + a2->args[as2 + k];
            } else {
                for (int k = 0; k < na; k++)
                    keys[k] = base + a1->args[as1 + k];
            }
            prod_emit_alt(&p, slot, sym, NULL, na, keys);
            if (keys != keybuf) free(keys);
        }
        for (int r = a2->row_start[j];
             !p.err && r < a2->row_start[j + 1]; r++) {
            int sym = a2->alt_sym[r];
            if (row_find(a1, i, sym) >= 0) continue;
            if (has_int && g_syms[sym].is_literal) continue;
            int as2 = a2->arg_start[r];
            int na = a2->arg_start[r + 1] - as2;
            int64_t keybuf[32];
            int64_t *keys = keybuf;
            if (na > 32) {
                keys = (int64_t *)malloc((size_t)na * sizeof(int64_t));
                if (!keys) { p.err = 1; break; }
            }
            for (int k = 0; k < na; k++)
                keys[k] = base_r + a2->args[as2 + k];
            prod_emit_alt(&p, slot, sym, NULL, na, keys);
            if (keys != keybuf) free(keys);
        }
    }
    PyObject *res = NULL;
    if (!p.err)
        res = dense_normalize(&p.d, root, w, 0);
    else if (!PyErr_Occurred())
        PyErr_NoMemory();
    prod_free(&p);
    return res;
}

/* bare intersection product, mirroring arena._arena_intersect_py */
static PyObject *intersect_product(PyObject *g1, PyObject *g2, int w) {
    CArena *a1 = get_arena(g1);
    CArena *a2 = a1 ? get_arena(g2) : NULL;
    if (!a2) return NULL;
    int64_t n2 = a2->n;
    int64_t base = (int64_t)a1->n * n2;
    int64_t base_r = base + a1->n;
    Prod p; memset(&p, 0, sizeof p);
    int root = prod_nid(&p, (int64_t)a1->root * n2 + a2->root);
    while (p.work.len && !p.err) {
        int64_t key = p.work.data[--p.work.len];
        int64_t sv;
        imap_get(&p.ids, key, &sv);
        int slot = (int)sv;
        if (key >= base_r) {
            prod_embed_row(&p, slot, a2, (int)(key - base_r), base_r);
            continue;
        }
        if (key >= base) {
            prod_embed_row(&p, slot, a1, (int)(key - base), base);
            continue;
        }
        int i = (int)(key / n2), j = (int)(key % n2);
        if (a1->flags[i] & 1) {            /* Any ∩ x = x */
            prod_embed_row(&p, slot, a2, j, base_r);
            continue;
        }
        if (a2->flags[j] & 1) {
            prod_embed_row(&p, slot, a1, i, base);
            continue;
        }
        int int1 = (a1->flags[i] >> 1) & 1;
        int int2 = (a2->flags[j] >> 1) & 1;
        p.d.flags[slot] = (unsigned char)((int1 && int2) << 1);
        dense_begin_row(&p.d, slot);
        for (int r = a1->row_start[i];
             !p.err && r < a1->row_start[i + 1]; r++) {
            int sym = a1->alt_sym[r];
            int other = row_find(a2, j, sym);
            if (other < 0) continue;
            int as1 = a1->arg_start[r], as2 = a2->arg_start[other];
            int na = a1->arg_start[r + 1] - as1;
            int64_t keybuf[32];
            int64_t *keys = keybuf;
            if (na > 32) {
                keys = (int64_t *)malloc((size_t)na * sizeof(int64_t));
                if (!keys) { p.err = 1; break; }
            }
            for (int k = 0; k < na; k++)
                keys[k] = (int64_t)a1->args[as1 + k] * n2
                          + a2->args[as2 + k];
            prod_emit_alt(&p, slot, sym, NULL, na, keys);
            if (keys != keybuf) free(keys);
        }
        if (int2 && !int1) {   /* literals of g1 ∩ INT = the literals */
            for (int r = a1->row_start[i];
                 !p.err && r < a1->row_start[i + 1]; r++) {
                int sym = a1->alt_sym[r];
                if (g_syms[sym].is_literal && row_find(a2, j, sym) < 0)
                    prod_emit_alt(&p, slot, sym, NULL, 0, NULL);
            }
        }
        if (int1 && !int2) {
            for (int r = a2->row_start[j];
                 !p.err && r < a2->row_start[j + 1]; r++) {
                int sym = a2->alt_sym[r];
                if (g_syms[sym].is_literal && row_find(a1, i, sym) < 0)
                    prod_emit_alt(&p, slot, sym, NULL, 0, NULL);
            }
        }
    }
    PyObject *res = NULL;
    if (!p.err)
        res = dense_normalize(&p.d, root, w, 1);
    else if (!PyErr_Occurred())
        PyErr_NoMemory();
    prod_free(&p);
    return res;
}

/* full g_union chain, mirroring ops.g_union + _g_union_impl */
static PyObject *c_g_union(PyObject *g1, PyObject *g2, int w) {
    PROF_BEGIN(OP_UNION)
    PyObject *res = NULL, *key = NULL;
    CArena *a1 = get_arena(g1);
    CArena *a2 = a1 ? get_arena(g2) : NULL;
    if (!a2) goto done;
    if (grammar_is_bottom(a1)) { res = norm_interned(g2, w); goto done; }
    if (grammar_is_bottom(a2)) { res = norm_interned(g1, w); goto done; }
    if (g1 == g2) { res = norm_interned(g1, w); goto done; }
    {
        long gid1 = get_gid(g1), gid2 = get_gid(g2);
        if (gid1 == -2 || gid2 == -2) goto done;
        key = Py_BuildValue("(lli)", gid1, gid2, w);
        if (!key) goto done;
        PyObject *hit = PyDict_GetItem(memo_union, key);
        if (hit) { Py_INCREF(hit); res = hit; goto done; }
    }
    {
        int c = c_g_le(g1, g2);
        if (c < 0) goto done;
        if (c) res = norm_interned(g2, w);
        else {
            c = c_g_le(g2, g1);
            if (c < 0) goto done;
            res = c ? norm_interned(g1, w) : union_product(g1, g2, w);
        }
    }
    if (res && key) {
        bound_dict(memo_union);
        PyDict_SetItem(memo_union, key, res);
    }
done:
    Py_XDECREF(key);
    PROF_END(OP_UNION)
    return res;
}

/* full g_intersect chain, mirroring ops.g_intersect */
static PyObject *c_g_intersect(PyObject *g1, PyObject *g2, int w) {
    PROF_BEGIN(OP_INTERSECT)
    PyObject *res = NULL, *key = NULL;
    CArena *a1 = get_arena(g1);
    CArena *a2 = a1 ? get_arena(g2) : NULL;
    if (!a2) goto done;
    if (grammar_is_bottom(a1) || grammar_is_bottom(a2)) {
        Py_INCREF(obj_bottom);
        res = obj_bottom;
        goto done;
    }
    if (arena_is_any(a1)) { res = norm_interned(g2, w); goto done; }
    if (arena_is_any(a2)) { res = norm_interned(g1, w); goto done; }
    if (g1 == g2) { res = norm_interned(g1, w); goto done; }
    {
        long gid1 = get_gid(g1), gid2 = get_gid(g2);
        if (gid1 == -2 || gid2 == -2) goto done;
        key = Py_BuildValue("(lli)", gid1, gid2, w);
        if (!key) goto done;
        PyObject *hit = PyDict_GetItem(memo_intersect, key);
        if (hit) { Py_INCREF(hit); res = hit; goto done; }
    }
    {
        int c = c_g_le(g1, g2);
        if (c < 0) goto done;
        if (c) res = norm_interned(g1, w);
        else {
            c = c_g_le(g2, g1);
            if (c < 0) goto done;
            res = c ? norm_interned(g2, w) : intersect_product(g1, g2, w);
        }
    }
    if (res && key) {
        bound_dict(memo_intersect);
        PyDict_SetItem(memo_intersect, key, res);
    }
done:
    Py_XDECREF(key);
    PROF_END(OP_INTERSECT)
    return res;
}

/* functor construction, mirroring arena._arena_functor_py (the
 * g_functor opcache probe is replaced by the C-side functor memo) */
static PyObject *c_g_functor(PyObject *name, PyObject *children, int w) {
    PROF_BEGIN(OP_FUNCTOR)
    PyObject *res = NULL, *key = NULL;
    Py_ssize_t nch = PyTuple_GET_SIZE(children);
    key = PyTuple_New(nch + 2);
    if (!key) goto done;
    Py_INCREF(name);
    PyTuple_SET_ITEM(key, 0, name);
    for (Py_ssize_t c = 0; c < nch; c++) {
        long gid = get_gid(PyTuple_GET_ITEM(children, c));
        if (gid == -2) goto done;
        PyObject *o = PyLong_FromLong(gid);
        if (!o) goto done;
        PyTuple_SET_ITEM(key, c + 1, o);
    }
    {
        PyObject *o = PyLong_FromLong(w);
        if (!o) goto done;
        PyTuple_SET_ITEM(key, nch + 1, o);
    }
    {
        PyObject *hit = PyDict_GetItem(memo_functor, key);
        if (hit) { Py_INCREF(hit); res = hit; goto done; }
    }
    {
        PyObject *sym_o = PyObject_CallFunction(
            cb_sym_f, "Oi", name, (int)nch);
        if (!sym_o) goto done;
        long sym = PyLong_AsLong(sym_o);
        Py_DECREF(sym_o);
        if (sym == -1 && PyErr_Occurred()) goto done;
        if (ensure_syms((int)sym) < 0) goto done;

        Dense d; memset(&d, 0, sizeof d);
        int err = 0, prune = 0;
        int root = dense_add_node(&d);
        int rootbuf[32];
        int *child_roots = rootbuf;
        if (nch > 32) {
            child_roots = (int *)malloc((size_t)nch * sizeof(int));
            if (!child_roots) { dense_free(&d); PyErr_NoMemory(); goto done; }
        }
        int offset = 1;
        for (Py_ssize_t c = 0; c < nch && !err; c++) {
            CArena *a = get_arena(PyTuple_GET_ITEM(children, c));
            if (!a) { err = 2; break; }
            child_roots[c] = offset + a->root;
            if (grammar_is_bottom(a)) prune = 1;
            for (int i = 0; i < a->n && !err; i++) {
                int node = dense_add_node(&d);
                if (node < 0) { err = 1; break; }
                d.flags[node] = a->flags[i];
                dense_begin_row(&d, node);
                for (int r = a->row_start[i];
                     !err && r < a->row_start[i + 1]; r++) {
                    int as = a->arg_start[r];
                    int na = a->arg_start[r + 1] - as;
                    int abuf[32];
                    int *m = abuf;
                    if (na > 32) {
                        m = (int *)malloc((size_t)na * sizeof(int));
                        if (!m) { err = 1; break; }
                    }
                    for (int k = 0; k < na; k++)
                        m[k] = offset + a->args[as + k];
                    if (dense_add_alt(&d, node, a->alt_sym[r], m, na) < 0)
                        err = 1;
                    if (m != abuf) free(m);
                }
            }
            offset += a->n;
        }
        if (!err) {
            dense_begin_row(&d, root);
            if (dense_add_alt(&d, root, (int)sym, child_roots,
                              (int)nch) < 0)
                err = 1;
        }
        if (child_roots != rootbuf) free(child_roots);
        if (!err)
            res = dense_normalize(&d, 0, w, prune);
        else if (err == 1)
            PyErr_NoMemory();
        dense_free(&d);
    }
    if (res && key) {
        bound_dict(memo_functor);
        PyDict_SetItem(memo_functor, key, res);
    }
done:
    Py_XDECREF(key);
    PROF_END(OP_FUNCTOR)
    return res;
}

/* subgrammar at dense index, mirroring arena._arena_subgrammar_py:
 * BFS renumbering over the (pre-sorted, duplicate-free) arena rows of
 * a normalized grammar is already the canonical numbering, so the
 * emission below is the result's canonical flat int key. */
static PyObject *c_subgrammar(PyObject *g, int start) {
    CArena *a = get_arena(g);
    if (!a) return NULL;
    if (start == a->root) { Py_INCREF(g); return g; }
    PROF_BEGIN(OP_SUBGRAMMAR)
    PyObject *res = NULL;
    long gid = get_gid(g);
    if (gid == -2) { PROF_END(OP_SUBGRAMMAR) return NULL; }
    int64_t mkey = (gid < (1L << 34) && start < (1 << 28))
                   ? ((int64_t)gid << 28) | start : -1;
    if (mkey >= 0) {
        int64_t v;
        if (imap_get(&memo_sub, mkey, &v)) {
            res = (PyObject *)(intptr_t)v;
            Py_INCREF(res);
            PROF_END(OP_SUBGRAMMAR)
            return res;
        }
    }
    int n = a->n;
    int *num = (int *)malloc((size_t)n * sizeof(int));
    int *order = (int *)malloc((size_t)n * sizeof(int));
    IVec flat = {0};
    if (!num || !order) { free(num); free(order); PyErr_NoMemory(); PROF_END(OP_SUBGRAMMAR) return NULL; }
    for (int i = 0; i < n; i++) num[i] = -1;
    num[start] = 0;
    order[0] = start;
    int cnt = 1, qi = 0;
    while (qi < cnt) {
        int i = order[qi++];
        for (int r = a->row_start[i]; r < a->row_start[i + 1]; r++) {
            int as = a->arg_start[r];
            for (int k = a->arg_start[r + 1] - as; k > 0; k--) {
                int child = a->args[as + (a->arg_start[r + 1] - as - k)];
                if (num[child] < 0) {
                    num[child] = cnt;
                    order[cnt++] = child;
                }
            }
        }
    }
    int fail = ivec_push(&flat, cnt) < 0;
    for (int q = 0; q < cnt && !fail; q++) {
        int i = order[q];
        fail |= ivec_push(&flat, a->flags[i]) < 0;
        fail |= ivec_push(&flat, a->row_start[i + 1] - a->row_start[i]) < 0;
        for (int r = a->row_start[i];
             !fail && r < a->row_start[i + 1]; r++) {
            fail |= ivec_push(&flat, a->alt_sym[r]) < 0;
            int as = a->arg_start[r];
            for (int k = 0; !fail && k < a->arg_start[r + 1] - as; k++)
                fail |= ivec_push(&flat, num[a->args[as + k]]) < 0;
        }
    }
    if (!fail)
        res = flat_to_grammar(&flat);
    else
        PyErr_NoMemory();
    free(num); free(order); ivec_free(&flat);
    if (res && mkey >= 0) {
        if (memo_sub.count > MEMO_CAP) imap_clear_strong(&memo_sub);
        Py_INCREF(res);
        if (imap_put(&memo_sub, mkey, (int64_t)(intptr_t)res) < 0)
            Py_DECREF(res);
    }
    PROF_END(OP_SUBGRAMMAR)
    return res;
}

/* g_split, mirroring ops.g_split on the arena view (determinism makes
 * the matching alternative unique) */
static PyObject *c_g_split(PyObject *g, PyObject *name, int arity,
                           int is_int) {
    CArena *a = get_arena(g);
    if (!a) return NULL;
    PROF_BEGIN(OP_SPLIT)
    PyObject *res = NULL;
    int root = a->root;
    if (a->flags[root] & 1) {
        res = PyTuple_New(arity);
        if (res)
            for (int k = 0; k < arity; k++) {
                Py_INCREF(obj_any);
                PyTuple_SET_ITEM(res, k, obj_any);
            }
        goto done;
    }
    if (is_int && (a->flags[root] & 2)) {
        res = PyTuple_New(0);
        goto done;
    }
    {
        Py_ssize_t nmlen;
        const char *nm = PyUnicode_AsUTF8AndSize(name, &nmlen);
        if (!nm) goto done;
        for (int r = a->row_start[root]; r < a->row_start[root + 1]; r++) {
            const SymInfo *si = &g_syms[a->alt_sym[r]];
            if ((si->is_literal != 0) != (is_int != 0)) continue;
            if (si->arity != arity || si->name_len != nmlen) continue;
            if (memcmp(si->name, nm, (size_t)nmlen) != 0) continue;
            res = PyTuple_New(arity);
            if (!res) goto done;
            int as = a->arg_start[r];
            for (int k = 0; k < arity; k++) {
                PyObject *sub = c_subgrammar(g, a->args[as + k]);
                if (!sub) { Py_DECREF(res); res = NULL; goto done; }
                PyTuple_SET_ITEM(res, k, sub);
            }
            goto done;
        }
    }
    Py_INCREF(Py_None);
    res = Py_None;
done:
    PROF_END(OP_SPLIT)
    return res;
}

/* ------------------------------------------------------------------ */
/* widening (repro.typegraph.widening._g_widen_impl): the tree +
 * back-edge view, clash detection and both transformation rules,
 * mirroring the Python reference step for step.  The grammar produced
 * by every step goes through the same dense_normalize pipeline, so
 * each iterate is the canonical interned object the Python tier would
 * compute.  The type-database extension stays in Python (the
 * dispatcher only routes here when no database is configured). */

#define W_TREEIFY_LIMIT 250000
#define W_MAX_STEPS 400

typedef struct WVert {
    unsigned char kind;       /* 0=or, 1=functor, 2=any, 3=int */
    char pf_valid;
    int sym;                  /* functor vertices: dense sym id */
    int depth;
    int idx;                  /* creation index within its graph */
    int nt;                   /* or-vertices: local nonterminal */
    struct WVert *parent;
    int nsucc, scap;
    struct WVert **succ;
    int *pf; int pf_len;      /* sorted sym ids; the INT leaf is -2 */
} WVert;

typedef struct {
    WVert **all; int count, cap;
    WVert *root;
} WGraph;

static WVert *wvert_new(WGraph *g, int kind, int sym, WVert *parent) {
    WVert *v = (WVert *)calloc(1, sizeof(WVert));
    if (!v) { PyErr_NoMemory(); return NULL; }
    v->kind = (unsigned char)kind;
    v->sym = sym;
    v->nt = -1;
    v->parent = parent;
    v->depth = parent ? parent->depth + 1 : 0;
    v->idx = g->count;
    if (g->count == g->cap) {
        int cap = g->cap ? g->cap * 2 : 256;
        WVert **all = (WVert **)realloc(g->all,
                                        (size_t)cap * sizeof(WVert *));
        if (!all) { free(v); PyErr_NoMemory(); return NULL; }
        g->all = all; g->cap = cap;
    }
    g->all[g->count++] = v;
    return v;
}

static int wvert_addsucc(WVert *v, WVert *child) {
    if (v->nsucc == v->scap) {
        int cap = v->scap ? v->scap * 2 : 4;
        WVert **succ = (WVert **)realloc(v->succ,
                                         (size_t)cap * sizeof(WVert *));
        if (!succ) { PyErr_NoMemory(); return -1; }
        v->succ = succ; v->scap = cap;
    }
    v->succ[v->nsucc++] = child;
    return 0;
}

static void wgraph_free(WGraph *g) {
    for (int i = 0; i < g->count; i++) {
        free(g->all[i]->succ);
        free(g->all[i]->pf);
        free(g->all[i]);
    }
    free(g->all);
    memset(g, 0, sizeof(*g));
}

/* unfold an arena into the tree + back-edge view (graph.treeify):
 * 0 ok, 1 vertex limit hit, -1 error */
typedef struct { int nt; WVert *parent; char exit; } WTask;

static int w_treeify(const CArena *a, WGraph *g) {
    IMap path; memset(&path, 0, sizeof path);
    WTask *stack = NULL;
    int sp = 0, scap = 0, rc = -1;
    #define WPUSH(NT, PARENT, EXIT) do { \
        if (sp == scap) { \
            int cap_ = scap ? scap * 2 : 256; \
            WTask *st_ = (WTask *)realloc(stack, \
                                          (size_t)cap_ * sizeof(WTask)); \
            if (!st_) { PyErr_NoMemory(); goto done; } \
            stack = st_; scap = cap_; \
        } \
        stack[sp].nt = (NT); stack[sp].parent = (PARENT); \
        stack[sp].exit = (EXIT); sp++; \
    } while (0)
    WPUSH(a->root, NULL, 0);
    while (sp) {
        WTask t = stack[--sp];
        if (t.exit) {
            imap_put(&path, t.nt, 0);
            continue;
        }
        int64_t existing = 0;
        if (imap_get(&path, t.nt, &existing) && existing) {
            /* back edge to the or-vertex of `nt` on the current path */
            if (wvert_addsucc(t.parent, (WVert *)(intptr_t)existing) < 0)
                goto done;
            continue;
        }
        if (g->count >= W_TREEIFY_LIMIT) { rc = 1; goto done; }
        WVert *v = wvert_new(g, 0, -1, t.parent);
        if (!v) goto done;
        if (imap_put(&path, t.nt, (int64_t)(intptr_t)v) < 0) {
            PyErr_NoMemory(); goto done;
        }
        if (t.parent) {
            if (wvert_addsucc(t.parent, v) < 0) goto done;
        } else {
            g->root = v;
        }
        WPUSH(t.nt, NULL, 1);
        if (a->flags[t.nt] & 1) {
            WVert *leaf = wvert_new(g, 2, -1, v);
            if (!leaf || wvert_addsucc(v, leaf) < 0) goto done;
        }
        if (a->flags[t.nt] & 2) {
            WVert *leaf = wvert_new(g, 3, -1, v);
            if (!leaf || wvert_addsucc(v, leaf) < 0) goto done;
        }
        int r0 = a->row_start[t.nt], r1 = a->row_start[t.nt + 1];
        for (int r = r0; r < r1; r++) {
            WVert *child = wvert_new(g, 1, a->alt_sym[r], v);
            if (!child || wvert_addsucc(v, child) < 0) goto done;
        }
        /* defer argument subtrees in reverse so the stack pops them in
         * canonical order (functors first-to-last, args left-to-right) */
        for (int r = r1 - 1; r >= r0; r--) {
            WVert *child = v->succ[v->nsucc - (r1 - r)];
            for (int k = a->arg_start[r + 1] - 1; k >= a->arg_start[r]; k--)
                WPUSH(a->args[k], child, 0);
        }
    }
    rc = 0;
done:
    #undef WPUSH
    imap_free(&path);
    free(stack);
    return rc;
}

/* principal-functor set (Vertex.pf): sorted sym ids, INT leaf = -2 */
static int w_pf(WVert *v) {
    if (v->pf_valid) return 0;
    free(v->pf);
    v->pf = (int *)malloc(((size_t)v->nsucc + 1) * sizeof(int));
    if (!v->pf) { PyErr_NoMemory(); return -1; }
    int n = 0;
    if (v->kind == 0) {
        for (int k = 0; k < v->nsucc; k++) {
            WVert *s = v->succ[k];
            if (s->kind == 1) v->pf[n++] = s->sym;
            else if (s->kind == 3) v->pf[n++] = -2;
        }
    } else if (v->kind == 1) {
        v->pf[n++] = v->sym;
    } else if (v->kind == 3) {
        v->pf[n++] = -2;
    }
    for (int i = 1; i < n; i++) {          /* tiny sets: insertion sort */
        int x = v->pf[i], j = i;
        while (j > 0 && v->pf[j - 1] > x) { v->pf[j] = v->pf[j - 1]; j--; }
        v->pf[j] = x;
    }
    int uniq = n ? 1 : 0;                  /* set semantics: dedup */
    for (int i = 1; i < n; i++)
        if (v->pf[i] != v->pf[uniq - 1]) v->pf[uniq++] = v->pf[i];
    v->pf_len = uniq;
    v->pf_valid = 1;
    return 0;
}

static int w_pf_eq(const WVert *a, const WVert *b) {
    return a->pf_len == b->pf_len &&
           memcmp(a->pf, b->pf, (size_t)a->pf_len * sizeof(int)) == 0;
}

static int w_pf_subset(const WVert *a, const WVert *b) {
    int j = 0;
    for (int i = 0; i < a->pf_len; i++) {
        while (j < b->pf_len && b->pf[j] < a->pf[i]) j++;
        if (j == b->pf_len || b->pf[j] != a->pf[i]) return 0;
    }
    return 1;
}

/* successor alignment order: sorted by (kind, name, len(successors))
 * with Python's string kinds "any" < "functor" < "int" */
static int w_align_cmp(const WVert *x, const WVert *y) {
    static const int rank[4] = {3, 1, 0, 2};   /* or,functor,any,int */
    if (rank[x->kind] != rank[y->kind])
        return rank[x->kind] < rank[y->kind] ? -1 : 1;
    if (x->kind == 1) {
        const SymInfo *sx = &g_syms[x->sym], *sy = &g_syms[y->sym];
        Py_ssize_t n = sx->name_len < sy->name_len ? sx->name_len
                                                   : sy->name_len;
        int c = memcmp(sx->name, sy->name, (size_t)n);
        if (c) return c;
        if (sx->name_len != sy->name_len)
            return sx->name_len < sy->name_len ? -1 : 1;
    }
    if (x->nsucc != y->nsucc) return x->nsucc < y->nsucc ? -1 : 1;
    return 0;
}

/* stable insertion sort of a successor list into `out` */
static void w_align(WVert *v, WVert **out) {
    for (int i = 0; i < v->nsucc; i++) {
        WVert *x = v->succ[i];
        int j = i;
        while (j > 0 && w_align_cmp(x, out[j - 1]) < 0) {
            out[j] = out[j - 1];
            j--;
        }
        out[j] = x;
    }
}

/* widening clashes WTC(go, gn) in BFS discovery order */
typedef struct { WVert *vo, *vn; } WPair;

static int w_clashes(WGraph *go, WGraph *gn, WPair **out, int *nout) {
    WPair *queue = NULL, *clashes = NULL;
    int qlen = 0, qcap = 0, head = 0, ncl = 0, clcap = 0, rc = -1;
    IMap seen; memset(&seen, 0, sizeof seen);
    WVert *bufa[64], *bufb[64];
    #define QPUSH(VO, VN) do { \
        if (qlen == qcap) { \
            int cap_ = qcap ? qcap * 2 : 256; \
            WPair *q_ = (WPair *)realloc(queue, \
                                         (size_t)cap_ * sizeof(WPair)); \
            if (!q_) { PyErr_NoMemory(); goto done; } \
            queue = q_; qcap = cap_; \
        } \
        queue[qlen].vo = (VO); queue[qlen].vn = (VN); qlen++; \
    } while (0)
    QPUSH(go->root, gn->root);
    while (head < qlen) {
        WVert *vo = queue[head].vo, *vn = queue[head].vn;
        head++;
        int64_t key = ((int64_t)vo->idx << 32) | (uint32_t)vn->idx;
        int64_t dummy;
        if (imap_get(&seen, key, &dummy)) continue;
        if (imap_put(&seen, key, 1) < 0) { PyErr_NoMemory(); goto done; }
        if (vo->kind == 0 && vn->kind == 0) {
            if (w_pf(vo) < 0 || w_pf(vn) < 0) goto done;
            int same_depth = vo->depth == vn->depth;
            if (same_depth && w_pf_eq(vo, vn)) {
                WVert **ao = bufa, **an = bufb;
                if (vo->nsucc > 64) {
                    ao = (WVert **)malloc((size_t)vo->nsucc
                                          * sizeof(WVert *));
                    if (!ao) { PyErr_NoMemory(); goto done; }
                }
                if (vn->nsucc > 64) {
                    an = (WVert **)malloc((size_t)vn->nsucc
                                          * sizeof(WVert *));
                    if (!an) {
                        if (ao != bufa) free(ao);
                        PyErr_NoMemory(); goto done;
                    }
                }
                w_align(vo, ao);
                w_align(vn, an);
                int m = vo->nsucc < vn->nsucc ? vo->nsucc : vn->nsucc;
                int bad = 0;
                for (int k = 0; k < m && !bad; k++) {
                    if (qlen == qcap) {
                        int cap_ = qcap ? qcap * 2 : 256;
                        WPair *q_ = (WPair *)realloc(
                            queue, (size_t)cap_ * sizeof(WPair));
                        if (!q_) bad = 1;
                        else { queue = q_; qcap = cap_; }
                    }
                    if (!bad) {
                        queue[qlen].vo = ao[k];
                        queue[qlen].vn = an[k];
                        qlen++;
                    }
                }
                if (ao != bufa) free(ao);
                if (an != bufb) free(an);
                if (bad) { PyErr_NoMemory(); goto done; }
            } else if (vn->pf_len &&
                       ((!w_pf_eq(vo, vn) && same_depth)
                        || vo->depth < vn->depth)) {
                if (ncl == clcap) {
                    int cap_ = clcap ? clcap * 2 : 64;
                    WPair *c_ = (WPair *)realloc(
                        clashes, (size_t)cap_ * sizeof(WPair));
                    if (!c_) { PyErr_NoMemory(); goto done; }
                    clashes = c_; clcap = cap_;
                }
                clashes[ncl].vo = vo;
                clashes[ncl].vn = vn;
                ncl++;
            }
        } else if (vo->kind == 1 && vn->kind == 1) {
            int m = vo->nsucc < vn->nsucc ? vo->nsucc : vn->nsucc;
            for (int k = 0; k < m; k++)
                QPUSH(vo->succ[k], vn->succ[k]);
        }
        /* leaf and mixed pairs: nothing to descend into */
    }
    rc = 0;
done:
    #undef QPUSH
    imap_free(&seen);
    free(queue);
    if (rc < 0) { free(clashes); clashes = NULL; ncl = 0; }
    *out = clashes;
    *nout = ncl;
    return rc;
}

/* flatten the or-vertices reachable from `root` into a local
 * (unregistered) arena, assigning each its nonterminal (the raw
 * rules view both transformation rules work against) */
typedef struct {
    CArena a;
    IVec syms, argst, argv, rowst;
    unsigned char *flags;
    WVert **verts; int nverts, vcap;
} LocalArena;

static void local_free(LocalArena *L) {
    ivec_free(&L->syms); ivec_free(&L->argst); ivec_free(&L->argv);
    ivec_free(&L->rowst);
    free(L->flags);
    free(L->verts);
    memset(L, 0, sizeof(*L));
}

static int local_nt(LocalArena *L, WVert *v) {
    if (v->nt >= 0) return v->nt;
    if (L->nverts == L->vcap) {
        int cap = L->vcap ? L->vcap * 2 : 256;
        WVert **verts = (WVert **)realloc(L->verts,
                                          (size_t)cap * sizeof(WVert *));
        if (!verts) { PyErr_NoMemory(); return -1; }
        L->verts = verts; L->vcap = cap;
    }
    v->nt = L->nverts;
    L->verts[L->nverts++] = v;
    return v->nt;
}

static int build_local(WGraph *g, LocalArena *L) {
    memset(L, 0, sizeof(*L));
    for (int i = 0; i < g->count; i++) g->all[i]->nt = -1;
    if (local_nt(L, g->root) < 0) return -1;
    IVec flagv = {0};
    int pos = 0, ok = 1;
    while (ok && pos < L->nverts) {
        WVert *v = L->verts[pos++];
        int flags = 0;
        ok = ivec_push(&L->rowst, L->syms.len) == 0;
        for (int k = 0; ok && k < v->nsucc; k++) {
            WVert *s = v->succ[k];
            if (s->kind == 2) flags |= 1;
            else if (s->kind == 3) flags |= 2;
            else if (s->kind == 1) {
                ok = ivec_push(&L->syms, s->sym) == 0 &&
                     ivec_push(&L->argst, L->argv.len) == 0;
                for (int j = 0; ok && j < s->nsucc; j++) {
                    int nt = local_nt(L, s->succ[j]);
                    ok = nt >= 0 && ivec_push(&L->argv, nt) == 0;
                }
            }
        }
        if (ok) ok = ivec_push(&flagv, flags) == 0;
    }
    if (ok) ok = ivec_push(&L->rowst, L->syms.len) == 0 &&
                 ivec_push(&L->argst, L->argv.len) == 0;
    if (ok) {
        L->flags = (unsigned char *)malloc((size_t)L->nverts + 1);
        ok = L->flags != NULL;
        for (int i = 0; ok && i < L->nverts; i++)
            L->flags[i] = (unsigned char)flagv.data[i];
    }
    ivec_free(&flagv);
    if (!ok) {
        if (!PyErr_Occurred()) PyErr_NoMemory();
        local_free(L);
        return -1;
    }
    L->a.n = L->nverts;
    L->a.root = 0;
    L->a.flags = L->flags;
    L->a.row_start = L->rowst.data;
    L->a.alt_sym = L->syms.data;
    L->a.arg_start = L->argst.data;
    L->a.args = L->argv.data;
    L->a.nalts = L->syms.len;
    L->a.grammar = NULL;
    return 0;
}

/* denotation inclusion between two or-vertices of the same graph,
 * with a per-step result memo (widening._vertex_le) */
static int w_vertex_le(const LocalArena *L, WVert *v1, WVert *v2,
                       IMap *memo) {
    int64_t key = ((int64_t)v1->nt << 32) | (uint32_t)v2->nt;
    int64_t hit;
    if (imap_get(memo, key, &hit)) return (int)hit;
    int r = le_walk_from(&L->a, v1->nt, &L->a, v2->nt);
    if (r < 0) return -1;
    if (imap_put(memo, key, r) < 0) { PyErr_NoMemory(); return -1; }
    return r;
}

/* normalized grammar of the graph reachable from `root`
 * (graph.to_grammar; no width cap — the caller applies it) */
static PyObject *w_to_grammar(WGraph *g) {
    LocalArena L;
    if (build_local(g, &L) < 0) return NULL;
    Dense d; memset(&d, 0, sizeof d);
    PyObject *res = NULL;
    int ok = dense_reserve(&d, L.a.n) >= 0;
    for (int i = 0; ok && i < L.a.n; i++) {
        int node = dense_add_node(&d);
        ok = node >= 0;
        if (!ok) break;
        d.flags[node] = L.a.flags[i];
        dense_begin_row(&d, node);
        for (int r = L.a.row_start[i]; ok && r < L.a.row_start[i + 1]; r++)
            ok = dense_add_alt(&d, node, L.a.alt_sym[r],
                               L.a.args + L.a.arg_start[r],
                               L.a.arg_start[r + 1]
                               - L.a.arg_start[r]) >= 0;
    }
    if (ok)
        res = dense_normalize(&d, 0, -1, 1);
    else if (!PyErr_Occurred())
        PyErr_NoMemory();
    dense_free(&d);
    local_free(&L);
    return res;
}

/* size of the corresponding type graph (Grammar.size) */
static long carena_size(const CArena *a) {
    long size = a->n;
    for (int i = 0; i < a->n; i++) {
        size += 2 * ((a->flags[i] & 1) + ((a->flags[i] >> 1) & 1));
        for (int r = a->row_start[i]; r < a->row_start[i + 1]; r++)
            size += 2 + a->arg_start[r + 1] - a->arg_start[r];
    }
    return size;
}

/* normalized (uncapped) grammar of a local-arena nonterminal */
static PyObject *local_norm(const LocalArena *L, int nt) {
    Dense d; memset(&d, 0, sizeof d);
    PyObject *res = NULL;
    int ok = dense_reserve(&d, L->a.n) >= 0;
    for (int i = 0; ok && i < L->a.n; i++) {
        int node = dense_add_node(&d);
        ok = node >= 0;
        if (!ok) break;
        d.flags[node] = L->a.flags[i];
        dense_begin_row(&d, node);
        for (int r = L->a.row_start[i];
             ok && r < L->a.row_start[i + 1]; r++)
            ok = dense_add_alt(&d, node, L->a.alt_sym[r],
                               L->a.args + L->a.arg_start[r],
                               L->a.arg_start[r + 1]
                               - L->a.arg_start[r]) >= 0;
    }
    if (ok)
        res = dense_normalize(&d, nt, -1, 1);
    else if (!PyErr_Occurred())
        PyErr_NoMemory();
    dense_free(&d);
    return res;
}

/* graft `upper` at nonterminal `nt_va` of the raw view and normalize
 * (widening._graft + normalize) */
static PyObject *w_graft_candidate(const LocalArena *L, int nt_va,
                                   PyObject *upper, int w) {
    CArena *ua = get_arena(upper);
    if (!ua) return NULL;
    int base = L->a.n;
    Dense d; memset(&d, 0, sizeof d);
    PyObject *res = NULL;
    int ok = dense_reserve(&d, base + ua->n) >= 0;
    for (int i = 0; ok && i < base; i++) {
        int node = dense_add_node(&d);
        ok = node >= 0;
        if (!ok) break;
        dense_begin_row(&d, node);
        if (i == nt_va) {          /* derive what `upper`'s root does */
            d.flags[node] = ua->flags[ua->root];
            for (int r = ua->row_start[ua->root];
                 ok && r < ua->row_start[ua->root + 1]; r++) {
                int as = ua->arg_start[r];
                int na = ua->arg_start[r + 1] - as;
                int abuf[32];
                int *am = abuf;
                if (na > 32) {
                    am = (int *)malloc((size_t)na * sizeof(int));
                    if (!am) { ok = 0; break; }
                }
                for (int k = 0; k < na; k++)
                    am[k] = base + ua->args[as + k];
                ok = dense_add_alt(&d, node, ua->alt_sym[r], am, na) >= 0;
                if (am != abuf) free(am);
            }
        } else {
            d.flags[node] = L->a.flags[i];
            for (int r = L->a.row_start[i];
                 ok && r < L->a.row_start[i + 1]; r++)
                ok = dense_add_alt(&d, node, L->a.alt_sym[r],
                                   L->a.args + L->a.arg_start[r],
                                   L->a.arg_start[r + 1]
                                   - L->a.arg_start[r]) >= 0;
        }
    }
    for (int i = 0; ok && i < ua->n; i++) {
        int node = dense_add_node(&d);
        ok = node >= 0;
        if (!ok) break;
        d.flags[node] = ua->flags[i];
        dense_begin_row(&d, node);
        for (int r = ua->row_start[i];
             ok && r < ua->row_start[i + 1]; r++) {
            int as = ua->arg_start[r];
            int na = ua->arg_start[r + 1] - as;
            int abuf[32];
            int *am = abuf;
            if (na > 32) {
                am = (int *)malloc((size_t)na * sizeof(int));
                if (!am) { ok = 0; break; }
            }
            for (int k = 0; k < na; k++)
                am[k] = base + ua->args[as + k];
            ok = dense_add_alt(&d, node, ua->alt_sym[r], am, na) >= 0;
            if (am != abuf) free(am);
        }
    }
    if (ok)
        res = dense_normalize(&d, 0, w, 1);
    else if (!PyErr_Occurred())
        PyErr_NoMemory();
    dense_free(&d);
    return res;
}

/* the strict fallback: `nt_va` becomes Any (always shrinks) */
static PyObject *w_any_candidate(const LocalArena *L, int nt_va, int w) {
    Dense d; memset(&d, 0, sizeof d);
    PyObject *res = NULL;
    int ok = dense_reserve(&d, L->a.n) >= 0;
    for (int i = 0; ok && i < L->a.n; i++) {
        int node = dense_add_node(&d);
        ok = node >= 0;
        if (!ok) break;
        dense_begin_row(&d, node);
        if (i == nt_va) {
            d.flags[node] = 1;
            continue;
        }
        d.flags[node] = L->a.flags[i];
        for (int r = L->a.row_start[i];
             ok && r < L->a.row_start[i + 1]; r++)
            ok = dense_add_alt(&d, node, L->a.alt_sym[r],
                               L->a.args + L->a.arg_start[r],
                               L->a.arg_start[r + 1]
                               - L->a.arg_start[r]) >= 0;
    }
    if (ok)
        res = dense_normalize(&d, 0, w, 1);
    else if (!PyErr_Occurred())
        PyErr_NoMemory();
    dense_free(&d);
    return res;
}

/* TRi (Definition 7.4): first eligible clash, nearest ancestor first.
 * NULL with no error pending means "rule not applicable". */
static PyObject *w_try_cycle(WGraph *gnew, const LocalArena *L,
                             WPair *clashes, int ncl, int strict,
                             IMap *le_memo) {
    for (int c = 0; c < ncl; c++) {
        WVert *vo = clashes[c].vo, *vn = clashes[c].vn;
        if (!vn->parent) continue;        /* the root has no ancestors */
        for (WVert *va = vn->parent; va; va = va->parent) {
            if (va->kind != 0) continue;
            if (va->depth > vo->depth) continue;
            if (w_pf(vn) < 0 || w_pf(va) < 0) return NULL;
            if (strict) {
                if (!w_pf_subset(vn, va)) continue;
            } else if (!w_pf_eq(vn, va)) {
                continue;
            }
            int le = w_vertex_le(L, vn, va, le_memo);
            if (le < 0) return NULL;
            if (!le) continue;
            WVert *parent = vn->parent;
            for (int k = 0; k < parent->nsucc; k++)
                if (parent->succ[k] == vn) parent->succ[k] = va;
            parent->pf_valid = 0;
            return w_to_grammar(gnew);
        }
    }
    return NULL;
}

/* TRr (Definition 7.5); same NULL-without-error convention */
static PyObject *w_try_repl(const LocalArena *L, WPair *clashes, int ncl,
                            long current_size, int w, int strict,
                            IMap *le_memo) {
    for (int c = 0; c < ncl; c++) {
        WVert *vo = clashes[c].vo, *vn = clashes[c].vn;
        for (WVert *va = vn->parent; va; va = va->parent) {
            if (va->kind != 0) continue;
            if (va->depth > vo->depth) continue;
            if (w_pf(vn) < 0 || w_pf(va) < 0) return NULL;
            if (!(w_pf_subset(vn, va) || vo->depth < vn->depth))
                continue;
            int le = w_vertex_le(L, vn, va, le_memo);
            if (le < 0) return NULL;
            if (le) continue;             /* CI territory, not CR */
            /* precise attempt: graft an upper bound of va and vn */
            PyObject *ga = local_norm(L, va->nt);
            if (!ga) return NULL;
            PyObject *gb = local_norm(L, vn->nt);
            if (!gb) { Py_DECREF(ga); return NULL; }
            CArena *aa = get_arena(ga);
            CArena *ab = aa ? get_arena(gb) : NULL;
            PyObject *upper = NULL;
            if (ab) {
                /* mirror ops.g_union on the (non-interned) raw views:
                 * bottom shortcuts, then the reference product */
                if (grammar_is_bottom(aa)) upper = norm_interned(gb, w);
                else if (grammar_is_bottom(ab))
                    upper = norm_interned(ga, w);
                else upper = union_product(ga, gb, w);
            }
            Py_DECREF(ga);
            Py_DECREF(gb);
            if (!upper) return NULL;
            PyObject *cand = w_graft_candidate(L, va->nt, upper, w);
            Py_DECREF(upper);
            if (!cand) return NULL;
            CArena *ac = get_arena(cand);
            if (!ac) { Py_DECREF(cand); return NULL; }
            if (carena_size(ac) < current_size) return cand;
            Py_DECREF(cand);
            if (!strict) continue;
            /* fallback: va becomes Any — always shrinks */
            cand = w_any_candidate(L, va->nt, w);
            if (!cand) return NULL;
            ac = get_arena(cand);
            if (!ac) { Py_DECREF(cand); return NULL; }
            if (carena_size(ac) < current_size) return cand;
            Py_DECREF(cand);
        }
    }
    return NULL;
}

static PyObject *w_collapse_width1(PyObject *gn) {
    /* safety nets: warn and fall back to the or-width-1 subdomain */
    PyObject *res = norm_interned(gn, 1);
    Py_DECREF(gn);
    return res;
}

/* _g_widen_impl: union, then transform until no clash resolves */
static PyObject *c_g_widen_impl(PyObject *g_old, PyObject *g_new,
                                int w, int strict) {
    PyObject *gn = c_g_union(g_old, g_new, w);
    if (!gn) return NULL;
    CArena *ao = get_arena(g_old);
    if (!ao) { Py_DECREF(gn); return NULL; }
    if (grammar_is_bottom(ao)) return gn;
    WGraph gold; memset(&gold, 0, sizeof gold);
    int rc = w_treeify(ao, &gold);
    if (rc != 0) {
        wgraph_free(&gold);
        if (rc < 0) { Py_DECREF(gn); return NULL; }
        if (PyErr_WarnEx(PyExc_RuntimeWarning,
                         "type graph too large to unfold for widening; "
                         "collapsing to the or-width-1 subdomain", 1) < 0) {
            Py_DECREF(gn); return NULL;
        }
        return w_collapse_width1(gn);
    }
    for (int step = 0; step < W_MAX_STEPS; step++) {
        CArena *an = get_arena(gn);
        if (!an) { Py_DECREF(gn); gn = NULL; break; }
        WGraph gnew; memset(&gnew, 0, sizeof gnew);
        rc = w_treeify(an, &gnew);
        if (rc != 0) {
            wgraph_free(&gnew);
            if (rc < 0) { Py_DECREF(gn); gn = NULL; break; }
            wgraph_free(&gold);
            if (PyErr_WarnEx(PyExc_RuntimeWarning,
                             "type graph too large to unfold for "
                             "widening; collapsing to the or-width-1 "
                             "subdomain", 1) < 0) {
                Py_DECREF(gn); return NULL;
            }
            return w_collapse_width1(gn);
        }
        WPair *clashes = NULL;
        int ncl = 0;
        if (w_clashes(&gold, &gnew, &clashes, &ncl) < 0) {
            wgraph_free(&gnew);
            Py_DECREF(gn); gn = NULL; break;
        }
        if (!ncl) {
            free(clashes);
            wgraph_free(&gnew);
            wgraph_free(&gold);
            return gn;
        }
        LocalArena L;
        if (build_local(&gnew, &L) < 0) {
            free(clashes);
            wgraph_free(&gnew);
            Py_DECREF(gn); gn = NULL; break;
        }
        IMap le_memo; memset(&le_memo, 0, sizeof le_memo);
        PyObject *result = w_try_cycle(&gnew, &L, clashes, ncl, strict,
                                       &le_memo);
        if (!result && !PyErr_Occurred())
            result = w_try_repl(&L, clashes, ncl, carena_size(an), w,
                                strict, &le_memo);
        imap_free(&le_memo);
        local_free(&L);
        free(clashes);
        wgraph_free(&gnew);
        if (!result) {
            if (PyErr_Occurred()) { Py_DECREF(gn); gn = NULL; break; }
            wgraph_free(&gold);
            return gn;                    /* growth: no rule applied */
        }
        PyObject *next = norm_interned(result, w);
        Py_DECREF(result);
        Py_DECREF(gn);
        gn = next;
        if (!gn) break;
    }
    wgraph_free(&gold);
    if (!gn) return NULL;
    if (PyErr_WarnEx(PyExc_RuntimeWarning,
                     "widening step budget exceeded; collapsing to the "
                     "or-width-1 subdomain", 1) < 0) {
        Py_DECREF(gn);
        return NULL;
    }
    return w_collapse_width1(gn);
}

/* full g_widen chain (widening.g_widen, type_database = None) */
static PyObject *c_g_widen(PyObject *g_old, PyObject *g_new,
                           int w, int strict) {
    PROF_BEGIN(OP_WIDEN)
    PyObject *res = NULL, *key = NULL;
    CArena *an = get_arena(g_new);
    CArena *ao = an ? get_arena(g_old) : NULL;
    if (!ao) goto done;
    (void)ao;
    if (grammar_is_bottom(an)) {
        Py_INCREF(g_old);
        res = g_old;
        goto done;
    }
    {
        int le = c_g_le(g_new, g_old);
        if (le < 0) goto done;
        if (le) { Py_INCREF(g_old); res = g_old; goto done; }
    }
    {
        long gid1 = get_gid(g_old), gid2 = get_gid(g_new);
        if (gid1 < 0 || gid2 < 0) goto done;   /* get_arena guarantees */
        key = Py_BuildValue("(llii)", gid1, gid2, w, strict);
        if (!key) goto done;
        PyObject *hit = PyDict_GetItem(memo_widen, key);
        if (hit) { Py_INCREF(hit); res = hit; goto done; }
    }
    res = c_g_widen_impl(g_old, g_new, w, strict);
    if (res && key) {
        bound_dict(memo_widen);
        PyDict_SetItem(memo_widen, key, res);
    }
done:
    Py_XDECREF(key);
    PROF_END(OP_WIDEN)
    return res;
}

/* ------------------------------------------------------------------ */
/* pattern-layer walks: frozen substitution structs                    */

typedef struct {
    int nnodes, nvars;
    int *sv;
    PyObject **name;        /* per node: str (pattern) or NULL (leaf) */
    unsigned char *is_int;
    int *arg_start;         /* nnodes+1; leaves have empty ranges */
    unsigned char *leaf;
    int *args;
    PyObject **value;       /* per node: leaf value or NULL */
    PyObject *subst;        /* strong: keeps sid -> struct valid */
    IMap collapse;          /* (did<<32 | index) -> PyObject* strong */
} CSubst;

static IMap g_subst_map;    /* sid -> (CSubst *) */

static void csubst_free(CSubst *s) {
    for (int i = 0; i < s->nnodes; i++) {
        Py_XDECREF(s->name[i]);
        Py_XDECREF(s->value[i]);
    }
    imap_clear_strong(&s->collapse);
    free(s->sv); free(s->name); free(s->is_int); free(s->arg_start);
    free(s->leaf); free(s->args);
    Py_XDECREF(s->subst);
    free(s);
}

static long get_sid(PyObject *s) {
    PyObject *o = PyObject_GetAttr(s, s_sid);
    if (!o) return -2;
    long sid = PyLong_AsLong(o);
    Py_DECREF(o);
    if (sid == -1 && PyErr_Occurred()) return -2;
    return sid;
}

static CSubst *get_csubst(PyObject *subst) {
    long sid = get_sid(subst);
    if (sid == -2) return NULL;
    if (sid < 0) {
        PyErr_SetString(PyExc_RuntimeError,
                        "native kernel called on non-interned subst");
        return NULL;
    }
    int64_t v;
    if (imap_get(&g_subst_map, sid, &v))
        return (CSubst *)(intptr_t)v;
    PyObject *pair = PyObject_CallFunctionObjArgs(cb_subst_rows, subst, NULL);
    if (!pair) return NULL;
    PyObject *sv_t = PyTuple_GET_ITEM(pair, 0);
    PyObject *rows = PyTuple_GET_ITEM(pair, 1);
    int nvars = (int)PyTuple_GET_SIZE(sv_t);
    int nnodes = (int)PyList_GET_SIZE(rows);
    CSubst *s = (CSubst *)calloc(1, sizeof(CSubst));
    if (!s) { Py_DECREF(pair); PyErr_NoMemory(); return NULL; }
    s->nvars = nvars;
    s->nnodes = nnodes;
    s->sv = (int *)malloc(((size_t)nvars + 1) * sizeof(int));
    s->name = (PyObject **)calloc((size_t)nnodes + 1, sizeof(PyObject *));
    s->is_int = (unsigned char *)calloc((size_t)nnodes + 1, 1);
    s->leaf = (unsigned char *)calloc((size_t)nnodes + 1, 1);
    s->arg_start = (int *)malloc(((size_t)nnodes + 2) * sizeof(int));
    s->value = (PyObject **)calloc((size_t)nnodes + 1, sizeof(PyObject *));
    IVec argv = {0};
    int ok = s->sv && s->name && s->is_int && s->leaf && s->arg_start
             && s->value;
    for (int k = 0; ok && k < nvars; k++) {
        s->sv[k] = (int)PyLong_AsLong(PyTuple_GET_ITEM(sv_t, k));
    }
    for (int i = 0; ok && i < nnodes; i++) {
        /* row: (name_or_None, is_int, args_tuple_or_None, value) */
        PyObject *row = PyList_GET_ITEM(rows, i);
        PyObject *name_o = PyTuple_GET_ITEM(row, 0);
        PyObject *args_o = PyTuple_GET_ITEM(row, 2);
        PyObject *value_o = PyTuple_GET_ITEM(row, 3);
        s->arg_start[i] = argv.len;
        if (args_o == Py_None) {
            s->leaf[i] = 1;
            Py_INCREF(value_o);
            s->value[i] = value_o;
        } else {
            Py_INCREF(name_o);
            s->name[i] = name_o;
            s->is_int[i] = (unsigned char)PyObject_IsTrue(
                PyTuple_GET_ITEM(row, 1));
            Py_ssize_t na = PyTuple_GET_SIZE(args_o);
            for (Py_ssize_t k = 0; ok && k < na; k++)
                ok = ivec_push(&argv, (int)PyLong_AsLong(
                    PyTuple_GET_ITEM(args_o, k))) == 0;
        }
    }
    Py_DECREF(pair);
    if (ok) {
        s->arg_start[nnodes] = argv.len;
        s->args = argv.data;
        Py_INCREF(subst);
        s->subst = subst;
        ok = imap_put(&g_subst_map, sid, (int64_t)(intptr_t)s) == 0;
    }
    if (!ok) {
        if (!s->args) ivec_free(&argv);
        s->nnodes = nnodes;  /* free what was filled */
        csubst_free(s);
        if (!PyErr_Occurred()) PyErr_NoMemory();
        return NULL;
    }
    return s;
}

/* collapse the subtree at `index` into one grammar (value_of) */
static PyObject *value_of_c(CSubst *s, int index, int did, int w) {
    int64_t ck = ((int64_t)did << 32) | (uint32_t)index;
    int64_t hit;
    if (imap_get(&s->collapse, ck, &hit)) {
        PyObject *v = (PyObject *)(intptr_t)hit;
        Py_INCREF(v);
        return v;
    }
    PyObject *v = NULL;
    if (s->leaf[index]) {
        v = s->value[index];
        Py_INCREF(v);
    } else if (s->is_int[index]) {
        v = PyObject_CallFunctionObjArgs(cb_int_literal, s->name[index],
                                         NULL);
    } else {
        int as = s->arg_start[index];
        int na = s->arg_start[index + 1] - as;
        PyObject *children = PyTuple_New(na);
        if (!children) return NULL;
        for (int k = 0; k < na; k++) {
            PyObject *c = value_of_c(s, s->args[as + k], did, w);
            if (!c) { Py_DECREF(children); return NULL; }
            PyTuple_SET_ITEM(children, k, c);
        }
        v = c_g_functor(s->name[index], children, w);
        Py_DECREF(children);
    }
    if (v) {
        Py_INCREF(v);
        if (imap_put(&s->collapse, ck, (int64_t)(intptr_t)v) < 0)
            Py_DECREF(v);
    }
    return v;
}

/* subst_le over two frozen substitutions (mirrors _subst_le_impl) */

static int csubst_subtree_shared(CSubst *s2, const int *ref2, int i2) {
    char *seen = (char *)calloc((size_t)s2->nnodes, 1);
    IVec stack = {0};
    int res = 0;
    if (!seen || ivec_push(&stack, i2) < 0) { res = -1; goto done; }
    while (stack.len) {
        int i = stack.data[--stack.len];
        if (seen[i]) continue;
        seen[i] = 1;
        if (i != i2 && ref2[i] > 1) { res = 1; goto done; }
        if (!s2->leaf[i])
            for (int k = s2->arg_start[i]; k < s2->arg_start[i + 1]; k++)
                if (ivec_push(&stack, s2->args[k]) < 0) { res = -1; goto done; }
    }
done:
    free(seen);
    ivec_free(&stack);
    if (res < 0) PyErr_NoMemory();
    return res;
}

static int csubst_le(CSubst *s1, CSubst *s2, const int *ref2, int *map21,
                     int i1, int i2, int did, int w) {
    if (map21[i2] >= 0)
        return map21[i2] == i1;    /* s2's sharing must hold in s1 */
    map21[i2] = i1;
    if (s2->leaf[i2]) {
        PyObject *v1 = value_of_c(s1, i1, did, w);
        if (!v1) return -1;
        int r = c_g_le(v1, s2->value[i2]);
        Py_DECREF(v1);
        return r;
    }
    int na2 = s2->arg_start[i2 + 1] - s2->arg_start[i2];
    if (!s1->leaf[i1]) {
        int na1 = s1->arg_start[i1 + 1] - s1->arg_start[i1];
        if (s1->is_int[i1] == s2->is_int[i2] && na1 == na2) {
            int eq = PyObject_RichCompareBool(s1->name[i1], s2->name[i2],
                                              Py_EQ);
            if (eq < 0) return -1;
            if (eq) {
                int as1 = s1->arg_start[i1], as2 = s2->arg_start[i2];
                for (int k = 0; k < na1; k++) {
                    int r = csubst_le(s1, s2, ref2, map21,
                                      s1->args[as1 + k],
                                      s2->args[as2 + k], did, w);
                    if (r <= 0) return r;
                }
                return 1;
            }
        }
        return 0;
    }
    /* n1 leaf below an n2 pattern: only certifiable when s2's subtree
     * is sharing-free, through the leaf domain's le_tree */
    int shared = csubst_subtree_shared(s2, ref2, i2);
    if (shared) return shared < 0 ? -1 : 0;
    PyObject *children = PyTuple_New(na2);
    if (!children) return -1;
    int as2 = s2->arg_start[i2];
    for (int k = 0; k < na2; k++) {
        PyObject *c = value_of_c(s2, s2->args[as2 + k], did, w);
        if (!c) { Py_DECREF(children); return -1; }
        PyTuple_SET_ITEM(children, k, c);
    }
    PyObject *tree = s2->is_int[i2]
        ? PyObject_CallFunctionObjArgs(cb_int_literal, s2->name[i2], NULL)
        : c_g_functor(s2->name[i2], children, w);
    Py_DECREF(children);
    if (!tree) return -1;
    PyObject *v1 = value_of_c(s1, i1, did, w);
    if (!v1) { Py_DECREF(tree); return -1; }
    int r = c_g_le(v1, tree);
    Py_DECREF(v1);
    Py_DECREF(tree);
    return r;
}

static int c_subst_le(PyObject *subst1, PyObject *subst2, int did, int w) {
    PROF_BEGIN(OP_SUBST_LE)
    int res = -1;
    CSubst *s1 = get_csubst(subst1);
    CSubst *s2 = s1 ? get_csubst(subst2) : NULL;
    int *ref2 = NULL, *map21 = NULL;
    if (!s2) goto done;
    ref2 = (int *)calloc((size_t)s2->nnodes + 1, sizeof(int));
    map21 = (int *)malloc(((size_t)s2->nnodes + 1) * sizeof(int));
    if (!ref2 || !map21) { PyErr_NoMemory(); goto done; }
    for (int k = 0; k < s2->nvars; k++) ref2[s2->sv[k]]++;
    for (int i = 0; i < s2->nnodes; i++)
        if (!s2->leaf[i])
            for (int k = s2->arg_start[i]; k < s2->arg_start[i + 1]; k++)
                ref2[s2->args[k]]++;
    for (int i = 0; i < s2->nnodes; i++) map21[i] = -1;
    res = 1;
    for (int k = 0; k < s1->nvars && res == 1; k++)
        res = csubst_le(s1, s2, ref2, map21, s1->sv[k], s2->sv[k],
                        did, w);
done:
    free(ref2); free(map21);
    PROF_END(OP_SUBST_LE)
    return res;
}

/* _merge (pattern._merge): the common-structure walk with its leaf
 * combiner.  mode 1 combines with the pure-C union, mode 2 with the
 * pure-C widening (the TypeLeafDomain join/widen bodies); mode 0
 * calls back into an arbitrary Python combiner for overriding
 * domains.  Slot assignment is the same preorder DFS as the Python
 * walk, so the frozen result is the identical interned object. */

typedef struct {
    CSubst *s1, *s2;
    int did, w, mode, strict;
    PyObject *combine;      /* borrowed; mode 0 only */
    PyObject *descs;        /* slot-ordered desc list */
    IMap memo;              /* (i1<<32 | i2) -> slot */
} MergeCtx;

static int merge_walk(MergeCtx *m, int i1, int i2) {
    int64_t key = ((int64_t)i1 << 32) | (uint32_t)i2;
    int64_t hit;
    if (imap_get(&m->memo, key, &hit)) return (int)hit;
    int slot = (int)PyList_GET_SIZE(m->descs);
    if (imap_put(&m->memo, key, slot) < 0) { PyErr_NoMemory(); return -1; }
    if (PyList_Append(m->descs, Py_None) < 0) return -1;
    CSubst *s1 = m->s1, *s2 = m->s2;
    int pattern = 0;
    if (!s1->leaf[i1] && !s2->leaf[i2]
        && s1->is_int[i1] == s2->is_int[i2]
        && s1->arg_start[i1 + 1] - s1->arg_start[i1]
           == s2->arg_start[i2 + 1] - s2->arg_start[i2]) {
        pattern = PyObject_RichCompareBool(s1->name[i1], s2->name[i2],
                                           Py_EQ);
        if (pattern < 0) return -1;
    }
    PyObject *desc;
    if (pattern) {
        int as1 = s1->arg_start[i1], as2 = s2->arg_start[i2];
        int na = s1->arg_start[i1 + 1] - as1;
        PyObject *args = PyTuple_New(na);
        if (!args) return -1;
        for (int k = 0; k < na; k++) {
            int child = merge_walk(m, s1->args[as1 + k],
                                   s2->args[as2 + k]);
            if (child < 0) { Py_DECREF(args); return -1; }
            PyObject *o = PyLong_FromLong(child);
            if (!o) { Py_DECREF(args); return -1; }
            PyTuple_SET_ITEM(args, k, o);
        }
        desc = Py_BuildValue("(OOO)", s1->name[i1],
                             s1->is_int[i1] ? Py_True : Py_False, args);
        Py_DECREF(args);
    } else {
        PyObject *v1 = value_of_c(s1, i1, m->did, m->w);
        if (!v1) return -1;
        PyObject *v2 = value_of_c(s2, i2, m->did, m->w);
        if (!v2) { Py_DECREF(v1); return -1; }
        PyObject *value;
        if (m->mode == 1)
            value = c_g_union(v1, v2, m->w);
        else if (m->mode == 2)
            value = c_g_widen(v1, v2, m->w, m->strict);
        else
            value = PyObject_CallFunctionObjArgs(m->combine, v1, v2,
                                                 NULL);
        Py_DECREF(v1);
        Py_DECREF(v2);
        if (!value) return -1;
        desc = PyTuple_Pack(1, value);
        Py_DECREF(value);
    }
    if (!desc) return -1;
    PyList_SET_ITEM(m->descs, slot, desc);  /* steals, replaces None */
    Py_DECREF(Py_None);
    return slot;
}

/* intern front for cb_freeze_build: identical (sv, descs) pairs come
 * out of the builder and the merge walk constantly (the engine
 * re-freezes the same abstract states across iterations); a hit skips
 * the Python-side PatNode construction and intern probe entirely.
 * Keys hold the desc tuples (names, arg indices, interned leaf
 * values), all hashable; anything unhashable falls through. */
static PyObject *freeze_build_cached(PyObject *sv, PyObject *descs) {
    PyObject *dt = PyList_AsTuple(descs);
    if (!dt) return NULL;
    PyObject *key = PyTuple_Pack(2, sv, dt);
    Py_DECREF(dt);
    if (!key) return NULL;
    PyObject *hit = PyDict_GetItemWithError(freeze_cache, key);
    if (hit) {
        Py_INCREF(hit);
        Py_DECREF(key);
        return hit;
    }
    if (PyErr_Occurred()) PyErr_Clear();   /* unhashable: no caching */
    PyObject *res = PyObject_CallFunctionObjArgs(cb_freeze_build, sv,
                                                 descs, NULL);
    if (res) {
        bound_dict(freeze_cache);
        if (PyDict_SetItem(freeze_cache, key, res) < 0)
            PyErr_Clear();
    }
    Py_DECREF(key);
    return res;
}

static PyObject *c_subst_merge(PyObject *subst1, PyObject *subst2,
                               int did, int w, int mode, int strict,
                               PyObject *combine) {
    PROF_BEGIN(OP_MERGE)
    PyObject *res = NULL, *sv = NULL;
    MergeCtx m; memset(&m, 0, sizeof m);
    m.s1 = get_csubst(subst1);
    m.s2 = m.s1 ? get_csubst(subst2) : NULL;
    if (!m.s2) goto done;
    m.did = did; m.w = w; m.mode = mode; m.strict = strict;
    m.combine = combine;
    m.descs = PyList_New(0);
    if (!m.descs) goto done;
    sv = PyTuple_New(m.s1->nvars);
    if (!sv) goto done;
    for (int k = 0; k < m.s1->nvars; k++) {
        int slot = merge_walk(&m, m.s1->sv[k], m.s2->sv[k]);
        if (slot < 0) goto done;
        PyObject *o = PyLong_FromLong(slot);
        if (!o) goto done;
        PyTuple_SET_ITEM(sv, k, o);
    }
    res = freeze_build_cached(sv, m.descs);
done:
    Py_XDECREF(sv);
    Py_XDECREF(m.descs);
    imap_free(&m.memo);
    PROF_END(OP_MERGE)
    return res;
}

/* ------------------------------------------------------------------ */
/* the union-find builder (KNode)                                      */

typedef struct KNode {
    PyObject_HEAD
    struct KNode *parent;   /* strong or NULL */
    PyObject *name;         /* strong str, or NULL for leaves */
    PyObject *args;         /* strong list of KNode, or NULL */
    PyObject *value;        /* strong leaf value, or NULL */
    long size;
    char is_int;
} KNode;

static PyTypeObject KNodeType;  /* forward */

static KNode *knode_new(void) {
    KNode *n = PyObject_GC_New(KNode, &KNodeType);
    if (!n) return NULL;
    n->parent = NULL;
    n->name = NULL;
    n->args = NULL;
    n->value = NULL;
    n->size = 1;
    n->is_int = 0;
    PyObject_GC_Track((PyObject *)n);
    return n;
}

static int knode_traverse(KNode *self, visitproc visit, void *arg) {
    Py_VISIT((PyObject *)self->parent);
    Py_VISIT(self->name);
    Py_VISIT(self->args);
    Py_VISIT(self->value);
    return 0;
}

static int knode_clear(KNode *self) {
    Py_CLEAR(self->parent);
    Py_CLEAR(self->name);
    Py_CLEAR(self->args);
    Py_CLEAR(self->value);
    return 0;
}

static void knode_dealloc(KNode *self) {
    PyObject_GC_UnTrack((PyObject *)self);
    knode_clear(self);
    PyObject_GC_Del(self);
}

static PyTypeObject KNodeType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_arenakernels.KNode",
    .tp_basicsize = sizeof(KNode),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)knode_traverse,
    .tp_clear = (inquiry)knode_clear,
    .tp_dealloc = (destructor)knode_dealloc,
    .tp_doc = "union-find node of the native substitution builder",
};

/* path halving, mirroring SubstBuilder.find */
static KNode *kn_find_raw(KNode *node) {
    KNode *parent = node->parent;
    while (parent != NULL) {
        KNode *grand = parent->parent;
        if (grand == NULL)
            return parent;
        Py_INCREF((PyObject *)grand);
        Py_DECREF((PyObject *)node->parent);
        node->parent = grand;
        node = grand;
        parent = node->parent;
    }
    return node;
}

static void kn_union(KNode *keep, KNode *merge) {
    keep->size += merge->size;
    Py_INCREF((PyObject *)keep);
    Py_XDECREF((PyObject *)merge->parent);
    merge->parent = keep;
    Py_CLEAR(merge->args);
    Py_CLEAR(merge->value);
}

static int is_top_c(PyObject *v) {
    if (v == obj_any) return 1;
    CArena *a = get_arena(v);
    if (!a) return -1;
    return (a->flags[a->root] & 1) != 0;
}

/* meet through the leaf domain: NULL + no error pending = bottom */
static PyObject *meet_c(PyObject *a, PyObject *b, int w) {
    PyObject *r = c_g_intersect(a, b, w);
    if (!r) return NULL;
    CArena *ar = get_arena(r);
    if (!ar) { Py_DECREF(r); return NULL; }
    if (grammar_is_bottom(ar)) { Py_DECREF(r); return NULL; }
    return r;
}

/* constrain(node, value): -1 error, 0 sure failure, 1 ok */
static int kn_constrain_raw(KNode *node, PyObject *value, int w) {
    PROF_BEGIN(OP_CONSTRAIN)
    typedef struct { KNode *n; PyObject *v; } CItem;
    CItem *work = NULL, *seen = NULL;
    int wlen = 0, wcap = 0, slen = 0, scap = 0;
    int res = -1;

    #define CPUSH(arr, len, cap, nn, vv) do { \
        if (len == cap) { \
            int nc = cap ? cap * 2 : 16; \
            CItem *na_ = (CItem *)realloc(arr, (size_t)nc * sizeof(CItem)); \
            if (!na_) { PyErr_NoMemory(); goto done; } \
            arr = na_; cap = nc; \
        } \
        Py_INCREF((PyObject *)(nn)); Py_INCREF(vv); \
        arr[len].n = nn; arr[len].v = vv; len++; \
    } while (0)

    CPUSH(work, wlen, wcap, node, value);
    while (wlen) {
        CItem it = work[--wlen];
        KNode *n = kn_find_raw(it.n);
        PyObject *v = it.v;
        int top = is_top_c(v);
        if (top < 0) { Py_DECREF((PyObject *)it.n); Py_DECREF(v); goto done; }
        if (top) { Py_DECREF((PyObject *)it.n); Py_DECREF(v); continue; }
        int dup = 0;
        for (int i = 0; i < slen; i++)
            if (seen[i].n == n && seen[i].v == v) { dup = 1; break; }
        if (dup) { Py_DECREF((PyObject *)it.n); Py_DECREF(v); continue; }
        CPUSH(seen, slen, scap, n, v);
        if (n->args == NULL) {
            PyObject *met = meet_c(n->value, v, w);
            if (!met) {
                Py_DECREF((PyObject *)it.n); Py_DECREF(v);
                if (PyErr_Occurred()) goto done;
                res = 0;
                goto done;
            }
            Py_XDECREF(n->value);
            n->value = met;
        } else {
            PyObject *pieces = c_g_split(
                v, n->name, (int)PyList_GET_SIZE(n->args), n->is_int);
            if (!pieces) { Py_DECREF((PyObject *)it.n); Py_DECREF(v); goto done; }
            if (pieces == Py_None) {
                Py_DECREF(pieces);
                Py_DECREF((PyObject *)it.n); Py_DECREF(v);
                res = 0;
                goto done;
            }
            Py_ssize_t na = PyList_GET_SIZE(n->args);
            for (Py_ssize_t k = 0; k < na; k++) {
                KNode *child = (KNode *)PyList_GET_ITEM(n->args, k);
                PyObject *piece = PyTuple_GET_ITEM(pieces, k);
                CPUSH(work, wlen, wcap, child, piece);
            }
            Py_DECREF(pieces);
        }
        Py_DECREF((PyObject *)it.n);
        Py_DECREF(v);
    }
    res = 1;
done:
    #undef CPUSH
    for (int i = 0; i < wlen; i++) {
        Py_DECREF((PyObject *)work[i].n);
        Py_DECREF(work[i].v);
    }
    for (int i = 0; i < slen; i++) {
        Py_DECREF((PyObject *)seen[i].n);
        Py_DECREF(seen[i].v);
    }
    free(work); free(seen);
    PROF_END(OP_CONSTRAIN)
    return res;
}

/* unify(a, b): -1 error, 0 sure failure, 1 ok */
static int kn_unify_raw(KNode *a, KNode *b, int w) {
    PROF_BEGIN(OP_UNIFY)
    typedef struct { KNode *x, *y; } UPair;
    UPair *work = NULL;
    int wlen = 0, wcap = 0;
    int res = -1;

    #define UPUSH(xx, yy) do { \
        if (wlen == wcap) { \
            int nc = wcap ? wcap * 2 : 16; \
            UPair *na_ = (UPair *)realloc(work, (size_t)nc * sizeof(UPair)); \
            if (!na_) { PyErr_NoMemory(); goto done; } \
            work = na_; wcap = nc; \
        } \
        Py_INCREF((PyObject *)(xx)); Py_INCREF((PyObject *)(yy)); \
        work[wlen].x = xx; work[wlen].y = yy; wlen++; \
    } while (0)

    UPUSH(a, b);
    while (wlen) {
        UPair it = work[--wlen];
        KNode *x = kn_find_raw(it.x);
        KNode *y = kn_find_raw(it.y);
        Py_INCREF((PyObject *)x);
        Py_INCREF((PyObject *)y);
        Py_DECREF((PyObject *)it.x);
        Py_DECREF((PyObject *)it.y);
        if (x == y) { Py_DECREF((PyObject *)x); Py_DECREF((PyObject *)y); continue; }
        int ok = 1;
        if (x->args != NULL && y->args != NULL) {
            Py_ssize_t nx = PyList_GET_SIZE(x->args);
            Py_ssize_t ny = PyList_GET_SIZE(y->args);
            int eq = (x->is_int == y->is_int && nx == ny)
                ? PyObject_RichCompareBool(x->name, y->name, Py_EQ) : 0;
            if (eq < 0) ok = -1;
            else if (!eq) ok = 0;
            else {
                PyObject *y_args = y->args;
                Py_INCREF(y_args);
                kn_union(x, y);
                for (Py_ssize_t k = 0; k < nx; k++)
                    UPUSH((KNode *)PyList_GET_ITEM(x->args, k),
                          (KNode *)PyList_GET_ITEM(y_args, k));
                Py_DECREF(y_args);
            }
        } else if (x->args != NULL || y->args != NULL) {
            KNode *pat = x->args != NULL ? x : y;
            KNode *leaf = x->args != NULL ? y : x;
            PyObject *pieces = c_g_split(
                leaf->value, pat->name,
                (int)PyList_GET_SIZE(pat->args), pat->is_int);
            if (!pieces) ok = -1;
            else if (pieces == Py_None) { Py_DECREF(pieces); ok = 0; }
            else {
                kn_union(pat, leaf);
                Py_ssize_t na = PyList_GET_SIZE(pat->args);
                for (Py_ssize_t k = 0; ok == 1 && k < na; k++)
                    ok = kn_constrain_raw(
                        (KNode *)PyList_GET_ITEM(pat->args, k),
                        PyTuple_GET_ITEM(pieces, k), w);
                Py_DECREF(pieces);
            }
        } else {
            PyObject *met = meet_c(x->value, y->value, w);
            if (!met) ok = PyErr_Occurred() ? -1 : 0;
            else {
                if (y->size > x->size) { KNode *t = x; x = y; y = t; }
                kn_union(x, y);
                Py_XDECREF(x->value);
                x->value = met;
            }
        }
        Py_DECREF((PyObject *)x);
        Py_DECREF((PyObject *)y);
        if (ok != 1) { res = ok; goto done; }
    }
    res = 1;
done:
    #undef UPUSH
    for (int i = 0; i < wlen; i++) {
        Py_DECREF((PyObject *)work[i].x);
        Py_DECREF((PyObject *)work[i].y);
    }
    free(work);
    PROF_END(OP_UNIFY)
    return res;
}

/* freeze: DFS with inline occur check; -2 cyclic, -1 error */
static int kn_freeze_visit(KNode *node, IMap *index, char **building,
                           int *bcap, PyObject *descs) {
    node = kn_find_raw(node);
    int64_t key = (int64_t)(intptr_t)node;
    int64_t slot64;
    if (imap_get(index, key, &slot64)) {
        if ((*building)[slot64]) return -2;  /* cyclic pattern */
        return (int)slot64;
    }
    int slot = (int)PyList_GET_SIZE(descs);
    if (slot >= *bcap) {
        int nc = *bcap * 2;
        char *nb = (char *)realloc(*building, (size_t)nc);
        if (!nb) { PyErr_NoMemory(); return -1; }
        memset(nb + *bcap, 0, (size_t)(nc - *bcap));
        *building = nb;
        *bcap = nc;
    }
    if (imap_put(index, key, slot) < 0) { PyErr_NoMemory(); return -1; }
    if (PyList_Append(descs, Py_None) < 0) return -1;
    if (node->args == NULL) {
        PyObject *desc = PyTuple_Pack(1, node->value ? node->value
                                                     : Py_None);
        if (!desc) return -1;
        PyList_SET_ITEM(descs, slot, desc);  /* steals, replaces None */
        /* the replaced None was a borrowed singleton; fix refcount */
        Py_DECREF(Py_None);
        return slot;
    }
    (*building)[slot] = 1;
    Py_ssize_t na = PyList_GET_SIZE(node->args);
    PyObject *args = PyTuple_New(na);
    if (!args) return -1;
    for (Py_ssize_t k = 0; k < na; k++) {
        int child = kn_freeze_visit(
            (KNode *)PyList_GET_ITEM(node->args, k), index, building,
            bcap, descs);
        if (child < 0) { Py_DECREF(args); return child; }
        PyObject *o = PyLong_FromLong(child);
        if (!o) { Py_DECREF(args); return -1; }
        PyTuple_SET_ITEM(args, k, o);
    }
    (*building)[slot] = 0;
    PyObject *desc = Py_BuildValue("(OOO)", node->name,
                                   node->is_int ? Py_True : Py_False,
                                   args);
    Py_DECREF(args);
    if (!desc) return -1;
    PyList_SET_ITEM(descs, slot, desc);
    Py_DECREF(Py_None);
    return slot;
}

/* ------------------------------------------------------------------ */
/* Python-facing functions                                             */

static int w_from_obj(PyObject *w_obj) {
    if (w_obj == Py_None) return -1;
    return (int)PyLong_AsLong(w_obj);
}

static PyObject *py_normalize_dense(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *any_f, *int_f, *funcs, *w_obj;
    int root_i, prune;
    if (!PyArg_ParseTuple(args, "OOOiOp", &any_f, &int_f, &funcs,
                          &root_i, &w_obj, &prune))
        return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    Py_ssize_t n = PySequence_Size(any_f);
    if (n < 0) return NULL;
    Dense d; memset(&d, 0, sizeof d);
    PyObject *af = PySequence_Fast(any_f, "any_f");
    PyObject *inf = PySequence_Fast(int_f, "int_f");
    PyObject *fns = PySequence_Fast(funcs, "funcs");
    PyObject *res = NULL;
    if (!af || !inf || !fns) goto done;
    for (Py_ssize_t i = 0; i < n; i++) {
        int node = dense_add_node(&d);
        if (node < 0) { PyErr_NoMemory(); goto done; }
        int fa = PyObject_IsTrue(PySequence_Fast_GET_ITEM(af, i));
        int fi = PyObject_IsTrue(PySequence_Fast_GET_ITEM(inf, i));
        if (fa < 0 || fi < 0) goto done;
        d.flags[node] = (unsigned char)(fa | (fi << 1));
        dense_begin_row(&d, node);
        PyObject *row = PySequence_Fast(
            PySequence_Fast_GET_ITEM(fns, i), "funcs row");
        if (!row) goto done;
        Py_ssize_t nr = PySequence_Fast_GET_SIZE(row);
        for (Py_ssize_t r = 0; r < nr; r++) {
            PyObject *alt = PySequence_Fast_GET_ITEM(row, r);
            PyObject *sym_o = PyTuple_GET_ITEM(alt, 0);
            PyObject *args_o = PyTuple_GET_ITEM(alt, 1);
            long sym = PyLong_AsLong(sym_o);
            if ((sym == -1 && PyErr_Occurred()) ||
                ensure_syms((int)sym) < 0) { Py_DECREF(row); goto done; }
            PyObject *args_fast = PySequence_Fast(args_o, "alt args");
            if (!args_fast) { Py_DECREF(row); goto done; }
            Py_ssize_t na = PySequence_Fast_GET_SIZE(args_fast);
            int abuf[32];
            int *m = abuf;
            if (na > 32) {
                m = (int *)malloc((size_t)na * sizeof(int));
                if (!m) { Py_DECREF(args_fast); Py_DECREF(row); PyErr_NoMemory(); goto done; }
            }
            int bad = 0;
            for (Py_ssize_t k = 0; k < na; k++) {
                m[k] = (int)PyLong_AsLong(
                    PySequence_Fast_GET_ITEM(args_fast, k));
                if (m[k] == -1 && PyErr_Occurred()) { bad = 1; break; }
            }
            if (!bad && dense_add_alt(&d, node, (int)sym, m, (int)na) < 0) {
                PyErr_NoMemory();
                bad = 1;
            }
            if (m != abuf) free(m);
            Py_DECREF(args_fast);
            if (bad) { Py_DECREF(row); goto done; }
        }
        Py_DECREF(row);
    }
    res = dense_normalize(&d, root_i, w, prune);
done:
    Py_XDECREF(af); Py_XDECREF(inf); Py_XDECREF(fns);
    dense_free(&d);
    return res;
}

static PyObject *py_arena_le(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *g1, *g2;
    if (!PyArg_ParseTuple(args, "OO", &g1, &g2)) return NULL;
    int r = c_g_le(g1, g2);
    if (r < 0) return NULL;
    return PyBool_FromLong(r);
}

static PyObject *py_arena_union(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *g1, *g2, *w_obj;
    if (!PyArg_ParseTuple(args, "OOO", &g1, &g2, &w_obj)) return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    return c_g_union(g1, g2, w);
}

static PyObject *py_arena_intersect(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *g1, *g2, *w_obj;
    if (!PyArg_ParseTuple(args, "OOO", &g1, &g2, &w_obj)) return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    return c_g_intersect(g1, g2, w);
}

static PyObject *py_arena_functor(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *name, *children, *w_obj;
    if (!PyArg_ParseTuple(args, "OOO", &name, &children, &w_obj))
        return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    PyObject *tup = PySequence_Tuple(children);
    if (!tup) return NULL;
    PyObject *res = c_g_functor(name, tup, w);
    Py_DECREF(tup);
    return res;
}

static PyObject *py_subgrammar(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *g;
    int idx;
    if (!PyArg_ParseTuple(args, "Oi", &g, &idx)) return NULL;
    return c_subgrammar(g, idx);
}

static PyObject *py_g_split(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *g, *name;
    int arity, is_int;
    if (!PyArg_ParseTuple(args, "OOip", &g, &name, &arity, &is_int))
        return NULL;
    return c_g_split(g, name, arity, is_int);
}

static PyObject *py_value_of(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *subst, *w_obj;
    int index, did;
    if (!PyArg_ParseTuple(args, "OiiO", &subst, &index, &did, &w_obj))
        return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    CSubst *s = get_csubst(subst);
    if (!s) return NULL;
    PROF_BEGIN(OP_VALUE_OF)
    PyObject *res = value_of_c(s, index, did, w);
    PROF_END(OP_VALUE_OF)
    return res;
}

static PyObject *py_subst_le(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *s1, *s2, *w_obj;
    int did;
    if (!PyArg_ParseTuple(args, "OOiO", &s1, &s2, &did, &w_obj))
        return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    int r = c_subst_le(s1, s2, did, w);
    if (r < 0) return NULL;
    return PyBool_FromLong(r);
}

static PyObject *py_g_widen(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *g_old, *g_new, *w_obj;
    int strict;
    if (!PyArg_ParseTuple(args, "OOOp", &g_old, &g_new, &w_obj, &strict))
        return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    return c_g_widen(g_old, g_new, w, strict);
}

static PyObject *py_subst_merge(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *s1, *s2, *w_obj, *combine;
    int did, mode, strict;
    if (!PyArg_ParseTuple(args, "OOiOipO", &s1, &s2, &did, &w_obj,
                          &mode, &strict, &combine))
        return NULL;
    int w = w_from_obj(w_obj);
    if (w == -1 && PyErr_Occurred()) return NULL;
    return c_subst_merge(s1, s2, did, w, mode, strict, combine);
}

/* -- builder entry points -- */

static PyObject *py_kn_leaf(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *value = Py_None;
    if (!PyArg_ParseTuple(args, "|O", &value)) return NULL;
    KNode *n = knode_new();
    if (!n) return NULL;
    if (value == Py_None) value = obj_any;   /* domain.top() */
    Py_INCREF(value);
    n->value = value;
    return (PyObject *)n;
}

static PyObject *py_kn_pattern(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *name, *children;
    int is_int;
    if (!PyArg_ParseTuple(args, "OpO", &name, &is_int, &children))
        return NULL;
    PyObject *lst = PySequence_List(children);
    if (!lst) return NULL;
    KNode *n = knode_new();
    if (!n) { Py_DECREF(lst); return NULL; }
    Py_INCREF(name);
    n->name = name;
    n->is_int = (char)is_int;
    n->args = lst;
    return (PyObject *)n;
}

static PyObject *py_kn_find(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *node;
    if (!PyArg_ParseTuple(args, "O", &node)) return NULL;
    if (!PyObject_TypeCheck(node, &KNodeType)) {
        PyErr_SetString(PyExc_TypeError, "expected KNode");
        return NULL;
    }
    PyObject *root = (PyObject *)kn_find_raw((KNode *)node);
    Py_INCREF(root);
    return root;
}

static PyObject *py_kn_unify(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *a, *b;
    int w;
    if (!PyArg_ParseTuple(args, "OOi", &a, &b, &w)) return NULL;
    int r = kn_unify_raw((KNode *)a, (KNode *)b, w);
    if (r < 0) return NULL;
    return PyBool_FromLong(r);
}

static PyObject *py_kn_constrain(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *node, *value;
    int w;
    if (!PyArg_ParseTuple(args, "OOi", &node, &value, &w)) return NULL;
    int r = kn_constrain_raw((KNode *)node, value, w);
    if (r < 0) return NULL;
    return PyBool_FromLong(r);
}

static PyObject *py_kn_fork(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *roots;
    if (!PyArg_ParseTuple(args, "O", &roots)) return NULL;
    PROF_BEGIN(OP_FORK)
    PyObject *result = NULL;
    PyObject *roots_fast = PySequence_Fast(roots, "fork roots");
    IMap copies; memset(&copies, 0, sizeof copies);
    I64Vec stack = {0}, originals = {0};
    if (!roots_fast) goto done;
    Py_ssize_t nr = PySequence_Fast_GET_SIZE(roots_fast);
    for (Py_ssize_t k = 0; k < nr; k++)
        if (i64vec_push(&stack, (int64_t)(intptr_t)
                        PySequence_Fast_GET_ITEM(roots_fast, k)) < 0) {
            PyErr_NoMemory(); goto done;
        }
    while (stack.len) {
        KNode *node = (KNode *)(intptr_t)stack.data[--stack.len];
        int64_t key = (int64_t)(intptr_t)node;
        int64_t dummy;
        if (imap_get(&copies, key, &dummy)) continue;
        KNode *copy = knode_new();
        if (!copy) goto done;
        if (node->value) { Py_INCREF(node->value); copy->value = node->value; }
        if (node->name) { Py_INCREF(node->name); copy->name = node->name; }
        copy->is_int = node->is_int;
        copy->size = node->size;
        if (imap_put(&copies, key, (int64_t)(intptr_t)copy) < 0 ||
            i64vec_push(&originals, key) < 0) {
            Py_DECREF((PyObject *)copy);
            PyErr_NoMemory();
            goto done;
        }
        if (node->parent &&
            i64vec_push(&stack, (int64_t)(intptr_t)node->parent) < 0) {
            PyErr_NoMemory(); goto done;
        }
        if (node->args) {
            Py_ssize_t na = PyList_GET_SIZE(node->args);
            for (Py_ssize_t k = 0; k < na; k++)
                if (i64vec_push(&stack, (int64_t)(intptr_t)
                                PyList_GET_ITEM(node->args, k)) < 0) {
                    PyErr_NoMemory(); goto done;
                }
        }
    }
    for (int i = 0; i < originals.len; i++) {
        KNode *node = (KNode *)(intptr_t)originals.data[i];
        int64_t cv;
        imap_get(&copies, originals.data[i], &cv);
        KNode *copy = (KNode *)(intptr_t)cv;
        if (node->parent) {
            int64_t pv;
            imap_get(&copies, (int64_t)(intptr_t)node->parent, &pv);
            KNode *pc = (KNode *)(intptr_t)pv;
            Py_INCREF((PyObject *)pc);
            copy->parent = pc;
        }
        if (node->args) {
            Py_ssize_t na = PyList_GET_SIZE(node->args);
            PyObject *lst = PyList_New(na);
            if (!lst) goto done;
            for (Py_ssize_t k = 0; k < na; k++) {
                int64_t av;
                imap_get(&copies,
                         (int64_t)(intptr_t)PyList_GET_ITEM(node->args, k),
                         &av);
                PyObject *ac = (PyObject *)(intptr_t)av;
                Py_INCREF(ac);
                PyList_SET_ITEM(lst, k, ac);
            }
            copy->args = lst;
        }
    }
    result = PyList_New(nr);
    if (!result) goto done;
    for (Py_ssize_t k = 0; k < nr; k++) {
        int64_t cv;
        imap_get(&copies, (int64_t)(intptr_t)
                 PySequence_Fast_GET_ITEM(roots_fast, k), &cv);
        PyObject *rc = (PyObject *)(intptr_t)cv;
        Py_INCREF(rc);
        PyList_SET_ITEM(result, k, rc);
    }
done:
    /* drop the map's ownership; the copied graph holds itself alive
     * through parent/args references from the returned roots */
    for (size_t i = 0; i < copies.cap; i++)
        if (copies.cap && copies.keys[i] != IMAP_EMPTY)
            Py_DECREF((PyObject *)(intptr_t)copies.vals[i]);
    imap_free(&copies);
    i64vec_free(&stack);
    i64vec_free(&originals);
    Py_XDECREF(roots_fast);
    PROF_END(OP_FORK)
    return result;
}

static PyObject *py_kn_freeze(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *roots;
    int w;
    if (!PyArg_ParseTuple(args, "Oi", &roots, &w)) return NULL;
    (void)w;
    PROF_BEGIN(OP_FREEZE)
    PyObject *result = NULL;
    PyObject *roots_fast = PySequence_Fast(roots, "freeze roots");
    IMap index; memset(&index, 0, sizeof index);
    int bcap = 64;
    char *building = (char *)calloc((size_t)bcap, 1);
    PyObject *descs = PyList_New(0);
    PyObject *sv = NULL;
    if (!roots_fast || !building || !descs) {
        if (!PyErr_Occurred()) PyErr_NoMemory();
        goto done;
    }
    Py_ssize_t nr = PySequence_Fast_GET_SIZE(roots_fast);
    sv = PyTuple_New(nr);
    if (!sv) goto done;
    for (Py_ssize_t k = 0; k < nr; k++) {
        int slot = kn_freeze_visit(
            (KNode *)PySequence_Fast_GET_ITEM(roots_fast, k),
            &index, &building, &bcap, descs);
        if (slot == -2) {            /* cyclic: sure failure */
            if (!obj_pat_bottom) {
                obj_pat_bottom = PyObject_CallNoArgs(cb_pat_bottom);
                if (!obj_pat_bottom) goto done;
            }
            Py_INCREF(obj_pat_bottom);
            result = obj_pat_bottom;
            goto done;
        }
        if (slot < 0) goto done;
        PyObject *o = PyLong_FromLong(slot);
        if (!o) goto done;
        PyTuple_SET_ITEM(sv, k, o);
    }
    result = freeze_build_cached(sv, descs);
done:
    Py_XDECREF(sv);
    Py_XDECREF(descs);
    Py_XDECREF(roots_fast);
    free(building);
    imap_free(&index);
    PROF_END(OP_FREEZE)
    return result;
}

static PyObject *py_kn_instantiate(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *subst;
    if (!PyArg_ParseTuple(args, "O", &subst)) return NULL;
    CSubst *s = get_csubst(subst);
    if (!s) return NULL;
    PROF_BEGIN(OP_INSTANTIATE)
    PyObject *result = NULL;
    KNode **cache = (KNode **)calloc((size_t)s->nnodes + 1,
                                     sizeof(KNode *));
    if (!cache) { PyErr_NoMemory(); PROF_END(OP_INSTANTIATE) return NULL; }
    /* iterative DFS with explicit child-cursor frames (patterns are
     * cached before their args are built, preserving sharing) */
    int ok = 1;
    for (int k = 0; ok && k < s->nvars; k++) {
        int root_i = s->sv[k];
        if (cache[root_i]) continue;
        IVec st = {0};   /* node indices with a pending visit */
        if (ivec_push(&st, root_i) < 0) { ok = 0; break; }
        while (st.len && ok) {
            int i = st.data[st.len - 1];
            if (cache[i] == NULL) {
                KNode *n = knode_new();
                if (!n) { ok = 0; break; }
                if (s->leaf[i]) {
                    PyObject *v = s->value[i];
                    if (v == Py_None) v = obj_any;
                    Py_INCREF(v);
                    n->value = v;
                    cache[i] = n;
                    st.len--;
                    continue;
                }
                Py_INCREF(s->name[i]);
                n->name = s->name[i];
                n->is_int = (char)s->is_int[i];
                n->args = PyList_New(0);
                if (!n->args) { Py_DECREF((PyObject *)n); ok = 0; break; }
                cache[i] = n;
                /* fall through: children get visited below */
            }
            KNode *n = cache[i];
            if (s->leaf[i]) { st.len--; continue; }
            Py_ssize_t have = PyList_GET_SIZE(n->args);
            int as = s->arg_start[i];
            int na = s->arg_start[i + 1] - as;
            if ((int)have == na) { st.len--; continue; }
            int child = s->args[as + have];
            if (cache[child] == NULL) {
                if (ivec_push(&st, child) < 0) { ok = 0; break; }
                continue;
            }
            if (PyList_Append(n->args, (PyObject *)cache[child]) < 0) {
                ok = 0;
                break;
            }
        }
        ivec_free(&st);
    }
    if (ok) {
        result = PyList_New(s->nvars);
        if (result)
            for (int k = 0; k < s->nvars; k++) {
                Py_INCREF((PyObject *)cache[s->sv[k]]);
                PyList_SET_ITEM(result, k, (PyObject *)cache[s->sv[k]]);
            }
    } else if (!PyErr_Occurred()) {
        PyErr_NoMemory();
    }
    for (int i = 0; i < s->nnodes; i++)
        Py_XDECREF((PyObject *)cache[i]);
    free(cache);
    PROF_END(OP_INSTANTIATE)
    return result;
}

/* -- counters / memo control -- */

static PyObject *py_set_profile(PyObject *self, PyObject *args) {
    (void)self;
    int flag;
    if (!PyArg_ParseTuple(args, "p", &flag)) return NULL;
    g_profile = flag;
    Py_RETURN_NONE;
}

static PyObject *py_kernel_counters(PyObject *self, PyObject *args) {
    (void)self; (void)args;
    PyObject *out = PyDict_New();
    if (!out) return NULL;
    for (int op = 0; op < OP_COUNT; op++) {
        if (!g_calls[op]) continue;
        PyObject *row = Py_BuildValue("{s:l,s:d}", "calls", g_calls[op],
                                      "seconds", g_secs[op]);
        if (!row || PyDict_SetItemString(out, OP_NAMES[op], row) < 0) {
            Py_XDECREF(row); Py_DECREF(out); return NULL;
        }
        Py_DECREF(row);
    }
    return out;
}

static PyObject *py_reset_kernel_counters(PyObject *self, PyObject *args) {
    (void)self; (void)args;
    memset(g_calls, 0, sizeof g_calls);
    memset(g_secs, 0, sizeof g_secs);
    Py_RETURN_NONE;
}

static PyObject *py_stats(PyObject *self, PyObject *args) {
    (void)self; (void)args;
    /* object construction happens in the Python callbacks, so the
     * Python-side compile/index counters stay authoritative */
    return Py_BuildValue("{s:i,s:i}", "compiles", 0, "index_builds", 0);
}

static PyObject *py_clear_memos(PyObject *self, PyObject *args) {
    (void)self; (void)args;
    imap_free(&memo_le);
    imap_clear_strong(&memo_sub);
    PyDict_Clear(memo_union);
    PyDict_Clear(memo_intersect);
    PyDict_Clear(memo_functor);
    PyDict_Clear(memo_widen);
    PyDict_Clear(flat_cache);
    PyDict_Clear(freeze_cache);
    Py_RETURN_NONE;
}

static PyObject *py_memo_stats(PyObject *self, PyObject *args) {
    (void)self; (void)args;
    return Py_BuildValue(
        "{s:n,s:n,s:n,s:n,s:n,s:n,s:n}",
        "le", (Py_ssize_t)memo_le.count,
        "union", PyDict_Size(memo_union),
        "intersect", PyDict_Size(memo_intersect),
        "functor", PyDict_Size(memo_functor),
        "widen", PyDict_Size(memo_widen),
        "subgrammar", (Py_ssize_t)memo_sub.count,
        "flat", PyDict_Size(flat_cache));
}

static PyObject *py_init(PyObject *self, PyObject *args) {
    (void)self;
    PyObject *config;
    if (!PyArg_ParseTuple(args, "O", &config)) return NULL;
    #define GRAB(var, name) do { \
        PyObject *o = PyDict_GetItemString(config, name); \
        if (!o) { \
            PyErr_SetString(PyExc_KeyError, "init: missing " name); \
            return NULL; \
        } \
        Py_INCREF(o); \
        Py_XDECREF(var); \
        var = o; \
    } while (0)
    GRAB(cb_from_flat, "from_flat");
    GRAB(cb_arena_flat, "arena_flat");
    GRAB(cb_sym_rows, "sym_rows");
    GRAB(cb_sym_f, "sym_f");
    GRAB(cb_int_literal, "int_literal");
    GRAB(cb_freeze_build, "freeze_build");
    GRAB(cb_subst_rows, "subst_rows");
    GRAB(obj_any, "any");
    GRAB(obj_bottom, "bottom");
    GRAB(cb_pat_bottom, "pat_bottom");
    #undef GRAB
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"init", py_init, METH_VARARGS, "wire Python callbacks + constants"},
    {"normalize_dense", py_normalize_dense, METH_VARARGS, NULL},
    {"arena_le", py_arena_le, METH_VARARGS, NULL},
    {"arena_union", py_arena_union, METH_VARARGS, NULL},
    {"arena_intersect", py_arena_intersect, METH_VARARGS, NULL},
    {"arena_functor", py_arena_functor, METH_VARARGS, NULL},
    {"subgrammar", py_subgrammar, METH_VARARGS, NULL},
    {"g_split", py_g_split, METH_VARARGS, NULL},
    {"g_widen", py_g_widen, METH_VARARGS, NULL},
    {"value_of", py_value_of, METH_VARARGS, NULL},
    {"subst_le", py_subst_le, METH_VARARGS, NULL},
    {"subst_merge", py_subst_merge, METH_VARARGS, NULL},
    {"kn_leaf", py_kn_leaf, METH_VARARGS, NULL},
    {"kn_pattern", py_kn_pattern, METH_VARARGS, NULL},
    {"kn_find", py_kn_find, METH_VARARGS, NULL},
    {"kn_unify", py_kn_unify, METH_VARARGS, NULL},
    {"kn_constrain", py_kn_constrain, METH_VARARGS, NULL},
    {"kn_fork", py_kn_fork, METH_VARARGS, NULL},
    {"kn_freeze", py_kn_freeze, METH_VARARGS, NULL},
    {"kn_instantiate", py_kn_instantiate, METH_VARARGS, NULL},
    {"set_profile", py_set_profile, METH_VARARGS, NULL},
    {"kernel_counters", py_kernel_counters, METH_NOARGS, NULL},
    {"reset_kernel_counters", py_reset_kernel_counters, METH_NOARGS, NULL},
    {"stats", py_stats, METH_NOARGS, NULL},
    {"clear_memos", py_clear_memos, METH_NOARGS, NULL},
    {"memo_stats", py_memo_stats, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT,
    "_arenakernels",
    "Native arena kernels (compiled lazily by repro._native).",
    -1,
    module_methods,
    NULL, NULL, NULL, NULL
};

PyMODINIT_FUNC PyInit__arenakernels(void) {
    if (PyType_Ready(&KNodeType) < 0) return NULL;
    PyObject *m = PyModule_Create(&moduledef);
    if (!m) return NULL;
    s_gid = PyUnicode_InternFromString("gid");
    s_sid = PyUnicode_InternFromString("sid");
    memo_union = PyDict_New();
    memo_intersect = PyDict_New();
    memo_functor = PyDict_New();
    memo_widen = PyDict_New();
    flat_cache = PyDict_New();
    freeze_cache = PyDict_New();
    if (!s_gid || !s_sid || !memo_union || !memo_intersect ||
        !memo_functor || !memo_widen || !flat_cache || !freeze_cache) {
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&KNodeType);
    if (PyModule_AddObject(m, "KNode", (PyObject *)&KNodeType) < 0) {
        Py_DECREF(&KNodeType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
