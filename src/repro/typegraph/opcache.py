"""Bounded memo tables for the type-graph operations.

With grammars interned (:func:`repro.typegraph.grammar.intern_grammar`)
every operation on the engine's hot path — ``g_le``, ``g_union``,
``g_intersect``, ``g_widen``, and the ``g_functor`` constructor — is a
pure function of the *identities* of its operands.  This module keeps
one bounded LRU table per operation, keyed on those identities (plus
scalar options such as ``max_or_width``), so the fixpoint engine stops
recomputing structurally identical results thousands of times per run.

Design notes:

* **Keys** hold the operand grammars themselves.  Interned grammars
  carry a precomputed hash and compare by identity, so lookups cost a
  couple of dict probes — no structural traversal.
* **Bounded**: each table is an LRU with a configurable ``maxsize``
  (default 65536 entries), so a long-lived batch/service process does
  not grow without limit.  Entries keep their operand grammars alive
  while cached; eviction releases them back to the weak intern table's
  discretion.
* **Transparent**: results are exactly what the uncached operation
  returns (the property tests in ``tests/test_opcache_properties.py``
  assert bit-identical analysis results with caches on and off).
* **Observable**: per-operation hit/miss counters are surfaced through
  :func:`stats` and :func:`snapshot`; the engine records the delta of
  a run in ``AnalysisStats.opcache_hits``/``opcache_misses``.

Knobs: ``configure(enabled=..., maxsize=...)`` at runtime, or the
``REPRO_OPCACHE`` environment variable (``0``/``off``/``false``
disables caching before the process starts — used by the benchmark
comparison and the equivalence tests).

Threading model — **single analysis thread per process**.  The memo
tables (and the open-coded probes into them on the hottest sites) are
deliberately unlocked: unlike the intern tables, a lost race here
cannot corrupt results (values are canonical interned objects, so a
double compute returns the identical instance), but per-probe locking
would tax the single hottest path in the system.  The service layer
enforces the model rather than paying for it: ``repro serve`` runs
every analysis on one dedicated executor thread (or in single-threaded
pool workers), and ``run_batch`` workers are single-threaded
processes.  Embedders who want the invariant *checked* can set
``REPRO_THREADGUARD=1`` (or call :func:`guard`): every table mutation
then asserts it happens on one consistent thread.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional, Tuple

__all__ = ["OpCache", "cached", "configure", "enabled", "clear",
           "stats", "snapshot", "caches", "guard", "DEFAULT_MAXSIZE"]

DEFAULT_MAXSIZE = 65536

_MISSING = object()


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_OPCACHE", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


def _env_guard() -> bool:
    value = os.environ.get("REPRO_THREADGUARD", "0").strip().lower()
    return value not in ("0", "off", "false", "no", "")


#: When true, every OpCache mutation asserts the single-writer-thread
#: invariant documented in the module docstring.
_GUARD = _env_guard()


def guard(enabled: bool) -> None:
    """Toggle the single-writer-thread assertion on table mutations
    (equivalent to starting the process with ``REPRO_THREADGUARD=1``).
    A debugging aid, off by default — it costs a branch per ``put``."""
    global _GUARD
    _GUARD = bool(enabled)
    if not enabled:
        for cache in _CACHES.values():
            cache.owner = None


class OpCache:
    """One bounded LRU memo table with hit/miss counters."""

    __slots__ = ("name", "maxsize", "hits", "misses", "_table", "owner")

    def __init__(self, name: str, maxsize: int = DEFAULT_MAXSIZE) -> None:
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._table: "OrderedDict" = OrderedDict()
        #: thread id of the first mutator, tracked only under the
        #: REPRO_THREADGUARD debugging aid.
        self.owner: Optional[int] = None

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key):
        """Cached value for ``key`` or ``None`` (values are never
        ``None``); counts a hit or a miss."""
        value = self._table.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self._table.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if _GUARD:
            ident = threading.get_ident()
            if self.owner is None:
                self.owner = ident
            elif self.owner != ident:
                raise RuntimeError(
                    "opcache %r mutated from thread %d after thread %d "
                    "— the single-analysis-thread-per-process model is "
                    "violated (see repro.typegraph.opcache docstring)"
                    % (self.name, ident, self.owner))
        table = self._table
        if key in table:
            table.move_to_end(key)
        table[key] = value
        if len(table) > self.maxsize:
            table.popitem(last=False)

    def clear(self) -> None:
        self._table.clear()

    def reset(self) -> None:
        """Clear entries *and* counters (tests, benchmarks)."""
        self.clear()
        self.hits = 0
        self.misses = 0


# -- registry ----------------------------------------------------------------

_ENABLED = _env_enabled()
_CACHES: Dict[str, OpCache] = {}


def cache_for(name: str) -> OpCache:
    """The process-wide cache for operation ``name`` (created lazily)."""
    cache = _CACHES.get(name)
    if cache is None:
        cache = OpCache(name)
        _CACHES[name] = cache
    return cache


def caches() -> Iterator[OpCache]:
    return iter(_CACHES.values())


def enabled() -> bool:
    return _ENABLED


def configure(enabled: Optional[bool] = None,
              maxsize: Optional[int] = None) -> None:
    """Runtime knobs: toggle caching and/or resize every table.

    Disabling does not clear the tables; re-enabling resumes with the
    previously cached results (still valid — operations are pure).
    """
    global _ENABLED
    if enabled is not None:
        _ENABLED = bool(enabled)
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        for cache in _CACHES.values():
            cache.maxsize = maxsize
            while len(cache._table) > maxsize:
                cache._table.popitem(last=False)
        global DEFAULT_MAXSIZE
        DEFAULT_MAXSIZE = maxsize


def clear(reset_counters: bool = False) -> None:
    """Drop every cached result (optionally also the counters).  The
    native tier's C-side memo tables are cleared in the same stroke so
    both layers forget together."""
    for cache in _CACHES.values():
        if reset_counters:
            cache.reset()
        else:
            cache.clear()
    try:
        from . import arena
        if arena.NATIVE is not None:
            arena.NATIVE.clear_memos()
    except Exception:
        pass


def stats() -> Dict[str, Dict[str, int]]:
    """Per-operation ``{hits, misses, size}`` snapshot."""
    return {cache.name: {"hits": cache.hits, "misses": cache.misses,
                         "size": len(cache)}
            for cache in _CACHES.values()}


def snapshot() -> Tuple[int, int]:
    """Aggregate ``(hits, misses)`` across all tables — the engine
    diffs two snapshots to attribute cache traffic to one run."""
    hits = 0
    misses = 0
    for cache in _CACHES.values():
        hits += cache.hits
        misses += cache.misses
    return hits, misses


def cached(name: str, key: tuple, compute: Callable[[], object]):
    """Memoize ``compute()`` under ``key`` in the ``name`` table;
    falls straight through when caching is disabled."""
    if not _ENABLED:
        return compute()
    cache = cache_for(name)
    value = cache.get(key)
    if value is None:
        value = compute()
        cache.put(key, value)
    return value
