"""Rendering type grammars in the paper's rule notation.

``grammar_to_text`` prints, e.g.::

    T ::= [] | cons(Any,T)

with nonterminals named ``T, T1, T2, ...`` in BFS discovery order and
the list functor ``'.'/2`` displayed as ``cons``, following §2 of the
paper.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from .grammar import ANY, INT, FuncAlt, Grammar

__all__ = ["grammar_to_text", "grammar_rules", "parse_rules"]


def _nt_names(grammar: Grammar) -> Dict[int, str]:
    order: List[int] = []
    seen = set()
    queue: deque = deque([grammar.root])
    while queue:
        nt = queue.popleft()
        if nt in seen:
            continue
        seen.add(nt)
        order.append(nt)
        for alt in sorted(grammar.rules[nt], key=repr):
            if isinstance(alt, FuncAlt):
                queue.extend(alt.args)
    names = {}
    index = 0
    for nt in order:
        if nt != grammar.root and grammar.rules[nt] in (
                frozenset([ANY]), frozenset([INT])):
            names[nt] = "<leaf>"  # inlined, never printed
            continue
        names[nt] = "T" if index == 0 else "T%d" % index
        index += 1
    return names


def _functor_display(name: str, arity: int) -> str:
    if name == "." and arity == 2:
        return "cons"
    return name


def _alt_text(alt, names: Dict[int, str], grammar: Grammar) -> str:
    if alt is ANY:
        return "Any"
    if alt is INT:
        return "Integer"
    assert isinstance(alt, FuncAlt)
    display = _functor_display(alt.name, alt.arity)
    if not alt.args:
        return display

    def arg_text(nt: int) -> str:
        # Inline leaf nonterminals, as the paper writes cons(Any,T).
        alts = grammar.rules[nt]
        if alts == frozenset([ANY]):
            return "Any"
        if alts == frozenset([INT]):
            return "Integer"
        return names[nt]

    return "%s(%s)" % (display, ",".join(arg_text(a) for a in alt.args))


def grammar_rules(grammar: Grammar) -> List[str]:
    """One ``N ::= alt | alt`` line per reachable nonterminal."""
    if grammar.is_bottom():
        return ["T ::= <empty>"]
    names = _nt_names(grammar)

    def order_key(nt: int) -> int:
        name = names[nt]
        if name == "<leaf>":
            return 1 << 30
        return 0 if name == "T" else int(name[1:])

    lines = []
    for nt in sorted(names, key=order_key):
        alts_set = grammar.rules[nt]
        if nt != grammar.root and alts_set in (frozenset([ANY]),
                                               frozenset([INT])):
            continue  # inlined at use sites
        alts = sorted(_alt_text(a, names, grammar) for a in alts_set)
        lines.append("%s ::= %s" % (names[nt], " | ".join(alts)))
    return lines


def grammar_to_text(grammar: Grammar) -> str:
    return "\n".join(grammar_rules(grammar))


def parse_rules(text: str) -> Grammar:
    """Parse the rule notation back into a grammar — lets tests state
    expected results exactly as the paper prints them.

    Accepted alternatives: ``Any``, ``Integer``, atoms, integers,
    ``f(N1,...,Nk)`` where each argument is a nonterminal name, ``Any``
    or ``Integer``.  ``cons`` means ``'.'/2``; ``nil`` may be written
    ``[]``.  The first rule's nonterminal is the root.
    """
    from .grammar import GrammarBuilder

    builder = GrammarBuilder()
    nts: Dict[str, int] = {}

    def nt_of(name: str) -> int:
        if name not in nts:
            nts[name] = builder.fresh()
        return nts[name]

    def arg_nt(token: str) -> int:
        token = token.strip()
        if token == "Any":
            fresh = builder.fresh()
            builder.add(fresh, ANY)
            return fresh
        if token == "Integer":
            fresh = builder.fresh()
            builder.add(fresh, INT)
            return fresh
        return nt_of(token)

    root_name = None
    for line in text.strip().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        lhs, rhs = line.split("::=")
        lhs = lhs.strip()
        if root_name is None:
            root_name = lhs
        nt = nt_of(lhs)
        for alt_text in _split_alts(rhs):
            alt_text = alt_text.strip()
            if alt_text == "Any":
                builder.add(nt, ANY)
            elif alt_text == "Integer":
                builder.add(nt, INT)
            elif "(" in alt_text:
                name, _, rest = alt_text.partition("(")
                args = _split_args(rest.rstrip().rstrip(")"))
                name = name.strip().strip("'")
                if name == "cons":
                    name = "."
                builder.add(nt, FuncAlt(
                    name, tuple(arg_nt(a) for a in args)))
            else:
                name = alt_text
                if name.lstrip("-").isdigit():
                    builder.add(nt, FuncAlt(name, (), True))
                else:
                    if name == "nil":
                        name = "[]"
                    builder.add(nt, FuncAlt(name.strip("'")))
        if lhs != root_name and not builder._rules[nt]:
            raise ValueError("empty rule for %s" % lhs)
    assert root_name is not None, "no rules given"
    return builder.finish(nts[root_name])


def _split_alts(text: str) -> List[str]:
    """Split on top-level '|' (no parens nesting of '|' expected)."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "|" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _split_args(text: str) -> List[str]:
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p for p in (x.strip() for x in parts) if p]
