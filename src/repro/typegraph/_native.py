"""Native execution tier: a lazily-compiled C extension.

The kernels in ``_arenakernels.c`` are compiled on first use with the
system C compiler (``cc`` or ``$REPRO_KERNEL_CC``) into a per-source-
hash cache directory, so the repo needs no build step and no toolchain:
when compilation is impossible the loader reports a reason and the
tier machinery in :mod:`repro.typegraph.arena` silently falls back to
the numpy/python tiers.  The C module holds only integers — every
Grammar/AbstractSubst it returns is produced through the same intern
tables as the pure-Python tier (see ``arena._grammar_from_intkey`` and
``pattern._freeze_build``), so results are *identical objects* across
tiers and the opcache/serialize layers stay tier-oblivious.

This module is the object published as ``arena.NATIVE``; the functions
below are the dispatch surface the python-level call sites use.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import List, Optional, Tuple

#: The loaded C module (None until :func:`load` succeeds) and, after a
#: failed attempt, the reason the tier is unavailable.
_CMOD = None
_REASON: Optional[str] = None
_TRIED = False


def _source_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "_arenakernels.c")


def _cache_dir() -> str:
    explicit = os.environ.get("REPRO_KERNEL_CACHE")
    if explicit:
        return explicit
    return os.path.join(
        tempfile.gettempdir(),
        "repro-kernels-py%d%d" % sys.version_info[:2])


def _build(source: str) -> str:
    """Compile (once per source hash) and return the .so path."""
    import hashlib
    with open(source, "rb") as handle:
        digest = hashlib.sha256(handle.read()).hexdigest()[:16]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    cache_dir = _cache_dir()
    os.makedirs(cache_dir, exist_ok=True)
    target = os.path.join(cache_dir,
                          "_arenakernels_%s%s" % (digest, suffix))
    if os.path.exists(target):
        return target
    cc = os.environ.get("REPRO_KERNEL_CC") or "cc"
    include = sysconfig.get_paths()["include"]
    scratch = target + ".build-%d" % os.getpid()
    cmd = [cc, "-O2", "-fPIC", "-shared", "-I", include,
           "-o", scratch, source]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=180)
    except (OSError, subprocess.SubprocessError) as exc:
        raise RuntimeError("%s: %s" % (cc, exc))
    if proc.returncode != 0:
        detail = (proc.stderr or proc.stdout or "").strip()
        raise RuntimeError(
            "%s exited %d%s" % (cc, proc.returncode,
                                ": " + detail[-400:] if detail else ""))
    os.replace(scratch, target)  # atomic publish for concurrent builds
    return target


#: The pattern module, imported on first builder use — the kernel tier
#: resolves during ``repro.typegraph.arena``'s own import, which the
#: ``repro`` package may reach *through* ``repro.domains``; importing
#: pattern eagerly here would re-enter that half-initialized package.
_PATTERN = None


def _pattern_mod():
    global _PATTERN
    if _PATTERN is None:
        from ..domains import pattern
        _PATTERN = pattern
    return _PATTERN


def _wire(cmod) -> None:
    """Hand the C module its callbacks into the Python object layer.
    The pattern-layer callbacks are trampolines (see above); they only
    fire from builder paths, by which point the domain layer exists."""
    from . import arena
    from .grammar import g_any, g_bottom, g_int_literal

    cmod.init({
        "from_flat": arena._grammar_from_intkey,
        "arena_flat": arena._arena_flat,
        "sym_rows": arena._sym_rows,
        "sym_f": arena._sym_f,
        "int_literal": lambda name: g_int_literal(int(name)),
        "freeze_build":
            lambda sv, descs: _pattern_mod()._freeze_build(sv, descs),
        "subst_rows": lambda subst: _pattern_mod()._subst_rows(subst),
        "any": g_any(),
        "bottom": g_bottom(),
        "pat_bottom": lambda: _pattern_mod().PAT_BOTTOM,
    })


def load():
    """(C module, None) on success, (None, reason) when the tier is
    unavailable.  The outcome is cached; ``_reset_for_tests`` clears
    it so fallback behaviour stays testable."""
    global _CMOD, _REASON, _TRIED
    if _CMOD is not None:
        return _CMOD, None
    if _TRIED:
        return None, _REASON
    _TRIED = True
    try:
        cmod_path = _build(_source_path())
        spec = importlib.util.spec_from_file_location("_arenakernels",
                                                      cmod_path)
        cmod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cmod)
        _wire(cmod)
    except Exception as exc:  # no toolchain, bad cache dir, ...
        _REASON = "%s" % (exc,) or repr(exc)
        return None, _REASON
    _CMOD = cmod
    return _CMOD, None


def _reset_for_tests() -> None:
    global _CMOD, _REASON, _TRIED
    if _CMOD is not None:
        _CMOD.clear_memos()
    _CMOD = None
    _REASON = None
    _TRIED = False


# -- arena-op dispatch surface (arena.NATIVE.<fn>) ---------------------------

def normalize_dense(any_f, int_f, funcs, root_i,
                    max_or_width: Optional[int], prune: bool = True):
    return _CMOD.normalize_dense(any_f, int_f, funcs, root_i,
                                 max_or_width, prune)


def arena_le(g1, g2) -> bool:
    return _CMOD.arena_le(g1, g2)


def arena_union(g1, g2, max_or_width: Optional[int]):
    return _CMOD.arena_union(g1, g2, max_or_width)


def arena_intersect(g1, g2, max_or_width: Optional[int]):
    return _CMOD.arena_intersect(g1, g2, max_or_width)


def arena_functor(name, children, max_or_width: Optional[int]):
    return _CMOD.arena_functor(name, children, max_or_width)


def arena_subgrammar(grammar, nt: int):
    from . import arena
    return _CMOD.subgrammar(grammar, arena.arena_of(grammar).index_of(nt))


def g_split(grammar, name, arity: int, is_int: bool):
    return _CMOD.g_split(grammar, name, arity, is_int)


def g_widen(g_old, g_new, max_or_width: Optional[int], strict: bool):
    return _CMOD.g_widen(g_old, g_new, max_or_width, strict)


# -- pattern-layer dispatch surface ------------------------------------------

def value_of(subst, index: int, did: int, max_or_width: Optional[int]):
    return _CMOD.value_of(subst, index, did, max_or_width)


def subst_le(s1, s2, did: int, max_or_width: Optional[int]) -> bool:
    return _CMOD.subst_le(s1, s2, did, max_or_width)


def subst_merge(s1, s2, did: int, max_or_width: Optional[int],
                mode: int, strict: bool, combine):
    """The ``pattern._merge`` walk in C.  ``mode`` selects the leaf
    combiner: 1 = the pure-C union (``TypeLeafDomain.join``), 2 = the
    pure-C widening (``TypeLeafDomain.widen``, no type database), 0 =
    call back into the Python ``combine`` for overriding domains."""
    return _CMOD.subst_merge(s1, s2, did, max_or_width, mode, strict,
                             combine)


class NativeSubstBuilder:
    """Drop-in for :class:`repro.domains.pattern.SubstBuilder` whose
    union-find nodes and walks live in C.  Only built for
    :class:`~repro.domains.leaf.TypeLeafDomain` (and subclasses that
    keep its meet/split/le primitives), whose operations the C tier
    mirrors exactly."""

    __slots__ = ("domain", "_w")

    def __init__(self, domain) -> None:
        self.domain = domain
        width = getattr(domain, "max_or_width", None)
        self._w = -1 if width is None else int(width)

    def fresh_leaf(self, value=None):
        return _CMOD.kn_leaf(value)

    def make_pattern(self, name: str, is_int: bool, children):
        return _CMOD.kn_pattern(name, is_int, children)

    @staticmethod
    def find(node):
        return _CMOD.kn_find(node)

    def fork(self, roots) -> Tuple["NativeSubstBuilder", List]:
        return NativeSubstBuilder(self.domain), _CMOD.kn_fork(list(roots))

    def unify(self, a, b) -> bool:
        return _CMOD.kn_unify(a, b, self._w)

    def constrain(self, node, value) -> bool:
        return _CMOD.kn_constrain(node, value, self._w)

    def freeze(self, roots):
        return _CMOD.kn_freeze(list(roots), self._w)

    def instantiate(self, subst) -> List:
        return _CMOD.kn_instantiate(subst)

    @staticmethod
    def sv_index(subst, k: int) -> int:
        return subst.sv[k]


def make_builder(domain) -> NativeSubstBuilder:
    return NativeSubstBuilder(domain)


# -- profiling / memo control -------------------------------------------------

def set_profile(enable: bool) -> None:
    _CMOD.set_profile(bool(enable))


def kernel_counters():
    return _CMOD.kernel_counters()


def reset_kernel_counters() -> None:
    _CMOD.reset_kernel_counters()


def stats():
    return _CMOD.stats()


def clear_memos() -> None:
    _CMOD.clear_memos()


def memo_stats():
    return _CMOD.memo_stats()
