"""numpy tier of the arena kernels: the dense passes restated as
fixed-width word-array operations.

The python tier's hot loops probe Python-int bitsets one
``(mask >> nt) & 1`` at a time and hash one signature tuple per
nonterminal per refinement round.  This module restates those passes
over ``uint64`` word arrays and flat CSR alternative tables:

* :func:`reach` — reachability closure as a boolean matrix fixpoint
  (bulk or instead of a per-bit worklist);
* :func:`nonempty_bits` — the nonemptiness least fixpoint iterated
  with ``reduceat``/scatter-or over all alternatives at once;
* :func:`refine_classes` — partition refinement by global
  sorted-signature grouping (``lexsort`` + ``unique(axis=0)``) — the
  coarsest signature-stable partition is unique, so the resulting
  *partition* matches the python tier's split-based walk exactly (only
  the transient class labels differ, and the shared renumbering step
  depends only on the partition);
* :func:`arena_le` — the synchronized-product inclusion walk with the
  whole frontier of pairs expanded, matched (one ``searchsorted`` join
  against per-row sym-sorted alternative keys), and advanced per
  round.

The product *discovery* of union/intersection is inherently sequential
hash-consing and stays in python; its dense back half (nonemptiness +
refinement inside ``_normalize_dense``) runs through the functions
here.  Results are bit-identical across tiers — this module never
builds grammars itself, it only computes the same masks and partitions
the shared renumber-and-intern tail consumes.

Import of this module fails cleanly when numpy is absent; the tier
resolver in :mod:`repro.typegraph.arena` records the reason and falls
back to the python tier.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["np_view", "reach", "nonempty_bits", "refine_classes",
           "arena_le", "NUMPY_VERSION"]

NUMPY_VERSION = np.__version__

_U64_1 = np.uint64(1)
_U64_63 = np.uint64(63)


def _mask_words(mask: int, n: int) -> np.ndarray:
    """A Python-int bitset as a little-endian uint64 word array."""
    nwords = max(1, (n + 63) >> 6)
    return np.frombuffer(
        mask.to_bytes(nwords * 8, "little"), dtype="<u8").copy()


def _words_to_mask(words: np.ndarray) -> int:
    return int.from_bytes(words.tobytes(), "little")


def _bittest(words: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Per-element bit test of word-array ``words`` at positions
    ``idx`` (returns a bool array)."""
    return ((words[idx >> 6] >> (idx & 63).astype(np.uint64))
            & _U64_1).astype(bool)


class _ArenaView:
    """Flat CSR word-array view of one :class:`GrammarArena` (cached
    on the arena's ``_np`` slot)."""

    __slots__ = ("n", "any_words", "int_words", "row_ptr", "alt_sym",
                 "alt_row", "arg_ptr", "flat_args", "sorted_alt",
                 "sorted_row", "sorted_sym")

    def __init__(self, arena) -> None:
        n = arena.n
        self.n = n
        self.any_words = _mask_words(arena.any_mask, n)
        self.int_words = _mask_words(arena.int_mask, n)
        counts = np.fromiter((len(row) for row in arena.syms),
                             np.int64, n) if n else np.zeros(0, np.int64)
        self.row_ptr = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int64)
        total = int(self.row_ptr[-1]) if n else 0
        self.alt_sym = np.fromiter(
            (s for row in arena.syms for s in row), np.int64, total)
        self.alt_row = np.repeat(np.arange(n, dtype=np.int64), counts) \
            if n else np.zeros(0, np.int64)
        arity = np.fromiter(
            (len(t) for row in arena.args for t in row), np.int64, total)
        self.arg_ptr = np.concatenate(
            ([0], np.cumsum(arity))).astype(np.int64)
        self.flat_args = np.fromiter(
            (c for row in arena.args for t in row for c in t),
            np.int64, int(self.arg_ptr[-1]))
        # per-row sym-sorted alternative order: rows are fkey-sorted
        # (string order), the joins below need sym-id order
        order = np.lexsort((self.alt_sym, self.alt_row))
        self.sorted_alt = order
        self.sorted_row = self.alt_row[order]
        self.sorted_sym = self.alt_sym[order]


def np_view(arena) -> _ArenaView:
    view = arena._np
    if view is None:
        view = _ArenaView(arena)
        arena._np = view
    return view


def _literal_array():
    from . import arena
    lits = arena.SYMBOLS.is_literal
    global _LITERALS
    if _LITERALS is None or len(_LITERALS) < len(lits):
        _LITERALS = np.asarray(lits, dtype=bool)
    return _LITERALS


_LITERALS = None


# -- reachability ------------------------------------------------------------

def reach(arena) -> Tuple[int, ...]:
    """Transitive-closure fixpoint as boolean matrix squaring; returns
    the same per-nonterminal Python-int bitsets as the python tier."""
    n = arena.n
    adj = np.eye(n, dtype=bool)
    for i in range(n):
        for arg_tuple in arena.args[i]:
            for child in arg_tuple:
                adj[i, child] = True
    current = adj
    while True:
        step = current.astype(np.uint8)
        closed = current | ((step @ step) > 0)
        if (closed == current).all():
            break
        current = closed
    return tuple(
        int.from_bytes(np.packbits(current[i], bitorder="little")
                       .tobytes(), "little")
        for i in range(n))


# -- nonemptiness ------------------------------------------------------------

def nonempty_bits(any_f, int_f, funcs, n: int) -> int:
    """Least fixpoint of "has a finite tree" — all alternatives tested
    per round with one ``reduceat``, proved rows scattered back with
    one ``or.at``."""
    nonempty = np.zeros(n, dtype=bool)
    rows: List[int] = []
    arities: List[int] = []
    flat: List[int] = []
    for i in range(n):
        if any_f[i] or int_f[i]:
            nonempty[i] = True
            continue
        for sym, arg_idx in funcs[i]:
            if not arg_idx:
                nonempty[i] = True
            else:
                rows.append(i)
                arities.append(len(arg_idx))
                flat.extend(arg_idx)
    if rows:
        row = np.asarray(rows, dtype=np.int64)
        arity = np.asarray(arities, dtype=np.int64)
        args = np.asarray(flat, dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(arity[:-1])))
        while True:
            proved = np.add.reduceat(
                nonempty[args].astype(np.int64), starts) == arity
            updated = nonempty.copy()
            np.logical_or.at(updated, row, proved)
            if (updated == nonempty).all():
                break
            nonempty = updated
    return int.from_bytes(
        np.packbits(nonempty, bitorder="little").tobytes(), "little")


# -- partition refinement ----------------------------------------------------

def refine_classes(any_f, int_f, funcs, n: int) -> List[int]:
    """Coarsest signature-stable partition by global rounds: per round,
    every alternative's key is gathered at once, alternatives are
    ordered within their node by ``lexsort``, and nodes are grouped by
    ``unique(axis=0)`` on their padded signature rows.  Exact integer
    comparisons throughout (no hashing), so the fixpoint is the same
    unique coarsest partition the split-based python walk reaches."""
    alt_node: List[int] = []
    alt_code: List[int] = []
    alt_args: List[tuple] = []
    max_arity = 0
    for i in range(n):
        if any_f[i]:
            alt_node.append(i)
            alt_code.append(0)
            alt_args.append(())
        if int_f[i]:
            alt_node.append(i)
            alt_code.append(1)
            alt_args.append(())
        for sym, arg_idx in funcs[i]:
            alt_node.append(i)
            alt_code.append(sym + 2)
            alt_args.append(arg_idx)
            if len(arg_idx) > max_arity:
                max_arity = len(arg_idx)
    total = len(alt_node)
    if total == 0:
        return [0] * n
    node = np.asarray(alt_node, dtype=np.int64)
    code = np.asarray(alt_code, dtype=np.int64)
    argmat = np.zeros((total, max_arity), dtype=np.int64)
    argmask = np.zeros((total, max_arity), dtype=bool)
    for k, arg_idx in enumerate(alt_args):
        if arg_idx:
            argmat[k, :len(arg_idx)] = arg_idx
            argmask[k, :len(arg_idx)] = True
    width = 1 + max_arity
    counts = np.bincount(node, minlength=n)
    max_alts = int(counts.max())
    classes = np.zeros(n, dtype=np.int64)
    num_classes = 1
    while num_classes < n:
        key = np.zeros((total, width), dtype=np.int64)
        key[:, 0] = code
        if max_arity:
            # class(arg)+1 per argument slot, 0 where padded — exactly
            # the python tier's base-(n+1) digit sequence, compared
            # positionally instead of packed into one big int
            key[:, 1:] = np.where(argmask, classes[argmat] + 1, 0)
        order = np.lexsort(
            tuple(key[:, c] for c in range(width - 1, -1, -1)) + (node,))
        sorted_node = node[order]
        sorted_key = key[order]
        group_first = np.concatenate(
            ([True], sorted_node[1:] != sorted_node[:-1]))
        group_start = np.flatnonzero(group_first)
        group_len = np.diff(np.concatenate((group_start, [total])))
        pos_in_group = np.arange(total) - np.repeat(group_start, group_len)
        signature = np.full((n, 1 + max_alts * width), -1, dtype=np.int64)
        signature[:, 0] = classes
        cols = 1 + pos_in_group[:, None] * width + np.arange(width)[None, :]
        signature[sorted_node[:, None], cols] = sorted_key
        _, new_classes = np.unique(signature, axis=0, return_inverse=True)
        new_count = int(new_classes.max()) + 1
        if new_count == num_classes:
            break  # refinement only splits: same count => stable
        classes = new_classes.astype(np.int64)
        num_classes = new_count
    return [int(c) for c in classes]


# -- inclusion ---------------------------------------------------------------

def _expand(ptr: np.ndarray, rows: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated ranges ``ptr[r]..ptr[r+1]`` for each ``r`` in
    ``rows`` plus the owning position of every produced index."""
    counts = ptr[rows + 1] - ptr[rows]
    total = int(counts.sum())
    owner = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
    if total == 0:
        return np.zeros(0, dtype=np.int64), owner
    bases = np.repeat(ptr[rows], counts)
    resets = np.repeat(np.concatenate(
        ([0], np.cumsum(counts[:-1]))), counts)
    offsets = np.arange(total, dtype=np.int64) - resets
    return bases + offsets, owner


def arena_le(g1, g2) -> bool:
    """Frontier-batched synchronized-product inclusion: each round
    tests the ANY/INT word arrays for the whole frontier, joins every
    left alternative against the right rows with one ``searchsorted``,
    and emits the next frontier of argument pairs in bulk."""
    from . import arena as _arena
    a1 = _arena.arena_of(g1)
    a2 = _arena.arena_of(g2)
    v1 = np_view(a1)
    v2 = np_view(a2)
    n2 = a2.n
    literals = _literal_array()
    nsyms = np.int64(len(literals) + 1)
    right_keys = v2.sorted_row * nsyms + v2.sorted_sym
    r1 = a1.index_of(g1.root)
    r2 = a2.index_of(g2.root)
    seen = {r1 * n2 + r2}
    left = np.asarray([r1], dtype=np.int64)
    right = np.asarray([r2], dtype=np.int64)
    while len(left):
        keep = ~_bittest(v2.any_words, right)  # ANY on the right covers
        left, right = left[keep], right[keep]
        if not len(left):
            break
        if _bittest(v1.any_words, left).any():
            return False  # nothing but ANY covers all terms
        has_int = _bittest(v2.int_words, right)
        if (_bittest(v1.int_words, left) & ~has_int).any():
            return False
        alt_idx, owner = _expand(v1.row_ptr, left)
        if not len(alt_idx):
            left = right = left[:0]
            continue
        syms = v1.alt_sym[alt_idx]
        skip = has_int[owner] & literals[syms]
        alt_idx, owner, syms = alt_idx[~skip], owner[~skip], syms[~skip]
        targets = right[owner] * nsyms + syms
        pos = np.searchsorted(right_keys, targets)
        if (pos >= len(right_keys)).any():
            return False
        if not (right_keys[pos] == targets).all():
            return False
        matched = v2.sorted_alt[pos]
        child1_idx, _ = _expand(v1.arg_ptr, alt_idx)
        child2_idx, _ = _expand(v2.arg_ptr, matched)
        # same sym => same arity, so the two expansions align
        keys = v1.flat_args[child1_idx] * n2 + v2.flat_args[child2_idx]
        fresh = [k for k in np.unique(keys).tolist() if k not in seen]
        if not fresh:
            left = right = left[:0]
            continue
        seen.update(fresh)
        fresh_arr = np.asarray(fresh, dtype=np.int64)
        left = fresh_arr // n2
        right = fresh_arr - left * n2
    return True
