"""CS — cutting stock (§9, from Constraint Satisfaction in Logic
Programming [26]).

Generates configurations: ways of cutting a wood board into small
shelves, with waste accounting and nested-list manipulation.  Table 1
reports 32 procedures and 55 clauses.
"""

NAME = "CS"
QUERY = ("cutstock", 2)

SOURCE = r"""
cutstock(Demand, Configs) :-
    board(Width),
    shelves(Shelves),
    configurations(Width, Shelves, Raw),
    select_configs(Raw, Demand, Configs).

board(20).

shelves([shelf(small, 3), shelf(medium, 5), shelf(large, 7),
         shelf(huge, 9)]).

configurations(Width, Shelves, Configs) :-
    gen_configs(Width, Shelves, [], Configs).

gen_configs(Width, Shelves, Acc, Configs) :-
    gen_one(Width, Shelves, [], Config),
    new_config(Config, Acc),
    gen_configs(Width, Shelves, [Config|Acc], Configs).
gen_configs(_, _, Acc, Acc).

gen_one(Remaining, Shelves, Acc, config(Cuts, Waste)) :-
    cuts(Remaining, Shelves, Acc, Cuts, Waste).

cuts(Remaining, _, Acc, Acc, Remaining) :- Remaining < 3.
cuts(Remaining, Shelves, Acc, Cuts, Waste) :-
    pick_shelf(Shelves, shelf(Name, W)),
    W =< Remaining,
    R1 is Remaining - W,
    cuts(R1, Shelves, [Name|Acc], Cuts, Waste).

pick_shelf([S|_], S).
pick_shelf([_|Rest], S) :- pick_shelf(Rest, S).

new_config(_, []).
new_config(Config, [C|Rest]) :-
    different_config(Config, C),
    new_config(Config, Rest).

different_config(config(C1, _), config(C2, _)) :- different_cuts(C1, C2).

different_cuts([], [_|_]).
different_cuts([_|_], []).
different_cuts([X|_], [Y|_]) :- X \== Y.
different_cuts([X|Xs], [Y|Ys]) :- X == Y, different_cuts(Xs, Ys).

select_configs(Raw, Demand, Configs) :-
    usable(Raw, Demand, Usable),
    rank(Usable, Configs).

usable([], _, []).
usable([config(Cuts, Waste)|Rest], Demand, [config(Cuts, Waste)|Out]) :-
    covers_some(Cuts, Demand),
    usable(Rest, Demand, Out).
usable([config(Cuts, _)|Rest], Demand, Out) :-
    covers_none(Cuts, Demand),
    usable(Rest, Demand, Out).

covers_some(Cuts, [need(Name, _)|_]) :- member(Name, Cuts).
covers_some(Cuts, [_|Rest]) :- covers_some(Cuts, Rest).

covers_none([], _).
covers_none([Name|Rest], Demand) :-
    not_needed(Name, Demand),
    covers_none(Rest, Demand).

not_needed(_, []).
not_needed(Name, [need(Other, _)|Rest]) :-
    Name \== Other,
    not_needed(Name, Rest).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

rank(Configs, Ranked) :- insert_sort(Configs, [], Ranked).

insert_sort([], Acc, Acc).
insert_sort([C|Rest], Acc, Ranked) :-
    insert_config(C, Acc, Acc1),
    insert_sort(Rest, Acc1, Ranked).

insert_config(C, [], [C]).
insert_config(C, [C1|Rest], [C, C1|Rest]) :- less_waste(C, C1).
insert_config(C, [C1|Rest], [C1|Out]) :-
    more_waste(C, C1),
    insert_config(C, Rest, Out).

less_waste(config(_, W1), config(_, W2)) :- W1 =< W2.
more_waste(config(_, W1), config(_, W2)) :- W1 > W2.

count_shelf(_, [], 0).
count_shelf(Name, [Name|Rest], N) :-
    count_shelf(Name, Rest, N1),
    N is N1 + 1.
count_shelf(Name, [Other|Rest], N) :-
    Name \== Other,
    count_shelf(Name, Rest, N).

total_waste([], 0).
total_waste([config(_, W)|Rest], Total) :-
    total_waste(Rest, T1),
    Total is T1 + W.

demand_met([], _).
demand_met([need(Name, N)|Rest], Configs) :-
    supply(Name, Configs, S),
    S >= N,
    demand_met(Rest, Configs).

supply(_, [], 0).
supply(Name, [config(Cuts, _)|Rest], S) :-
    count_shelf(Name, Cuts, C),
    supply(Name, Rest, S1),
    S is C + S1.

test(Configs) :-
    cutstock([need(small, 2), need(medium, 1), need(large, 1)], Configs).
"""
