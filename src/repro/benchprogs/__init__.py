"""The benchmark suite of §9.

Fifteen analysis workloads: the ten programs of Table 1 (KA QU PR PE
CS DS PG RE BR PL), the two arithmetic programs of Figures 2–3 (AR
AR1), and the three L-variants (LDS LPE LPL) whose input patterns
assign lists to some arguments, as in Tables 4–5.

Each :class:`BenchProgram` carries the Prolog source, the top-level
query, and the per-argument input types (``"any"`` unless the variant
says otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ar, br, chk, cs, ds, ka, pe, pg, pl, pr, qu, re as re_mod

__all__ = ["BenchProgram", "BENCHMARKS", "benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchProgram:
    """One analysis workload."""

    name: str
    source: str
    query: Tuple[str, int]
    input_types: Optional[Tuple[str, ...]] = None
    description: str = ""

    @property
    def pred_name(self) -> str:
        return self.query[0]


def _mk(name, module, query=None, input_types=None, description=""):
    return BenchProgram(
        name=name,
        source=module.SOURCE,
        query=query if query is not None else module.QUERY,
        input_types=tuple(input_types) if input_types else None,
        description=description,
    )


BENCHMARKS: Dict[str, BenchProgram] = {}

for _bp in [
    _mk("KA", ka, description="kalah alpha-beta game player"),
    _mk("QU", qu, description="n-queens"),
    _mk("PR", pr, description="press symbolic equation solver"),
    _mk("PE", pe, description="SB-Prolog peephole optimizer"),
    _mk("CS", cs, description="cutting stock configurations"),
    _mk("DS", ds, description="disjunctive scheduling, generate and test"),
    _mk("PG", pg, description="Older's arithmetic problem"),
    _mk("RE", re_mod, description="Prolog tokenizer and reader"),
    _mk("BR", br, description="browse (Gabriel suite)"),
    _mk("PL", pl, description="blocks-world planner"),
    BenchProgram("AR", ar.SOURCE, ar.QUERY,
                 description="arithmetic expressions (Figure 2)"),
    BenchProgram("AR1", ar.AR1_SOURCE, ar.AR1_QUERY,
                 description="arithmetic expressions (Figure 3)"),
    _mk("LDS", ds, input_types=["list", "any"],
        description="DS with a list input pattern"),
    _mk("LPE", pe, input_types=["list", "any"],
        description="PE with a list input pattern"),
    _mk("LPL", pl, input_types=["list", "list", "any"],
        description="PL with list input patterns"),
]:
    BENCHMARKS[_bp.name] = _bp

# The annotated verification workload lives in BENCHMARKS (so
# --benchmark CHK and the check/slice server ops can name it) but NOT
# in benchmark_names(): the Table 3 corpus and its fingerprints are
# frozen.
BENCHMARKS["CHK"] = BenchProgram(
    "CHK", chk.SOURCE, chk.QUERY, input_types=chk.INPUT_TYPES,
    description="annotated assertion-checking workload "
                "(one deliberate violation)")


def benchmark(name: str) -> BenchProgram:
    """Look up a benchmark by its paper name (e.g. ``"KA"``)."""
    return BENCHMARKS[name.upper()]


def benchmark_names(include_variants: bool = True) -> List[str]:
    """The Table 3 order, optionally with AR/AR1 and L-variants."""
    base = ["KA", "QU", "PR", "PE", "CS", "DS", "PG", "RE", "BR", "PL"]
    if include_variants:
        return base + ["AR", "AR1", "LDS", "LPE", "LPL"]
    return base
