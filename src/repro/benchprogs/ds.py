"""DS — generate-and-test disjunctive scheduling (§9, citing the
bridge-scheduling work in [6]).

Tasks with durations and precedence constraints share unit resources;
the program enumerates orderings of the disjunctive pairs and computes
schedule start times, testing against a horizon.  Table 1 reports 28
procedures and 52 clauses.
"""

NAME = "DS"
QUERY = ("schedule", 2)
LIST_QUERY_TYPES = ["list", "any"]

SOURCE = r"""
schedule(Horizon, Schedule) :-
    tasks(Tasks),
    precedences(Precs),
    disjunctives(Disjs),
    order_disjunctives(Disjs, Extra),
    append(Precs, Extra, AllPrecs),
    assign(Tasks, AllPrecs, [], Schedule),
    within_horizon(Schedule, Horizon).

tasks([task(a, 2), task(b, 3), task(c, 4), task(d, 2),
       task(e, 3), task(f, 1)]).

precedences([before(a, b), before(b, c), before(a, d),
             before(d, e), before(e, f)]).

disjunctives([disj(b, d), disj(c, e), disj(c, f)]).

order_disjunctives([], []).
order_disjunctives([disj(X, Y)|Rest], [before(X, Y)|Out]) :-
    order_disjunctives(Rest, Out).
order_disjunctives([disj(X, Y)|Rest], [before(Y, X)|Out]) :-
    order_disjunctives(Rest, Out).

assign([], _, Schedule, Schedule).
assign([task(Name, Dur)|Rest], Precs, Acc, Schedule) :-
    earliest(Name, Precs, Acc, Start),
    assign(Rest, Precs, [start(Name, Start, Dur)|Acc], Schedule).

earliest(Name, Precs, Done, Start) :-
    constraints_for(Name, Precs, Needed),
    max_end(Needed, Done, 0, Start).

constraints_for(_, [], []).
constraints_for(Name, [before(X, Name)|Rest], [X|Out]) :-
    constraints_for(Name, Rest, Out).
constraints_for(Name, [before(X, Y)|Rest], Out) :-
    Y \== Name,
    constraints_for(Name, Rest, Out).

max_end([], _, Acc, Acc).
max_end([X|Xs], Done, Acc, Start) :-
    end_of(X, Done, End),
    max(Acc, End, Acc1),
    max_end(Xs, Done, Acc1, Start).

end_of(Name, [start(Name, S, D)|_], End) :- End is S + D.
end_of(Name, [start(Other, _, _)|Rest], End) :-
    Other \== Name,
    end_of(Name, Rest, End).
end_of(_, [], 0).

max(X, Y, X) :- X >= Y.
max(X, Y, Y) :- X < Y.

within_horizon([], _).
within_horizon([start(_, S, D)|Rest], Horizon) :-
    End is S + D,
    End =< Horizon,
    within_horizon(Rest, Horizon).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).

makespan([], Acc, Acc).
makespan([start(_, S, D)|Rest], Acc, M) :-
    End is S + D,
    max(Acc, End, Acc1),
    makespan(Rest, Acc1, M).

best_schedule(Horizon, Schedule, Span) :-
    schedule(Horizon, Schedule),
    makespan(Schedule, 0, Span).

task_names([], []).
task_names([start(N, _, _)|Rest], [N|Out]) :- task_names(Rest, Out).

valid_order([], _).
valid_order([before(X, Y)|Rest], Schedule) :-
    end_of(X, Schedule, EndX),
    start_of(Y, Schedule, StartY),
    EndX =< StartY,
    valid_order(Rest, Schedule).

start_of(Name, [start(Name, S, _)|_], S).
start_of(Name, [start(Other, _, _)|Rest], S) :-
    Other \== Name,
    start_of(Name, Rest, S).
"""
