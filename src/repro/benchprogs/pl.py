"""PL — the planning program from The Art of Prolog (§9).

A means-ends blocks-world planner (transform a start state into a goal
state by move actions); Table 1 reports 13 procedures and 26 clauses.
"""

NAME = "PL"
QUERY = ("transform", 3)

SOURCE = r"""
transform(State1, State2, Plan) :-
    transform(State1, State2, [State1], Plan).

transform(State, State, _, []).
transform(State1, State2, Visited, [Action|Actions]) :-
    legal_action(Action, State1),
    update(Action, State1, State),
    not_member(State, Visited),
    transform(State, State2, [State|Visited], Actions).

legal_action(to_place(Block, Y, Place), State) :-
    on(Block, Y, State),
    clear(Block, State),
    place(Place),
    clear(Place, State).
legal_action(to_block(Block1, Y, Block2), State) :-
    on(Block1, Y, State),
    clear(Block1, State),
    block(Block2),
    diff(Block1, Block2),
    clear(Block2, State).

clear(X, State) :- not_on_any(X, State).

not_on_any(_, []).
not_on_any(X, [on(_, Z)|Rest]) :- diff(X, Z), not_on_any(X, Rest).

on(X, Y, State) :- member_state(on(X, Y), State).

update(to_place(X, Y, Z), State, State1) :-
    substitute(on(X, Y), on(X, Z), State, State1).
update(to_block(X, Y, Z), State, State1) :-
    substitute(on(X, Y), on(X, Z), State, State1).

substitute(X, Y, [X|T], [Y|T]).
substitute(X, Y, [F|T], [F|T1]) :- diff(X, F), substitute(X, Y, T, T1).

member_state(X, [X|_]).
member_state(X, [_|T]) :- member_state(X, T).

not_member(_, []).
not_member(X, [F|T]) :- diff(X, F), not_member(X, T).

diff(X, Y) :- X \== Y.

block(a).
block(b).
block(c).

place(p).
place(q).
place(r).

test(Plan) :-
    transform([on(a, b), on(b, p), on(c, r)],
              [on(a, b), on(b, c), on(c, r)], Plan).
"""
