"""PG — Older's mathematical problem (§9).

The original is not published; the paper reports 10 procedures and 18
clauses.  This reconstruction solves a comparable specific problem:
find a sequence of arithmetic operations turning a start number into a
target (a bounded arithmetic search), exercising integer arithmetic,
accumulators and small recursion — the features the PG column of the
tables reflects.
"""

NAME = "PG"
QUERY = ("pg", 2)

SOURCE = r"""
pg(Target, Plan) :-
    start(Start),
    bound(Bound),
    search(Start, Target, Bound, [], RevPlan),
    rev(RevPlan, [], Plan).

start(1).

bound(6).

search(X, X, _, Plan, Plan).
search(X, Target, Bound, Acc, Plan) :-
    Bound > 0,
    step(X, Op, Y),
    Y =< 10000,
    B1 is Bound - 1,
    search(Y, Target, B1, [Op|Acc], Plan).

step(X, double(X), Y) :- Y is X * 2.
step(X, triple(X), Y) :- Y is X * 3.
step(X, square(X), Y) :- Y is X * X.
step(X, inc(X), Y) :- Y is X + 1.
step(X, dec(X), Y) :- X > 1, Y is X - 1.
step(X, halve(X), Y) :- even(X), Y is X // 2.

even(X) :- 0 =:= X mod 2.

rev([], Acc, Acc).
rev([F|T], Acc, R) :- rev(T, [F|Acc], R).

check(Plan) :- length(Plan, N), N =< 6.

main(Target, Plan) :- pg(Target, Plan), check(Plan).
"""
