"""KA — kalah, the alpha-beta game-playing program from The Art of
Prolog (§9).

The game-playing framework (play loop, alpha-beta search with cutoff)
plus the kalah-specific move generation, stone distribution and
capture rules.  Table 1 reports 44 procedures and 82 clauses; this
reconstruction is the same program shape (board terms, deep
structures, arithmetic, mutual recursion between search and move
application).
"""

NAME = "KA"
QUERY = ("play", 1)

SOURCE = r"""
play(Result) :-
    initialize(Position, Player),
    play(Position, Player, Result).

initialize(board([6,6,6,6,6,6], 0, [6,6,6,6,6,6], 0), computer).

play(Position, Player, Result) :-
    game_over(Position, Player, Result),
    announce(Result).
play(Position, Player, Result) :-
    choose_move(Position, Player, Move),
    move(Move, Position, Position1),
    next_player(Player, Player1),
    play(Position1, Player1, Result).

announce(Result) :- write(Result), nl.

next_player(computer, opponent).
next_player(opponent, computer).

game_over(board(B, K, B1, K1), _, draw) :-
    pieces(P), K =:= 6 * P, K1 =:= 6 * P.
game_over(board(_, K, _, _), Player, Player) :-
    pieces(P), K > 6 * P.
game_over(board(_, _, _, K1), Player, Other) :-
    pieces(P), K1 > 6 * P,
    next_player(Player, Other).
game_over(board(B, _, B1, _), _, exhausted) :-
    zero(B), zero(B1).

pieces(6).

lookahead(2).

choose_move(Position, computer, Move) :-
    lookahead(Depth),
    alpha_beta(Depth, Position, -40, 40, Move, _Value).
choose_move(Position, opponent, Move) :-
    read(Move),
    legal(Move, Position).

legal([M|Ms], Position) :- 0 < M, M < 7, legal_rest(Ms, Position).
legal_rest([], _).
legal_rest([M|Ms], Position) :- 0 < M, M < 7, legal_rest(Ms, Position).

alpha_beta(0, Position, _Alpha, _Beta, nomove, Value) :-
    value(Position, Value).
alpha_beta(D, Position, Alpha, Beta, Move, Value) :-
    D > 0,
    all_moves(Position, Moves),
    Alpha1 is 0 - Beta,
    Beta1 is 0 - Alpha,
    D1 is D - 1,
    evaluate_and_choose(Moves, Position, D1, Alpha1, Beta1, nil,
                        pair(Move, Value)).

evaluate_and_choose([], _Position, _D, Alpha, _Beta, Move,
                    pair(Move, Alpha)).
evaluate_and_choose([Move|Moves], Position, D, Alpha, Beta, Record,
                    BestMove) :-
    move(Move, Position, Position1),
    swap_sides(Position1, Position2),
    alpha_beta(D, Position2, Alpha, Beta, _MoveX, ValueX),
    Value is 0 - ValueX,
    cutoff(Move, Value, D, Alpha, Beta, Moves, Position, Record,
           BestMove).

cutoff(Move, Value, _D, _Alpha, Beta, _Moves, _Position, _Record,
       pair(Move, Value)) :-
    Value >= Beta.
cutoff(Move, Value, D, Alpha, Beta, Moves, Position, _Record,
       BestMove) :-
    Alpha < Value, Value < Beta,
    evaluate_and_choose(Moves, Position, D, Value, Beta, Move, BestMove).
cutoff(_Move, Value, D, Alpha, Beta, Moves, Position, Record,
       BestMove) :-
    Value =< Alpha,
    evaluate_and_choose(Moves, Position, D, Alpha, Beta, Record,
                        BestMove).

all_moves(Position, Moves) :- moves_from(1, Position, Moves).

moves_from(7, _, []).
moves_from(M, Position, [[M]|Moves]) :-
    M < 7,
    stones_in_hole(M, Position, N),
    N > 0,
    M1 is M + 1,
    moves_from(M1, Position, Moves).
moves_from(M, Position, Moves) :-
    M < 7,
    stones_in_hole(M, Position, 0),
    M1 is M + 1,
    moves_from(M1, Position, Moves).

stones_in_hole(M, board(Hs, _, _, _), N) :- nth_stone(M, Hs, N).

nth_stone(1, [H|_], H).
nth_stone(M, [_|Hs], N) :- M > 1, M1 is M - 1, nth_stone(M1, Hs, N).

move([], Position, Position).
move([M|Ms], Position, Position2) :-
    single_move(M, Position, Position1),
    move(Ms, Position1, Position2).

single_move(M, board(Hs, K, Ys, L), Position) :-
    stones(M, Hs, N, Hs1),
    extend_move(N, M, board(Hs1, K, Ys, L), Position).

stones(1, [H|Hs], H, [0|Hs]) :- H > 0.
stones(M, [H|Hs], N, [H|Hs1]) :-
    M > 1, M1 is M - 1, stones(M1, Hs, N, Hs1).

extend_move(0, _M, Position, Position).
extend_move(N, M, board(Hs, K, Ys, L), Position) :-
    N > 0,
    distribute_my_holes(N, M, Hs, Hs1, N1),
    distribute_kalah(N1, K, K1, N2),
    distribute_your_holes(N2, Ys, Ys1, N3),
    check_capture(M, N, Hs1, Hs2, Ys1, Ys2, K1, K2),
    finish_move(N3, M, board(Hs2, K2, Ys2, L), Position).

finish_move(0, _, Position, Position).
finish_move(N, M, Position, Position1) :-
    N > 0,
    extend_move(N, M, Position, Position1).

distribute_my_holes(N, M, Hs, Hs1, N1) :-
    distribute_from(M, N, Hs, Hs1, N1).

distribute_from(_M, 0, Hs, Hs, 0).
distribute_from(M, N, Hs, Hs1, N1) :-
    N > 0,
    drop_after(M, N, Hs, Hs1, N1).

drop_after(0, N, [H|Hs], [H1|Hs1], N1) :-
    N > 0,
    H1 is H + 1,
    N2 is N - 1,
    drop_after(0, N2, Hs, Hs1, N1).
drop_after(0, 0, Hs, Hs, 0).
drop_after(M, N, [H|Hs], [H|Hs1], N1) :-
    M > 0,
    M1 is M - 1,
    drop_after(M1, N, Hs, Hs1, N1).
drop_after(_, N, [], [], N).

distribute_kalah(0, K, K, 0).
distribute_kalah(N, K, K1, N1) :-
    N > 0,
    K1 is K + 1,
    N1 is N - 1.

distribute_your_holes(0, Ys, Ys, 0).
distribute_your_holes(N, Ys, Ys1, N1) :-
    N > 0,
    drop_after(0, N, Ys, Ys1, N1).

check_capture(M, N, Hs, Hs1, Ys, Ys1, K, K1) :-
    landing_hole(M, N, Hole),
    Hole >= 1, Hole =< 6,
    nth_stone(Hole, Hs, 1),
    opposite(Hole, OppHole),
    nth_stone(OppHole, Ys, Captured),
    Captured > 0,
    set_hole(Hole, Hs, 0, Hs1),
    set_hole(OppHole, Ys, 0, Ys1),
    K1 is K + Captured + 1.
check_capture(_M, _N, Hs, Hs, Ys, Ys, K, K).

landing_hole(M, N, Hole) :- Hole is M + N.

opposite(Hole, OppHole) :- OppHole is 7 - Hole.

set_hole(1, [_|Hs], V, [V|Hs]).
set_hole(M, [H|Hs], V, [H|Hs1]) :-
    M > 1, M1 is M - 1, set_hole(M1, Hs, V, Hs1).

swap_sides(board(Hs, K, Ys, L), board(Ys, L, Hs, K)).

value(board(_H, K, _Y, L), Value) :- Value is K - L.

zero([]).
zero([0|T]) :- zero(T).

sum_stones([], Acc, Acc).
sum_stones([H|T], Acc, Sum) :- Acc1 is Acc + H, sum_stones(T, Acc1, Sum).

board_total(board(Hs, K, Ys, L), Total) :-
    sum_stones(Hs, 0, S1),
    sum_stones(Ys, 0, S2),
    Total is S1 + S2 + K + L.
"""
