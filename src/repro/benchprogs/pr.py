"""PR — press (PRolog Equation Solving System), from The Art of
Prolog (§9).

Symbolic equation solving by method selection: factorization,
isolation (position finding and maneuvering), polynomial methods
(canonical form, linear and quadratic solution) and homogenization
(offender collection, reduced-term search, substitution).  Table 1
reports 52 procedures and 158 clauses; the paper notes PR is "heavily
mutually recursive", which this reconstruction preserves (the methods
call solve_equation recursively).
"""

NAME = "PR"
QUERY = ("solve_equation", 3)

SOURCE = r"""
solve_equation(A * B = 0, X, Solution) :-
    factorize(A * B, X, Factors),
    remove_duplicates(Factors, Factors1),
    solve_factors(Factors1, X, Solution).
solve_equation(Equation, X, Solution) :-
    single_occurrence(X, Equation),
    position(X, Equation, [Side|Position]),
    maneuver_sides(Side, Equation, Equation1),
    isolate(Position, Equation1, Solution).
solve_equation(Lhs = Rhs, X, Solution) :-
    is_polynomial(Lhs, X),
    is_polynomial(Rhs, X),
    polynomial_normal_form(Lhs - Rhs, X, PolyForm),
    solve_polynomial_equation(PolyForm, X, Solution).
solve_equation(Equation, X, Solution) :-
    offenders(Equation, X, Offenders),
    multiple(Offenders),
    homogenize(Equation, X, Offenders, Equation1, X1),
    solve_equation(Equation1, X1, Solution1),
    solve_equation(Solution1, X, Solution).

% -- factorization -----------------------------------------------------

factorize(A * B, X, Factors) :-
    factorize(A, X, F1),
    factorize(B, X, F2),
    append_factors(F1, F2, Factors).
factorize(C, X, [C]) :- subterm(X, C).
factorize(C, X, []) :- free_of(X, C).

append_factors([], X, X).
append_factors([F|T], S, [F|R]) :- append_factors(T, S, R).

remove_duplicates([], []).
remove_duplicates([F|T], [F|T1]) :-
    delete_all(F, T, T2),
    remove_duplicates(T2, T1).

delete_all(_, [], []).
delete_all(X, [X|T], T1) :- delete_all(X, T, T1).
delete_all(X, [Y|T], [Y|T1]) :- X \== Y, delete_all(X, T, T1).

solve_factors([Factor|_], X, Solution) :-
    solve_equation(Factor = 0, X, Solution).
solve_factors([_|Factors], X, Solution) :-
    solve_factors(Factors, X, Solution).

% -- isolation ---------------------------------------------------------

single_occurrence(Subterm, Term) :-
    occurrence(Subterm, Term, 1).

occurrence(Term, Term, 1).
occurrence(Sub, Term, N) :-
    compound_term(Term),
    Term \== Sub,
    decompose(Term, Args),
    occurrence_list(Sub, Args, N).
occurrence(Sub, Term, 0) :-
    atomic_term(Term),
    Term \== Sub.

occurrence_list(_, [], 0).
occurrence_list(Sub, [Arg|Args], N) :-
    occurrence(Sub, Arg, N1),
    occurrence_list(Sub, Args, N2),
    N is N1 + N2.

position(Term, Term, []).
position(Sub, Term, Path) :-
    compound_term(Term),
    decompose(Term, Args),
    position_list(Sub, Args, 1, Path).

position_list(Sub, [Arg|_], N, [N|Path]) :-
    position(Sub, Arg, Path).
position_list(Sub, [_|Args], N, Path) :-
    N1 is N + 1,
    position_list(Sub, Args, N1, Path).

maneuver_sides(1, Lhs = Rhs, Lhs = Rhs).
maneuver_sides(2, Lhs = Rhs, Rhs = Lhs).

isolate([], Equation, Equation).
isolate([N|Position], Equation, IsolatedEquation) :-
    isolax(N, Equation, Equation1),
    isolate(Position, Equation1, IsolatedEquation).

isolax(1, Term1 + Term2 = Rhs, Term1 = Rhs - Term2).
isolax(2, Term1 + Term2 = Rhs, Term2 = Rhs - Term1).
isolax(1, Term1 - Term2 = Rhs, Term1 = Rhs + Term2).
isolax(2, Term1 - Term2 = Rhs, Term2 = Term1 - Rhs).
isolax(1, Term1 * Term2 = Rhs, Term1 = Rhs / Term2) :-
    nonzero(Term2).
isolax(2, Term1 * Term2 = Rhs, Term2 = Rhs / Term1) :-
    nonzero(Term1).
isolax(1, Term1 / Term2 = Rhs, Term1 = Rhs * Term2) :-
    nonzero(Term2).
isolax(2, Term1 / Term2 = Rhs, Term2 = Term1 / Rhs) :-
    nonzero(Rhs).
isolax(1, Term1 ^ Term2 = Rhs, Term1 = Rhs ^ (1 / Term2)).
isolax(2, Term1 ^ Term2 = Rhs, Term2 = log(Rhs) / log(Term1)).
isolax(1, sin(U) = V, U = arcsin(V)).
isolax(1, cos(U) = V, U = arccos(V)).
isolax(1, exp(U) = V, U = log(V)) :- nonzero(V).
isolax(1, log(U) = V, U = exp(V)).

nonzero(Term) :- Term \== 0.

% -- polynomial methods --------------------------------------------------

is_polynomial(X, X).
is_polynomial(Term, _) :- number_term(Term).
is_polynomial(Term1 + Term2, X) :-
    is_polynomial(Term1, X),
    is_polynomial(Term2, X).
is_polynomial(Term1 - Term2, X) :-
    is_polynomial(Term1, X),
    is_polynomial(Term2, X).
is_polynomial(Term1 * Term2, X) :-
    is_polynomial(Term1, X),
    is_polynomial(Term2, X).
is_polynomial(Term1 / Term2, X) :-
    is_polynomial(Term1, X),
    number_term(Term2).
is_polynomial(Term ^ N, X) :-
    is_polynomial(Term, X),
    number_term(N).

polynomial_normal_form(Polynomial, X, PolyForm) :-
    polynomial_form(Polynomial, X, PolyForm1),
    remove_zero_terms(PolyForm1, PolyForm).

polynomial_form(X, X, [poly(1, 1)]).
polynomial_form(X ^ N, X, [poly(1, N)]).
polynomial_form(Term1 + Term2, X, PolyForm) :-
    polynomial_form(Term1, X, PolyForm1),
    polynomial_form(Term2, X, PolyForm2),
    add_polynomials(PolyForm1, PolyForm2, PolyForm).
polynomial_form(Term1 - Term2, X, PolyForm) :-
    polynomial_form(Term1, X, PolyForm1),
    polynomial_form(Term2, X, PolyForm2),
    subtract_polynomials(PolyForm1, PolyForm2, PolyForm).
polynomial_form(Term1 * Term2, X, PolyForm) :-
    polynomial_form(Term1, X, PolyForm1),
    polynomial_form(Term2, X, PolyForm2),
    multiply_polynomials(PolyForm1, PolyForm2, PolyForm).
polynomial_form(Term, _, [poly(Term, 0)]) :-
    number_term(Term).

remove_zero_terms([], []).
remove_zero_terms([poly(0, _)|Poly], Poly1) :-
    remove_zero_terms(Poly, Poly1).
remove_zero_terms([poly(C, N)|Poly], [poly(C, N)|Poly1]) :-
    C \== 0,
    remove_zero_terms(Poly, Poly1).

add_polynomials([], Poly, Poly).
add_polynomials(Poly, [], Poly).
add_polynomials([poly(Ai, Ni)|PolyA], [poly(Aj, Nj)|PolyB],
                [poly(Ai, Ni)|Poly]) :-
    Ni > Nj,
    add_polynomials(PolyA, [poly(Aj, Nj)|PolyB], Poly).
add_polynomials([poly(Ai, Ni)|PolyA], [poly(Aj, Nj)|PolyB],
                [poly(A, Ni)|Poly]) :-
    Ni =:= Nj,
    A is Ai + Aj,
    add_polynomials(PolyA, PolyB, Poly).
add_polynomials([poly(Ai, Ni)|PolyA], [poly(Aj, Nj)|PolyB],
                [poly(Aj, Nj)|Poly]) :-
    Ni < Nj,
    add_polynomials([poly(Ai, Ni)|PolyA], PolyB, Poly).

subtract_polynomials(PolyA, PolyB, Poly) :-
    negate_polynomial(PolyB, PolyB1),
    add_polynomials(PolyA, PolyB1, Poly).

negate_polynomial([], []).
negate_polynomial([poly(A, N)|Poly], [poly(A1, N)|Poly1]) :-
    A1 is 0 - A,
    negate_polynomial(Poly, Poly1).

multiply_polynomials([], _, []).
multiply_polynomials([poly(A, N)|PolyA], PolyB, Poly) :-
    multiply_single(PolyB, poly(A, N), PolyB1),
    multiply_polynomials(PolyA, PolyB, PolyA1),
    add_polynomials(PolyB1, PolyA1, Poly).

multiply_single([], _, []).
multiply_single([poly(A1, N1)|Poly], poly(A, N), [poly(A2, N2)|Poly1]) :-
    A2 is A1 * A,
    N2 is N1 + N,
    multiply_single(Poly, poly(A, N), Poly1).

solve_polynomial_equation(PolyEquation, X, X = Solution) :-
    linear(PolyEquation),
    pad(PolyEquation, [poly(A, 1), poly(B, 0)]),
    Solution = (0 - B) / A.
solve_polynomial_equation(PolyEquation, X, Solution) :-
    quadratic(PolyEquation),
    pad(PolyEquation, [poly(A, 2), poly(B, 1), poly(C, 0)]),
    discriminant(A, B, C, Discriminant),
    root(X, A, B, C, Discriminant, Solution).

discriminant(A, B, C, D) :- D is B * B - 4 * A * C.

root(X, A, B, _C, 0, X = (0 - B) / (2 * A)).
root(X, A, B, _C, D, X = ((0 - B) + sqrt(D)) / (2 * A)) :- D > 0.
root(X, A, B, _C, D, X = ((0 - B) - sqrt(D)) / (2 * A)) :- D > 0.

linear([poly(_, 1)|_]).
quadratic([poly(_, 2)|_]).

pad([poly(C, N)|Poly], [poly(C, N)|Poly1]) :-
    pad_next(N, Poly, Poly1).
pad(Poly, [poly(0, N)|Poly1]) :-
    highest_power(Poly, M),
    M < 2,
    N is M + 1,
    pad(Poly, Poly1).

pad_next(0, _, []).
pad_next(N, Poly, Poly1) :-
    N > 0,
    N1 is N - 1,
    pad_degree(N1, Poly, Poly1).

pad_degree(N, [poly(C, N)|Poly], [poly(C, N)|Poly1]) :-
    pad_next(N, Poly, Poly1).
pad_degree(N, Poly, [poly(0, N)|Poly1]) :-
    lower_power(Poly, N),
    pad_next(N, Poly, Poly1).

lower_power([], _).
lower_power([poly(_, M)|_], N) :- M < N.

highest_power([poly(_, N)|_], N).
highest_power([], 0).

% -- homogenization ------------------------------------------------------

offenders(Equation, X, Offenders) :-
    parse_terms(Equation, X, [], Offenders).

parse_terms(A = B, X, Acc, Offenders) :-
    parse_terms(A, X, Acc, Acc1),
    parse_terms(B, X, Acc1, Offenders).
parse_terms(A + B, X, Acc, Offenders) :-
    parse_terms(A, X, Acc, Acc1),
    parse_terms(B, X, Acc1, Offenders).
parse_terms(A - B, X, Acc, Offenders) :-
    parse_terms(A, X, Acc, Acc1),
    parse_terms(B, X, Acc1, Offenders).
parse_terms(A * B, X, Acc, Offenders) :-
    parse_terms(A, X, Acc, Acc1),
    parse_terms(B, X, Acc1, Offenders).
parse_terms(Term, X, Acc, [Term|Acc]) :-
    hard_term(Term, X).
parse_terms(Term, X, Acc, Acc) :-
    free_of(X, Term).
parse_terms(X, X, Acc, Acc).

hard_term(exp(U), X) :- subterm(X, U).
hard_term(log(U), X) :- subterm(X, U).
hard_term(sin(U), X) :- subterm(X, U).
hard_term(cos(U), X) :- subterm(X, U).
hard_term(U ^ N, X) :- subterm(X, U), \+ number_term(N).

multiple([_, _|_]).

homogenize(Equation, X, Offenders, Equation1, X1) :-
    reduced_term(X, Offenders, Type, X1),
    rewrite_all(Offenders, Type, X1, Substitutions),
    substitute(Equation, Substitutions, Equation1).

reduced_term(X, Offenders, Type, X1) :-
    classify(Offenders, X, Type),
    candidate(Type, Offenders, X, X1).

classify(Offenders, X, exponential) :-
    exponential_offenders(Offenders, X).
classify(Offenders, X, logarithmic) :-
    log_offenders(Offenders, X).

exponential_offenders([], _).
exponential_offenders([exp(U)|Offs], X) :-
    subterm(X, U),
    exponential_offenders(Offs, X).

log_offenders([], _).
log_offenders([log(U)|Offs], X) :-
    subterm(X, U),
    log_offenders(Offs, X).

candidate(exponential, _Offenders, X, exp(X)).
candidate(logarithmic, _Offenders, X, log(X)).

rewrite_all([], _, _, []).
rewrite_all([Off|Offs], Type, X1, [sub(Off, New)|Subs]) :-
    homog_axiom(Type, Off, X1, New),
    rewrite_all(Offs, Type, X1, Subs).

homog_axiom(exponential, exp(A + B), exp(X), exp(A) * exp(B)) :-
    subterm(X, A + B).
homog_axiom(exponential, exp(U), exp(X), exp(X)) :- U == X.
homog_axiom(exponential, exp(C * U), exp(X), exp(U) ^ C) :-
    free_of(U, C).
homog_axiom(logarithmic, log(U), log(X), log(X)) :- U == X.
homog_axiom(logarithmic, log(U * V), log(X), log(U) + log(V)) :-
    subterm(X, U * V).

substitute(Term, [], Term).
substitute(Term, [sub(Old, New)|Subs], Term1) :-
    replace(Term, Old, New, Term2),
    substitute(Term2, Subs, Term1).

replace(Term, Term, New, New).
replace(A = B, Old, New, A1 = B1) :-
    replace(A, Old, New, A1),
    replace(B, Old, New, B1).
replace(A + B, Old, New, A1 + B1) :-
    replace(A, Old, New, A1),
    replace(B, Old, New, B1).
replace(A - B, Old, New, A1 - B1) :-
    replace(A, Old, New, A1),
    replace(B, Old, New, B1).
replace(A * B, Old, New, A1 * B1) :-
    replace(A, Old, New, A1),
    replace(B, Old, New, B1).
replace(Term, Old, Term, Old) :- Term \== Old.
replace(Term, Old, New, Term) :-
    atomic_term(Term),
    Term \== Old,
    New \== Term.

% -- term utilities -------------------------------------------------------

subterm(Term, Term).
subterm(Sub, Term) :-
    compound_term(Term),
    decompose(Term, Args),
    subterm_list(Sub, Args).

subterm_list(Sub, [Arg|_]) :- subterm(Sub, Arg).
subterm_list(Sub, [_|Args]) :- subterm_list(Sub, Args).

free_of(X, Term) :- \+ subterm(X, Term).

decompose(A + B, [A, B]).
decompose(A - B, [A, B]).
decompose(A * B, [A, B]).
decompose(A / B, [A, B]).
decompose(A ^ B, [A, B]).
decompose(A = B, [A, B]).
decompose(exp(A), [A]).
decompose(log(A), [A]).
decompose(sin(A), [A]).
decompose(cos(A), [A]).
decompose(sqrt(A), [A]).
decompose(arcsin(A), [A]).
decompose(arccos(A), [A]).

compound_term(Term) :- \+ atomic_term(Term).

atomic_term(Term) :- atomic(Term).

number_term(Term) :- integer(Term).

test1(S) :- solve_equation(x * (x - 3) = 0, x, S).
test2(S) :- solve_equation(x * x - 3 * x + 2 = 0, x, S).
test3(S) :- solve_equation(cos(x) * (1 - 2 * sin(x)) = 0, x, S).
"""
