"""QU — the n-queens program (§9).

The classic permutation-and-test formulation; Table 1 reports 5
procedures and 9 clauses, which this version matches exactly.
"""

NAME = "QU"
QUERY = ("queens", 2)

SOURCE = r"""
queens(X, Y) :- perm(X, Y), safe(Y).

perm([], []).
perm([X|Y], [V|Res]) :- delete(V, [X|Y], Rest), perm(Rest, Res).

delete(X, [X|Y], Y).
delete(X, [F|T], [F|R]) :- delete(X, T, R).

safe([]).
safe([X|Y]) :- noattack(X, Y, 1), safe(Y).

noattack(X, [], N).
noattack(X, [F|T], N) :-
    X =\= F,
    X =\= F + N,
    F =\= X + N,
    N1 is N + 1,
    noattack(X, T, N1).
"""
