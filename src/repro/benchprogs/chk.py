"""CHK — the annotated verification workload behind ``repro check``.

A small list-processing program carrying its own ``assert_pattern`` /
``assert_calls`` directives.  Three hold; ``assert_pattern(tag/1,
[int])`` is deliberately violated — ``tag/1`` produces the atom
``oops`` — so the checker, the ``check``/``slice`` server ops, and the
CI self-lint all have a stable violation whose blame slice must name
clause 0 of ``tag/1`` and its call site in ``main/2``.

Registered in ``BENCHMARKS`` only, *not* in ``benchmark_names()``:
the Table 3 corpus (and its pinned fingerprints) stays untouched.
"""

NAME = "CHK"
QUERY = ("main", 2)
INPUT_TYPES = ("list", "any")

SOURCE = r"""
:- assert_pattern(app/3, [list, list, list]).
:- assert_pattern(len/2, [any, int]).
:- assert_pattern(tag/1, [int]).
:- assert_calls(len/2, [list, any]).

main(Xs, N) :-
    app(Xs, Xs, Ys),
    len(Ys, N),
    tag(T),
    use(T).

app([], L, L).
app([X|Xs], L, [X|Ys]) :- app(Xs, L, Ys).

len([], 0).
len([_|Xs], N) :- len(Xs, M), N is M + 1.

tag(oops).

use(_).
"""
