"""RE — the Prolog tokenizer and reader of O'Keefe and Warren (§9).

Character codes in, term out: ``read_tokens`` tokenizes a code list
(with the accumulator-in-the-middle style the paper highlights), and
``parse_tokens`` is the operator-precedence reader.  The paper calls
RE "a worst case scenario for our analyzer": heavily mutually
recursive with an abundance of functors (token and operator shapes).
Table 1 reports 42 procedures and 163 clauses.
"""

NAME = "RE"
QUERY = ("read_term_codes", 2)
LIST_QUERY_TYPES = ["codes", "any"]

SOURCE = r"""
read_term_codes(Codes, Term) :-
    read_tokens(Codes, Tokens),
    parse_tokens(Tokens, Term).

% ===================== tokenizer =====================

read_tokens(Codes, Tokens) :- tokens(Codes, [], RevTokens),
    reverse_tokens(RevTokens, [], Tokens).

reverse_tokens([], Acc, Acc).
reverse_tokens([T|Ts], Acc, Out) :- reverse_tokens(Ts, [T|Acc], Out).

tokens([], Acc, Acc).
tokens([C|Cs], Acc, Tokens) :-
    layout_char(C),
    tokens(Cs, Acc, Tokens).
tokens([C|Cs], Acc, Tokens) :-
    comment_start(C),
    skip_comment(Cs, Cs1),
    tokens(Cs1, Acc, Tokens).
tokens([C|Cs], Acc, Tokens) :-
    digit_char(C),
    scan_number(Cs, C, Cs1, Token),
    tokens(Cs1, [Token|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    lower_char(C),
    scan_name(Cs, [C], Cs1, Name),
    tokens(Cs1, [atom(Name)|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    upper_char(C),
    scan_name(Cs, [C], Cs1, Name),
    tokens(Cs1, [var(Name, Name)|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    underscore(C),
    scan_name(Cs, [C], Cs1, Name),
    tokens(Cs1, [var(anon, Name)|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    quote_char(C),
    scan_quoted(Cs, C, [], Cs1, Name),
    tokens(Cs1, [atom(Name)|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    string_quote(C),
    scan_quoted(Cs, C, [], Cs1, Chars),
    tokens(Cs1, [string(Chars)|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    solo_char(C, Token),
    tokens(Cs, [Token|Acc], Tokens).
tokens([C|Cs], Acc, Tokens) :-
    symbol_char(C),
    scan_symbol(Cs, [C], Cs1, Name),
    symbol_token(Name, Cs1, Token, Cs2),
    tokens(Cs2, [Token|Acc], Tokens).

skip_comment([], []).
skip_comment([C|Cs], Cs) :- newline_char(C).
skip_comment([C|Cs], Out) :- \+ newline_char(C), skip_comment(Cs, Out).

scan_number([C|Cs], C0, Cs1, Token) :-
    digit_char(C),
    scan_digits([C|Cs], [C0], Cs1, Digits),
    make_int(Digits, Token).
scan_number(Cs, C0, Cs, int([C0])).

scan_digits([C|Cs], Acc, Cs1, Digits) :-
    digit_char(C),
    scan_digits(Cs, [C|Acc], Cs1, Digits).
scan_digits(Cs, Acc, Cs, Digits) :-
    reverse_tokens(Acc, [], Digits).
scan_digits([], Acc, [], Digits) :-
    reverse_tokens(Acc, [], Digits).

make_int(Digits, int(Digits)).

scan_name([C|Cs], Acc, Cs1, Name) :-
    alpha_char(C),
    scan_name(Cs, [C|Acc], Cs1, Name).
scan_name(Cs, Acc, Cs, Name) :-
    end_of_name(Cs),
    reverse_tokens(Acc, [], Name).

end_of_name([]).
end_of_name([C|_]) :- \+ alpha_char(C).

scan_quoted([C|Cs], Q, Acc, Cs1, Name) :-
    C =\= Q,
    scan_quoted(Cs, Q, [C|Acc], Cs1, Name).
scan_quoted([Q, Q|Cs], Q, Acc, Cs1, Name) :-
    scan_quoted(Cs, Q, [Q|Acc], Cs1, Name).
scan_quoted([Q|Cs], Q, Acc, Cs, Name) :-
    end_quote(Cs, Q),
    reverse_tokens(Acc, [], Name).

end_quote([], _).
end_quote([C|_], Q) :- C =\= Q.

scan_symbol([C|Cs], Acc, Cs1, Name) :-
    symbol_char(C),
    scan_symbol(Cs, [C|Acc], Cs1, Name).
scan_symbol(Cs, Acc, Cs, Name) :-
    end_of_symbol(Cs),
    reverse_tokens(Acc, [], Name).

end_of_symbol([]).
end_of_symbol([C|_]) :- \+ symbol_char(C).

symbol_token([0'.], Cs, end_token, Cs) :- end_of_clause(Cs).
symbol_token(Name, Cs, atom(Name), Cs) :- \+ lone_dot(Name, Cs).

lone_dot([0'.], Cs) :- end_of_clause(Cs).

end_of_clause([]).
end_of_clause([C|_]) :- layout_char(C).

% character classes

layout_char(0' ).
layout_char(10).
layout_char(9).
layout_char(13).

newline_char(10).

comment_start(0'%).

digit_char(C) :- C >= 0'0, C =< 0'9.

lower_char(C) :- C >= 0'a, C =< 0'z.

upper_char(C) :- C >= 0'A, C =< 0'Z.

underscore(0'_).

alpha_char(C) :- lower_char(C).
alpha_char(C) :- upper_char(C).
alpha_char(C) :- digit_char(C).
alpha_char(C) :- underscore(C).

quote_char(39).

string_quote(34).

solo_char(0'(, punct(lparen)).
solo_char(0'), punct(rparen)).
solo_char(0'[, punct(lbracket)).
solo_char(0'], punct(rbracket)).
solo_char(0'{, punct(lbrace)).
solo_char(0'}, punct(rbrace)).
solo_char(0',, punct(comma)).
solo_char(0'|, punct(bar)).
solo_char(0'!, atom([0'!])).
solo_char(0';, atom([0';])).

symbol_char(0'+). symbol_char(0'-). symbol_char(0'*). symbol_char(0'/).
symbol_char(0'\\). symbol_char(0'^). symbol_char(0'<). symbol_char(0'>).
symbol_char(0'=). symbol_char(0'~). symbol_char(0':). symbol_char(0'.).
symbol_char(0'?). symbol_char(0'@). symbol_char(0'#). symbol_char(0'&).

% ===================== reader =====================

parse_tokens(Tokens, Term) :-
    parse(Tokens, 1200, Term, Rest),
    all_read(Rest).

all_read([]).
all_read([end_token]).

parse([Token|Tokens], Prec, Term, Rest) :-
    primary(Token, Tokens, Prec, Left, LeftPrec, Tokens1),
    operators(Tokens1, Left, LeftPrec, Prec, Term, Rest).

primary(int(Digits), Tokens, _, integer(Digits), 0, Tokens).
primary(var(Flag, Name), Tokens, _, variable(Flag, Name), 0, Tokens).
primary(string(Chars), Tokens, _, string_term(Chars), 0, Tokens).
primary(punct(lparen), Tokens, _, Term, 0, Rest) :-
    parse(Tokens, 1200, Term, [punct(rparen)|Rest]).
primary(punct(lbrace), [punct(rbrace)|Tokens], _, atom_term([0'{, 0'}]),
        0, Tokens).
primary(punct(lbrace), Tokens, _, brace_term(Term), 0, Rest) :-
    parse(Tokens, 1200, Term, [punct(rbrace)|Rest]).
primary(punct(lbracket), [punct(rbracket)|Tokens], _, nil_term, 0,
        Tokens).
primary(punct(lbracket), Tokens, _, ListTerm, 0, Rest) :-
    parse_list(Tokens, ListTerm, Rest).
primary(atom(Name), [punct(lparen)|Tokens], _, structure(Name, Args), 0,
        Rest) :-
    parse_arguments(Tokens, Args, Rest).
primary(atom(Name), Tokens, Prec, Term, OpPrec, Rest) :-
    prefix_op(Name, OpPrec, ArgPrec),
    OpPrec =< Prec,
    starts_term(Tokens),
    parse(Tokens, ArgPrec, Arg, Rest),
    Term = structure(Name, [Arg]).
primary(atom(Name), Tokens, _, atom_term(Name), 0, Tokens).

starts_term([int(_)|_]).
starts_term([var(_, _)|_]).
starts_term([string(_)|_]).
starts_term([atom(_)|_]).
starts_term([punct(lparen)|_]).
starts_term([punct(lbracket)|_]).
starts_term([punct(lbrace)|_]).

operators([atom(Name)|Tokens], Left, LeftPrec, Prec, Term, Rest) :-
    infix_op(Name, OpPrec, LMax, RMax),
    OpPrec =< Prec,
    LeftPrec =< LMax,
    parse(Tokens, RMax, Right, Tokens1),
    operators(Tokens1, structure(Name, [Left, Right]), OpPrec, Prec,
              Term, Rest).
operators([punct(comma)|Tokens], Left, LeftPrec, Prec, Term, Rest) :-
    1000 =< Prec,
    LeftPrec < 1000,
    parse(Tokens, 1000, Right, Tokens1),
    operators(Tokens1, structure([0',], [Left, Right]), 1000, Prec,
              Term, Rest).
operators(Tokens, Term, _, _, Term, Tokens).

parse_arguments(Tokens, [Arg|Args], Rest) :-
    parse(Tokens, 999, Arg, Tokens1),
    parse_more_arguments(Tokens1, Args, Rest).

parse_more_arguments([punct(comma)|Tokens], [Arg|Args], Rest) :-
    parse(Tokens, 999, Arg, Tokens1),
    parse_more_arguments(Tokens1, Args, Rest).
parse_more_arguments([punct(rparen)|Tokens], [], Tokens).

parse_list(Tokens, list_term(Head, Tail), Rest) :-
    parse(Tokens, 999, Head, Tokens1),
    parse_list_tail(Tokens1, Tail, Rest).

parse_list_tail([punct(comma)|Tokens], list_term(Head, Tail), Rest) :-
    parse(Tokens, 999, Head, Tokens1),
    parse_list_tail(Tokens1, Tail, Rest).
parse_list_tail([punct(bar)|Tokens], Tail, Rest) :-
    parse(Tokens, 999, Tail, [punct(rbracket)|Rest]).
parse_list_tail([punct(rbracket)|Tokens], nil_term, Tokens).

% operator table

prefix_op([0':, 0'-], 1200, 1199).
prefix_op([0'?, 0'-], 1200, 1199).
prefix_op([0'\\, 0'+], 900, 900).
prefix_op([0'-], 200, 200).
prefix_op([0'+], 200, 200).

infix_op([0':, 0'-], 1200, 1199, 1199).
infix_op([0'-, 0'-, 0'>], 1200, 1199, 1199).
infix_op([0';], 1100, 1099, 1100).
infix_op([0'-, 0'>], 1050, 1049, 1050).
infix_op([0'=], 700, 699, 699).
infix_op([0'\\, 0'=], 700, 699, 699).
infix_op([0'=, 0'=], 700, 699, 699).
infix_op([0'\\, 0'=, 0'=], 700, 699, 699).
infix_op([0'=, 0'., 0'.], 700, 699, 699).
infix_op([0'i, 0's], 700, 699, 699).
infix_op([0'<], 700, 699, 699).
infix_op([0'>], 700, 699, 699).
infix_op([0'=, 0'<], 700, 699, 699).
infix_op([0'>, 0'=], 700, 699, 699).
infix_op([0'+], 500, 500, 499).
infix_op([0'-], 500, 500, 499).
infix_op([0'*], 400, 400, 399).
infix_op([0'/], 400, 400, 399).
infix_op([0'^], 200, 199, 200).

% convenience: tokenize-and-count for driving the analysis

count_tokens(Codes, N) :-
    read_tokens(Codes, Tokens),
    count(Tokens, 0, N).

count([], N, N).
count([_|Ts], Acc, N) :- Acc1 is Acc + 1, count(Ts, Acc1, N).
"""
