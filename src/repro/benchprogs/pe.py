"""PE — the peephole optimizer of SB-Prolog, by Debray (§9).

A window-rewriting driver over WAM-style instruction lists plus the
big per-opcode dispatch tables that give the original its
characteristic shape: few procedures (19 in Table 1) but many clauses
(168), with large disjunctions — the paper singles PE out for its
"large disjunctions".
"""

NAME = "PE"
QUERY = ("peephole_opt", 2)
LIST_QUERY_TYPES = ["list", "any"]

SOURCE = r"""
peephole_opt(Instrs, Opt) :-
    peep_pass(Instrs, Instrs1, Changed),
    continue_peep(Changed, Instrs1, Opt).

continue_peep(no, Instrs, Instrs).
continue_peep(yes, Instrs, Opt) :- peephole_opt(Instrs, Opt).

peep_pass([], [], no).
peep_pass(Instrs, Opt, yes) :-
    rewrite(Instrs, Instrs1),
    peep_pass(Instrs1, Opt, _).
peep_pass([I|Rest], [I|Opt], Changed) :-
    no_rewrite([I|Rest]),
    peep_pass(Rest, Opt, Changed).

no_rewrite(Instrs) :- \+ rewrite(Instrs, _).

% -- rewriting rules (window patterns) -------------------------------

rewrite([movreg(R, R)|Rest], Rest).
rewrite([movreg(R1, R2), movreg(R2, R1)|Rest], [movreg(R1, R2)|Rest]).
rewrite([movreg(R1, R2), movreg(R1, R3)|Rest],
        [movreg(R1, R2), movreg(R2, R3)|Rest]) :- R2 \== R3.
rewrite([puttbreg(T), gettbreg(T)|Rest], [puttbreg(T)|Rest]).
rewrite([gettbreg(T), puttbreg(T)|Rest], [gettbreg(T)|Rest]).
rewrite([putpvar(V, R), getpvar(V, R)|Rest], [putpvar(V, R)|Rest]).
rewrite([putpvar(V, R), getpval(V, R)|Rest], [putpvar(V, R)|Rest]).
rewrite([getpvar(V, R), putpval(V, R)|Rest], [getpvar(V, R)|Rest]).
rewrite([getpvar(V, R1), putpval(V, R2)|Rest],
        [getpvar(V, R1), movreg(R1, R2)|Rest]) :- R1 \== R2.
rewrite([jump(L), label(L)|Rest], [label(L)|Rest]).
rewrite([jump(_), jump(L)|Rest], [jump(L)|Rest]).
rewrite([jump(L1), label(L2)|Rest], [jump(L1), label(L2)|Rest1]) :-
    L1 \== L2,
    strip_to_label(Rest, Rest1).
rewrite([jumpz(_, L), label(L)|Rest], [label(L)|Rest]).
rewrite([jumpnz(_, L), label(L)|Rest], [label(L)|Rest]).
rewrite([addreg(R, Z)|Rest], Rest) :- zero_reg(Z), R == Z.
rewrite([pushreg(R), popreg(R)|Rest], Rest).
rewrite([popreg(R), pushreg(R)|Rest], Rest).
rewrite([puttvar(V, R), gettval(V, R)|Rest], [puttvar(V, R)|Rest]).
rewrite([getcon(C, R), putcon(C, R)|Rest], [getcon(C, R)|Rest]).
rewrite([putcon(C, R), getcon(C, R)|Rest], [putcon(C, R)|Rest]).
rewrite([getnil(R), putnil(R)|Rest], [getnil(R)|Rest]).
rewrite([putnil(R), getnil(R)|Rest], [putnil(R)|Rest]).
rewrite([allocate(0)|Rest], Rest).
rewrite([deallocate, allocate(N)|Rest], Rest1) :-
    N =:= 0,
    Rest1 = Rest.
rewrite([label(L), label(L)|Rest], [label(L)|Rest]).
rewrite([nop|Rest], Rest).
rewrite([execute(P), deallocate|Rest], [deallocate, execute(P)|Rest]).

strip_to_label([], []).
strip_to_label([label(L)|Rest], [label(L)|Rest]).
strip_to_label([I|Rest], Out) :-
    not_label(I),
    strip_to_label(Rest, Out).

not_label(I) :- \+ is_label(I).

is_label(label(_)).

zero_reg(r(0)).

% -- per-opcode dispatch tables --------------------------------------

instr(movreg(_, _)).
instr(puttbreg(_)).
instr(gettbreg(_)).
instr(putpvar(_, _)).
instr(getpvar(_, _)).
instr(putpval(_, _)).
instr(getpval(_, _)).
instr(puttvar(_, _)).
instr(gettval(_, _)).
instr(putcon(_, _)).
instr(getcon(_, _)).
instr(putnil(_)).
instr(getnil(_)).
instr(putstr(_, _)).
instr(getstr(_, _)).
instr(putlist(_)).
instr(getlist(_)).
instr(unipvar(_)).
instr(unipval(_)).
instr(unitvar(_)).
instr(unitval(_)).
instr(unicon(_)).
instr(uninil).
instr(bldpvar(_)).
instr(bldpval(_)).
instr(bldtvar(_)).
instr(bldtval(_)).
instr(bldcon(_)).
instr(bldnil).
instr(addreg(_, _)).
instr(subreg(_, _)).
instr(mulreg(_, _)).
instr(divreg(_, _)).
instr(pushreg(_)).
instr(popreg(_)).
instr(jump(_)).
instr(jumpz(_, _)).
instr(jumpnz(_, _)).
instr(jumplt(_, _)).
instr(jumple(_, _)).
instr(jumpgt(_, _)).
instr(jumpge(_, _)).
instr(label(_)).
instr(call(_, _)).
instr(execute(_)).
instr(proceed).
instr(allocate(_)).
instr(deallocate).
instr(fail).
instr(trymeelse(_)).
instr(retrymeelse(_)).
instr(trustmeelsefail).
instr(switchonterm(_, _, _)).
instr(switchonconstant(_, _)).
instr(switchonstructure(_, _)).
instr(nop).

uses(movreg(R, _), R).
uses(gettbreg(R), R).
uses(putpval(_, R), R).
uses(getpval(_, R), R).
uses(gettval(_, R), R).
uses(getcon(_, R), R).
uses(getnil(R), R).
uses(getstr(_, R), R).
uses(getlist(R), R).
uses(unipval(R), R).
uses(unitval(R), R).
uses(bldpval(R), R).
uses(bldtval(R), R).
uses(addreg(R, _), R).
uses(subreg(R, _), R).
uses(mulreg(R, _), R).
uses(divreg(R, _), R).
uses(pushreg(R), R).
uses(jumpz(R, _), R).
uses(jumpnz(R, _), R).
uses(jumplt(R, _), R).
uses(jumple(R, _), R).
uses(jumpgt(R, _), R).
uses(jumpge(R, _), R).
uses(switchonterm(R, _, _), R).

sets(movreg(_, R), R).
sets(puttbreg(R), R).
sets(putpvar(_, R), R).
sets(getpvar(_, R), R).
sets(puttvar(_, R), R).
sets(putcon(_, R), R).
sets(putnil(R), R).
sets(putstr(_, R), R).
sets(putlist(R), R).
sets(unipvar(R), R).
sets(unitvar(R), R).
sets(bldpvar(R), R).
sets(bldtvar(R), R).
sets(addreg(_, R), R).
sets(subreg(_, R), R).
sets(mulreg(_, R), R).
sets(divreg(_, R), R).
sets(popreg(R), R).

transfer(jump(L), L).
transfer(jumpz(_, L), L).
transfer(jumpnz(_, L), L).
transfer(jumplt(_, L), L).
transfer(jumple(_, L), L).
transfer(jumpgt(_, L), L).
transfer(jumpge(_, L), L).
transfer(trymeelse(L), L).
transfer(retrymeelse(L), L).

ends_block(jump(_)).
ends_block(execute(_)).
ends_block(proceed).
ends_block(fail).
ends_block(trustmeelsefail).

% -- dead code elimination -------------------------------------------

dead_code([], []).
dead_code([I|Rest], [I|Out]) :-
    ends_block(I),
    skip_dead(Rest, Rest1),
    dead_code(Rest1, Out).
dead_code([I|Rest], [I|Out]) :-
    \+ ends_block(I),
    dead_code(Rest, Out).

skip_dead([], []).
skip_dead([label(L)|Rest], [label(L)|Rest]).
skip_dead([I|Rest], Out) :-
    not_label(I),
    skip_dead(Rest, Out).

% -- label collection / reference counting ----------------------------

labels_used([], []).
labels_used([I|Rest], [L|Out]) :-
    transfer(I, L),
    labels_used(Rest, Out).
labels_used([I|Rest], Out) :-
    \+ transfer(I, _),
    labels_used(Rest, Out).

remove_unused_labels(Instrs, Out) :-
    labels_used(Instrs, Used),
    filter_labels(Instrs, Used, Out).

filter_labels([], _, []).
filter_labels([label(L)|Rest], Used, Out) :-
    \+ member_lbl(L, Used),
    filter_labels(Rest, Used, Out).
filter_labels([label(L)|Rest], Used, [label(L)|Out]) :-
    member_lbl(L, Used),
    filter_labels(Rest, Used, Out).
filter_labels([I|Rest], Used, [I|Out]) :-
    not_label(I),
    filter_labels(Rest, Used, Out).

member_lbl(X, [X|_]).
member_lbl(X, [Y|T]) :- X \== Y, member_lbl(X, T).

% -- full pipeline ----------------------------------------------------

optimize(Instrs, Out) :-
    peephole_opt(Instrs, I1),
    dead_code(I1, I2),
    remove_unused_labels(I2, Out).

sample([getpvar(v(1), r(1)),
        putpval(v(1), r(2)),
        movreg(r(2), r(2)),
        jump(l(1)),
        addreg(r(3), r(4)),
        label(l(1)),
        puttbreg(r(5)),
        gettbreg(r(5)),
        proceed]).

test(Out) :- sample(Instrs), optimize(Instrs, Out).
"""
