"""AR and AR1 — the arithmetic-expression programs of Figures 2 and 3,
verbatim from the paper."""

NAME = "AR"
QUERY = ("add", 2)

SOURCE = r"""
add(0, []).
add(X + Y, Res) :- add(X, Res1), mult(Y, Res2), append(Res1, Res2, Res).

mult(1, []).
mult(X * Y, Res) :- mult(X, Res1), basic(Y, Res2), append(Res1, Res2, Res).

basic(var(X), [X]).
basic(cst(C), []).
basic(par(X), Res) :- add(X, Res).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""

AR1_NAME = "AR1"
AR1_QUERY = ("add", 2)

AR1_SOURCE = r"""
add(X, Res) :- mult(X, Res).
add(X + Y, Res) :- add(X, R1), mult(Y, R2), append(R1, R2, Res).

mult(X, Res) :- basic(X, Res).
mult(X * Y, Res) :- mult(X, R1), basic(Y, R2), append(R1, R2, Res).

basic(var(X), [X]).
basic(cst(X), []).
basic(par(X), Res) :- add(X, Res).

append([], X, X).
append([F|T], S, [F|R]) :- append(T, S, R).
"""
