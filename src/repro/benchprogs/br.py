"""BR — browse, from the Gabriel benchmark suite (§9).

Builds a small database of structured facts and repeatedly pattern-
matches property patterns against it; Table 1 reports 20 procedures
and 45 clauses.
"""

NAME = "BR"
QUERY = ("browse", 1)

SOURCE = r"""
browse(R) :-
    init(30, 10, 4, [dummy(a), dummy(b), dummy(c)], Symbols),
    randomize(Symbols, RSymbols, 21),
    patterns(Patterns),
    investigate(RSymbols, Patterns, 0, R).

init(N, M, Npats, Ipats, Result) :-
    init(N, M, M, Npats, Ipats, Result).

init(0, _, _, _, _, []).
init(N, I, M, Npats, Ipats, [Sym|Rest]) :-
    N > 0,
    fill(I, [], L0),
    get_pats(Npats, Ipats, Ppats),
    J is M - I,
    fill(J, [pattern(Ppats)|L0], L1),
    properties(L1, Sym),
    N1 is N - 1,
    decr_wrap(I, M, I1),
    init(N1, I1, M, Npats, Ipats, Rest).

decr_wrap(0, M, M).
decr_wrap(I, _, I1) :- I > 0, I1 is I - 1.

fill(0, L, L).
fill(N, L, [dummy([])|Rest]) :- N > 0, N1 is N - 1, fill(N1, L, Rest).

get_pats(Npats, Ipats, Result) :- get_pats(Npats, Ipats, Result, Ipats).

get_pats(0, _, [], _).
get_pats(N, [X|Xs], [X|Ys], Ipats) :-
    N > 0,
    N1 is N - 1,
    get_pats(N1, Xs, Ys, Ipats).
get_pats(N, [], Ys, Ipats) :-
    N > 0,
    get_pats(N, Ipats, Ys, Ipats).

properties(L, properties(L)).

randomize([], [], _).
randomize(In, [X|Out], Rand) :-
    length(In, Lin),
    Rand1 is Rand * 17,
    N is Rand1 mod Lin,
    split(N, In, X, In1),
    randomize(In1, Out, Rand1).

split(0, [X|Xs], X, Xs).
split(N, [X|Xs], RemovedElt, [X|Ys]) :-
    N > 0,
    N1 is N - 1,
    split(N1, Xs, RemovedElt, Ys).

patterns([pattern([a(I), b(I), c(J)]),
          pattern([a(I), b(J), c(J)]),
          pattern([dummy(a)]),
          pattern([dummy(b)])]).

investigate([], _, Acc, Acc).
investigate([U|Units], Patterns, Acc, R) :-
    property(U, pattern, Data),
    match_patterns(Data, Patterns, Acc, Acc1),
    investigate(Units, Patterns, Acc1, R).

property(properties([Prop|_]), P, Data) :-
    functor_is(Prop, P, Data).
property(properties([_|RProps]), P, Data) :-
    property(properties(RProps), P, Data).

functor_is(pattern(Data), pattern, Data).

match_patterns(_, [], Acc, Acc).
match_patterns(Data, [pattern(P)|Rest], Acc, R) :-
    try_match(Data, P, Acc, Acc1),
    match_patterns(Data, Rest, Acc1, R).

try_match(Data, P, Acc, Acc1) :-
    match(Data, P),
    Acc1 is Acc + 1.
try_match(Data, P, Acc, Acc) :-
    no_match(Data, P).

match([], []).
match([X|Xs], [Y|Ys]) :- item_match(X, Y), match(Xs, Ys).

item_match(dummy(A), dummy(A)).
item_match(a(N), a(N)).
item_match(b(N), b(N)).
item_match(c(N), c(N)).
item_match(pattern(L), pattern(L)).

no_match([], [_|_]).
no_match([_|_], []).
no_match([X|_], [Y|_]) :- item_differs(X, Y).
no_match([X|Xs], [Y|Ys]) :- item_match(X, Y), no_match(Xs, Ys).

item_differs(X, Y) :- X \== Y.
"""
