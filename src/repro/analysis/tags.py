"""Tag extraction (paper §9, Tables 4–5).

For each procedure argument of the single-version (collapsed)
input/output pattern, extract the tag a compiler would use for indexing
and unification specialization:

* ``NI`` — surely the empty list;
* ``CO`` — surely a cons cell;
* ``LI`` — surely a proper list (nil or cons of a list);
* ``ST`` — surely a (non-list) structure;
* ``DI`` — surely an atomic constant (atom or integer);
* ``HY`` — surely a structure or an atomic constant (i.e. nonvar);
* ``None`` — nothing definite (the type includes Any).

The same extraction runs on both ``Pat(Type)`` and the
principal-functor baseline, which is what columns A/AI/AR compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..domains.leaf import LeafDomain, TypeLeafDomain
from ..domains.pattern import AbstractSubst, PAT_BOTTOM, value_of
from ..prolog.program import PredId
from ..typegraph.grammar import ANY, FuncAlt, Grammar, g_any, g_atom
from ..typegraph.ops import g_le, g_list_of

__all__ = ["TAGS", "tag_of_grammar", "tags_of_subst", "TagComparison",
           "compare_tags"]

TAGS = ("NI", "CO", "LI", "ST", "DI", "HY")

_LIST_ANY = g_list_of(g_any())
_NIL_ONLY = g_atom("[]")


def tag_of_grammar(grammar: Grammar) -> Optional[str]:
    """Most specific tag of a type grammar, or None."""
    if grammar.is_bottom():
        return None
    alts = grammar.root_alts
    if ANY in alts:
        return None
    if g_le(grammar, _NIL_ONLY):
        return "NI"
    only_cons = all(isinstance(a, FuncAlt) and a.fkey == ("f", ".", 2)
                    for a in alts)
    if only_cons:
        return "CO"
    if g_le(grammar, _LIST_ANY):
        return "LI"
    has_struct = False
    has_const = False
    for alt in alts:
        if alt is ANY:
            return None
        if isinstance(alt, FuncAlt) and alt.args:
            has_struct = True
        else:  # INT, integer literal, or atom
            has_const = True
    if has_struct and not has_const:
        return "ST"
    if has_const and not has_struct:
        return "DI"
    return "HY"


def tags_of_subst(subst, domain: LeafDomain) -> List[Optional[str]]:
    """Tag of each argument position of an abstract substitution.

    For the principal-functor baseline the only information is the
    pattern component, so a leaf yields no tag; sure functors yield the
    same tag the type domain would give a single-functor type.
    """
    if subst is PAT_BOTTOM:
        return []
    tags: List[Optional[str]] = []
    type_domain = isinstance(domain, TypeLeafDomain)
    for k in range(subst.nvars):
        node = subst.nodes[subst.sv[k]]
        if node.is_leaf:
            if type_domain:
                tags.append(tag_of_grammar(node.value))
            else:
                tags.append(None)
            continue
        # A sure pattern gives a tag in every domain.
        if node.fkey == ("f", ".", 2):
            tags.append("CO")
        elif node.fkey == ("f", "[]", 0):
            tags.append("NI")
        elif node.args:
            tags.append("ST")
        else:
            tags.append("DI")
    return tags


@dataclass
class TagComparison:
    """One Table 4/5 row: per-tag counts for the type analysis, the
    baseline counts in parentheses, and the improvement columns."""

    pred_tags: Dict[PredId, Tuple[List[Optional[str]],
                                  List[Optional[str]]]]

    def tag_counts(self) -> Dict[str, Tuple[int, int]]:
        """tag -> (type-analysis count, baseline count)."""
        counts = {tag: [0, 0] for tag in TAGS}
        for type_tags, base_tags in self.pred_tags.values():
            for tag in type_tags:
                if tag is not None:
                    counts[tag][0] += 1
            for tag in base_tags:
                if tag is not None:
                    counts[tag][1] += 1
        return {tag: (c[0], c[1]) for tag, c in counts.items()}

    @property
    def total_arguments(self) -> int:
        return sum(len(t) for t, _ in self.pred_tags.values())

    @property
    def improved_arguments(self) -> int:
        """Arguments where the type analysis infers strictly more tag
        information than the baseline (column AI)."""
        improved = 0
        for type_tags, base_tags in self.pred_tags.values():
            for t_tag, b_tag in zip(type_tags, base_tags):
                if t_tag is not None and b_tag is None:
                    improved += 1
        return improved

    @property
    def argument_ratio(self) -> float:
        total = self.total_arguments
        return self.improved_arguments / total if total else 0.0

    def clause_counts(self, clauses_per_pred: Dict[PredId, int]
                      ) -> Tuple[int, int, float]:
        """(C, CI, CR): clauses, clauses of improved procedures, ratio.
        A clause is improved if any argument of its procedure is."""
        total = 0
        improved = 0
        for pred, (type_tags, base_tags) in self.pred_tags.items():
            n = clauses_per_pred.get(pred, 0)
            total += n
            if any(t is not None and b is None
                   for t, b in zip(type_tags, base_tags)):
                improved += n
        ratio = improved / total if total else 0.0
        return total, improved, ratio


def compare_tags(pred_tags_type: Dict[PredId, List[Optional[str]]],
                 pred_tags_base: Dict[PredId, List[Optional[str]]]
                 ) -> TagComparison:
    """Pair up type-analysis and baseline tags per predicate."""
    merged: Dict[PredId, Tuple[List[Optional[str]],
                               List[Optional[str]]]] = {}
    for pred, type_tags in pred_tags_type.items():
        base_tags = pred_tags_base.get(pred, [None] * len(type_tags))
        merged[pred] = (type_tags, base_tags)
    return TagComparison(merged)
