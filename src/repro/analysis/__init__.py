"""Analysis layer: high-level API, program metrics, tag extraction and
report formatting."""

from .analyzer import TypeAnalysis, analyze, make_input_pattern
from .callgraph import (CallGraph, ProgramMetrics, RecursionClass,
                        build_callgraph, classify_procedures,
                        norm_scc_indices, program_metrics,
                        recursion_summary)
from .report import format_table, format_tag_row
from .tags import (TAGS, TagComparison, compare_tags, tag_of_grammar,
                   tags_of_subst)

__all__ = [
    "TypeAnalysis", "analyze", "make_input_pattern",
    "CallGraph", "ProgramMetrics", "RecursionClass", "build_callgraph",
    "classify_procedures", "norm_scc_indices", "program_metrics",
    "recursion_summary",
    "format_table", "format_tag_row",
    "TAGS", "TagComparison", "compare_tags", "tag_of_grammar",
    "tags_of_subst",
]
