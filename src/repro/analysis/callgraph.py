"""Call-graph analysis and the program metrics of Tables 1–2.

Table 1 columns: number of procedures, clauses, program points, goals,
and static call tree size.  Table 2 classifies procedures as tail
recursive, locally recursive (more than one recursive call or a
non-terminal recursive call), mutually recursive, or non-recursive.

Definitions used here (the paper does not spell all of them out; see
EXPERIMENTS.md):

* *goals* — procedure-call occurrences in clause bodies (user
  predicates and builtins, excluding ``true`` and control constructs,
  counting inside disjunction branches);
* *program points* — one point before each kernel goal of the
  normalized program plus one at each clause end;
* *static call tree size* — goal occurrences reachable from the entry
  points whose callee is not in the same strongly connected component
  as the caller (i.e. the static call graph with recursive calls
  removed, the measure of [15]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..prolog.normalize import NCall, NormProgram, normalize_program
from ..prolog.program import Clause, PredId, Program
from ..prolog.terms import Atom, Struct, Term

__all__ = ["CallGraph", "ProgramMetrics", "RecursionClass",
           "build_callgraph", "program_metrics", "classify_procedures",
           "norm_scc_indices"]

_CONTROL = {(",", 2), (";", 2), ("->", 2), ("\\+", 1), ("not", 1),
            ("true", 0)}


def _body_goals(goal: Term) -> Iterable[Term]:
    """All callable goal occurrences in a body goal, descending into
    control constructs."""
    if isinstance(goal, Struct) and (goal.name, goal.arity) in _CONTROL:
        for arg in goal.args:
            yield from _body_goals(arg)
        return
    if isinstance(goal, Atom) and goal.name == "true":
        return
    yield goal


def _goal_pred(goal: Term) -> Optional[PredId]:
    if isinstance(goal, Atom):
        return (goal.name, 0)
    if isinstance(goal, Struct):
        return (goal.name, goal.arity)
    return None  # variable goal (metacall)


@dataclass
class CallGraph:
    """Static call graph with per-clause call lists and SCCs."""

    program: Program
    edges: Dict[PredId, Set[PredId]] = field(default_factory=dict)
    clause_calls: Dict[PredId, List[List[PredId]]] = \
        field(default_factory=dict)
    sccs: List[FrozenSet[PredId]] = field(default_factory=list)
    scc_of: Dict[PredId, int] = field(default_factory=dict)

    def callees(self, pred: PredId) -> Set[PredId]:
        return self.edges.get(pred, set())

    def same_scc(self, a: PredId, b: PredId) -> bool:
        return (a in self.scc_of and b in self.scc_of
                and self.scc_of[a] == self.scc_of[b])

    def reachable_from(self, roots: Iterable[PredId]) -> Set[PredId]:
        seen: Set[PredId] = set()
        stack = [r for r in roots]
        while stack:
            pred = stack.pop()
            if pred in seen or pred not in self.edges:
                continue
            seen.add(pred)
            stack.extend(self.edges[pred])
        return seen


def build_callgraph(program: Program) -> CallGraph:
    """Build the call graph (edges restricted to defined predicates for
    SCC purposes, but ``clause_calls`` keeps builtins too)."""
    graph = CallGraph(program)
    for pred, procedure in program.procedures.items():
        graph.edges[pred] = set()
        graph.clause_calls[pred] = []
        for clause in procedure.clauses:
            calls: List[PredId] = []
            for goal in clause.body:
                for g in _body_goals(goal):
                    callee = _goal_pred(g)
                    if callee is not None:
                        calls.append(callee)
                        if program.defined(callee):
                            graph.edges[pred].add(callee)
            graph.clause_calls[pred].append(calls)
    graph.sccs = _tarjan(graph.edges)
    for index, scc in enumerate(graph.sccs):
        for pred in scc:
            graph.scc_of[pred] = index
    return graph


def _tarjan(edges: Dict[PredId, Set[PredId]]) -> List[FrozenSet[PredId]]:
    """Tarjan's SCC algorithm, iterative."""
    index_counter = [0]
    index: Dict[PredId, int] = {}
    lowlink: Dict[PredId, int] = {}
    on_stack: Set[PredId] = set()
    stack: List[PredId] = []
    result: List[FrozenSet[PredId]] = []

    def strongconnect(root: PredId) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in edges:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(frozenset(component))

    for pred in sorted(edges):
        if pred not in index:
            strongconnect(pred)
    return result


def norm_scc_indices(norm: NormProgram) -> Dict[PredId, int]:
    """SCC index of every defined predicate of a *normalized* program.

    Tarjan emits components callees-first, so a smaller index means a
    deeper (callee-most) component; the fixpoint engine's opt-in
    ``scheduler="scc"`` uses this as the worklist priority to drive
    callee SCCs to a local fixpoint before their callers resume.
    Working on the normalized form keeps the engine independent of the
    parsed :class:`~repro.prolog.program.Program` (disjunction
    expansion cannot add call edges, so the components match
    :func:`build_callgraph`'s for the same source)."""
    edges: Dict[PredId, Set[PredId]] = {}
    for pred, procedure in norm.procedures.items():
        callees = edges.setdefault(pred, set())
        for clause in procedure.clauses:
            for goal in clause.body:
                if isinstance(goal, NCall) and goal.pred in norm.procedures:
                    callees.add(goal.pred)
    return {pred: index
            for index, scc in enumerate(_tarjan(edges))
            for pred in scc}


@dataclass
class RecursionClass:
    """Table 2 classification counts."""

    tail_recursive: int = 0
    locally_recursive: int = 0
    mutually_recursive: int = 0
    non_recursive: int = 0

    def as_row(self) -> Tuple[int, int, int, int]:
        return (self.tail_recursive, self.locally_recursive,
                self.mutually_recursive, self.non_recursive)


def classify_procedures(graph: CallGraph) -> Dict[PredId, str]:
    """Classify each procedure: ``mutual`` (SCC of size > 1), ``tail``
    (every recursive call is last in its clause), ``local`` (several
    recursive calls or a non-terminal one), or ``non`` (no recursion)."""
    classes: Dict[PredId, str] = {}
    for pred in graph.program.procedures:
        scc = graph.sccs[graph.scc_of[pred]]
        if len(scc) > 1:
            classes[pred] = "mutual"
            continue
        if pred not in graph.edges[pred]:
            classes[pred] = "non"
            continue
        tail = True
        for calls in graph.clause_calls[pred]:
            recursive_positions = [i for i, callee in enumerate(calls)
                                   if callee == pred]
            if not recursive_positions:
                continue
            if len(recursive_positions) > 1 or \
                    recursive_positions[0] != len(calls) - 1:
                tail = False
                break
        classes[pred] = "tail" if tail else "local"
    return classes


def recursion_summary(graph: CallGraph) -> RecursionClass:
    summary = RecursionClass()
    for kind in classify_procedures(graph).values():
        if kind == "tail":
            summary.tail_recursive += 1
        elif kind == "local":
            summary.locally_recursive += 1
        elif kind == "mutual":
            summary.mutually_recursive += 1
        else:
            summary.non_recursive += 1
    return summary


@dataclass
class ProgramMetrics:
    """Table 1 row."""

    procedures: int
    clauses: int
    program_points: int
    goals: int
    static_call_tree: int


def program_metrics(program: Program,
                    entry_points: Optional[Iterable[PredId]] = None,
                    norm: Optional[NormProgram] = None) -> ProgramMetrics:
    """Compute the Table 1 measures.  ``entry_points`` defaults to all
    procedures (so everything is reachable)."""
    graph = build_callgraph(program)
    if norm is None:
        norm = normalize_program(program)
    goals = sum(len(calls)
                for clause_lists in graph.clause_calls.values()
                for calls in clause_lists)
    if entry_points is None:
        reachable = set(program.procedures)
    else:
        reachable = graph.reachable_from(entry_points)
    sct = 0
    for pred in reachable:
        for calls in graph.clause_calls[pred]:
            for callee in calls:
                if not program.defined(callee):
                    continue  # builtins are leaves, not tree nodes
                if graph.same_scc(pred, callee):
                    continue  # recursive edges removed
                sct += 1
    return ProgramMetrics(
        procedures=program.num_procedures,
        clauses=program.num_clauses,
        program_points=norm.num_program_points(),
        goals=goals,
        static_call_tree=sct,
    )
