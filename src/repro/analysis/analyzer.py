"""High-level analysis API.

Typical use::

    from repro import analyze
    analysis = analyze(source, ("nreverse", 2))
    print(analysis.grammar_text())          # paper-style rules
    analysis.output_tags()                  # {pred: [tag, ...]}

``analyze`` runs ``GAIA(Pat(Type))``; pass ``baseline=True`` for the
principal-functor comparison analysis of §9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..domains.leaf import LeafDomain, TrivialLeafDomain, TypeLeafDomain
from ..domains.pattern import (AbstractSubst, PAT_BOTTOM, SubstBuilder,
                               display_subst, make_builder, value_of)
from ..fixpoint.engine import AnalysisConfig, AnalysisResult, Engine
from ..prolog.normalize import NormProgram, normalize_program
from ..prolog.program import PredId, Program, parse_program
from ..typegraph.grammar import Grammar, g_any, g_int
from ..typegraph.ops import g_list_of
from .tags import tags_of_subst

__all__ = ["TypeAnalysis", "analyze", "make_input_pattern"]

_INPUT_TYPE_NAMES = {
    "any": g_any,
    "list": lambda: g_list_of(g_any()),
    "int": g_int,
    "codes": lambda: g_list_of(g_int()),
}


def make_input_pattern(domain: LeafDomain,
                       arg_types: Sequence[Union[str, Grammar]]
                       ) -> AbstractSubst:
    """An input pattern from per-argument types.  Strings name common
    types (``any``, ``list``, ``int``, ``codes``); grammars are used
    directly (ignored by the baseline domain, which has no leaf info)."""
    builder = make_builder(domain)
    nodes = []
    for spec in arg_types:
        if isinstance(spec, str):
            if spec not in _INPUT_TYPE_NAMES:
                raise ValueError(
                    "unknown input type %r (expected one of %s)"
                    % (spec, ", ".join(sorted(_INPUT_TYPE_NAMES))))
            grammar = _INPUT_TYPE_NAMES[spec]()
        else:
            grammar = spec
        if isinstance(domain, TypeLeafDomain):
            nodes.append(builder.fresh_leaf(grammar))
        else:
            nodes.append(builder.fresh_leaf())
    return builder.freeze(nodes)


@dataclass
class TypeAnalysis:
    """Everything the analysis produced, with convenience accessors."""

    program: Program
    norm: NormProgram
    query: PredId
    domain: LeafDomain
    result: AnalysisResult
    wall_time: float

    @property
    def output(self):
        return self.result.output

    @property
    def stats(self):
        return self.result.stats

    def output_grammar(self, arg: int,
                       pred: Optional[PredId] = None) -> Grammar:
        """Type grammar of one argument of the (collapsed) output
        pattern; defaults to the queried predicate."""
        if pred is None:
            subst = self.result.output
        else:
            collapsed = self.result.collapsed_for(pred)
            if collapsed is None:
                return g_any()
            subst = collapsed[1]
        if subst is PAT_BOTTOM:
            from ..typegraph.grammar import g_bottom
            return g_bottom()
        if not isinstance(self.domain, TypeLeafDomain):
            raise TypeError("grammars only exist for the Type domain")
        return value_of(subst, subst.sv[arg], self.domain, {})

    def grammar_text(self, pred: Optional[PredId] = None) -> str:
        """Paper-style display of the output pattern, one grammar per
        argument."""
        target = pred if pred is not None else self.query
        if pred is None:
            subst = self.result.output
        else:
            collapsed = self.result.collapsed_for(pred)
            subst = collapsed[1] if collapsed else PAT_BOTTOM
        lines = ["%s/%d:" % target]
        if subst is PAT_BOTTOM:
            lines.append("  <no success>")
            return "\n".join(lines)
        text = display_subst(subst, self.domain,
                             ["arg%d" % (i + 1)
                              for i in range(subst.nvars)])
        lines.extend("  " + line for line in text.splitlines())
        return "\n".join(lines)

    def analyzed_predicates(self) -> List[PredId]:
        seen: List[PredId] = []
        for entry in self.result.entries:
            if entry.pred not in seen:
                seen.append(entry.pred)
        return seen

    def _tags(self, which: str) -> Dict[PredId, List[Optional[str]]]:
        tags: Dict[PredId, List[Optional[str]]] = {}
        for pred in self.analyzed_predicates():
            collapsed = self.result.collapsed_for(pred)
            if collapsed is None:
                continue
            beta = collapsed[0] if which == "in" else collapsed[1]
            if beta is PAT_BOTTOM:
                continue
            tags[pred] = tags_of_subst(beta, self.domain)
        return tags

    def input_tags(self) -> Dict[PredId, List[Optional[str]]]:
        """Per-predicate input tags (Table 5)."""
        return self._tags("in")

    def output_tags(self) -> Dict[PredId, List[Optional[str]]]:
        """Per-predicate output tags (Table 4)."""
        return self._tags("out")

    def clauses_per_pred(self) -> Dict[PredId, int]:
        return {pred: len(proc.clauses)
                for pred, proc in self.program.procedures.items()}


def analyze(source: Union[str, Program], query: PredId,
            input_types: Optional[Sequence[Union[str, Grammar]]] = None,
            config: Optional[AnalysisConfig] = None,
            baseline: bool = False,
            domain: Optional[LeafDomain] = None,
            seeds: Optional[Sequence[Tuple[PredId, AbstractSubst,
                                           object]]] = None) -> TypeAnalysis:
    """Parse (if needed), normalize, and analyze ``source`` for
    ``query``.

    ``input_types``: per-argument input types (default all ``Any``,
    the paper's ``p(Any, ..., Any)`` patterns; the L-prefixed runs of
    §9 pass ``"list"`` for the relevant arguments).
    ``baseline=True`` switches to the principal-functor domain.
    ``seeds``: known-valid (pred, β_in, β_out) tuples pre-loaded into
    the engine table (incremental re-analysis); seeds for predicates
    the program does not define are skipped.
    """
    program = parse_program(source) if isinstance(source, str) else source
    norm = normalize_program(program)
    if config is None:
        config = AnalysisConfig()
    if domain is None:
        if baseline:
            domain = TrivialLeafDomain()
        else:
            domain = TypeLeafDomain(config.max_or_width,
                                    config.type_database)
    engine = Engine(norm, domain, config)
    if seeds:
        for seed_pred, seed_in, seed_out in seeds:
            if norm.defined(seed_pred):
                engine.seed_entry(seed_pred, seed_in, seed_out)
    beta_in = None
    if input_types is not None:
        if len(input_types) != query[1]:
            raise ValueError("input_types must match the query arity")
        beta_in = make_input_pattern(domain, input_types)
    start = time.perf_counter()
    result = engine.analyze(query, beta_in)
    wall = time.perf_counter() - start
    return TypeAnalysis(program, norm, query, domain, result, wall)
