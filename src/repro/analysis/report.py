"""ASCII formatting for the experiment harnesses and check reports.

The benchmark scripts print rows in the same layout as the paper's
tables; these helpers keep that presentation consistent.
:func:`format_check_report` renders assertion verdicts and their blame
slices as the source-anchored text the ``repro check`` CLI and the
``check``/``slice`` server clients print.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_tag_row", "format_check_report"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """A fixed-width table with right-aligned numeric columns."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(["" if v is None else
                      ("%.2f" % v if isinstance(v, float) else str(v))
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(columns)]

    def fmt(row: List[str]) -> str:
        return "  ".join(cell.rjust(widths[c]) if c else
                         cell.ljust(widths[c])
                         for c, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def format_tag_row(counts: Dict[str, Tuple[int, int]],
                   total_args: int, improved_args: int,
                   clause_total: int, clause_improved: int
                   ) -> List[object]:
    """One Table 4/5 row: per-tag "n (baseline)" cells followed by the
    A/AI/AR and C/CI/CR comparison columns."""
    def cell(tag: str) -> str:
        type_count, base_count = counts[tag]
        if base_count:
            return "%d (%d)" % (type_count, base_count)
        return str(type_count)

    ratio_args = improved_args / total_args if total_args else 0.0
    ratio_clauses = clause_improved / clause_total if clause_total else 0.0
    return ([cell(t) for t in ("NI", "CO", "LI", "ST", "DI", "HY")]
            + [total_args, improved_args, round(ratio_args, 2),
               clause_total, clause_improved, round(ratio_clauses, 2)])


_STATUS_MARKS = {"verified": "ok", "violated": "FAIL",
                 "unreachable": "warn"}


def _anchor(line: int, source: Optional[str]) -> str:
    parts = []
    if line:
        parts.append("line %d" % line)
    if source:
        parts.append(source)
    return " — ".join(parts) if parts else "<no source>"


def format_check_report(report, slices: Sequence = (),
                        name: Optional[str] = None) -> str:
    """Human-readable rendering of a
    :class:`~repro.assertions.checker.CheckReport` and its
    :class:`~repro.assertions.slicer.BlameSlice` list — one verdict
    line per assertion, then a source-anchored blame section per
    violation."""
    lines: List[str] = []
    counts = report.counts()
    header = "%d assertion(s): %d verified, %d violated, %d unreachable" \
        % (len(report.verdicts), counts.get("verified", 0),
           counts.get("violated", 0), counts.get("unreachable", 0))
    if name:
        header = "%s: %s" % (name, header)
    lines.append(header)
    for verdict in report.verdicts:
        mark = _STATUS_MARKS.get(verdict.status, verdict.status)
        location = (" (line %d)" % verdict.assertion.line
                    if verdict.assertion.line else "")
        lines.append("  [%s] %s%s" % (mark, verdict.assertion.key,
                                      location))
        for detail in verdict.details:
            lines.append("        %s" % detail)
    by_assertion: Dict[str, List] = {}
    for blame in slices:
        by_assertion.setdefault(blame.assertion_key, []).append(blame)
    for verdict in report.verdicts:
        for blame in by_assertion.get(verdict.assertion.key, ()):
            lines.append("")
            lines.append("blame slice for %s (entry %d of %s/%d):"
                         % (blame.assertion_key, blame.entry_id,
                            blame.pred[0], blame.pred[1]))
            for step in blame.steps:
                if step.role == "clause":
                    lines.append(
                        "  clause %d of %s/%d produced the pattern: %s"
                        % (step.clause_index, step.pred[0], step.pred[1],
                           _anchor(step.line, step.source)))
                else:
                    position = ("goal %d" % step.body_pos
                                if step.body_pos is not None else "call")
                    via = " via %s" % step.goal if step.goal else ""
                    lines.append(
                        "  called from %s/%d clause %d, %s%s: %s"
                        % (step.pred[0], step.pred[1], step.clause_index,
                           position, via, _anchor(step.line, step.source)))
    return "\n".join(lines)
