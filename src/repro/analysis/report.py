"""ASCII table formatting for the experiment harnesses.

The benchmark scripts print rows in the same layout as the paper's
tables; these helpers keep that presentation consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_tag_row"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """A fixed-width table with right-aligned numeric columns."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(["" if v is None else
                      ("%.2f" % v if isinstance(v, float) else str(v))
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(columns)]

    def fmt(row: List[str]) -> str:
        return "  ".join(cell.rjust(widths[c]) if c else
                         cell.ljust(widths[c])
                         for c, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def format_tag_row(counts: Dict[str, Tuple[int, int]],
                   total_args: int, improved_args: int,
                   clause_total: int, clause_improved: int
                   ) -> List[object]:
    """One Table 4/5 row: per-tag "n (baseline)" cells followed by the
    A/AI/AR and C/CI/CR comparison columns."""
    def cell(tag: str) -> str:
        type_count, base_count = counts[tag]
        if base_count:
            return "%d (%d)" % (type_count, base_count)
        return str(type_count)

    ratio_args = improved_args / total_args if total_args else 0.0
    ratio_clauses = clause_improved / clause_total if clause_total else 0.0
    return ([cell(t) for t in ("NI", "CO", "LI", "ST", "DI", "HY")]
            + [total_args, improved_args, round(ratio_args, 2),
               clause_total, clause_improved, round(ratio_clauses, 2)])
