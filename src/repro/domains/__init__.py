"""Abstract domains: the generic pattern domain Pat(R) and its leaf
domains (Type and the principal-functor baseline)."""

from .leaf import (DepthBoundLeafDomain, LeafDomain, TOP,
                   TrivialLeafDomain, TypeLeafDomain)
from .pattern import (AbstractSubst, PAT_BOTTOM, PatBottom, PatNode,
                      SubstBuilder, display_subst, subst_eq, subst_join,
                      subst_le, subst_top, subst_widen, value_of)

__all__ = [
    "DepthBoundLeafDomain", "LeafDomain", "TOP", "TrivialLeafDomain",
    "TypeLeafDomain",
    "AbstractSubst", "PAT_BOTTOM", "PatBottom", "PatNode", "SubstBuilder",
    "display_subst", "subst_eq", "subst_join", "subst_le", "subst_top",
    "subst_widen", "value_of",
]
