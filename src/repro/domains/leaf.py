"""Leaf domains: the generic parameter R of Pat(R) (paper §5).

``Pat(R)`` maintains *sure* structural information (patterns) and
same-value information; what is known about the remaining *leaves* is
delegated to a leaf domain:

* :class:`TypeLeafDomain` — R = Type: each leaf carries a type grammar.
  ``Pat(TypeLeafDomain)`` is the paper's ``Pat(Type)``.
* :class:`TrivialLeafDomain` — R = nothing: leaves carry no
  information.  ``Pat(TrivialLeafDomain)`` keeps only sure functors and
  same-value pairs — the *principal functor* analysis used as the
  accuracy baseline in §9 (Tables 4–5).

A leaf value is opaque to Pat(R); all manipulation goes through the
methods below.  ``meet`` returning ``None`` signals failure (bottom),
which is how ``Pat(Type)`` refutes unifications that the principal
functor domain cannot.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..typegraph.grammar import (Grammar, g_any, g_functor, g_int,
                                 g_int_literal)
from ..typegraph.ops import g_intersect, g_le, g_split, g_union
from ..typegraph.widening import g_widen

__all__ = ["LeafDomain", "TypeLeafDomain", "TrivialLeafDomain",
           "DepthBoundLeafDomain", "TOP", "domain_from_descriptor"]


class _Top:
    """The single value of the trivial leaf domain."""

    __slots__ = ()
    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Any"


TOP = _Top()


_NEXT_DID = 0


class LeafDomain:
    """Abstract base for leaf domains.  Subclasses must be stateless
    apart from configuration (they are shared across substitutions).

    Every instance gets a dense per-process id ``did`` (assigned here,
    never reused) so the pattern-level operation memos in
    :mod:`repro.domains.pattern` can key on it — two distinct domain
    instances never share cache lines, even if one is garbage
    collected and another allocated at the same address."""

    name = "abstract"

    #: True when ``join(a, a) == a`` and ``widen(a, a) == a`` for every
    #: domain value — lets the pattern layer skip merge walks on equal
    #: substitutions.  :class:`DepthBoundLeafDomain` overrides this:
    #: its join is ``restrict_depth(union)``, which can *shrink* a
    #: value that exceeds the depth bound, so even x ⊔ x must run.
    idempotent_joins = True

    def __init__(self) -> None:
        global _NEXT_DID
        self.did = _NEXT_DID
        _NEXT_DID += 1

    def top(self):
        """The value describing every term (free variables included)."""
        raise NotImplementedError

    def is_top(self, value) -> bool:
        raise NotImplementedError

    def meet(self, a, b):
        """Greatest lower bound approximation; None means bottom."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound approximation."""
        raise NotImplementedError

    def widen(self, old, new, strict: bool = True):
        """Widening (old is the previous iterate).  ``strict=False``
        allows growth instead of destructive replacement; callers must
        escalate to strict mode eventually (see engine)."""
        raise NotImplementedError

    def le(self, a, b) -> bool:
        """Order; may be conservative (False when unknown)."""
        raise NotImplementedError

    def split(self, value, name: str, arity: int,
              is_int: bool) -> Optional[Tuple]:
        """Constrain ``value`` to terms with the given principal functor
        and return the argument values, or None if that is impossible
        (the unification surely fails)."""
        raise NotImplementedError

    def from_functor(self, name: str, is_int: bool, children: Sequence):
        """The value of ``name(children...)`` — used when a pattern
        subtree is collapsed into a leaf (the Pat/Type interaction of
        §5)."""
        raise NotImplementedError

    def le_tree(self, value, name: str, is_int: bool,
                children: Sequence) -> bool:
        """Is ``value`` included in the tree ``name(children...)``?
        Used to compare a leaf against a pattern; may be conservative."""
        raise NotImplementedError

    def display(self, value) -> str:
        raise NotImplementedError

    # -- serialization (service layer) --------------------------------------

    def encode_leaf(self, value):
        """JSON-ready canonical encoding of one leaf value."""
        raise NotImplementedError

    def decode_leaf(self, data):
        """Inverse of :meth:`encode_leaf`."""
        raise NotImplementedError

    def descriptor(self) -> dict:
        """JSON-ready description of the domain and its configuration,
        sufficient to rebuild it with :func:`domain_from_descriptor`."""
        raise NotImplementedError


class TypeLeafDomain(LeafDomain):
    """R = Type: leaves carry type grammars (paper §6).

    ``max_or_width`` is the or-degree restriction of Table 3 ("(5)" and
    "(2)" rows): or-vertices with more successors collapse to Any.
    """

    name = "type"

    def __init__(self, max_or_width: Optional[int] = None,
                 type_database: Optional[list] = None) -> None:
        super().__init__()
        self.max_or_width = max_or_width
        self.type_database = type_database

    def top(self) -> Grammar:
        return g_any()

    def is_top(self, value: Grammar) -> bool:
        # normalization collapses any grammar containing a root ANY to
        # exactly {0: Any}, so the interned Any instance is unique and
        # the common case is one identity check
        return value is g_any() or value.is_any()

    def meet(self, a: Grammar, b: Grammar) -> Optional[Grammar]:
        result = g_intersect(a, b, self.max_or_width)
        if result.is_bottom():
            return None
        return result

    def join(self, a: Grammar, b: Grammar) -> Grammar:
        return g_union(a, b, self.max_or_width)

    def widen(self, old: Grammar, new: Grammar,
              strict: bool = True) -> Grammar:
        return g_widen(old, new, self.max_or_width, strict,
                       self.type_database)

    def le(self, a: Grammar, b: Grammar) -> bool:
        return g_le(a, b)

    def split(self, value: Grammar, name: str, arity: int,
              is_int: bool) -> Optional[Tuple[Grammar, ...]]:
        return g_split(value, name, arity, is_int)

    def from_functor(self, name: str, is_int: bool,
                     children: Sequence[Grammar]) -> Grammar:
        if is_int:
            return g_int_literal(int(name))
        return g_functor(name, list(children), self.max_or_width)

    def le_tree(self, value: Grammar, name: str, is_int: bool,
                children: Sequence[Grammar]) -> bool:
        return g_le(value, self.from_functor(name, is_int, children))

    def int_type(self) -> Grammar:
        return g_int()

    def display(self, value: Grammar) -> str:
        from ..typegraph.display import grammar_to_text
        return grammar_to_text(value)

    def encode_leaf(self, value: Grammar) -> dict:
        return value.to_obj()

    def decode_leaf(self, data: dict) -> Grammar:
        return Grammar.from_obj(data)

    def descriptor(self) -> dict:
        return {
            "name": self.name,
            "max_or_width": self.max_or_width,
            "type_database": (None if self.type_database is None else
                              [g.to_obj() for g in self.type_database]),
        }


class DepthBoundLeafDomain(TypeLeafDomain):
    """R = Type, but with the Bruynooghe/Janssens finite subdomain in
    place of the widening (§7's alternative): joins and widenings both
    go through union + depth restriction, so no widening is needed —
    at the accuracy cost §10 describes for same-functor nesting.  Used
    by the ablation benchmarks."""

    name = "type-depth-bound"
    idempotent_joins = False  # depth restriction may shrink x ⊔ x

    def __init__(self, k: int = 1,
                 max_or_width: Optional[int] = None) -> None:
        super().__init__(max_or_width)
        self.k = k

    def join(self, a: Grammar, b: Grammar) -> Grammar:
        from ..typegraph.depthbound import depth_bound_join
        return depth_bound_join(a, b, self.k)

    def widen(self, old: Grammar, new: Grammar,
              strict: bool = True) -> Grammar:
        from ..typegraph.depthbound import depth_bound_join
        return depth_bound_join(old, new, self.k)

    def descriptor(self) -> dict:
        return {"name": self.name, "k": self.k,
                "max_or_width": self.max_or_width}


class TrivialLeafDomain(LeafDomain):
    """R = nothing: the principal-functor baseline of §9.

    All leaves are Any; only the pattern and same-value components of
    Pat(R) carry information — "roughly equivalent to the domain of
    Taylor" as the paper puts it.
    """

    name = "trivial"

    def top(self):
        return TOP

    def is_top(self, value) -> bool:
        return value is TOP

    def meet(self, a, b):
        return TOP

    def join(self, a, b):
        return TOP

    def widen(self, old, new, strict: bool = True):
        return TOP

    def le(self, a, b) -> bool:
        return True

    def split(self, value, name: str, arity: int,
              is_int: bool) -> Optional[Tuple]:
        return tuple(TOP for _ in range(arity))

    def from_functor(self, name: str, is_int: bool, children: Sequence):
        return TOP

    def le_tree(self, value, name: str, is_int: bool,
                children: Sequence) -> bool:
        return False  # a bare leaf never certifies sure structure

    def display(self, value) -> str:
        return "Any"

    def encode_leaf(self, value) -> str:
        return "top"

    def decode_leaf(self, data):
        return TOP

    def descriptor(self) -> dict:
        return {"name": self.name}


def domain_from_descriptor(desc: dict) -> LeafDomain:
    """Rebuild a leaf domain from :meth:`LeafDomain.descriptor` output."""
    name = desc["name"]
    if name == TrivialLeafDomain.name:
        return TrivialLeafDomain()
    type_database = desc.get("type_database")
    if type_database is not None:
        type_database = [Grammar.from_obj(g) for g in type_database]
    if name == DepthBoundLeafDomain.name:
        return DepthBoundLeafDomain(desc.get("k", 1),
                                    desc.get("max_or_width"))
    if name == TypeLeafDomain.name:
        return TypeLeafDomain(desc.get("max_or_width"), type_database)
    raise ValueError("unknown leaf domain: %r" % name)
