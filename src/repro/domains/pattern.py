"""The generic pattern domain Pat(R) (paper §5).

An abstract substitution over n variables consists of

* the **same-value component**: ``sv`` maps each variable to a subterm
  index — two variables mapping to the same index surely have the same
  value;
* the **pattern component**: a subterm either has a *pattern*
  ``f(i1, ..., ik)`` (its principal functor is surely ``f`` and its
  arguments are the given subterms) or is a *leaf*;
* the **R-component**: each leaf carries a value of the leaf domain
  (a type grammar for ``Pat(Type)``).

:class:`AbstractSubst` is the frozen, canonically-numbered form used
for tabulation; :class:`SubstBuilder` is the union-find engine that
executes abstract unification (goals ``Xi = Xj`` and
``Xi = f(Xj...)``).  Unification is intersection on the leaf values —
sound because type-graph denotations are instantiation-closed (§6.9
"our type graphs are downward-closed").

Upper bound and widening keep the structure and sharing *common to
both* operands and collapse everything else into leaves, combining the
collapsed subtrees with the leaf domain's join/widen — exactly the
Pat/Type interaction described in §5: indices are removed from Pat(R)
and replaced by an equivalent type graph.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..typegraph import arena, opcache
from .leaf import LeafDomain, TypeLeafDomain

__all__ = [
    "PatNode", "AbstractSubst", "SubstBuilder", "PAT_BOTTOM", "PatBottom",
    "intern_subst", "subst_top", "subst_join", "subst_widen", "subst_le",
    "subst_eq", "value_of", "display_subst", "make_builder",
]


def _native_for(domain: LeafDomain):
    """The native-tier module when it may handle ``domain``, else None.

    Gated on :class:`TypeLeafDomain` (covers DepthBoundLeafDomain,
    which inherits the meet/split/le primitives the C walks mirror;
    excludes leaf domains with different primitives)."""
    native = arena.NATIVE
    if native is not None and arena.enabled() \
            and isinstance(domain, TypeLeafDomain):
        return native
    return None


class PatNode:
    """One subterm.  ``args is None`` means leaf (then ``value`` holds
    the R-value); otherwise the node has pattern ``name(args...)``.

    A slotted value class with the hash computed once at construction:
    nodes are hashed on every substitution intern probe, and leaf
    values are interned grammars whose hashes are themselves cached,
    so the tuple hash below is cheap exactly once."""

    __slots__ = ("name", "is_int", "args", "value", "_hashv")

    def __init__(self, name: Optional[str] = None, is_int: bool = False,
                 args: Optional[Tuple[int, ...]] = None,
                 value: object = None) -> None:
        self.name = name
        self.is_int = is_int
        self.args = args
        self.value = value
        self._hashv = hash((name, is_int, args, value))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PatNode):
            return NotImplemented
        return (self._hashv == other._hashv and self.name == other.name
                and self.is_int == other.is_int and self.args == other.args
                and self.value == other.value)

    def __hash__(self) -> int:
        return self._hashv

    def __reduce__(self):
        return (PatNode, (self.name, self.is_int, self.args, self.value))

    @property
    def is_leaf(self) -> bool:
        return self.args is None

    @property
    def fkey(self) -> Tuple[str, str, int]:
        assert self.args is not None
        return ("i" if self.is_int else "f", self.name, len(self.args))


class PatBottom:
    """The empty abstract substitution (unification surely fails)."""

    __slots__ = ()
    _instance: Optional["PatBottom"] = None

    def __new__(cls) -> "PatBottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<bottom>"


PAT_BOTTOM = PatBottom()

#: Pattern-level operation memo tables (bounded LRUs shared with the
#: type-graph op caches' configuration and counters).
_JOIN_CACHE = opcache.cache_for("subst_join")
_WIDEN_CACHE = opcache.cache_for("subst_widen")
_LE_CACHE = opcache.cache_for("subst_le")


def _unpickle_subst(nvars, sv, nodes, was_interned):
    subst = AbstractSubst(nvars, sv, nodes)
    if was_interned:
        return intern_subst(subst)
    return subst


#: Process-wide weak intern table for frozen substitutions, mirroring
#: the grammar intern table: the engine's tables, clause-output caches,
#: and differential joins circulate the same frozen substitutions over
#: and over, and interning makes their equality an identity check and
#: the pattern-level operations memoizable by id pair.
_SUBST_INTERN: "weakref.WeakValueDictionary[tuple, AbstractSubst]" = \
    weakref.WeakValueDictionary()
#: Guards probe-then-insert and the sid counter — same identity
#: invariant (and the same reasoning) as
#: ``repro.typegraph.grammar._INTERN_LOCK``.
_SUBST_INTERN_LOCK = threading.Lock()
_NEXT_SID = 0


def intern_subst(subst: "AbstractSubst") -> "AbstractSubst":
    """Canonical shared instance of a frozen substitution (structural
    hash-consing; semantically-equal-but-structurally-different
    substitutions stay distinct, exactly like `==`).  Thread-safe."""
    global _NEXT_SID
    if subst.interned:
        return subst
    key = (subst.nvars, subst.sv, subst.nodes)
    with _SUBST_INTERN_LOCK:
        # setdefault hashes the key once; the subst's own memoized
        # hash fills in lazily from the same tuple.
        canonical = _SUBST_INTERN.setdefault(key, subst)
        if canonical is subst:
            subst.interned = True
            subst.sid = _NEXT_SID
            _NEXT_SID += 1
    return canonical


class AbstractSubst:
    """Frozen abstract substitution.  Nodes are numbered in DFS order
    from ``sv`` (canonical), so structurally equal substitutions
    compare equal.  The hash is memoized: with leaf grammars interned,
    it reduces to combining precomputed grammar hashes, which is what
    makes the engine's hash-indexed table lookups cheap."""

    __slots__ = ("nvars", "sv", "nodes", "_hash", "_collapse",
                 "interned", "sid", "__weakref__")

    def __init__(self, nvars: int, sv: Tuple[int, ...],
                 nodes: Tuple[PatNode, ...]) -> None:
        self.nvars = nvars
        self.sv = sv
        self.nodes = nodes
        self._hash: Optional[int] = None
        #: per-instance :func:`value_of` memo, keyed (domain, index) —
        #: the engine collapses the same cached clause outputs on
        #: every join/compare, so the memo pays across calls, not just
        #: within one merge walk.
        self._collapse: Optional[Dict] = None
        #: interning marker + dense per-process id (see
        #: :func:`intern_subst`); -1 until interned, never reused.
        self.interned = False
        self.sid = -1

    def __reduce__(self):
        # Like grammars, canonical identity is per-process: unpickled
        # substitutions re-intern on arrival instead of claiming the
        # sending process's id.
        return (_unpickle_subst,
                (self.nvars, self.sv, self.nodes, self.interned))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbstractSubst):
            return NotImplemented
        return (self.nvars == other.nvars and self.sv == other.sv
                and self.nodes == other.nodes)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.nvars, self.sv, self.nodes))
        return self._hash

    def refcounts(self) -> List[int]:
        counts = [0] * len(self.nodes)
        for index in self.sv:
            counts[index] += 1
        for node in self.nodes:
            if node.args is not None:
                for arg in node.args:
                    counts[arg] += 1
        return counts

    def __repr__(self) -> str:
        parts = []
        for k in range(self.nvars):
            parts.append("X%d->s%d" % (k, self.sv[k]))
        return "<subst %s over %d nodes>" % (" ".join(parts),
                                             len(self.nodes))


# -- the union-find unification engine ---------------------------------------

class _UNode:
    __slots__ = ("parent", "name", "is_int", "args", "value", "size")

    def __init__(self, value=None, name: Optional[str] = None,
                 is_int: bool = False,
                 args: Optional[List["_UNode"]] = None) -> None:
        self.parent: Optional["_UNode"] = None
        self.name = name
        self.is_int = is_int
        self.args = args
        self.value = value
        self.size = 1  # union-by-size weight (class size at the root)

    @property
    def is_leaf(self) -> bool:
        return self.args is None


def _freeze_build(sv: tuple, descs: list) -> "AbstractSubst":
    """Intern callback for the native builder's freeze: node
    descriptors (``(value,)`` leaf / ``(name, is_int, args)`` pattern,
    already in first-visit order) to the canonical frozen form."""
    nodes = []
    append = nodes.append
    for desc in descs:
        if len(desc) == 1:
            append(PatNode(value=desc[0]))
        else:
            append(PatNode(desc[0], desc[1], tuple(desc[2])))
    return intern_subst(AbstractSubst(len(sv), tuple(sv), tuple(nodes)))


def _subst_rows(subst: "AbstractSubst") -> tuple:
    """Flat per-node rows handed to the C tier on first sight of a
    sid: ``(name, is_int, args_or_None, value)`` per node."""
    rows = [(node.name, node.is_int, node.args, node.value)
            for node in subst.nodes]
    return (subst.sv, rows)


class _CyclicPattern(Exception):
    """Raised inside :meth:`SubstBuilder.freeze` when the occur check
    fails (unification built a cyclic pattern)."""


class SubstBuilder:
    """Mutable abstract substitution on which kernel goals execute."""

    def __init__(self, domain: LeafDomain) -> None:
        self.domain = domain

    # -- node management ----------------------------------------------------

    def fresh_leaf(self, value=None) -> _UNode:
        if value is None:
            value = self.domain.top()
        return _UNode(value=value)

    def make_pattern(self, name: str, is_int: bool,
                     children: List[_UNode]) -> _UNode:
        return _UNode(name=name, is_int=is_int, args=list(children))

    @staticmethod
    def find(node: _UNode) -> _UNode:
        # Path halving: every node on the walk is pointed at its
        # grandparent, so the chain shortens in the same single pass
        # that locates the root (no second compression loop).
        parent = node.parent
        while parent is not None:
            grand = parent.parent
            if grand is None:
                return parent
            node.parent = grand
            node = grand
            parent = node.parent
        return node

    @staticmethod
    def _union(keep: _UNode, merge: _UNode) -> None:
        keep.size += merge.size
        merge.parent = keep
        merge.args = None
        merge.value = None

    # -- snapshot / fork -----------------------------------------------------

    def fork(self, roots: Sequence[_UNode]
             ) -> Tuple["SubstBuilder", List[_UNode]]:
        """Persistent snapshot of the union-find state reachable from
        ``roots``: an isomorphic copy (fresh nodes, same structure,
        sharing and leaf values preserved) that shares no mutable state
        with the original.  Execution can continue on either side
        independently — the engine snapshots the builder before every
        call site so a clause whose callee later improves resumes from
        that point instead of from the clause head (GAIA-style prefix
        resumption)."""
        copies: Dict[int, _UNode] = {}
        originals: List[_UNode] = []
        stack = list(roots)
        while stack:
            node = stack.pop()
            if id(node) in copies:
                continue
            copy = _UNode(value=node.value, name=node.name,
                          is_int=node.is_int)
            copy.size = node.size
            copies[id(node)] = copy
            originals.append(node)
            if node.parent is not None:
                stack.append(node.parent)
            if node.args is not None:
                stack.extend(node.args)
        for node in originals:
            copy = copies[id(node)]
            if node.parent is not None:
                copy.parent = copies[id(node.parent)]
            if node.args is not None:
                copy.args = [copies[id(arg)] for arg in node.args]
        return (SubstBuilder(self.domain),
                [copies[id(root)] for root in roots])

    # -- abstract unification ------------------------------------------------

    def unify(self, a: _UNode, b: _UNode) -> bool:
        """Abstract ``a = b``; False signals sure failure (bottom)."""
        domain = self.domain
        work = [(a, b)]
        while work:
            x, y = work.pop()
            x, y = self.find(x), self.find(y)
            if x is y:
                continue
            if not x.is_leaf and not y.is_leaf:
                if (x.name, x.is_int, len(x.args)) != \
                        (y.name, y.is_int, len(y.args)):
                    return False
                y_args = y.args
                self._union(x, y)
                work.extend(zip(x.args, y_args))
            elif not x.is_leaf:  # y is a leaf
                pieces = domain.split(y.value, x.name, len(x.args), x.is_int)
                if pieces is None:
                    return False
                self._union(x, y)
                for child, piece in zip(x.args, pieces):
                    if not self.constrain(child, piece):
                        return False
            elif not y.is_leaf:  # x is a leaf
                pieces = domain.split(x.value, y.name, len(y.args), y.is_int)
                if pieces is None:
                    return False
                self._union(y, x)
                for child, piece in zip(y.args, pieces):
                    if not self.constrain(child, piece):
                        return False
            else:
                value = domain.meet(x.value, y.value)
                if value is None:
                    return False
                # Leaf-leaf is the one direction-free union: keep the
                # larger class as the root (union by size), so the
                # forest stays shallow under adversarial merge orders.
                if y.size > x.size:
                    x, y = y, x
                self._union(x, y)
                x.value = value
        return True

    def constrain(self, node: _UNode, value) -> bool:
        """Meet ``node`` with an R-value, pushing through patterns."""
        domain = self.domain
        work = [(node, value)]
        seen = set()
        while work:
            n, v = work.pop()
            n = self.find(n)
            if domain.is_top(v):
                continue
            key = (id(n), v)
            if key in seen:
                continue
            seen.add(key)
            if n.is_leaf:
                met = domain.meet(n.value, v)
                if met is None:
                    return False
                n.value = met
            else:
                pieces = domain.split(v, n.name, len(n.args), n.is_int)
                if pieces is None:
                    return False
                work.extend(zip(n.args, pieces))
        return True

    # -- freeze / thaw / instantiate ------------------------------------------

    def freeze(self, roots: Sequence[_UNode]):
        """Canonical frozen form restricted to what ``roots`` reach;
        PAT_BOTTOM if the occur check fails.

        The occur check runs *inside* the freezing DFS (a pattern node
        re-entered while its arguments are still being built is a
        cycle) instead of as a separate :meth:`acyclic` traversal."""
        index: Dict[int, int] = {}
        out: List[Optional[PatNode]] = []
        building: set = set()
        find = self.find

        def visit(node: _UNode) -> int:
            node = find(node)
            key = id(node)
            slot = index.get(key)
            if slot is not None:
                if key in building:
                    raise _CyclicPattern
                return slot
            slot = len(out)
            index[key] = slot
            out.append(None)
            if node.is_leaf:
                out[slot] = PatNode(value=node.value)
            else:
                building.add(key)
                args = tuple(visit(child) for child in node.args)
                building.discard(key)
                out[slot] = PatNode(node.name, node.is_int, args)
            return slot

        try:
            sv = tuple(visit(root) for root in roots)
        except _CyclicPattern:
            # cyclic patterns denote no finite tree: sure failure
            return PAT_BOTTOM
        return intern_subst(AbstractSubst(len(sv), sv, tuple(out)))

    def instantiate(self, subst: AbstractSubst) -> List[_UNode]:
        """Copy ``subst`` into this builder (fresh nodes, sharing
        preserved); returns the node of each position."""
        cache: Dict[int, _UNode] = {}

        def visit(i: int) -> _UNode:
            if i in cache:
                return cache[i]
            node = subst.nodes[i]
            if node.is_leaf:
                unode = self.fresh_leaf(node.value)
            else:
                unode = _UNode(name=node.name, is_int=node.is_int, args=[])
                cache[i] = unode
                unode.args = [visit(a) for a in node.args]
                return unode
            cache[i] = unode
            return unode

        return [visit(self.sv_index(subst, k)) for k in range(subst.nvars)]

    @staticmethod
    def sv_index(subst: AbstractSubst, k: int) -> int:
        return subst.sv[k]


def make_builder(domain: LeafDomain):
    """A substitution builder for ``domain`` on the active kernel tier
    (the C union-find engine when the native tier is loaded and the
    leaf domain is grammar-backed, else the reference builder).  Both
    freeze to identical interned :class:`AbstractSubst` instances."""
    native = _native_for(domain)
    if native is not None:
        return native.make_builder(domain)
    return SubstBuilder(domain)


# -- operations on frozen substitutions ---------------------------------------

def subst_top(nvars: int, domain: LeafDomain) -> AbstractSubst:
    """n variables, no structure, no sharing, all leaves top —
    the input pattern ``p(Any, ..., Any)``."""
    nodes = tuple(PatNode(value=domain.top()) for _ in range(nvars))
    return intern_subst(AbstractSubst(nvars, tuple(range(nvars)), nodes))


def value_of(subst: AbstractSubst, index: int, domain: LeafDomain,
             memo: Optional[Dict[int, object]] = None):
    """Collapse the subtree at ``index`` into a single R-value.

    Memoized on the substitution instance (nodes are immutable), keyed
    by domain, so repeated joins/compares against the same frozen
    substitution collapse each subtree once per process instead of
    once per call.  The ``memo`` parameter is kept for API
    compatibility; the instance cache subsumes it."""
    if subst.interned:
        native = _native_for(domain)
        if native is not None:
            return native.value_of(subst, index, domain.did,
                                   domain.max_or_width)
    cache = subst._collapse
    if cache is None:
        cache = {}
        subst._collapse = cache
    key = (domain, index)
    value = cache.get(key)
    if value is not None:
        return value
    node = subst.nodes[index]
    if node.is_leaf:
        value = node.value
    else:
        children = [value_of(subst, a, domain) for a in node.args]
        value = domain.from_functor(node.name, node.is_int, children)
    cache[key] = value
    return value


def _merge(s1: AbstractSubst, s2: AbstractSubst, domain: LeafDomain,
           combine: Callable) -> AbstractSubst:
    """Common-structure walk with leaf combiner (join or widen)."""
    assert s1.nvars == s2.nvars
    memo: Dict[Tuple[int, int], int] = {}
    out: List[Optional[PatNode]] = []

    def walk(i1: int, i2: int) -> int:
        key = (i1, i2)
        if key in memo:
            return memo[key]
        slot = len(out)
        memo[key] = slot
        out.append(None)
        n1, n2 = s1.nodes[i1], s2.nodes[i2]
        if not n1.is_leaf and not n2.is_leaf and n1.fkey == n2.fkey:
            args = tuple(walk(a1, a2) for a1, a2 in zip(n1.args, n2.args))
            out[slot] = PatNode(n1.name, n1.is_int, args)
        else:
            value = combine(value_of(s1, i1, domain),
                            value_of(s2, i2, domain))
            out[slot] = PatNode(value=value)
        return slot

    sv = tuple(walk(s1.sv[k], s2.sv[k]) for k in range(s1.nvars))
    return intern_subst(AbstractSubst(s1.nvars, sv, tuple(out)))


def _merge_join(s1: AbstractSubst, s2: AbstractSubst,
                domain: LeafDomain) -> AbstractSubst:
    """``_merge`` with the leaf join, through the native walk when the
    tier can run it.  A domain that inherits ``TypeLeafDomain.join``
    unmodified gets the pure-C combiner (mode 1); an overriding domain
    (e.g. depth-``k`` bounding) keeps its Python join as a callback."""
    if s1.interned and s2.interned:
        native = _native_for(domain)
        if native is not None:
            mode = 1 if type(domain).join is TypeLeafDomain.join else 0
            return native.subst_merge(s1, s2, domain.did,
                                      domain.max_or_width, mode, True,
                                      domain.join)
    return _merge(s1, s2, domain, domain.join)


def _merge_widen(old: AbstractSubst, new: AbstractSubst,
                 domain: LeafDomain, strict: bool) -> AbstractSubst:
    """``_merge`` with the leaf widening; pure-C (mode 2) only when the
    domain keeps ``TypeLeafDomain.widen`` and has no type database —
    the database extension grafts arbitrary Python grammars."""
    if old.interned and new.interned:
        native = _native_for(domain)
        if native is not None:
            mode = (2 if type(domain).widen is TypeLeafDomain.widen
                    and domain.type_database is None else 0)
            return native.subst_merge(
                old, new, domain.did, domain.max_or_width, mode, strict,
                lambda a, b: domain.widen(a, b, strict))
    return _merge(old, new, domain,
                  lambda a, b: domain.widen(a, b, strict))


def subst_join(s1, s2, domain: LeafDomain):
    """Upper bound (operation UNION of GAIA).

    Memoized on interned identities (the differential engine re-joins
    the same cached clause outputs on every re-analysis)."""
    if s1 is PAT_BOTTOM:
        return s2
    if s2 is PAT_BOTTOM:
        return s1
    if s1 is s2 and domain.idempotent_joins:
        return s1  # x ⊔ x = x; the merge walk would rebuild s1
    if s1.interned and s2.interned and opcache.enabled():
        # open-coded opcache.cached: this is one of the engine's
        # hottest call sites, so skip the closure per call
        cache = _JOIN_CACHE
        key = (domain.did, s1.sid, s2.sid)
        value = cache.get(key)
        if value is None:
            value = _merge_join(s1, s2, domain)
            cache.put(key, value)
        return value
    return _merge_join(s1, s2, domain)


def subst_widen(old, new, domain: LeafDomain, strict: bool = True):
    """Widening: the Pat(R) upper bound with the leaf join replaced by
    the leaf widening (§5).  The pattern component of the result is a
    prefix of ``old``'s, so widening chains stabilize structurally; the
    leaf chains stabilize by Theorem 7.1 (in strict mode)."""
    if old is PAT_BOTTOM:
        return new
    if new is PAT_BOTTOM:
        return old
    if old is new and domain.idempotent_joins:
        return old  # x V x = x for the leaf widening too
    if old.interned and new.interned and opcache.enabled():
        cache = _WIDEN_CACHE
        key = (domain.did, old.sid, new.sid, strict)
        value = cache.get(key)
        if value is None:
            value = _merge_widen(old, new, domain, strict)
            cache.put(key, value)
        return value
    return _merge_widen(old, new, domain, strict)


def subst_le(s1, s2, domain: LeafDomain) -> bool:
    """Order: Cc(s1) ⊆ Cc(s2).  Exact when structures align; when s1
    has a leaf where s2 has a pattern, decided through the leaf domain
    if s2's subtree is sharing-free, else conservatively False.

    Memoized on interned identities (the engine's table scans compare
    the same candidate/entry pattern pairs across iterations)."""
    if s1 is s2:
        return True
    if s1 is PAT_BOTTOM:
        return True
    if s2 is PAT_BOTTOM:
        return False
    if s1.nvars != s2.nvars:
        raise ValueError("arity mismatch")
    if s1.interned and s2.interned and opcache.enabled():
        cache = _LE_CACHE
        key = (domain.did, s1.sid, s2.sid)
        value = cache.get(key)
        if value is None:
            value = _subst_le_impl(s1, s2, domain)
            cache.put(key, value)
        return value
    return _subst_le_impl(s1, s2, domain)


def _subst_le_impl(s1, s2, domain: LeafDomain) -> bool:
    if s1.interned and s2.interned:
        native = _native_for(domain)
        if native is not None:
            return native.subst_le(s1, s2, domain.did,
                                   domain.max_or_width)
    refcounts2 = s2.refcounts()
    map21: Dict[int, int] = {}

    def subtree_shared(i2: int) -> bool:
        seen = set()
        stack = [i2]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            if i != i2 and refcounts2[i] > 1:
                return True
            node = s2.nodes[i]
            if node.args is not None:
                stack.extend(node.args)
        return False

    def le(i1: int, i2: int) -> bool:
        if i2 in map21:
            return map21[i2] == i1  # s2's sharing must hold in s1
        map21[i2] = i1
        n1, n2 = s1.nodes[i1], s2.nodes[i2]
        if n2.is_leaf:
            return domain.le(value_of(s1, i1, domain), n2.value)
        if not n1.is_leaf and n1.fkey == n2.fkey:
            return all(le(a1, a2) for a1, a2 in zip(n1.args, n2.args))
        if n1.is_leaf:
            # A leaf can only be below a pattern if the leaf domain can
            # certify the structure (Type can, via grammars; the
            # principal-functor baseline cannot).
            if subtree_shared(i2):
                return False
            n2_children = [value_of(s2, a, domain) for a in n2.args]
            return domain.le_tree(value_of(s1, i1, domain),
                                  n2.name, n2.is_int, n2_children)
        return False

    return all(le(s1.sv[k], s2.sv[k]) for k in range(s1.nvars))


def subst_eq(s1, s2, domain: LeafDomain) -> bool:
    if s1 is s2:
        return True
    if s1 is PAT_BOTTOM or s2 is PAT_BOTTOM:
        return False
    # The structural == walk is only worth attempting when the
    # memoized hashes agree (with interned leaf grammars both hashes
    # are a few cached integer combines); differing hashes certify the
    # walk would fail, so fall straight through to the semantic check.
    if s1.nvars == s2.nvars and hash(s1) == hash(s2) and s1 == s2:
        return True
    return subst_le(s1, s2, domain) and subst_le(s2, s1, domain)


def display_subst(subst, domain: LeafDomain,
                  names: Optional[Sequence[str]] = None) -> str:
    """Human-readable rendering, one line per variable."""
    if subst is PAT_BOTTOM:
        return "<bottom>"
    lines = []
    refcounts = subst.refcounts()

    def node_text(index: int, depth: int) -> str:
        node = subst.nodes[index]
        tag = "s%d:" % index if refcounts[index] > 1 else ""
        if node.is_leaf:
            value_text = domain.display(node.value)
            if "\n" in value_text:
                value_text = "{%s}" % "; ".join(value_text.splitlines())
            return tag + value_text
        if depth > 8:
            return tag + "..."
        if not node.args:
            return tag + node.name
        inner = ",".join(node_text(a, depth + 1) for a in node.args)
        return "%s%s(%s)" % (tag, node.name, inner)

    for k in range(subst.nvars):
        name = names[k] if names else "X%d" % k
        lines.append("%s = %s" % (name, node_text(subst.sv[k], 0)))
    return "\n".join(lines)
